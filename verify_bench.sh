#!/bin/bash
# Smoke-verifies the performance barometer subsystem itself (crates/ilt-perf):
#   1. the registry lists and every workload family is present;
#   2. a smoke run (1 rep, tiny fixtures) of the FULL registry completes —
#      every layer's setup path runs, including the loopback server and the
#      sharded cluster;
#   3. `bench diff` refuses to gate on smoke numbers;
#   4. a real run of the pruned-inverse workload passes diff against the
#      checked-in baseline;
#   5. the same diff FAILS when an artificial 200 ms/op delay is injected
#      via ILT_BENCH_DELAY_US — proof the gate actually trips on slowdowns.
set -e
BIN=./target/release/ilt
OUT=bench-out/bench-verify
rm -rf "$OUT"
mkdir -p "$OUT/smoke" "$OUT/real"

"$BIN" bench list | tee "$OUT/list.log"
for fam in fft simulator autodiff runtime server cluster; do
    grep -q "$fam" "$OUT/list.log" || { echo "MISSING_FAMILY: $fam"; exit 1; }
done

"$BIN" bench run --smoke --out "$OUT/smoke" | tee "$OUT/smoke.log"

if "$BIN" bench diff --out "$OUT/smoke" --baselines "$OUT/smoke" 2>"$OUT/refusal.log"; then
    echo "SMOKE_GATED: diff accepted smoke-mode results"
    exit 1
fi
grep -q "smoke" "$OUT/refusal.log" || { echo "WRONG_REFUSAL"; cat "$OUT/refusal.log"; exit 1; }

"$BIN" bench run --name fft_pruned_inverse --out "$OUT/real"
"$BIN" bench diff --name fft_pruned_inverse --out "$OUT/real" --baselines .

# The injected slowdown must trip the gate: 200 ms/op against a baseline in
# the hundreds of microseconds is far past the 50% threshold.
ILT_BENCH_DELAY_US=200000 "$BIN" bench run --name fft_pruned_inverse --out "$OUT/real"
if "$BIN" bench diff --name fft_pruned_inverse --out "$OUT/real" --baselines .; then
    echo "GATE_BLIND: injected 200ms/op slowdown did not fail bench diff"
    exit 1
fi

echo BENCH_VERIFIED
