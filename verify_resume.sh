#!/bin/bash
# Verifies crash-safe checkpoint/resume end to end, fully offline:
#   1. Run A: an uninterrupted batch with checkpointing on, `--no-timing`
#      so the journal is byte-stable — this is the reference output.
#   2. Run B: the same batch with injected faults — `panic@2` makes job 2
#      fail every attempt and `crash@4` aborts the whole process the
#      instant job 4's checkpoint becomes durable. The run dies mid-flight:
#      no canonical journal, only the write-ahead log and the per-tile
#      checkpoint masks it managed to make durable.
#   3. Resume: the same command again with `--resume` and no faults. Jobs
#      with durable checkpoints are restored, the rest recomputed.
#   4. The resumed journal and stitched mask must be BYTE-IDENTICAL to the
#      uninterrupted run's — crash + resume is indistinguishable from
#      never crashing.
set -e
BIN=./target/release/ilt
OUT=bench-out/resume
rm -rf "$OUT"
mkdir -p "$OUT"

COMMON="batch --threads 2 --grid 128 --tile 64 --halo 8 --kernels 4 --no-timing case1"

# --- Run A: uninterrupted reference. -------------------------------------
"$BIN" $COMMON --checkpoint --out "$OUT/a" --journal "$OUT/a.jsonl" \
    > "$OUT/a.log" 2>&1
[ -f "$OUT/a.jsonl" ] || { echo "RESUME_FAILED: reference journal missing"; exit 1; }

# --- Run B: deterministic faults, process aborts mid-run. ----------------
set +e
"$BIN" $COMMON --checkpoint --out "$OUT/b" --journal "$OUT/b.jsonl" \
    --inject "panic@2,crash@4" > "$OUT/b-crash.log" 2>&1
CRASH_RC=$?
set -e
[ "$CRASH_RC" -ne 0 ] || { echo "RESUME_FAILED: injected crash did not kill run B"; exit 1; }
grep -q "injected process crash" "$OUT/b-crash.log" \
    || { echo "RESUME_FAILED: crash fault never fired"; cat "$OUT/b-crash.log"; exit 1; }
[ ! -f "$OUT/b.jsonl" ] \
    || { echo "RESUME_FAILED: crashed run still wrote a canonical journal"; exit 1; }
[ -f "$OUT/b.jsonl.ckpt/wal.jsonl" ] \
    || { echo "RESUME_FAILED: no write-ahead log survived the crash"; exit 1; }

# --- Resume run B; only non-durable jobs recompute. ----------------------
"$BIN" $COMMON --resume --out "$OUT/b" --journal "$OUT/b.jsonl" \
    > "$OUT/b-resume.log" 2>&1
RESTORED=$(sed -n 's/^resume: \([0-9]*\) job(s) restored.*/\1/p' "$OUT/b-resume.log")
[ -n "$RESTORED" ] && [ "$RESTORED" -ge 1 ] \
    || { echo "RESUME_FAILED: nothing restored from checkpoints"; cat "$OUT/b-resume.log"; exit 1; }
echo "resume restored $RESTORED job(s) from the crashed run"

# --- Byte-identical to the uninterrupted run. ----------------------------
cmp "$OUT/a.jsonl" "$OUT/b.jsonl" \
    || { echo "RESUME_FAILED: journals differ after resume"; exit 1; }
cmp "$OUT/a_case1_mask.pgm" "$OUT/b_case1_mask.pgm" \
    || { echo "RESUME_FAILED: masks differ after resume"; exit 1; }

# --- A fingerprint mismatch must be rejected, not silently absorbed. -----
set +e
"$BIN" batch --threads 2 --grid 128 --tile 64 --halo 16 --kernels 4 --no-timing case1 \
    --resume --out "$OUT/b" --journal "$OUT/b.jsonl" > "$OUT/b-mismatch.log" 2>&1
MISMATCH_RC=$?
set -e
[ "$MISMATCH_RC" -ne 0 ] && grep -q "fingerprint mismatch" "$OUT/b-mismatch.log" \
    || { echo "RESUME_FAILED: incompatible resume was not rejected"; cat "$OUT/b-mismatch.log"; exit 1; }

echo "RESUME_VERIFIED: crash + resume is byte-identical to an uninterrupted run"
