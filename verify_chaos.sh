#!/bin/bash
# Network-fault chaos against the *release binaries* as real processes,
# loopback-only and offline. The deterministic ports of these scenarios
# live in-tree (crates/ilt-cluster/tests/chaos.rs, tests/wire_fuzz.rs);
# this script drives the self-healing story end to end through curl:
#   1. a two-replica cluster starts a sharded job; replica A stalls the
#      shard that carries job 0 on the wire (`read_stall`) so it turns
#      into a straggler;
#   2. replica B is killed -9 mid-job; the heartbeat monitor declares it
#      dead and its shards re-dispatch;
#   3. a replacement worker started with `--register` announces itself to
#      the coordinator mid-job and picks up the slack, including the
#      speculative re-execution of the stalled straggler shard;
#   4. the finished mask is byte-identical to the same configuration run
#      through `ilt batch`, and the metrics endpoint shows the join, the
#      re-dispatch, the speculation, and the per-worker breaker gauge.
set -e
BIN=./target/release/ilt
OUT=bench-out/chaos
mkdir -p "$OUT"
CURL="curl -sS --max-time 30"
# The batch CLI has no --iters override, so the served query must omit
# `iters=` too for the byte-identity comparison to be apples-to-apples.
Q='via=7&grid=128&kernels=3&tile=64&halo=8&threads=1&eval=0'

# --- The in-tree port of these scenarios is the source of truth. ---------
cargo test -q -p ilt-cluster --test chaos > "$OUT/cargo-test.log" 2>&1 \
    || { echo "CHAOS_FAILED: in-tree chaos tests"; tail -40 "$OUT/cargo-test.log"; exit 1; }
cargo test -q -p ilt-cluster --test wire_fuzz >> "$OUT/cargo-test.log" 2>&1 \
    || { echo "CHAOS_FAILED: in-tree wire_fuzz tests"; tail -40 "$OUT/cargo-test.log"; exit 1; }
echo "in-tree chaos + wire_fuzz tests passed"

# --- Reference: the batch CLI on the same configuration. -----------------
"$BIN" batch --threads 1 --grid 128 --kernels 3 --tile 64 --halo 8 \
    --no-eval --out "$OUT/ref" --journal "$OUT/ref.jsonl" via7 \
    > "$OUT/ref.log" 2>&1

listen_line() { sed -n 's#^.*listening on \(http://.*\)$#\1#p' "$1"; }
await_listen() { # logfile pid
    for _ in $(seq 50); do
        ADDR=$(listen_line "$1")
        [ -n "$ADDR" ] && return 0
        kill -0 "$2" 2>/dev/null || { cat "$1"; return 1; }
        sleep 0.1
    done
    return 1
}

# Replicas A and (later) C stall the wire response of whatever shard
# carries job 0 for 8 s on every attempt — they compute fine, their
# network is molasses — so that shard is a straggler wherever it lands.
# Replica B stalls *every* shard for 2 s, guaranteeing the kill below
# catches it mid-shard (forcing a heartbeat-detected re-dispatch).
STRAGGLE='read_stall@0=8000'
B_STALLS=$(seq -s, 0 8 | sed 's/[0-9]*/read_stall@&=2000/g')
rm -f "$OUT"/worker-a.log "$OUT"/worker-b.log "$OUT"/worker-c.log "$OUT"/serve.log
"$BIN" worker --addr 127.0.0.1:0 --inject "$STRAGGLE" \
    > "$OUT/worker-a.log" 2>&1 &
WA_PID=$!
"$BIN" worker --addr 127.0.0.1:0 --inject "$B_STALLS" \
    > "$OUT/worker-b.log" 2>&1 &
WB_PID=$!
disown "$WB_PID" 2>/dev/null || true # no job-control noise for the kill -9 below
await_listen "$OUT/worker-a.log" "$WA_PID" \
    || { echo "CHAOS_FAILED: worker A never listened"; exit 1; }
WA=$(listen_line "$OUT/worker-a.log"); WA=${WA#http://}
await_listen "$OUT/worker-b.log" "$WB_PID" \
    || { echo "CHAOS_FAILED: worker B never listened"; exit 1; }
WB=$(listen_line "$OUT/worker-b.log"); WB=${WB#http://}
"$BIN" serve --addr 127.0.0.1:0 --threads 1 --workers "$WA,$WB" \
    --heartbeat-ms 100 --speculate-factor 1.5 --speculate-after 1 \
    > "$OUT/serve.log" 2>&1 &
CO_PID=$!
await_listen "$OUT/serve.log" "$CO_PID" \
    || { echo "CHAOS_FAILED: coordinator never listened"; exit 1; }
BASE=$(listen_line "$OUT/serve.log")

WC_PID=""
cleanup() {
    kill "$CO_PID" "$WA_PID" "$WB_PID" $WC_PID 2>/dev/null || true
}
trap cleanup EXIT

# --- Submit, then tear the cluster apart under the job. ------------------
ACCEPT=$($CURL -X POST "$BASE/v1/jobs?$Q")
echo "$ACCEPT" | grep -q '"state":"queued"' \
    || { echo "CHAOS_FAILED: submit: $ACCEPT"; exit 1; }
JOB_ID=$(echo "$ACCEPT" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')

sleep 0.5
kill -9 "$WB_PID" 2>/dev/null || true
echo "killed worker B mid-job"
# The replacement self-registers with the coordinator and picks up queued
# shards — including the speculative copy of A's stalled straggler.
"$BIN" worker --addr 127.0.0.1:0 --inject "$STRAGGLE" --register "${BASE#http://}" \
    > "$OUT/worker-c.log" 2>&1 &
WC_PID=$!
await_listen "$OUT/worker-c.log" "$WC_PID" \
    || { echo "CHAOS_FAILED: replacement worker never listened"; exit 1; }
for _ in $(seq 50); do
    grep -q 'registered with coordinator' "$OUT/worker-c.log" && break
    sleep 0.1
done
grep -q 'registered with coordinator' "$OUT/worker-c.log" \
    || { echo "CHAOS_FAILED: replacement never registered"; cat "$OUT/worker-c.log"; exit 1; }
echo "replacement worker registered mid-job"

STATE=queued
for _ in $(seq 600); do
    DETAIL=$($CURL "$BASE/v1/jobs/$JOB_ID")
    STATE=$(echo "$DETAIL" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    [ "$STATE" = done ] && break
    [ "$STATE" = failed ] && { echo "CHAOS_FAILED: job failed: $DETAIL"; exit 1; }
    sleep 0.5
done
[ "$STATE" = done ] || { echo "CHAOS_FAILED: job stuck in $STATE"; exit 1; }
$CURL -o "$OUT/chaos_mask.pgm" "$BASE/v1/jobs/$JOB_ID/mask"

# --- The chaos invariant: the mask is still byte-identical. --------------
if ! cmp -s "$OUT/ref_via7_mask.pgm" "$OUT/chaos_mask.pgm"; then
    echo "CHAOS_MISMATCH: mask under chaos differs from 'ilt batch' output"
    exit 1
fi
echo "mask under kill/join/straggler chaos is byte-identical to the batch CLI mask"

# --- And the telemetry tells the story. ----------------------------------
$CURL "$BASE/metrics" > "$OUT/metrics.txt"
metric() { awk -v m="$1" '$1 == m { print $2 }' "$OUT/metrics.txt"; }
JOINED=$(metric ilt_members_joined_total)
[ "${JOINED:-0}" -ge 3 ] \
    || { echo "CHAOS_FAILED: members_joined=$JOINED, expected >= 3"; exit 1; }
REDISPATCHED=$(metric ilt_shards_redispatched_total)
[ "${REDISPATCHED:-0}" -ge 1 ] \
    || { echo "CHAOS_FAILED: no re-dispatch after the kill"; exit 1; }
SPECULATED=$(metric ilt_shards_speculated_total)
[ "${SPECULATED:-0}" -ge 1 ] \
    || { echo "CHAOS_FAILED: the straggler was never speculated"; exit 1; }
grep -q 'ilt_worker_breaker_state{' "$OUT/metrics.txt" \
    || { echo "CHAOS_FAILED: per-worker breaker gauge missing"; exit 1; }
MEMBERS=$($CURL "$BASE/v1/members")
echo "$MEMBERS" | grep -q "\"addr\":\"$WA\"" \
    || { echo "CHAOS_FAILED: /v1/members lost replica A: $MEMBERS"; exit 1; }
echo "chaos telemetry: joined=$JOINED redispatched=$REDISPATCHED speculated=$SPECULATED"

# --- Graceful teardown. --------------------------------------------------
$CURL -X POST "$BASE/v1/shutdown" > /dev/null
for _ in $(seq 100); do
    kill -0 "$CO_PID" 2>/dev/null || break
    sleep 0.1
done
trap - EXIT
cleanup
echo CHAOS_VERIFIED
