#!/bin/bash
# Post-bench example verification at small scale (fast smoke runs).
set -e
T=./target/release/examples
$T/binary_function_study 256 2>&1 | tail -5
$T/process_window 4 128 2>&1 | tail -8
$T/aberration_study 128 2>&1 | tail -5
$T/quickstart 2>&1 | tail -3
echo EXAMPLES_VERIFIED
