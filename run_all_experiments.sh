#!/bin/bash
# Regenerates every table and figure; used to populate EXPERIMENTS.md.
set -e
./verify_runtime.sh
./verify_resume.sh
./verify_server.sh
./verify_cluster.sh
./verify_chaos.sh
./verify_perf.sh
./verify_bench.sh
BIN=./target/release/tables
OUT=bench-out
mkdir -p $OUT
# The `tables` binary lives in crates/bench, which is excluded from the
# hermetic workspace (Criterion needs the registry). Build it on a connected
# machine with `cargo build --release --manifest-path crates/bench/Cargo.toml`.
if [ ! -x "$BIN" ]; then
    echo "SKIP: $BIN not built (crates/bench needs a connected machine); ran runtime and server verification only"
    echo ALL_EXPERIMENTS_DONE
    exit 0
fi
$BIN --table 2 --grid 512 2>&1 | tee $OUT/table2.log
$BIN --table 3 --grid 512 2>&1 | tee $OUT/table3.log
$BIN --table 4 --grid 512 2>&1 | tee $OUT/table4.log
$BIN --figure 1 --grid 512 2>&1 | tee $OUT/fig1.log
$BIN --figure 4 --grid 512 2>&1 | tee $OUT/fig4.log
$BIN --figure 5 --grid 512 2>&1 | tee $OUT/fig5.log
$BIN --figure 6 --grid 512 2>&1 | tee $OUT/fig6.log
$BIN --figure 7 --grid 512 2>&1 | tee $OUT/fig7.log
$BIN --figure 8 --grid 512 2>&1 | tee $OUT/fig8.log
echo ALL_EXPERIMENTS_DONE
