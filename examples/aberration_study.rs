//! Aberration sensitivity: how Zernike wavefront error degrades a mask
//! optimized under ideal optics — and whether re-optimizing under the
//! aberrated model recovers the loss (scanner-aware ILT).
//!
//! ```text
//! cargo run --release --example aberration_study -- [grid]
//! ```

use std::error::Error;
use std::sync::Arc;

use multilevel_ilt::optics::{Wavefront, ZernikeTerm};
use multilevel_ilt::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    let grid: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(256);

    let case = iccad2013_case(4);
    let nm = case.nm_per_px(grid);
    let target = case.rasterize(grid);

    let ideal_cfg =
        OpticsConfig { grid, nm_per_px: nm, num_kernels: 8, ..OpticsConfig::default() };
    let aberration = Wavefront::new()
        .with(ZernikeTerm::Astig0, 0.04)
        .with(ZernikeTerm::ComaX, 0.03)
        .with(ZernikeTerm::Spherical, 0.02);
    println!(
        "== aberration study on {} at {grid} px (RMS wavefront error {:.3} waves) ==",
        case.name(),
        aberration.rms_waves()
    );
    let aberrated_cfg = OpticsConfig { wavefront: aberration, ..ideal_cfg.clone() };

    let ideal_sim = Arc::new(LithoSimulator::new(ideal_cfg)?);
    let aberrated_sim = Arc::new(LithoSimulator::new(aberrated_cfg)?);

    let schedule = schedules::clamp_effective_pitch(&schedules::our_fast(), nm, 8.0);
    let schedule = schedules::clamp_scales(&schedule, grid, 64);

    let report = |sim: &LithoSimulator, mask: &Field2D| {
        let corners = sim.print_corners(mask);
        (
            squared_l2(&corners.nominal, &target, nm),
            pvband(&corners.inner, &corners.outer, nm),
        )
    };

    // Optimize under the ideal model, evaluate under both.
    let ideal_mask =
        MultiLevelIlt::new(ideal_sim.clone(), IltConfig::default()).run(&target, &schedule).mask;
    let (l2_ii, pvb_ii) = report(&ideal_sim, &ideal_mask);
    let (l2_ia, pvb_ia) = report(&aberrated_sim, &ideal_mask);
    println!("ideal-optimized mask   | ideal scanner: L2 {l2_ii:>9.0}  PVB {pvb_ii:>9.0}");
    println!("ideal-optimized mask   | aberrated    : L2 {l2_ia:>9.0}  PVB {pvb_ia:>9.0}");

    // Re-optimize under the aberrated model (scanner-aware ILT).
    let aware_mask = MultiLevelIlt::new(aberrated_sim.clone(), IltConfig::default())
        .run(&target, &schedule)
        .mask;
    let (l2_aa, pvb_aa) = report(&aberrated_sim, &aware_mask);
    println!("scanner-aware mask     | aberrated    : L2 {l2_aa:>9.0}  PVB {pvb_aa:>9.0}");

    if l2_aa < l2_ia {
        println!(
            "=> scanner-aware re-optimization cuts aberrated L2 by {:.0}% ({l2_ia:.0} -> {l2_aa:.0})",
            100.0 * (l2_ia - l2_aa) / l2_ia.max(1.0)
        );
    }
    Ok(())
}
