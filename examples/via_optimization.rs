//! Via-layer optimization (Section IV-C of the paper): run the multi-stage
//! coarse-to-fine via recipe with early exit and verify that every via
//! prints at the nominal corner.
//!
//! ```text
//! cargo run --release --example via_optimization -- [seed] [grid]
//! ```

use std::error::Error;
use std::sync::Arc;

use multilevel_ilt::geom::label_components;
use multilevel_ilt::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(0);
    let grid: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(256);

    let clip = via_pattern(seed);
    let nm_per_px = clip.nm_per_px(grid);
    let target = clip.rasterize(grid);
    let via_count = label_components(&target).len();
    println!(
        "== via clip seed {seed}: {via_count} vias on a {grid} px grid ({nm_per_px} nm/px) =="
    );

    let optics = OpticsConfig { grid, nm_per_px, num_kernels: 8, ..OpticsConfig::default() };
    let sim = Arc::new(LithoSimulator::new(optics)?);

    // Via recipe: low-res s = 8, 4, 2 then high-res, with the paper's
    // 15-iteration early-exit window ("the number we set is only an upper
    // bound of iterations").
    let schedule = schedules::clamp_effective_pitch(&schedules::via_recipe(), nm_per_px, 8.0);
    let schedule = schedules::clamp_scales(&schedule, grid, 64);
    let cfg = IltConfig { early_exit_window: Some(15), ..IltConfig::default() };

    let timer = TurnaroundTimer::start();
    let result = MultiLevelIlt::new(sim.clone(), cfg).run(&target, &schedule);
    let tat = timer.elapsed();
    println!(
        "ran {} iterations across {} stages in {:.2} s",
        result.total_iterations,
        schedule.len(),
        tat.as_secs_f64()
    );

    let corners = sim.print_corners(&result.mask);
    let checker = EpeChecker { nm_per_px, ..EpeChecker::default() };
    let report = EvalReport::evaluate(
        &target,
        &result.mask,
        &corners.nominal,
        &corners.inner,
        &corners.outer,
        &checker,
        tat,
    );
    println!("{report}");

    // Fig. 8's acceptance criterion: every via must print.
    let mut printed = 0;
    for comp in label_components(&target) {
        let hit = comp.pixels.iter().any(|&(r, c)| corners.nominal[(r, c)] >= 0.5);
        if hit {
            printed += 1;
        }
    }
    println!("vias printed at nominal: {printed}/{via_count}");

    write_pgm(&target, "via_target.pgm", 0.0, 1.0)?;
    write_pgm(&result.mask, "via_mask.pgm", 0.0, 1.0)?;
    write_pgm(&corners.nominal, "via_wafer.pgm", 0.0, 1.0)?;
    println!("wrote via_target.pgm / via_mask.pgm / via_wafer.pgm");
    Ok(())
}
