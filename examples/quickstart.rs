//! Quickstart: optimize one ICCAD-2013-style clip with multi-level ILT and
//! report the five contest metrics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::error::Error;
use std::sync::Arc;

use multilevel_ilt::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    // A 256-pixel grid at 8 nm/pixel = the contest's 2048 nm clip, reduced
    // 8x so this example finishes in seconds on a laptop. Increase `grid`
    // (and drop `nm_per_px`) to approach the paper's full resolution.
    let grid = 256;
    let case = iccad2013_case(1);
    let nm_per_px = case.nm_per_px(grid);

    println!("== multi-level ILT quickstart ==");
    println!(
        "case {:8}  clip {} nm  grid {}x{} ({} nm/px)  polygon area {} nm^2",
        case.name(),
        case.clip_nm(),
        grid,
        grid,
        nm_per_px,
        case.area_nm2()
    );

    let optics = OpticsConfig {
        grid,
        nm_per_px,
        num_kernels: 8,
        ..OpticsConfig::default()
    };
    println!(
        "building SOCS kernels (N_k = {}, P = {}) ...",
        optics.num_kernels,
        optics.kernel_size()
    );
    let sim = Arc::new(LithoSimulator::new(optics)?);
    println!(
        "kernel energy captured: nominal {:.1}%, defocused {:.1}%",
        sim.kernels(false).captured_energy() * 100.0,
        sim.kernels(true).captured_energy() * 100.0
    );

    let target = case.rasterize(grid);

    // The paper's "Our-fast" recipe; scales clamped so the effective
    // low-res pitch stays within the regime where the approximation helps
    // (<= 8 nm; the paper's s = 4 at 1 nm/px is 4 nm).
    let schedule = schedules::clamp_effective_pitch(&schedules::our_fast(), nm_per_px, 8.0);
    let schedule = schedules::clamp_scales(&schedule, grid, 64);
    println!("schedule: {schedule:?}");

    let timer = TurnaroundTimer::start();
    let ilt = MultiLevelIlt::new(sim.clone(), IltConfig::default());
    let result = ilt.run(&target, &schedule);
    let tat = timer.elapsed();

    let corners = sim.print_corners(&result.mask);
    let checker = EpeChecker { nm_per_px, ..EpeChecker::default() };
    let report = EvalReport::evaluate(
        &target,
        &result.mask,
        &corners.nominal,
        &corners.inner,
        &corners.outer,
        &checker,
        tat,
    );

    println!("iterations run: {}", result.total_iterations);
    println!("{report}");

    write_pgm(&target, "quickstart_target.pgm", 0.0, 1.0)?;
    write_pgm(&result.mask, "quickstart_mask.pgm", 0.0, 1.0)?;
    write_pgm(&corners.nominal, "quickstart_wafer.pgm", 0.0, 1.0)?;
    println!("wrote quickstart_target.pgm / quickstart_mask.pgm / quickstart_wafer.pgm");
    Ok(())
}
