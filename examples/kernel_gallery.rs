//! Inspect the derived SOCS optics: eigenvalue spectrum, captured energy,
//! and spatial kernel shapes for the nominal and defocused conditions.
//!
//! ```text
//! cargo run --release --example kernel_gallery -- [grid]
//! ```

use std::error::Error;

use multilevel_ilt::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    let grid: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(256);

    let optics = OpticsConfig {
        grid,
        nm_per_px: 2048.0 / grid as f64,
        num_kernels: 12,
        ..OpticsConfig::default()
    };
    println!(
        "== SOCS kernels: grid {grid}, P = {}, N_k = {}, source {:?} ==",
        optics.kernel_size(),
        optics.num_kernels,
        optics.source
    );

    let (nominal, defocused) = KernelSet::focus_pair(&optics);
    println!(
        "captured TCC energy: nominal {:.2}%, defocused ({} nm) {:.2}%",
        nominal.captured_energy() * 100.0,
        optics.defocus_nm,
        defocused.captured_energy() * 100.0
    );

    println!("\n  k |  weight (nominal) | weight (defocused)");
    println!("----+-------------------+-------------------");
    for k in 0..nominal.num_kernels() {
        println!(
            " {k:>2} | {:>17.6} | {:>17.6}",
            nominal.weights()[k],
            defocused.weights()[k]
        );
    }

    // Dump the dominant kernels' spatial magnitudes for inspection.
    let render = grid.min(256);
    for (label, set) in [("nominal", &nominal), ("defocus", &defocused)] {
        for k in 0..3.min(set.num_kernels()) {
            let img = set.spatial_magnitude(k, render);
            let peak = img.max();
            let path = format!("kernel_{label}_{k}.pgm");
            write_pgm(&img, &path, 0.0, peak)?;
            println!("wrote {path} (peak magnitude {peak:.3e})");
        }
    }
    Ok(())
}
