//! The Section III-C study: how the binary-function threshold `T_R`
//! decides whether SRAFs can form (Figs. 4 and 5 of the paper).
//!
//! Runs the identical low-resolution ILT twice — once with the legacy
//! `T_R = 0` sigmoid and once with the paper's `T_R = 0.5` — then counts
//! the assist features that appeared outside the main pattern and writes
//! the sigmoid/gradient curves of Fig. 5 as CSV.
//!
//! ```text
//! cargo run --release --example binary_function_study -- [grid]
//! ```

use std::error::Error;
use std::sync::Arc;

use multilevel_ilt::geom::label_components;
use multilevel_ilt::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    let grid: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(256);

    let case = iccad2013_case(1);
    let nm_per_px = case.nm_per_px(grid);
    let target = case.rasterize(grid);
    let optics = OpticsConfig { grid, nm_per_px, num_kernels: 8, ..OpticsConfig::default() };
    let sim = Arc::new(LithoSimulator::new(optics)?);
    let schedule = schedules::clamp_effective_pitch(&[Stage::low_res(4, 40)], nm_per_px, 8.0);
    let schedule = schedules::clamp_scales(&schedule, grid, 64);

    println!("== binary function study on {} ({grid} px) ==", case.name());
    let mut summaries = Vec::new();
    for (label, binary, output) in [
        ("T_R = 0.0 (legacy)", BinaryFunction::legacy_sigmoid(), BinaryFunction::legacy_sigmoid()),
        ("T_R = 0.5 (paper) ", BinaryFunction::paper_sigmoid(), BinaryFunction::output_sigmoid()),
    ] {
        let cfg = IltConfig { binary, output_binary: output, ..IltConfig::default() };
        let result = MultiLevelIlt::new(sim.clone(), cfg).run(&target, &schedule);
        let corners = sim.print_corners(&result.mask);
        let l2 = squared_l2(&corners.nominal, &target, nm_per_px);
        let pvb = pvband(&corners.inner, &corners.outer, nm_per_px);

        // SRAFs: mask components that touch no target pixel.
        let srafs = label_components(&result.mask)
            .into_iter()
            .filter(|comp| comp.pixels.iter().all(|&(r, c)| target[(r, c)] < 0.5))
            .count();
        println!("{label}: L2 {l2:>12.0}  PVB {pvb:>12.0}  SRAF components {srafs}");
        summaries.push((label, l2, pvb, srafs));

        let tag = if binary == BinaryFunction::legacy_sigmoid() { "tr0" } else { "tr05" };
        write_pgm(&result.mask, format!("binary_study_mask_{tag}.pgm"), 0.0, 1.0)?;
    }

    // The Fig. 4 claim: the improved threshold yields SRAFs and better
    // printability within the same 40-iteration budget.
    if summaries[1].3 > summaries[0].3 {
        println!("=> T_R = 0.5 produced more SRAFs, as Fig. 4 of the paper shows.");
    }

    // Fig. 5 data: sigmoid transformation and its gradient for both T_R.
    let samples = 201;
    let mut curve = Field2D::zeros(samples, 5);
    for i in 0..samples {
        let x = -2.0 + 4.0 * i as f64 / (samples - 1) as f64;
        let f0 = BinaryFunction::legacy_sigmoid();
        let f5 = BinaryFunction::paper_sigmoid();
        curve[(i, 0)] = x;
        curve[(i, 1)] = f0.value(x);
        curve[(i, 2)] = f5.value(x);
        curve[(i, 3)] = f0.derivative(x);
        curve[(i, 4)] = f5.derivative(x);
    }
    write_csv(&curve, "binary_function_curves.csv")?;
    println!("wrote binary_function_curves.csv (x, sig_tr0, sig_tr05, grad_tr0, grad_tr05)");
    Ok(())
}
