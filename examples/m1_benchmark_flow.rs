//! Full M1 flow: run multi-level ILT ("Our-exact") against the
//! conventional single-level baseline on an ICCAD 2013 case and compare
//! every metric — a miniature of the paper's Table II comparison.
//!
//! ```text
//! cargo run --release --example m1_benchmark_flow -- [case_id] [grid]
//! ```

use std::error::Error;
use std::sync::Arc;

use multilevel_ilt::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let case_id: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(4);
    let grid: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(256);

    let case = iccad2013_case(case_id);
    let nm_per_px = case.nm_per_px(grid);
    let target = case.rasterize(grid);

    println!("== {} at {grid} px ({nm_per_px} nm/px) ==", case.name());
    let optics = OpticsConfig { grid, nm_per_px, num_kernels: 8, ..OpticsConfig::default() };
    let sim = Arc::new(LithoSimulator::new(optics)?);
    let checker = EpeChecker { nm_per_px, ..EpeChecker::default() };

    let evaluate = |mask: &Field2D, tat: std::time::Duration| -> EvalReport {
        let corners = sim.print_corners(mask);
        EvalReport::evaluate(
            &target,
            mask,
            &corners.nominal,
            &corners.inner,
            &corners.outer,
            &checker,
            tat,
        )
    };

    // How bad is it with no correction at all?
    let raw = evaluate(&target, std::time::Duration::ZERO);
    println!("target-as-mask   : {raw}");

    // Conventional single-level pixel ILT (T_R = 0, no smoothing).
    let timer = TurnaroundTimer::start();
    let conventional = ConventionalIlt::new(sim.clone()).run(&target, 30);
    let conv_report = evaluate(&conventional.mask, timer.elapsed());
    println!("conventional ILT : {conv_report}");

    // The paper's "Our-exact" schedule, clamped so the effective low-res
    // pitch stays <= 8 nm on this grid.
    let schedule = schedules::clamp_effective_pitch(&schedules::our_exact(), nm_per_px, 8.0);
    let schedule = schedules::clamp_scales(&schedule, grid, 64);
    let timer = TurnaroundTimer::start();
    let ours = MultiLevelIlt::new(sim.clone(), IltConfig::default()).run(&target, &schedule);
    let ours_report = evaluate(&ours.mask, timer.elapsed());
    println!("our-exact        : {ours_report}");

    let l2_gain = 100.0 * (1.0 - ours_report.l2_nm2 / conv_report.l2_nm2.max(1.0));
    let pvb_gain = 100.0 * (1.0 - ours_report.pvband_nm2 / conv_report.pvband_nm2.max(1.0));
    println!("vs conventional  : L2 {l2_gain:+.1}%  PVB {pvb_gain:+.1}%");

    write_pgm(&ours.mask, format!("{}_ours_mask.pgm", case.name()), 0.0, 1.0)?;
    write_pgm(
        &conventional.mask,
        format!("{}_conventional_mask.pgm", case.name()),
        0.0,
        1.0,
    )?;
    println!("wrote {0}_ours_mask.pgm / {0}_conventional_mask.pgm", case.name());
    Ok(())
}
