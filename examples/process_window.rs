//! Process-window comparison: does multi-level ILT widen the usable
//! (defocus, dose) window relative to printing the raw target?
//!
//! ```text
//! cargo run --release --example process_window -- [case_id] [grid]
//! ```

use std::error::Error;
use std::sync::Arc;

use multilevel_ilt::optics::{sweep_process_window, ProcessWindowSpec};
use multilevel_ilt::prelude::*;

fn print_window(label: &str, pw: &multilevel_ilt::optics::ProcessWindow) {
    println!("\n{label}: yield {:.0}%", pw.yield_fraction() * 100.0);
    print!("  defocus\\dose |");
    for d in &pw.dose {
        print!(" {d:>5.2} |");
    }
    println!();
    for (fi, f) in pw.defocus_nm.iter().enumerate() {
        print!("  {f:>8} nm  |");
        for di in 0..pw.dose.len() {
            print!("  {}   |", if pw.passes[fi][di] { "ok" } else { " x" });
        }
        if let Some((lo, hi)) = pw.dose_latitude(fi) {
            print!("  latitude {lo:.2}..{hi:.2}");
        }
        println!();
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let case_id: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(4);
    let grid: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(256);

    let case = iccad2013_case(case_id);
    let nm = case.nm_per_px(grid);
    let target = case.rasterize(grid);
    let optics = OpticsConfig { grid, nm_per_px: nm, num_kernels: 8, ..OpticsConfig::default() };
    println!("== process window of {} at {grid} px ==", case.name());

    let sim = Arc::new(LithoSimulator::new(optics.clone())?);
    let schedule = schedules::clamp_effective_pitch(&schedules::our_exact(), nm, 8.0);
    let schedule = schedules::clamp_scales(&schedule, grid, 64);
    let result = MultiLevelIlt::new(sim, IltConfig::default()).run(&target, &schedule);

    let spec = ProcessWindowSpec::default();
    let raw = sweep_process_window(&optics, &target, &target, &spec);
    let ours = sweep_process_window(&optics, &result.mask, &target, &spec);
    print_window("raw target as mask", &raw);
    print_window("multi-level ILT mask", &ours);

    if ours.pass_count() >= raw.pass_count() {
        println!(
            "\n=> ILT holds or widens the window: {} vs {} passing conditions",
            ours.pass_count(),
            raw.pass_count()
        );
    } else {
        println!(
            "\n=> window shrank ({} vs {}): inspect the error map",
            ours.pass_count(),
            raw.pass_count()
        );
    }
    Ok(())
}
