#!/bin/bash
# Verifies the batch runtime end to end on two synthetic M1 clips:
#   1. `ilt batch` completes with zero failed jobs (the CLI exits non-zero
#      if any job exhausts its retries, and `set -e` propagates that);
#   2. the run journal is deterministic: with --no-timing the --threads 1
#      and --threads 4 journals agree byte-for-byte, job and summary lines
#      alike — no field stripping required;
#   3. the stitched output masks are bit-identical across thread counts.
# The 4-thread run's speedup is reported from its console log (the
# no-timing journal deliberately carries no wall-clock data).
set -e
BIN=./target/release/ilt
OUT=bench-out/runtime
mkdir -p "$OUT"

run() {
    local threads=$1
    "$BIN" batch --threads "$threads" --grid 256 --tile 128 --halo 16 --kernels 4 \
        --out "$OUT/t$threads" --journal "$OUT/t$threads.jsonl" --no-timing \
        case1 case2 > "$OUT/t$threads.log" 2>&1
}

run 1
run 4

if ! cmp -s "$OUT/t1.jsonl" "$OUT/t4.jsonl"; then
    echo "RUNTIME_DETERMINISM_MISMATCH: journals differ between 1 and 4 threads"
    diff "$OUT/t1.jsonl" "$OUT/t4.jsonl" | head -20
    exit 1
fi

for case in case1 case2; do
    if ! cmp -s "$OUT/t1_${case}_mask.pgm" "$OUT/t4_${case}_mask.pgm"; then
        echo "RUNTIME_DETERMINISM_MISMATCH: $case mask differs between 1 and 4 threads"
        exit 1
    fi
done

grep -E 'pool:|speedup' "$OUT/t4.log" || true
echo RUNTIME_VERIFIED
