#!/bin/bash
# Verifies the batch runtime end to end on two synthetic M1 clips:
#   1. `ilt batch` completes with zero failed jobs (the CLI exits non-zero
#      if any job exhausts its retries, and `set -e` propagates that);
#   2. the run journal is deterministic: --threads 1 and --threads 4 agree
#      byte-for-byte once the trailing `*_ms` timing fields are stripped;
#   3. the stitched output masks are bit-identical across thread counts.
# The 4-thread run's speedup is reported from its journal summary line.
set -e
BIN=./target/release/ilt
OUT=bench-out/runtime
mkdir -p "$OUT"

run() {
    local threads=$1
    "$BIN" batch --threads "$threads" --grid 256 --tile 128 --halo 16 --kernels 4 \
        --out "$OUT/t$threads" --journal "$OUT/t$threads.jsonl" \
        case1 case2 > "$OUT/t$threads.log" 2>&1
}

run 1
run 4

# Journal lines put every nondeterministic field (sim_ms, optimize_ms,
# evaluate_ms, wall_ms) at the tail, so one sed strips them all; the summary
# line aggregates wall-times and is dropped entirely.
strip_timings() {
    grep -v '"kind":"summary"' "$1" | sed 's/,"sim_ms":.*}$/}/'
}
strip_timings "$OUT/t1.jsonl" > "$OUT/t1.det"
strip_timings "$OUT/t4.jsonl" > "$OUT/t4.det"
if ! cmp -s "$OUT/t1.det" "$OUT/t4.det"; then
    echo "RUNTIME_DETERMINISM_MISMATCH: journals differ between 1 and 4 threads"
    diff "$OUT/t1.det" "$OUT/t4.det" | head -20
    exit 1
fi

for case in case1 case2; do
    if ! cmp -s "$OUT/t1_${case}_mask.pgm" "$OUT/t4_${case}_mask.pgm"; then
        echo "RUNTIME_DETERMINISM_MISMATCH: $case mask differs between 1 and 4 threads"
        exit 1
    fi
done

grep '"kind":"summary"' "$OUT/t4.jsonl"
echo RUNTIME_VERIFIED
