#!/bin/bash
# Smoke-verifies sharded cluster execution end to end, loopback-only and
# offline. The deterministic coverage — 1/2/3-replica shard-boundary
# byte-identity, dead-replica re-dispatch, cancellation fan-out, and the
# injected process-crash chaos run — lives in-tree
# (crates/ilt-cluster/tests/cluster.rs, tests/cluster_e2e.rs); this script
# is a thin wrapper that runs those tests first and then exercises the
# *release binary* through real curl:
#   1. two `ilt worker` replicas and an `ilt serve --workers` coordinator
#      start on ephemeral loopback ports;
#   2. a sharded job produces a mask byte-identical to the same
#      configuration run through `ilt batch`;
#   3. a second run with worker A armed with `--inject crash@0` (process
#      abort mid-shard) still finishes byte-identically, the re-dispatch
#      counter moves, and the heartbeat monitor reports one live replica.
set -e
BIN=./target/release/ilt
OUT=bench-out/cluster
mkdir -p "$OUT"
CURL="curl -sS --max-time 30"
# The batch CLI has no --iters override, so the served query must omit
# `iters=` too for the byte-identity comparison to be apples-to-apples.
Q='via=7&grid=128&kernels=3&tile=64&halo=8&threads=1&eval=0'

# --- The in-tree port of these scenarios is the source of truth. ---------
cargo test -q -p ilt-cluster --test cluster > "$OUT/cargo-test.log" 2>&1 \
    || { echo "CLUSTER_FAILED: in-tree ilt-cluster tests"; tail -40 "$OUT/cargo-test.log"; exit 1; }
cargo test -q --test cluster_e2e >> "$OUT/cargo-test.log" 2>&1 \
    || { echo "CLUSTER_FAILED: in-tree cluster_e2e chaos test"; tail -40 "$OUT/cargo-test.log"; exit 1; }
echo "in-tree cluster tests passed"

# --- Reference: the batch CLI on the same configuration. -----------------
"$BIN" batch --threads 1 --grid 128 --kernels 3 --tile 64 --halo 8 \
    --no-eval --out "$OUT/ref" --journal "$OUT/ref.jsonl" via7 \
    > "$OUT/ref.log" 2>&1

listen_line() { sed -n 's#^.*listening on \(http://.*\)$#\1#p' "$1"; }
await_listen() { # logfile pid
    for _ in $(seq 50); do
        ADDR=$(listen_line "$1")
        [ -n "$ADDR" ] && return 0
        kill -0 "$2" 2>/dev/null || { cat "$1"; return 1; }
        sleep 0.1
    done
    return 1
}

start_cluster() { # worker_a_extra_args...
    rm -f "$OUT"/worker-a.log "$OUT"/worker-b.log "$OUT"/serve.log
    rm -rf "$OUT/state-a"
    # shellcheck disable=SC2086
    "$BIN" worker --addr 127.0.0.1:0 --state-dir "$OUT/state-a" "$@" \
        > "$OUT/worker-a.log" 2>&1 &
    WA_PID=$!
    "$BIN" worker --addr 127.0.0.1:0 > "$OUT/worker-b.log" 2>&1 &
    WB_PID=$!
    await_listen "$OUT/worker-a.log" "$WA_PID" \
        || { echo "CLUSTER_FAILED: worker A never listened"; exit 1; }
    WA=$(listen_line "$OUT/worker-a.log"); WA=${WA#http://}
    await_listen "$OUT/worker-b.log" "$WB_PID" \
        || { echo "CLUSTER_FAILED: worker B never listened"; exit 1; }
    WB=$(listen_line "$OUT/worker-b.log"); WB=${WB#http://}
    "$BIN" serve --addr 127.0.0.1:0 --threads 1 --workers "$WA,$WB" \
        --heartbeat-ms 100 > "$OUT/serve.log" 2>&1 &
    CO_PID=$!
    await_listen "$OUT/serve.log" "$CO_PID" \
        || { echo "CLUSTER_FAILED: coordinator never listened"; exit 1; }
    BASE=$(listen_line "$OUT/serve.log")
    grep -q 'coordinating 2 cluster replica' "$OUT/serve.log" \
        || { echo "CLUSTER_FAILED: no coordinator banner"; cat "$OUT/serve.log"; exit 1; }
}

cleanup() {
    kill "$CO_PID" "$WA_PID" "$WB_PID" 2>/dev/null || true
}
trap cleanup EXIT

run_job_and_fetch_mask() { # output_mask_path
    ACCEPT=$($CURL -X POST "$BASE/v1/jobs?$Q")
    echo "$ACCEPT" | grep -q '"state":"queued"' \
        || { echo "CLUSTER_FAILED: submit: $ACCEPT"; exit 1; }
    JOB_ID=$(echo "$ACCEPT" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')
    STATE=queued
    for _ in $(seq 600); do
        DETAIL=$($CURL "$BASE/v1/jobs/$JOB_ID")
        STATE=$(echo "$DETAIL" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
        [ "$STATE" = done ] && break
        [ "$STATE" = failed ] && { echo "CLUSTER_FAILED: job failed: $DETAIL"; exit 1; }
        sleep 0.5
    done
    [ "$STATE" = done ] || { echo "CLUSTER_FAILED: job stuck in $STATE"; exit 1; }
    $CURL -o "$1" "$BASE/v1/jobs/$JOB_ID/mask"
}

# --- Scenario 1: healthy two-replica cluster, byte-identical mask. -------
start_cluster
run_job_and_fetch_mask "$OUT/cluster_mask.pgm"
if ! cmp -s "$OUT/ref_via7_mask.pgm" "$OUT/cluster_mask.pgm"; then
    echo "CLUSTER_MISMATCH: sharded mask differs from 'ilt batch' output"
    exit 1
fi
echo "sharded mask is byte-identical to the batch CLI mask"
cleanup

# --- Scenario 2: worker A crashes mid-job; shard re-dispatches cleanly. --
start_cluster --inject crash@0
run_job_and_fetch_mask "$OUT/cluster_mask_crash.pgm"
if ! cmp -s "$OUT/ref_via7_mask.pgm" "$OUT/cluster_mask_crash.pgm"; then
    echo "CLUSTER_MISMATCH: mask after worker crash differs from reference"
    exit 1
fi
# The injected abort must really have killed worker A (non-zero exit).
set +e; wait "$WA_PID"; WA_STATUS=$?; set -e
[ "$WA_STATUS" -ne 0 ] \
    || { echo "CLUSTER_FAILED: worker A survived its injected crash"; exit 1; }
$CURL "$BASE/metrics" > "$OUT/metrics.txt"
metric() { awk -v m="$1" '$1 == m { print $2 }' "$OUT/metrics.txt"; }
REDISPATCHED=$(metric ilt_shards_redispatched_total)
[ "${REDISPATCHED:-0}" -ge 1 ] \
    || { echo "CLUSTER_FAILED: no re-dispatch recorded after the crash"; exit 1; }
ALIVE=$(metric ilt_workers_alive)
[ "${ALIVE:-2}" = 1 ] \
    || { echo "CLUSTER_FAILED: workers_alive=$ALIVE after one crash"; exit 1; }
grep -q 'ilt_shard_latency_ms_bucket{stage="shard",le="+Inf"}' "$OUT/metrics.txt" \
    || { echo "CLUSTER_FAILED: shard latency histogram missing"; exit 1; }
echo "crash chaos: mask byte-identical, redispatched=$REDISPATCHED, workers_alive=$ALIVE"

# --- Graceful teardown. --------------------------------------------------
$CURL -X POST "$BASE/v1/shutdown" > /dev/null
for _ in $(seq 100); do
    kill -0 "$CO_PID" 2>/dev/null || break
    sleep 0.1
done
$CURL -X POST "http://$WB/v1/shutdown" > /dev/null 2>&1 || true
trap - EXIT
cleanup
echo CLUSTER_VERIFIED
