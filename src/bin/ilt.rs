//! `ilt` — command-line front end for the multi-level ILT stack.
//!
//! ```text
//! ilt run      --case 1 [--grid 512] [--schedule fast|exact|via] [--out prefix]
//! ilt run      --via 3  [--grid 256] ...
//! ilt run      --target design.pgm --clip-nm 2048 ...
//! ilt batch    [--threads 4] [--tile 512] [--halo 64] [--seam crop|blend:K]
//!              [--journal run.jsonl] [--no-timing] [--retries 1]
//!              [--timeout-s 0] [--no-eval] [--checkpoint] [--resume]
//!              [--inject SPEC[,SPEC...]] [--no-degrade]
//!              case1 case2 via3 design.pgm ...
//! ilt serve    [--addr 127.0.0.1:8080] [--threads 2] [--queue 16]
//!              [--journal served.jsonl] [--retries 1] [--timeout-s 0]
//!              [--cache 16] [--state-dir DIR] [--result-ttl-s 0]
//!              [--max-masks 0] [--quota-inflight 0] [--quota-queued 0]
//!              [--allow-inject] [--compact-bytes 0]
//!              [--keep-alive 32] [--idle-timeout-s 5]
//!              [--workers host:port,host:port] [--heartbeat-ms 500]
//!              [--heartbeat-failures 3] [--cancel-grace-s 10]
//! ilt worker   [--addr 127.0.0.1:8080] [--threads 4] [--state-dir DIR]
//!              [--retries 1] [--timeout-s 0] [--inject SPEC[,SPEC...]]
//! ilt evaluate --target design.pgm --mask mask.pgm [--grid 512] [--clip-nm 2048]
//! ilt fracture --mask mask.pgm
//! ilt kernels  [--grid 512] [--kernels 10]
//! ilt bench    <list|run|diff> [NAME_GLOB ...] [--tag TAG] [--name GLOB]
//!              [--smoke] [--reps 5] [--out bench-out/perf] [--baselines .]
//!              [--threshold F]
//! ```
//!
//! Targets may come from the built-in benchmark generators (`--case`,
//! `--via`) or from a PGM file (`--target`); masks are written/read as
//! binary PGM so the tool round-trips with itself. `batch` takes its cases
//! as positional arguments (`caseN`, `viaN`, or a PGM path), splits targets
//! wider than `--tile` into overlapping tiles, runs everything on a worker
//! pool with a shared simulator cache, and journals one JSON line per job;
//! it exits non-zero if any job exhausts its retries. `--no-timing` drops
//! the wall-clock fields from the journal so runs diff byte-for-byte.
//! `--checkpoint` persists each finished tile mask durably under
//! `<journal>.ckpt/` (atomic write + fsynced write-ahead log), and
//! `--resume` reruns the same command after a crash, restoring every tile
//! the WAL can vouch for and recomputing only the rest; the resumed
//! journal and masks are byte-identical to an uninterrupted run.
//! `--inject` drives the deterministic fault plan (`panic@J[:A[-B]]`,
//! `delay@J:A=MS`, `build@J:A`, `nan@J:A`, `ckpt@J`, `crash@J`) for chaos
//! testing, and `--no-degrade` disables the low-resolution fallback that
//! otherwise rescues tiles which exhaust their retry budget.
//! `serve` turns the same engine into a long-lived HTTP job service (see
//! the `ilt-server` crate docs for the API); `--state-dir` makes job state
//! survive restarts, and `--result-ttl-s`/`--max-masks` bound how long
//! finished masks stay resident before eviction (with a state directory,
//! an evicted mask is re-hydrated from disk on demand instead of
//! answering 410). Requests may carry `X-Ilt-Client` and `X-Ilt-Priority`
//! (`high|normal|low`) headers; the queue serves classes by weighted
//! round-robin and `--quota-inflight`/`--quota-queued` cap what one
//! client may hold (0 = unlimited, breaches answer 429). `--compact-bytes` sets
//! the state-log size past which live jobs are snapshotted and the log
//! truncated (0 = never compact); `--keep-alive` caps requests served per
//! connection and `--idle-timeout-s` bounds how long a persistent
//! connection may sit idle. With `--workers` (or `--cluster` for an
//! initially empty membership), `serve` becomes a cluster coordinator:
//! each job's tile plan is sharded across the live `ilt worker` replicas
//! and reassembled centrally (byte-identical to a local run). Membership
//! is dynamic — `POST /v1/members` joins, drains, or removes replicas at
//! runtime — and supervision is self-healing: `--heartbeat-ms`/
//! `--heartbeat-failures` tune worker-death detection (dead workers get
//! their shards re-dispatched), `--breaker-failures`/`--breaker-base-ms`/
//! `--breaker-cap-ms` tune the per-worker circuit breaker that
//! quarantines flaky-but-alive replicas, `--speculate-factor`/
//! `--speculate-after` govern straggler speculation (a shard running
//! longer than factor × the job's median latency races a second replica;
//! first result wins, and both results must agree bit-exactly),
//! `--max-inflight` caps concurrent shards per worker, and
//! `--max-shard-attempts` bounds dispatch attempts before a shard is
//! declared lost. `--cancel-grace-s` bounds how long a job cancellation
//! waits for worker acknowledgements. `worker` starts one replica;
//! `--register HOST:PORT` makes it announce itself to that coordinator
//! after binding (and deregister on shutdown); its `--inject` fault plan
//! is deliberately local (never forwarded by a coordinator) and now
//! includes transport faults (`conn_refuse@J[:A]`, `read_stall@J[:A]=MS`,
//! `torn_response@J[:A]`, `garble@J[:A]`) that damage shard responses on
//! the wire while `/healthz` stays green; `--state-dir` keeps per-shard
//! checkpoint WALs so a restarted worker resumes a re-dispatched shard
//! instead of recomputing it. `bench` is the
//! hermetic, std-only performance barometer (the `ilt-perf` crate): `list`
//! shows the workload registry (FFT, simulator, autodiff, runtime, server,
//! cluster families), `run` measures the selected workloads and writes one
//! `BENCH_<name>.json` (schema `ilt-bench/v2`) per workload, and `diff`
//! compares a fresh run against the checked-in baselines, exiting non-zero
//! past each workload's regression threshold — the standing perf gate,
//! with no python or Criterion anywhere.

use std::error::Error;
use std::sync::Arc;

use multilevel_ilt::geom::fracture;
use multilevel_ilt::prelude::*;

struct Cli {
    grid: usize,
    kernels: usize,
    clip_nm: f64,
    schedule: String,
    case: Option<usize>,
    via: Option<u64>,
    target: Option<String>,
    mask: Option<String>,
    out: String,
    max_eff_nm: f64,
    threads: usize,
    tile: usize,
    halo: usize,
    seam: String,
    journal: Option<String>,
    no_timing: bool,
    retries: u32,
    timeout_s: f64,
    no_eval: bool,
    checkpoint: bool,
    resume: bool,
    inject: Option<String>,
    no_degrade: bool,
    addr: String,
    queue: usize,
    cache: usize,
    state_dir: Option<String>,
    result_ttl_s: f64,
    max_masks: usize,
    quota_inflight: usize,
    quota_queued: usize,
    allow_inject: bool,
    compact_bytes: u64,
    keep_alive: usize,
    idle_timeout_s: f64,
    workers: Option<String>,
    cluster: bool,
    heartbeat_ms: u64,
    heartbeat_failures: u32,
    cancel_grace_s: f64,
    max_inflight: u32,
    max_shard_attempts: u32,
    breaker_failures: u32,
    breaker_base_ms: u64,
    breaker_cap_ms: u64,
    speculate_factor: f64,
    speculate_after: usize,
    register: Option<String>,
    reps: usize,
    tags: Vec<String>,
    names: Vec<String>,
    baselines: String,
    smoke: bool,
    threshold: Option<f64>,
    out_flag: Option<String>,
    cases: Vec<String>,
}

impl Cli {
    fn parse(mut args: impl Iterator<Item = String>) -> Result<(String, Cli), Box<dyn Error>> {
        let command =
            args.next().ok_or("usage: ilt <run|batch|serve|worker|evaluate|fracture|kernels|bench> ...")?;
        let mut cli = Cli {
            grid: 512,
            kernels: 10,
            clip_nm: 2048.0,
            schedule: "fast".into(),
            case: None,
            via: None,
            target: None,
            mask: None,
            out: "ilt".into(),
            max_eff_nm: 8.0,
            threads: 1,
            tile: 512,
            halo: 64,
            seam: "crop".into(),
            journal: None,
            no_timing: false,
            retries: 1,
            timeout_s: 0.0,
            no_eval: false,
            checkpoint: false,
            resume: false,
            inject: None,
            no_degrade: false,
            addr: "127.0.0.1:8080".into(),
            queue: 16,
            cache: 16,
            state_dir: None,
            result_ttl_s: 0.0,
            max_masks: 0,
            quota_inflight: 0,
            quota_queued: 0,
            allow_inject: false,
            compact_bytes: 0,
            keep_alive: 32,
            idle_timeout_s: 5.0,
            workers: None,
            cluster: false,
            heartbeat_ms: 500,
            heartbeat_failures: 3,
            cancel_grace_s: 10.0,
            max_inflight: 2,
            max_shard_attempts: 0,
            breaker_failures: 3,
            breaker_base_ms: 500,
            breaker_cap_ms: 30_000,
            speculate_factor: 3.0,
            speculate_after: 3,
            register: None,
            reps: 5,
            tags: Vec::new(),
            names: Vec::new(),
            baselines: ".".into(),
            smoke: false,
            threshold: None,
            out_flag: None,
            cases: Vec::new(),
        };
        while let Some(flag) = args.next() {
            let mut value = || args.next().ok_or_else(|| format!("{flag} needs a value"));
            match flag.as_str() {
                "--grid" => cli.grid = value()?.parse()?,
                "--kernels" => cli.kernels = value()?.parse()?,
                "--clip-nm" => cli.clip_nm = value()?.parse()?,
                "--schedule" => cli.schedule = value()?,
                "--case" => cli.case = Some(value()?.parse()?),
                "--via" => cli.via = Some(value()?.parse()?),
                "--target" => cli.target = Some(value()?),
                "--mask" => cli.mask = Some(value()?),
                "--out" => {
                    cli.out = value()?;
                    cli.out_flag = Some(cli.out.clone());
                }
                "--max-eff-nm" => cli.max_eff_nm = value()?.parse()?,
                "--threads" => cli.threads = value()?.parse()?,
                "--tile" => cli.tile = value()?.parse()?,
                "--halo" => cli.halo = value()?.parse()?,
                "--seam" => cli.seam = value()?,
                "--journal" => cli.journal = Some(value()?),
                "--no-timing" => cli.no_timing = true,
                "--retries" => cli.retries = value()?.parse()?,
                "--timeout-s" => cli.timeout_s = value()?.parse()?,
                "--no-eval" => cli.no_eval = true,
                "--checkpoint" => cli.checkpoint = true,
                "--resume" => cli.resume = true,
                "--inject" => cli.inject = Some(value()?),
                "--no-degrade" => cli.no_degrade = true,
                "--addr" => cli.addr = value()?,
                "--queue" => cli.queue = value()?.parse()?,
                "--cache" => cli.cache = value()?.parse()?,
                "--state-dir" => cli.state_dir = Some(value()?),
                "--result-ttl-s" => cli.result_ttl_s = value()?.parse()?,
                "--max-masks" => cli.max_masks = value()?.parse()?,
                "--quota-inflight" => cli.quota_inflight = value()?.parse()?,
                "--quota-queued" => cli.quota_queued = value()?.parse()?,
                "--allow-inject" => cli.allow_inject = true,
                "--compact-bytes" => cli.compact_bytes = value()?.parse()?,
                "--keep-alive" => cli.keep_alive = value()?.parse()?,
                "--idle-timeout-s" => cli.idle_timeout_s = value()?.parse()?,
                "--workers" => cli.workers = Some(value()?),
                "--cluster" => cli.cluster = true,
                "--heartbeat-ms" => cli.heartbeat_ms = value()?.parse()?,
                "--heartbeat-failures" => cli.heartbeat_failures = value()?.parse()?,
                "--cancel-grace-s" => cli.cancel_grace_s = value()?.parse()?,
                "--max-inflight" => cli.max_inflight = value()?.parse()?,
                "--max-shard-attempts" => cli.max_shard_attempts = value()?.parse()?,
                "--breaker-failures" => cli.breaker_failures = value()?.parse()?,
                "--breaker-base-ms" => cli.breaker_base_ms = value()?.parse()?,
                "--breaker-cap-ms" => cli.breaker_cap_ms = value()?.parse()?,
                "--speculate-factor" => cli.speculate_factor = value()?.parse()?,
                "--speculate-after" => cli.speculate_after = value()?.parse()?,
                "--register" => cli.register = Some(value()?),
                "--reps" => cli.reps = value()?.parse()?,
                "--tag" => cli.tags.push(value()?),
                "--name" => cli.names.push(value()?),
                "--baselines" => cli.baselines = value()?,
                "--smoke" => cli.smoke = true,
                "--threshold" => cli.threshold = Some(value()?.parse()?),
                other if flag.starts_with("--") => {
                    return Err(format!("unknown flag {other}").into())
                }
                positional => cli.cases.push(positional.to_string()),
            }
        }
        Ok((command, cli))
    }

    fn load_target(&self) -> Result<(Field2D, f64), Box<dyn Error>> {
        if let Some(id) = self.case {
            if !(1..=20).contains(&id) {
                return Err(format!("case ids are 1..=10 (ICCAD) or 11..=20 (extended), got {id}").into());
            }
            let layout = if id <= 10 {
                iccad2013_case(id)
            } else {
                extended_case(id)
            };
            return Ok((layout.rasterize(self.grid), layout.nm_per_px(self.grid)));
        }
        if let Some(seed) = self.via {
            let layout = via_pattern(seed);
            return Ok((layout.rasterize(self.grid), layout.nm_per_px(self.grid)));
        }
        if let Some(path) = &self.target {
            let img = multilevel_ilt::field::read_pgm(path)?.threshold(0.5);
            let (rows, cols) = img.shape();
            if rows != cols || !rows.is_power_of_two() {
                return Err(format!("target must be square power-of-two, got {rows}x{cols}").into());
            }
            let nm = self.clip_nm / rows as f64;
            return Ok((img, nm));
        }
        Err("pass one of --case N, --via SEED or --target file.pgm".into())
    }

    fn simulator(&self, nm_per_px: f64) -> Result<Arc<LithoSimulator>, Box<dyn Error>> {
        let cfg = OpticsConfig {
            grid: self.grid,
            nm_per_px,
            num_kernels: self.kernels,
            ..OpticsConfig::default()
        };
        Ok(Arc::new(LithoSimulator::new(cfg)?))
    }

    fn schedule(&self, nm_per_px: f64) -> Result<Vec<Stage>, Box<dyn Error>> {
        let base = match self.schedule.as_str() {
            "fast" => schedules::our_fast(),
            "exact" => schedules::our_exact(),
            "via" => schedules::via_recipe(),
            other => return Err(format!("unknown schedule {other} (fast|exact|via)").into()),
        };
        let s = schedules::clamp_effective_pitch(&base, nm_per_px, self.max_eff_nm);
        Ok(schedules::clamp_scales(&s, self.grid, 32))
    }
}

fn evaluate_and_print(
    sim: &LithoSimulator,
    target: &Field2D,
    mask: &Field2D,
    tat: std::time::Duration,
) {
    let nm = sim.config().nm_per_px;
    let corners = sim.print_corners(mask);
    let checker = EpeChecker { nm_per_px: nm, ..EpeChecker::default() };
    let report = EvalReport::evaluate(
        target,
        mask,
        &corners.nominal,
        &corners.inner,
        &corners.outer,
        &checker,
        tat,
    );
    println!("{report}");
}

fn cmd_run(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let (target, nm) = cli.load_target()?;
    let sim = cli.simulator(nm)?;
    let schedule = cli.schedule(nm)?;
    println!(
        "optimizing {} px clip at {nm} nm/px with schedule {:?}",
        cli.grid, schedule
    );
    let timer = TurnaroundTimer::start();
    let cfg = IltConfig { early_exit_window: Some(15), ..IltConfig::default() };
    let result = MultiLevelIlt::new(sim.clone(), cfg).run(&target, &schedule);
    let tat = timer.elapsed();
    println!("ran {} iterations in {:.2} s", result.total_iterations, tat.as_secs_f64());
    evaluate_and_print(&sim, &target, &result.mask, tat);

    let mask_path = format!("{}_mask.pgm", cli.out);
    let wafer_path = format!("{}_wafer.pgm", cli.out);
    write_pgm(&result.mask, &mask_path, 0.0, 1.0)?;
    write_pgm(
        &sim.print(&result.mask, ProcessCondition::nominal()),
        &wafer_path,
        0.0,
        1.0,
    )?;
    println!("wrote {mask_path} and {wafer_path}");
    Ok(())
}

/// Resolves one positional batch case: `caseN`, `viaN`, or a PGM path.
fn load_batch_case(spec: &str, cli: &Cli) -> Result<BatchCase, Box<dyn Error>> {
    if let Some(id) = spec.strip_prefix("case").and_then(|s| s.parse::<usize>().ok()) {
        if !(1..=20).contains(&id) {
            return Err(format!("{spec}: case ids are 1..=10 (ICCAD) or 11..=20 (extended)").into());
        }
        let layout = if id <= 10 { iccad2013_case(id) } else { extended_case(id) };
        return Ok(BatchCase {
            name: spec.to_string(),
            target: layout.rasterize(cli.grid),
            nm_per_px: layout.nm_per_px(cli.grid),
        });
    }
    if let Some(seed) = spec.strip_prefix("via").and_then(|s| s.parse::<u64>().ok()) {
        let layout = via_pattern(seed);
        return Ok(BatchCase {
            name: spec.to_string(),
            target: layout.rasterize(cli.grid),
            nm_per_px: layout.nm_per_px(cli.grid),
        });
    }
    if spec.ends_with(".pgm") {
        let img = multilevel_ilt::field::read_pgm(spec)
            .map_err(|e| format!("cannot read {spec}: {e}"))?
            .threshold(0.5);
        let (rows, cols) = img.shape();
        if rows != cols || !rows.is_power_of_two() {
            return Err(format!("{spec}: target must be square power-of-two, got {rows}x{cols}").into());
        }
        let name = std::path::Path::new(spec)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| spec.to_string());
        return Ok(BatchCase { name, target: img, nm_per_px: cli.clip_nm / rows as f64 });
    }
    Err(format!("cannot parse case {spec}: expected caseN, viaN or a .pgm path").into())
}

fn cmd_batch(cli: &Cli) -> Result<(), Box<dyn Error>> {
    if cli.cases.is_empty() {
        return Err("batch needs at least one case (caseN, viaN or file.pgm)".into());
    }
    let cases = cli
        .cases
        .iter()
        .map(|spec| load_batch_case(spec, cli))
        .collect::<Result<Vec<_>, _>>()?;
    let seam = match cli.seam.as_str() {
        "crop" => SeamPolicy::Crop,
        blend => match blend.strip_prefix("blend:").and_then(|b| b.parse::<usize>().ok()) {
            Some(band) => SeamPolicy::Blend { band },
            None => return Err(format!("bad --seam {blend} (crop or blend:K)").into()),
        },
    };
    let base = match cli.schedule.as_str() {
        "fast" => schedules::our_fast(),
        "exact" => schedules::our_exact(),
        "via" => schedules::via_recipe(),
        other => return Err(format!("unknown schedule {other} (fast|exact|via)").into()),
    };
    let faults = match &cli.inject {
        Some(spec) => FaultPlan::parse(spec).map_err(|e| format!("bad --inject {spec}: {e}"))?,
        None => FaultPlan::none(),
    };
    let journal_path = cli
        .journal
        .clone()
        .unwrap_or_else(|| format!("{}_journal.jsonl", cli.out));
    let checkpoint = (cli.checkpoint || cli.resume)
        .then(|| std::path::PathBuf::from(format!("{journal_path}.ckpt")));
    let config = BatchConfig {
        threads: cli.threads,
        tile: cli.tile,
        halo: cli.halo,
        seam,
        optics: OpticsConfig { num_kernels: cli.kernels, ..OpticsConfig::default() },
        ilt: IltConfig { early_exit_window: Some(15), ..IltConfig::default() },
        schedule: base,
        max_eff_nm: cli.max_eff_nm,
        timeout: (cli.timeout_s > 0.0).then(|| std::time::Duration::from_secs_f64(cli.timeout_s)),
        max_retries: cli.retries,
        evaluate_stitched: !cli.no_eval,
        degrade: !cli.no_degrade,
        checkpoint,
        faults,
        ..BatchConfig::default()
    };
    println!(
        "batch: {} case(s), {} thread(s), tile {} px, halo {} px, schedule {}",
        cases.len(),
        config.threads,
        config.tile,
        config.halo,
        cli.schedule
    );
    if let Some(dir) = &config.checkpoint {
        println!("checkpoint: {}", dir.display());
    }

    let cache = SimulatorCache::new();
    let outcome = run_batch_resume(&cases, &config, &cache, cli.resume)?;
    if cli.resume {
        println!(
            "resume: {} job(s) restored from durable checkpoints",
            outcome.restored_jobs
        );
    }
    print!("{}", outcome.report);
    println!(
        "simulator cache: {} build(s), {} hit(s)",
        cache.misses(),
        cache.hits()
    );

    for case in &outcome.cases {
        let mask_path = format!("{}_{}_mask.pgm", cli.out, case.name);
        write_pgm(&case.mask, &mask_path, 0.0, 1.0)
            .map_err(|e| format!("cannot write {mask_path}: {e}"))?;
        match &case.eval {
            Some(eval) => println!(
                "{}: {} tile(s), {} failed, {} degraded -> {mask_path}\n{eval}",
                case.name, case.tiles, case.failed_tiles, case.degraded_tiles
            ),
            None => println!(
                "{}: {} tile(s), {} failed, {} degraded -> {mask_path}",
                case.name, case.tiles, case.failed_tiles, case.degraded_tiles
            ),
        }
    }

    outcome
        .report
        .write_jsonl_opts(&journal_path, !cli.no_timing)
        .map_err(|e| format!("cannot write {journal_path}: {e}"))?;
    println!("journal: {journal_path}");

    let failed = outcome.report.failed_jobs();
    if failed > 0 {
        return Err(format!("{failed} job(s) failed after retries; see {journal_path}").into());
    }
    Ok(())
}

fn cmd_serve(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let workers: Vec<String> = match &cli.workers {
        None => Vec::new(),
        Some(list) => {
            list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(Into::into).collect()
        }
    };
    if cli.workers.is_some() && workers.is_empty() {
        return Err("--workers needs at least one host:port".into());
    }
    // `--workers` lists initial replicas; `--cluster` alone starts an empty
    // coordinator that workers register with (`ilt worker --register`).
    let cluster = (cli.cluster || !workers.is_empty()).then(|| ClusterConfig {
        workers,
        heartbeat: std::time::Duration::from_millis(cli.heartbeat_ms.max(10)),
        heartbeat_failures: cli.heartbeat_failures.max(1),
        cancel_grace: std::time::Duration::from_secs_f64(cli.cancel_grace_s.max(0.1)),
        max_inflight_per_worker: cli.max_inflight.max(1),
        max_shard_attempts: cli.max_shard_attempts,
        breaker: multilevel_ilt::cluster::BreakerConfig {
            threshold: cli.breaker_failures.max(1),
            base: std::time::Duration::from_millis(cli.breaker_base_ms.max(1)),
            cap: std::time::Duration::from_millis(cli.breaker_cap_ms.max(1)),
            ..multilevel_ilt::cluster::BreakerConfig::default()
        },
        speculate_factor: cli.speculate_factor.max(0.0),
        speculate_min_samples: cli.speculate_after.max(1),
        ..ClusterConfig::default()
    });
    let config = ServerConfig {
        addr: cli.addr.clone(),
        workers: cli.threads.max(1),
        queue_cap: cli.queue,
        journal: cli.journal.clone().map(Into::into),
        cache_capacity: cli.cache,
        policy: multilevel_ilt::server::ExecPolicy {
            default_timeout_s: cli.timeout_s,
            default_retries: cli.retries,
            allow_inject: cli.allow_inject,
            ..multilevel_ilt::server::ExecPolicy::default()
        },
        state_dir: cli.state_dir.clone().map(Into::into),
        result_ttl: (cli.result_ttl_s > 0.0)
            .then(|| std::time::Duration::from_secs_f64(cli.result_ttl_s)),
        max_resident_masks: if cli.max_masks == 0 { usize::MAX } else { cli.max_masks },
        quota_inflight: cli.quota_inflight,
        quota_queued: cli.quota_queued,
        compact_state_bytes: cli.compact_bytes,
        keep_alive_requests: cli.keep_alive.max(1),
        idle_timeout: std::time::Duration::from_secs_f64(cli.idle_timeout_s.max(0.05)),
        cluster,
        ..ServerConfig::default()
    };
    let workers = config.workers;
    let queue = config.queue_cap;
    if let Some(dir) = &config.state_dir {
        println!("state: {}", dir.display());
    }
    let replicas = config.cluster.as_ref().map(|c| c.workers.clone());
    let server = Server::bind(config)?;
    // The verify script parses this line to find the ephemeral port.
    println!("listening on http://{}", server.local_addr());
    println!(
        "{workers} worker(s), queue capacity {queue}; POST /v1/shutdown to drain"
    );
    if let Some(replicas) = replicas {
        if replicas.is_empty() {
            println!("coordinating an empty cluster; workers register via POST /v1/members");
        } else {
            println!(
                "coordinating {} cluster replica(s): {}",
                replicas.len(),
                replicas.join(", ")
            );
        }
    }
    server.run()?;
    println!("drained");
    Ok(())
}

fn cmd_worker(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let faults = match &cli.inject {
        Some(spec) => FaultPlan::parse(spec).map_err(|e| format!("bad --inject {spec}: {e}"))?,
        None => FaultPlan::none(),
    };
    let config = WorkerConfig {
        addr: cli.addr.clone(),
        state_dir: cli.state_dir.clone().map(Into::into),
        faults,
        policy: multilevel_ilt::cluster::ExecPolicy {
            default_timeout_s: cli.timeout_s,
            default_retries: cli.retries,
            max_threads_per_job: cli.threads.max(1),
            ..multilevel_ilt::cluster::ExecPolicy::default()
        },
        ..WorkerConfig::default()
    };
    if let Some(dir) = &config.state_dir {
        println!("state: {}", dir.display());
    }
    let worker = Worker::bind(config)?;
    let local = worker.local_addr()?;
    // The verify script parses this line to find the ephemeral port.
    println!("worker listening on http://{local}");
    println!("POST /v1/shutdown to stop");
    // Self-registration: announce this replica to the coordinator once the
    // socket is bound. Retried in the background so a worker started
    // moments before its coordinator still joins.
    if let Some(coordinator) = cli.register.clone() {
        let me = local.to_string();
        std::thread::spawn(move || {
            let timeout = std::time::Duration::from_secs(2);
            for attempt in 0..40u32 {
                match multilevel_ilt::cluster::post_membership(&coordinator, &me, "join", timeout)
                {
                    Ok(()) => {
                        println!("registered with coordinator {coordinator}");
                        return;
                    }
                    Err(e) if attempt == 39 => eprintln!("registration failed: {e}"),
                    Err(_) => std::thread::sleep(std::time::Duration::from_millis(250)),
                }
            }
        });
    }
    worker.run();
    if let Some(coordinator) = &cli.register {
        // Best-effort goodbye so the coordinator stops dispatching here.
        let _ = multilevel_ilt::cluster::post_membership(
            coordinator,
            &local.to_string(),
            "leave",
            std::time::Duration::from_secs(2),
        );
    }
    println!("stopped");
    Ok(())
}

fn cmd_evaluate(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let (target, nm) = cli.load_target()?;
    let mask_path = cli.mask.as_ref().ok_or("evaluate needs --mask file.pgm")?;
    let mask = multilevel_ilt::field::read_pgm(mask_path)?.threshold(0.5);
    if mask.shape() != target.shape() {
        return Err(format!(
            "mask {:?} does not match target {:?}",
            mask.shape(),
            target.shape()
        )
        .into());
    }
    let sim = cli.simulator(nm)?;
    evaluate_and_print(&sim, &target, &mask, std::time::Duration::ZERO);
    Ok(())
}

fn cmd_fracture(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let mask_path = cli.mask.as_ref().ok_or("fracture needs --mask file.pgm")?;
    let mask = multilevel_ilt::field::read_pgm(mask_path)?.threshold(0.5);
    let rects = fracture(&mask);
    // Write through a buffered handle and treat a broken pipe (e.g.
    // `ilt fracture ... | head`) as a clean exit.
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let result: std::io::Result<()> = (|| {
        writeln!(out, "#shots: {}", rects.len())?;
        writeln!(out, "# row0 col0 row1 col1 (half-open pixel coordinates)")?;
        for r in &rects {
            writeln!(out, "{} {} {} {}", r.r0, r.c0, r.r1, r.c1)?;
        }
        out.flush()
    })();
    match result {
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        other => other.map_err(Into::into),
    }
}

fn cmd_kernels(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let nm = cli.clip_nm / cli.grid as f64;
    let cfg = OpticsConfig {
        grid: cli.grid,
        nm_per_px: nm,
        num_kernels: cli.kernels,
        ..OpticsConfig::default()
    };
    println!(
        "grid {} ({} nm/px), P = {}, N_k = {}",
        cli.grid,
        nm,
        cfg.kernel_size(),
        cfg.num_kernels
    );
    let (nominal, defocused) = KernelSet::focus_pair(&cfg);
    println!(
        "captured energy: nominal {:.2}%, defocused {:.2}%",
        nominal.captured_energy() * 100.0,
        defocused.captured_energy() * 100.0
    );
    for k in 0..nominal.num_kernels() {
        println!(
            "kernel {k:>2}: w_nominal = {:.6}, w_defocus = {:.6}",
            nominal.weights()[k],
            defocused.weights()[k]
        );
    }
    Ok(())
}

/// The performance barometer: `ilt bench <list|run|diff>` over the
/// [`multilevel_ilt::perf`] workload registry.
///
/// `run` executes the selected workloads and writes one `BENCH_<name>.json`
/// (schema `ilt-bench/v2`) per workload into `--out`; `diff` compares a
/// fresh run directory against the checked-in baselines in `--baselines`
/// and exits non-zero past each workload's regression threshold. Entirely
/// std-only: no Criterion, no python, no network.
fn cmd_bench(cli: &Cli) -> Result<(), Box<dyn Error>> {
    use multilevel_ilt::perf::{
        diff_dirs, env_stamp, select, BenchResult, MeasureConfig, Selection,
    };
    use std::path::Path;

    let usage = "usage: ilt bench <list|run|diff> [NAME_GLOB ...] \
                 [--tag TAG] [--name GLOB] [--smoke] [--reps N] \
                 [--out DIR] [--baselines DIR] [--threshold F]";
    let sub = cli.cases.first().map(String::as_str).ok_or(usage)?;
    // Positionals after the subcommand are name globs, same as --name.
    let mut selection = Selection { tags: cli.tags.clone(), names: cli.names.clone() };
    selection.names.extend(cli.cases[1..].iter().cloned());
    // Fresh results live out of the way by default; baselines are the
    // checked-in BENCH_*.json at the repo root.
    let out_dir = cli.out_flag.clone().unwrap_or_else(|| "bench-out/perf".into());

    match sub {
        "list" => {
            let workloads = select(&selection);
            if workloads.is_empty() {
                return Err("no workloads match the selection".into());
            }
            println!("{:<22} {:<11} {:>10} {:>10}  notes", "workload", "tags", "units", "threshold");
            for w in &workloads {
                println!(
                    "{:<22} {:<11} {:>10} {:>9.0}%  {}",
                    w.name,
                    w.tags.join(","),
                    w.units,
                    w.threshold * 100.0,
                    w.notes
                );
            }
            Ok(())
        }
        "run" => {
            let workloads = select(&selection);
            if workloads.is_empty() {
                return Err("no workloads match the selection".into());
            }
            let cfg = MeasureConfig { smoke: cli.smoke, reps: cli.reps.max(1) };
            let env = env_stamp();
            std::fs::create_dir_all(&out_dir)
                .map_err(|e| format!("cannot create {out_dir}: {e}"))?;
            println!(
                "bench run: {} workload(s), median of {} rep(s){}",
                workloads.len(),
                cfg.effective_reps(),
                if cfg.smoke { ", smoke fixtures" } else { "" }
            );
            for w in &workloads {
                let sample = (w.run)(&cfg)?;
                let result = BenchResult::new(w, &sample, &cfg, &env);
                let path = result.write(Path::new(&out_dir))?;
                println!(
                    "{:<22} {:>12.1} {} (mad {:.1})  -> {}",
                    w.name,
                    sample.median_us,
                    w.units,
                    sample.mad_us,
                    path.display()
                );
            }
            Ok(())
        }
        "diff" => {
            let report = diff_dirs(
                Path::new(&cli.baselines),
                Path::new(&out_dir),
                &selection,
                cli.threshold,
            )?;
            print!("{}", report.render());
            let regressions = report.regressions();
            if regressions > 0 {
                return Err(format!(
                    "{regressions} workload(s) regressed past threshold"
                )
                .into());
            }
            println!("bench diff: {} workload(s) within threshold", report.rows.len());
            Ok(())
        }
        other => Err(format!("unknown bench subcommand {other}\n{usage}").into()),
    }
}

fn main() {
    let (command, cli) = match Cli::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let result = match command.as_str() {
        "run" => cmd_run(&cli),
        "batch" => cmd_batch(&cli),
        "serve" => cmd_serve(&cli),
        "worker" => cmd_worker(&cli),
        "evaluate" => cmd_evaluate(&cli),
        "fracture" => cmd_fracture(&cli),
        "kernels" => cmd_kernels(&cli),
        "bench" => cmd_bench(&cli),
        other => Err(format!(
            "unknown command {other} (run|batch|serve|worker|evaluate|fracture|kernels|bench)"
        )
        .into()),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
