//! `ilt` — command-line front end for the multi-level ILT stack.
//!
//! ```text
//! ilt run      --case 1 [--grid 512] [--schedule fast|exact|via] [--out prefix]
//! ilt run      --via 3  [--grid 256] ...
//! ilt run      --target design.pgm --clip-nm 2048 ...
//! ilt evaluate --target design.pgm --mask mask.pgm [--grid 512] [--clip-nm 2048]
//! ilt fracture --mask mask.pgm
//! ilt kernels  [--grid 512] [--kernels 10]
//! ```
//!
//! Targets may come from the built-in benchmark generators (`--case`,
//! `--via`) or from a PGM file (`--target`); masks are written/read as
//! binary PGM so the tool round-trips with itself.

use std::error::Error;
use std::rc::Rc;

use multilevel_ilt::geom::fracture;
use multilevel_ilt::prelude::*;

struct Cli {
    grid: usize,
    kernels: usize,
    clip_nm: f64,
    schedule: String,
    case: Option<usize>,
    via: Option<u64>,
    target: Option<String>,
    mask: Option<String>,
    out: String,
    max_eff_nm: f64,
}

impl Cli {
    fn parse(mut args: impl Iterator<Item = String>) -> Result<(String, Cli), Box<dyn Error>> {
        let command = args.next().ok_or("usage: ilt <run|evaluate|fracture|kernels> ...")?;
        let mut cli = Cli {
            grid: 512,
            kernels: 10,
            clip_nm: 2048.0,
            schedule: "fast".into(),
            case: None,
            via: None,
            target: None,
            mask: None,
            out: "ilt".into(),
            max_eff_nm: 8.0,
        };
        while let Some(flag) = args.next() {
            let mut value = || args.next().ok_or_else(|| format!("{flag} needs a value"));
            match flag.as_str() {
                "--grid" => cli.grid = value()?.parse()?,
                "--kernels" => cli.kernels = value()?.parse()?,
                "--clip-nm" => cli.clip_nm = value()?.parse()?,
                "--schedule" => cli.schedule = value()?,
                "--case" => cli.case = Some(value()?.parse()?),
                "--via" => cli.via = Some(value()?.parse()?),
                "--target" => cli.target = Some(value()?),
                "--mask" => cli.mask = Some(value()?),
                "--out" => cli.out = value()?,
                "--max-eff-nm" => cli.max_eff_nm = value()?.parse()?,
                other => return Err(format!("unknown flag {other}").into()),
            }
        }
        Ok((command, cli))
    }

    fn load_target(&self) -> Result<(Field2D, f64), Box<dyn Error>> {
        if let Some(id) = self.case {
            let layout = if id <= 10 {
                iccad2013_case(id)
            } else {
                extended_case(id)
            };
            return Ok((layout.rasterize(self.grid), layout.nm_per_px(self.grid)));
        }
        if let Some(seed) = self.via {
            let layout = via_pattern(seed);
            return Ok((layout.rasterize(self.grid), layout.nm_per_px(self.grid)));
        }
        if let Some(path) = &self.target {
            let img = multilevel_ilt::field::read_pgm(path)?.threshold(0.5);
            let (rows, cols) = img.shape();
            if rows != cols || !rows.is_power_of_two() {
                return Err(format!("target must be square power-of-two, got {rows}x{cols}").into());
            }
            let nm = self.clip_nm / rows as f64;
            return Ok((img, nm));
        }
        Err("pass one of --case N, --via SEED or --target file.pgm".into())
    }

    fn simulator(&self, nm_per_px: f64) -> Result<Rc<LithoSimulator>, Box<dyn Error>> {
        let cfg = OpticsConfig {
            grid: self.grid,
            nm_per_px,
            num_kernels: self.kernels,
            ..OpticsConfig::default()
        };
        Ok(Rc::new(LithoSimulator::new(cfg)?))
    }

    fn schedule(&self, nm_per_px: f64) -> Result<Vec<Stage>, Box<dyn Error>> {
        let base = match self.schedule.as_str() {
            "fast" => schedules::our_fast(),
            "exact" => schedules::our_exact(),
            "via" => schedules::via_recipe(),
            other => return Err(format!("unknown schedule {other} (fast|exact|via)").into()),
        };
        let s = schedules::clamp_effective_pitch(&base, nm_per_px, self.max_eff_nm);
        Ok(schedules::clamp_scales(&s, self.grid, 32))
    }
}

fn evaluate_and_print(
    sim: &LithoSimulator,
    target: &Field2D,
    mask: &Field2D,
    tat: std::time::Duration,
) {
    let nm = sim.config().nm_per_px;
    let corners = sim.print_corners(mask);
    let checker = EpeChecker { nm_per_px: nm, ..EpeChecker::default() };
    let report = EvalReport::evaluate(
        target,
        mask,
        &corners.nominal,
        &corners.inner,
        &corners.outer,
        &checker,
        tat,
    );
    println!("{report}");
}

fn cmd_run(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let (target, nm) = cli.load_target()?;
    let sim = cli.simulator(nm)?;
    let schedule = cli.schedule(nm)?;
    println!(
        "optimizing {} px clip at {nm} nm/px with schedule {:?}",
        cli.grid, schedule
    );
    let timer = TurnaroundTimer::start();
    let cfg = IltConfig { early_exit_window: Some(15), ..IltConfig::default() };
    let result = MultiLevelIlt::new(sim.clone(), cfg).run(&target, &schedule);
    let tat = timer.elapsed();
    println!("ran {} iterations in {:.2} s", result.total_iterations, tat.as_secs_f64());
    evaluate_and_print(&sim, &target, &result.mask, tat);

    let mask_path = format!("{}_mask.pgm", cli.out);
    let wafer_path = format!("{}_wafer.pgm", cli.out);
    write_pgm(&result.mask, &mask_path, 0.0, 1.0)?;
    write_pgm(
        &sim.print(&result.mask, ProcessCondition::nominal()),
        &wafer_path,
        0.0,
        1.0,
    )?;
    println!("wrote {mask_path} and {wafer_path}");
    Ok(())
}

fn cmd_evaluate(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let (target, nm) = cli.load_target()?;
    let mask_path = cli.mask.as_ref().ok_or("evaluate needs --mask file.pgm")?;
    let mask = multilevel_ilt::field::read_pgm(mask_path)?.threshold(0.5);
    if mask.shape() != target.shape() {
        return Err(format!(
            "mask {:?} does not match target {:?}",
            mask.shape(),
            target.shape()
        )
        .into());
    }
    let sim = cli.simulator(nm)?;
    evaluate_and_print(&sim, &target, &mask, std::time::Duration::ZERO);
    Ok(())
}

fn cmd_fracture(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let mask_path = cli.mask.as_ref().ok_or("fracture needs --mask file.pgm")?;
    let mask = multilevel_ilt::field::read_pgm(mask_path)?.threshold(0.5);
    let rects = fracture(&mask);
    // Write through a buffered handle and treat a broken pipe (e.g.
    // `ilt fracture ... | head`) as a clean exit.
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let result: std::io::Result<()> = (|| {
        writeln!(out, "#shots: {}", rects.len())?;
        writeln!(out, "# row0 col0 row1 col1 (half-open pixel coordinates)")?;
        for r in &rects {
            writeln!(out, "{} {} {} {}", r.r0, r.c0, r.r1, r.c1)?;
        }
        out.flush()
    })();
    match result {
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        other => other.map_err(Into::into),
    }
}

fn cmd_kernels(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let nm = cli.clip_nm / cli.grid as f64;
    let cfg = OpticsConfig {
        grid: cli.grid,
        nm_per_px: nm,
        num_kernels: cli.kernels,
        ..OpticsConfig::default()
    };
    println!(
        "grid {} ({} nm/px), P = {}, N_k = {}",
        cli.grid,
        nm,
        cfg.kernel_size(),
        cfg.num_kernels
    );
    let (nominal, defocused) = KernelSet::focus_pair(&cfg);
    println!(
        "captured energy: nominal {:.2}%, defocused {:.2}%",
        nominal.captured_energy() * 100.0,
        defocused.captured_energy() * 100.0
    );
    for k in 0..nominal.num_kernels() {
        println!(
            "kernel {k:>2}: w_nominal = {:.6}, w_defocus = {:.6}",
            nominal.weights()[k],
            defocused.weights()[k]
        );
    }
    Ok(())
}

fn main() {
    let (command, cli) = match Cli::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let result = match command.as_str() {
        "run" => cmd_run(&cli),
        "evaluate" => cmd_evaluate(&cli),
        "fracture" => cmd_fracture(&cli),
        "kernels" => cmd_kernels(&cli),
        other => Err(format!("unknown command {other} (run|evaluate|fracture|kernels)").into()),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
