//! # multilevel-ilt
//!
//! A from-scratch Rust reproduction of **"Efficient ILT via Multi-level
//! Lithography Simulation"** (DAC 2023): multi-resolution inverse
//! lithography with an improved mask binary function and pooling-based
//! shape simplification, together with every substrate the paper depends
//! on — a partially coherent lithography simulator, FFTs, reverse-mode
//! autodiff, benchmark layouts, contest metrics and non-neural baselines.
//!
//! This crate is a facade: it re-exports the workspace members under short
//! module names and offers a [`prelude`] for examples and quick scripts.
//!
//! ## Quickstart
//!
//! ```
//! use multilevel_ilt::prelude::*;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), String> {
//! // A small clip: 64 pixels at 8 nm = 512 nm.
//! let optics = OpticsConfig { grid: 64, nm_per_px: 8.0, num_kernels: 3, ..OpticsConfig::default() };
//! let sim = Arc::new(LithoSimulator::new(optics)?);
//!
//! let target = Field2D::from_fn(64, 64, |r, c| {
//!     if (24..40).contains(&r) && (16..48).contains(&c) { 1.0 } else { 0.0 }
//! });
//!
//! let ilt = MultiLevelIlt::new(sim.clone(), IltConfig::default());
//! let result = ilt.run(&target, &[Stage::low_res(2, 10)]);
//!
//! let corners = sim.print_corners(&result.mask);
//! let l2 = squared_l2(&corners.nominal, &target, 8.0);
//! assert!(l2.is_finite());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ilt_autodiff as autodiff;
pub use ilt_baselines as baselines;
pub use ilt_cluster as cluster;
pub use ilt_core as core;
pub use ilt_fft as fft;
pub use ilt_field as field;
pub use ilt_geom as geom;
pub use ilt_layouts as layouts;
pub use ilt_metrics as metrics;
pub use ilt_optics as optics;
pub use ilt_perf as perf;
pub use ilt_runtime as runtime;
pub use ilt_server as server;

/// Everything needed to run an ILT flow end to end.
pub mod prelude {
    pub use ilt_baselines::{ConventionalIlt, EdgeOpc, EdgeOpcConfig, LevelSetConfig, LevelSetIlt};
    pub use ilt_core::{
        schedules, BinaryFunction, IltConfig, IltResult, MultiLevelIlt, OptimizeRegion,
        Smoothing, SmoothingPlacement, Stage, StageKind,
    };
    pub use ilt_field::{
        avg_pool_down, avg_pool_same, upsample_nearest, write_csv, write_pgm, Field2D,
    };
    pub use ilt_geom::{shot_count, simplify_mask, SimplifyConfig};
    pub use ilt_layouts::{extended_case, iccad2013_case, via_pattern, Layout};
    pub use ilt_metrics::{pvband, squared_l2, EpeChecker, EvalReport, TurnaroundTimer};
    pub use ilt_optics::{
        KernelSet, LithoSimulator, OpticsConfig, ProcessCondition, SourceSpec,
    };
    pub use ilt_runtime::{
        run_batch, run_batch_resume, BatchCase, BatchConfig, FaultPlan, RunReport, SeamPolicy,
        SimulatorCache,
    };
    pub use ilt_cluster::{ClusterConfig, Worker, WorkerConfig};
    pub use ilt_server::{Server, ServerConfig};
}
