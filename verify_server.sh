#!/bin/bash
# Verifies the HTTP job service end to end, loopback-only and offline:
#   1. `ilt serve` starts, binds an ephemeral port, and answers /healthz;
#   2. a job submitted over HTTP produces a mask byte-identical to the
#      same configuration run through `ilt batch`;
#   3. /metrics is consistent: accepted == completed, nothing failed;
#   4. flooding past the admission queue yields 503s (backpressure), never
#      a crash — the server still answers and drains cleanly afterwards;
#   5. the server journal holds one line per completed job.
set -e
BIN=./target/release/ilt
OUT=bench-out/server
mkdir -p "$OUT"
CURL="curl -sS --max-time 30"

# --- Reference: the batch CLI on the same case/configuration. ------------
"$BIN" batch --threads 1 --grid 128 --kernels 4 --out "$OUT/ref" \
    --journal "$OUT/ref.jsonl" case1 > "$OUT/ref.log" 2>&1

# --- Start the server on an ephemeral port. ------------------------------
"$BIN" serve --addr 127.0.0.1:0 --threads 2 --queue 4 \
    --journal "$OUT/served.jsonl" > "$OUT/serve.log" 2>&1 &
SERVER_PID=$!
cleanup() { kill "$SERVER_PID" 2>/dev/null || true; }
trap cleanup EXIT

for _ in $(seq 50); do
    BASE=$(sed -n 's#^listening on \(http://.*\)$#\1#p' "$OUT/serve.log")
    [ -n "$BASE" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$OUT/serve.log"; exit 1; }
    sleep 0.1
done
[ -n "$BASE" ] || { echo "SERVER_FAILED: no listen line"; cat "$OUT/serve.log"; exit 1; }

[ "$($CURL "$BASE/healthz")" = "ok" ] || { echo "SERVER_FAILED: healthz"; exit 1; }

# --- Submit the same job over HTTP and poll it to completion. ------------
ACCEPT=$($CURL -X POST "$BASE/v1/jobs?case=case1&grid=128&kernels=4")
echo "$ACCEPT" | grep -q '"state":"queued"' || { echo "SERVER_FAILED: submit: $ACCEPT"; exit 1; }
JOB_ID=$(echo "$ACCEPT" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')

STATE=queued
for _ in $(seq 600); do
    DETAIL=$($CURL "$BASE/v1/jobs/$JOB_ID")
    STATE=$(echo "$DETAIL" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    [ "$STATE" = done ] && break
    [ "$STATE" = failed ] && { echo "SERVER_FAILED: job failed: $DETAIL"; exit 1; }
    sleep 0.5
done
[ "$STATE" = done ] || { echo "SERVER_FAILED: job stuck in $STATE"; exit 1; }

$CURL -o "$OUT/served_mask.pgm" "$BASE/v1/jobs/$JOB_ID/mask"
if ! cmp -s "$OUT/ref_case1_mask.pgm" "$OUT/served_mask.pgm"; then
    echo "SERVER_MISMATCH: served mask differs from 'ilt batch' output"
    exit 1
fi
echo "served mask is byte-identical to the batch CLI mask"

# --- Quiescent metrics: everything accepted has completed. ---------------
$CURL "$BASE/metrics" > "$OUT/metrics_quiet.txt"
metric() { awk -v m="$1" '$1 == m { print $2 }' "${2:-$OUT/metrics.txt}"; }
ACCEPTED_Q=$(metric ilt_jobs_accepted_total "$OUT/metrics_quiet.txt")
COMPLETED_Q=$(metric ilt_jobs_completed_total "$OUT/metrics_quiet.txt")
FAILED_Q=$(metric ilt_jobs_failed_total "$OUT/metrics_quiet.txt")
if [ "$ACCEPTED_Q" != "$COMPLETED_Q" ] || [ "$FAILED_Q" != 0 ]; then
    echo "SERVER_FAILED: accepted=$ACCEPTED_Q completed=$COMPLETED_Q failed=$FAILED_Q"
    exit 1
fi
echo "metrics: accepted=$ACCEPTED_Q completed=$COMPLETED_Q failed=$FAILED_Q"

# --- Flood the bounded queue: expect 503s, no crash. ---------------------
# Queue capacity is 4 with 2 workers on a slow job; 30 rapid submissions
# must overflow admission at least once.
REJECTED=0
for _ in $(seq 30); do
    CODE=$($CURL -o /dev/null -w '%{http_code}' -X POST \
        "$BASE/v1/jobs?case=case1&grid=128&kernels=4&iters=50")
    [ "$CODE" = 503 ] && REJECTED=$((REJECTED + 1))
done
[ "$REJECTED" -ge 1 ] || { echo "SERVER_FAILED: flood never hit 503"; exit 1; }
kill -0 "$SERVER_PID" 2>/dev/null || { echo "SERVER_FAILED: crashed under flood"; exit 1; }
echo "flood: $REJECTED of 30 submissions rejected with 503, server alive"

# --- Metrics must be internally consistent. ------------------------------
$CURL "$BASE/metrics" > "$OUT/metrics.txt"
ACCEPTED=$(metric ilt_jobs_accepted_total)
REJ_TOTAL=$(metric ilt_jobs_rejected_total)
[ "$REJ_TOTAL" -ge "$REJECTED" ] || { echo "SERVER_FAILED: rejected counter too low"; exit 1; }
grep -q 'ilt_stage_latency_ms_bucket{stage="optimize",le="+Inf"}' "$OUT/metrics.txt" \
    || { echo "SERVER_FAILED: latency histogram missing"; exit 1; }

# --- Graceful drain: finish admitted jobs, flush the journal, exit 0. ----
$CURL -X POST "$BASE/v1/shutdown" > /dev/null
for _ in $(seq 1200); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.5
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "SERVER_FAILED: did not drain within 10 minutes"
    exit 1
fi
wait "$SERVER_PID"
trap - EXIT
grep -q drained "$OUT/serve.log" || { echo "SERVER_FAILED: no drain line"; exit 1; }

# Every accepted job ran to completion before exit; the journal has at
# least one record line per accepted job (one per tile, >= 1 tile each).
JOURNAL_LINES=$(wc -l < "$OUT/served.jsonl")
[ "$JOURNAL_LINES" -ge "$ACCEPTED" ] || {
    echo "SERVER_FAILED: journal has $JOURNAL_LINES lines for $ACCEPTED accepted jobs"
    exit 1
}
echo "journal: $JOURNAL_LINES line(s) for $ACCEPTED accepted job(s)"
echo SERVER_VERIFIED
