#!/bin/bash
# Smoke-verifies the HTTP job service end to end, loopback-only and
# offline. The deterministic lifecycle coverage — cancellation races,
# state-log compaction across restarts, keep-alive limits, restart
# recovery, TTL eviction, malformed HTTP — lives in-tree
# (crates/ilt-server/tests/{http_e2e,lifecycle}.rs); this script is a thin
# wrapper that runs those tests first and then exercises the *release
# binary* through real curl:
#   1. `ilt serve` starts, binds an ephemeral port, and answers /healthz;
#   2. a job submitted over HTTP produces a mask byte-identical to the
#      same configuration run through `ilt batch`;
#   3. /metrics is consistent: accepted == completed, nothing failed;
#   4. a queued job dies on DELETE, the state log compacts to a snapshot,
#      and a restart replays the live set (cancellation + compaction);
#   5. two tenants share one instance: the client over its queued quota
#      gets 429 + Retry-After while the other client's job completes, and
#      a residency-evicted mask re-hydrates from the state dir
#      byte-identically (multi-tenancy + re-hydration);
#   6. flooding past the admission queue yields 503s (backpressure), never
#      a crash — the server still answers and drains cleanly afterwards;
#   7. the server journal holds one line per completed job.
set -e
BIN=./target/release/ilt
OUT=bench-out/server
mkdir -p "$OUT"
CURL="curl -sS --max-time 30"

# --- The in-tree port of these scenarios is the source of truth. ---------
cargo test -q -p ilt-server -p ilt-runtime > "$OUT/cargo-test.log" 2>&1 \
    || { echo "SERVER_FAILED: in-tree server/runtime tests"; tail -40 "$OUT/cargo-test.log"; exit 1; }
echo "in-tree server + runtime tests passed"

# --- Reference: the batch CLI on the same case/configuration. ------------
"$BIN" batch --threads 1 --grid 128 --kernels 4 --out "$OUT/ref" \
    --journal "$OUT/ref.jsonl" case1 > "$OUT/ref.log" 2>&1

# --- Start the server on an ephemeral port. ------------------------------
"$BIN" serve --addr 127.0.0.1:0 --threads 2 --queue 4 \
    --journal "$OUT/served.jsonl" > "$OUT/serve.log" 2>&1 &
SERVER_PID=$!
cleanup() { kill "$SERVER_PID" 2>/dev/null || true; }
trap cleanup EXIT

for _ in $(seq 50); do
    BASE=$(sed -n 's#^listening on \(http://.*\)$#\1#p' "$OUT/serve.log")
    [ -n "$BASE" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$OUT/serve.log"; exit 1; }
    sleep 0.1
done
[ -n "$BASE" ] || { echo "SERVER_FAILED: no listen line"; cat "$OUT/serve.log"; exit 1; }

[ "$($CURL "$BASE/healthz")" = "ok" ] || { echo "SERVER_FAILED: healthz"; exit 1; }

# --- Submit the same job over HTTP and poll it to completion. ------------
ACCEPT=$($CURL -X POST "$BASE/v1/jobs?case=case1&grid=128&kernels=4")
echo "$ACCEPT" | grep -q '"state":"queued"' || { echo "SERVER_FAILED: submit: $ACCEPT"; exit 1; }
JOB_ID=$(echo "$ACCEPT" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')

STATE=queued
for _ in $(seq 600); do
    DETAIL=$($CURL "$BASE/v1/jobs/$JOB_ID")
    STATE=$(echo "$DETAIL" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    [ "$STATE" = done ] && break
    [ "$STATE" = failed ] && { echo "SERVER_FAILED: job failed: $DETAIL"; exit 1; }
    sleep 0.5
done
[ "$STATE" = done ] || { echo "SERVER_FAILED: job stuck in $STATE"; exit 1; }

$CURL -o "$OUT/served_mask.pgm" "$BASE/v1/jobs/$JOB_ID/mask"
if ! cmp -s "$OUT/ref_case1_mask.pgm" "$OUT/served_mask.pgm"; then
    echo "SERVER_MISMATCH: served mask differs from 'ilt batch' output"
    exit 1
fi
echo "served mask is byte-identical to the batch CLI mask"

# --- Quiescent metrics: everything accepted has completed. ---------------
$CURL "$BASE/metrics" > "$OUT/metrics_quiet.txt"
metric() { awk -v m="$1" '$1 == m { print $2 }' "${2:-$OUT/metrics.txt}"; }
ACCEPTED_Q=$(metric ilt_jobs_accepted_total "$OUT/metrics_quiet.txt")
COMPLETED_Q=$(metric ilt_jobs_completed_total "$OUT/metrics_quiet.txt")
FAILED_Q=$(metric ilt_jobs_failed_total "$OUT/metrics_quiet.txt")
if [ "$ACCEPTED_Q" != "$COMPLETED_Q" ] || [ "$FAILED_Q" != 0 ]; then
    echo "SERVER_FAILED: accepted=$ACCEPTED_Q completed=$COMPLETED_Q failed=$FAILED_Q"
    exit 1
fi
echo "metrics: accepted=$ACCEPTED_Q completed=$COMPLETED_Q failed=$FAILED_Q"

# --- Cancellation + compaction smoke, on a second server instance. -------
# One worker, aggressive compaction: a long job pins the worker, a queued
# job is DELETEd (202, immediate), and every terminal event snapshots the
# live set and truncates state.jsonl. A restart must replay the finished
# job and 404 the compacted-away cancelled one.
STATE="$OUT/state"
rm -rf "$STATE"
"$BIN" serve --addr 127.0.0.1:0 --threads 1 --queue 8 \
    --state-dir "$STATE" --compact-bytes 1 > "$OUT/serve-lifecycle.log" 2>&1 &
LIFE_PID=$!
cleanup_life() { kill "$LIFE_PID" 2>/dev/null || true; cleanup; }
trap cleanup_life EXIT
for _ in $(seq 50); do
    LBASE=$(sed -n 's#^listening on \(http://.*\)$#\1#p' "$OUT/serve-lifecycle.log")
    [ -n "$LBASE" ] && break
    sleep 0.1
done
[ -n "$LBASE" ] || { echo "SERVER_FAILED: lifecycle instance never listened"; exit 1; }

$CURL -X POST "$LBASE/v1/jobs?case=case1&grid=128&kernels=4" > /dev/null
VICTIM=$($CURL -X POST "$LBASE/v1/jobs?case=case1&grid=128&kernels=4&iters=50")
VICTIM_ID=$(echo "$VICTIM" | sed -n 's/.*"id":\([0-9]*\).*/\1/p')
CANCEL=$($CURL -X DELETE "$LBASE/v1/jobs/$VICTIM_ID")
echo "$CANCEL" | grep -q '"state":"cancell' \
    || { echo "SERVER_FAILED: cancel answered: $CANCEL"; exit 1; }

for _ in $(seq 600); do
    LSTATE=$($CURL "$LBASE/v1/jobs/0" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    [ "$LSTATE" = done ] && break
    [ "$LSTATE" = failed ] && { echo "SERVER_FAILED: lifecycle job failed"; exit 1; }
    sleep 0.5
done
[ "$LSTATE" = done ] || { echo "SERVER_FAILED: lifecycle job stuck in $LSTATE"; exit 1; }
LMETRICS=$($CURL "$LBASE/metrics")
echo "$LMETRICS" | grep -q 'ilt_jobs_cancelled_total [1-9]' \
    || { echo "SERVER_FAILED: cancelled counter never moved"; exit 1; }

$CURL -X POST "$LBASE/v1/shutdown" > /dev/null
wait "$LIFE_PID" || { echo "SERVER_FAILED: lifecycle instance dirty exit"; exit 1; }
[ -s "$STATE/state.snapshot.jsonl" ] \
    || { echo "SERVER_FAILED: no compaction snapshot written"; exit 1; }
[ ! -s "$STATE/state.jsonl" ] \
    || { echo "SERVER_FAILED: state.jsonl not truncated by compaction"; exit 1; }

"$BIN" serve --addr 127.0.0.1:0 --threads 1 --queue 8 \
    --state-dir "$STATE" --compact-bytes 1 > "$OUT/serve-replay.log" 2>&1 &
LIFE_PID=$!
for _ in $(seq 50); do
    RBASE=$(sed -n 's#^listening on \(http://.*\)$#\1#p' "$OUT/serve-replay.log")
    [ -n "$RBASE" ] && break
    sleep 0.1
done
[ -n "$RBASE" ] || { echo "SERVER_FAILED: replay instance never listened"; exit 1; }
REPLAYED=$($CURL "$RBASE/v1/jobs/0")
echo "$REPLAYED" | grep -q '"state":"done"' \
    || { echo "SERVER_FAILED: finished job lost across compaction restart"; exit 1; }
CODE=$($CURL -o /dev/null -w '%{http_code}' "$RBASE/v1/jobs/$VICTIM_ID")
[ "$CODE" = 404 ] \
    || { echo "SERVER_FAILED: cancelled job survived compaction ($CODE)"; exit 1; }
$CURL -X POST "$RBASE/v1/shutdown" > /dev/null
wait "$LIFE_PID" || { echo "SERVER_FAILED: replay instance dirty exit"; exit 1; }
trap cleanup EXIT
echo "cancellation + compaction: queued job cancelled, log compacted, restart replayed the live set"

# --- Multi-tenant quotas + mask re-hydration, on a third instance. -------
# One worker, per-client queued quota of 1, one resident mask. Alice pins
# the worker and fills her queued slot; her third submission must answer
# 429 + Retry-After while bob's job is admitted and completes. Once all
# jobs finish, the residency cap evicts the older masks and a re-GET must
# re-hydrate the durable copy byte-identically.
TSTATE="$OUT/tenants-state"
rm -rf "$TSTATE"
"$BIN" serve --addr 127.0.0.1:0 --threads 1 --queue 8 --quota-queued 1 \
    --state-dir "$TSTATE" --max-masks 1 > "$OUT/serve-tenants.log" 2>&1 &
TEN_PID=$!
cleanup_ten() { kill "$TEN_PID" 2>/dev/null || true; cleanup; }
trap cleanup_ten EXIT
for _ in $(seq 50); do
    TBASE=$(sed -n 's#^listening on \(http://.*\)$#\1#p' "$OUT/serve-tenants.log")
    [ -n "$TBASE" ] && break
    sleep 0.1
done
[ -n "$TBASE" ] || { echo "SERVER_FAILED: tenant instance never listened"; exit 1; }

ALICE="-H X-Ilt-Client:alice"
$CURL $ALICE -X POST "$TBASE/v1/jobs?case=case1&grid=128&kernels=4&iters=50" > /dev/null
for _ in $(seq 600); do
    TS=$($CURL "$TBASE/v1/jobs/0" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    [ "$TS" = running ] && break
    sleep 0.1
done
[ "$TS" = running ] || { echo "SERVER_FAILED: tenant job 0 stuck in $TS"; exit 1; }

CODE=$($CURL $ALICE -o /dev/null -w '%{http_code}' -X POST \
    "$TBASE/v1/jobs?case=case1&grid=128&kernels=4")
[ "$CODE" = 202 ] || { echo "SERVER_FAILED: alice's queued slot refused ($CODE)"; exit 1; }
CODE=$($CURL $ALICE -D "$OUT/quota-429.headers" -o /dev/null -w '%{http_code}' -X POST \
    "$TBASE/v1/jobs?case=case1&grid=128&kernels=4")
[ "$CODE" = 429 ] || { echo "SERVER_FAILED: quota breach answered $CODE, want 429"; exit 1; }
grep -qi '^retry-after:' "$OUT/quota-429.headers" \
    || { echo "SERVER_FAILED: 429 without Retry-After"; exit 1; }
CODE=$($CURL -H "X-Ilt-Client:bob" -o /dev/null -w '%{http_code}' -X POST \
    "$TBASE/v1/jobs?case=case1&grid=128&kernels=4")
[ "$CODE" = 202 ] || { echo "SERVER_FAILED: bob rejected alongside alice's flood ($CODE)"; exit 1; }
$CURL "$TBASE/metrics" | grep -q 'ilt_jobs_rejected_quota_total{client="alice"} [1-9]' \
    || { echo "SERVER_FAILED: quota rejection metric never moved"; exit 1; }

# All three jobs (alice slow, alice fast, bob) run to completion; finish
# order is submission order, so job 1's mask is evicted by the cap.
for ID in 0 1 2; do
    for _ in $(seq 600); do
        TS=$($CURL "$TBASE/v1/jobs/$ID" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
        [ "$TS" = done ] && break
        [ "$TS" = failed ] && { echo "SERVER_FAILED: tenant job $ID failed"; exit 1; }
        sleep 0.5
    done
    [ "$TS" = done ] || { echo "SERVER_FAILED: tenant job $ID stuck in $TS"; exit 1; }
done
$CURL "$TBASE/metrics" > "$OUT/metrics_tenants.txt"
EVICTED=$(metric ilt_masks_evicted_total "$OUT/metrics_tenants.txt")
[ "$EVICTED" -ge 1 ] || { echo "SERVER_FAILED: residency cap never evicted"; exit 1; }
$CURL -o "$OUT/rehydrated_mask.pgm" "$TBASE/v1/jobs/1/mask"
cmp -s "$OUT/ref_case1_mask.pgm" "$OUT/rehydrated_mask.pgm" \
    || { echo "SERVER_MISMATCH: re-hydrated mask differs from the batch mask"; exit 1; }
$CURL "$TBASE/metrics" > "$OUT/metrics_tenants.txt"
REHYDRATED=$(metric ilt_masks_rehydrated_total "$OUT/metrics_tenants.txt")
[ "$REHYDRATED" -ge 1 ] || { echo "SERVER_FAILED: rehydrated counter never moved"; exit 1; }

$CURL -X POST "$TBASE/v1/shutdown" > /dev/null
wait "$TEN_PID" || { echo "SERVER_FAILED: tenant instance dirty exit"; exit 1; }
trap cleanup EXIT
echo "multi-tenancy: quota 429 with Retry-After, bob unaffected, evicted mask re-hydrated byte-identically"

# --- Flood the bounded queue: expect 503s, no crash. ---------------------
# Queue capacity is 4 with 2 workers on a slow job; 30 rapid submissions
# must overflow admission at least once.
REJECTED=0
for _ in $(seq 30); do
    CODE=$($CURL -o /dev/null -w '%{http_code}' -X POST \
        "$BASE/v1/jobs?case=case1&grid=128&kernels=4&iters=50")
    [ "$CODE" = 503 ] && REJECTED=$((REJECTED + 1))
done
[ "$REJECTED" -ge 1 ] || { echo "SERVER_FAILED: flood never hit 503"; exit 1; }
kill -0 "$SERVER_PID" 2>/dev/null || { echo "SERVER_FAILED: crashed under flood"; exit 1; }
echo "flood: $REJECTED of 30 submissions rejected with 503, server alive"

# --- Metrics must be internally consistent. ------------------------------
$CURL "$BASE/metrics" > "$OUT/metrics.txt"
ACCEPTED=$(metric ilt_jobs_accepted_total)
REJ_TOTAL=$(metric ilt_jobs_rejected_total)
[ "$REJ_TOTAL" -ge "$REJECTED" ] || { echo "SERVER_FAILED: rejected counter too low"; exit 1; }
grep -q 'ilt_stage_latency_ms_bucket{stage="optimize",le="+Inf"}' "$OUT/metrics.txt" \
    || { echo "SERVER_FAILED: latency histogram missing"; exit 1; }

# --- Graceful drain: finish admitted jobs, flush the journal, exit 0. ----
$CURL -X POST "$BASE/v1/shutdown" > /dev/null
for _ in $(seq 1200); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.5
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "SERVER_FAILED: did not drain within 10 minutes"
    exit 1
fi
wait "$SERVER_PID"
trap - EXIT
grep -q drained "$OUT/serve.log" || { echo "SERVER_FAILED: no drain line"; exit 1; }

# Every accepted job ran to completion before exit; the journal has at
# least one record line per accepted job (one per tile, >= 1 tile each).
JOURNAL_LINES=$(wc -l < "$OUT/served.jsonl")
[ "$JOURNAL_LINES" -ge "$ACCEPTED" ] || {
    echo "SERVER_FAILED: journal has $JOURNAL_LINES lines for $ACCEPTED accepted jobs"
    exit 1
}
echo "journal: $JOURNAL_LINES line(s) for $ACCEPTED accepted job(s)"
echo SERVER_VERIFIED
