//! Cross-crate integration tests: layouts -> optics -> multi-level ILT ->
//! metrics, at small physical scale (512 nm clips) so the whole suite runs
//! in seconds.

use std::sync::Arc;

use multilevel_ilt::prelude::*;

fn small_sim(grid: usize, nm_per_px: f64, kernels: usize) -> Arc<LithoSimulator> {
    let cfg = OpticsConfig {
        grid,
        nm_per_px,
        num_kernels: kernels,
        ..OpticsConfig::default()
    };
    Arc::new(LithoSimulator::new(cfg).expect("valid optics"))
}

fn bar_target(n: usize) -> Field2D {
    Field2D::from_fn(n, n, |r, c| {
        if (n * 3 / 8..n * 5 / 8).contains(&r) && (n / 4..n * 3 / 4).contains(&c) {
            1.0
        } else {
            0.0
        }
    })
}

#[test]
fn full_pipeline_improves_over_uncorrected_mask() {
    let sim = small_sim(64, 8.0, 4);
    let target = bar_target(64);

    // Print the raw target as the no-correction reference.
    let raw = sim.print_corners(&target);
    let raw_l2 = squared_l2(&raw.nominal, &target, 8.0);

    let ilt = MultiLevelIlt::new(sim.clone(), IltConfig::default());
    let result = ilt.run(&target, &[Stage::low_res(1, 12)]);
    let opt = sim.print_corners(&result.mask);
    let opt_l2 = squared_l2(&opt.nominal, &target, 8.0);

    assert!(
        opt_l2 < raw_l2,
        "optimization must beat no correction: {opt_l2} vs {raw_l2}"
    );
}

#[test]
fn multi_level_schedule_is_faster_than_single_level_same_iterations() {
    let sim = small_sim(128, 4.0, 4);
    let target = bar_target(128);
    let ilt = MultiLevelIlt::new(sim.clone(), IltConfig::default());

    let timer = TurnaroundTimer::start();
    let _ = ilt.run(&target, &[Stage::low_res(2, 10)]);
    let low = timer.elapsed();

    let timer = TurnaroundTimer::start();
    let _ = ilt.run(&target, &[Stage::low_res(1, 10)]);
    let full = timer.elapsed();

    assert!(
        low.as_secs_f64() < full.as_secs_f64(),
        "low-res iterations must be cheaper: {low:?} vs {full:?}"
    );
}

#[test]
fn runs_are_deterministic() {
    let sim = small_sim(64, 8.0, 3);
    let target = bar_target(64);
    let ilt = MultiLevelIlt::new(sim.clone(), IltConfig::default());
    let a = ilt.run(&target, &[Stage::low_res(2, 6), Stage::high_res(2, 2)]);
    let b = ilt.run(&target, &[Stage::low_res(2, 6), Stage::high_res(2, 2)]);
    assert_eq!(a.mask, b.mask);
    assert_eq!(a.loss_history.len(), b.loss_history.len());
    for (ra, rb) in a.loss_history.iter().zip(&b.loss_history) {
        assert_eq!(ra.loss, rb.loss);
    }
}

#[test]
fn layout_rasterization_feeds_the_simulator() {
    // A real benchmark layout at reduced grid flows through the whole stack.
    let case = iccad2013_case(10); // the single-square case
    let grid = 128;
    let target = case.rasterize(grid);
    let sim = small_sim(grid, case.nm_per_px(grid), 4);
    let corners = sim.print_corners(&target);
    assert!(corners.nominal.count_on() > 0, "case 10's square must print");
    let pvb = pvband(&corners.inner, &corners.outer, case.nm_per_px(grid));
    assert!(pvb > 0.0);
}

#[test]
fn eval_report_fields_are_consistent() {
    let sim = small_sim(64, 8.0, 3);
    let target = bar_target(64);
    let result = MultiLevelIlt::new(sim.clone(), IltConfig::default())
        .run(&target, &[Stage::low_res(2, 8)]);
    let corners = sim.print_corners(&result.mask);
    let checker = EpeChecker { nm_per_px: 8.0, ..EpeChecker::default() };
    let report = EvalReport::evaluate(
        &target,
        &result.mask,
        &corners.nominal,
        &corners.inner,
        &corners.outer,
        &checker,
        std::time::Duration::from_secs(1),
    );
    assert_eq!(report.shots, shot_count(&result.mask));
    assert_eq!(
        report.l2_nm2,
        squared_l2(&corners.nominal, &target, 8.0)
    );
    assert_eq!(
        report.pvband_nm2,
        pvband(&corners.inner, &corners.outer, 8.0)
    );
}

#[test]
fn baselines_and_ours_run_on_the_same_engine() {
    let sim = small_sim(64, 8.0, 3);
    let target = bar_target(64);

    let ours = MultiLevelIlt::new(sim.clone(), IltConfig::default())
        .run(&target, &[Stage::low_res(2, 8)]);
    let conv = ConventionalIlt::new(sim.clone()).run(&target, 8);
    let ls = LevelSetIlt::new(
        sim.clone(),
        LevelSetConfig { scale: 2, ..LevelSetConfig::default() },
    )
    .run(&target, 8);
    let opc = EdgeOpc::new(sim.clone(), EdgeOpcConfig::for_pixel_pitch(8.0)).run(&target, 4);

    for (label, mask) in [
        ("ours", &ours.mask),
        ("conventional", &conv.mask),
        ("levelset", &ls.mask),
        ("opc", &opc.mask),
    ] {
        assert_eq!(mask.shape(), (64, 64), "{label}");
        assert!(mask.as_slice().iter().all(|&v| v == 0.0 || v == 1.0), "{label}");
        // Every method must produce a printable mask.
        let z = sim.print(mask, ProcessCondition::nominal());
        assert!(z.count_on() > 0, "{label} printed nothing");
    }
}

#[test]
fn postprocessing_reduces_or_preserves_shot_count() {
    let sim = small_sim(64, 8.0, 3);
    let target = bar_target(64);
    let plain = MultiLevelIlt::new(sim.clone(), IltConfig::default())
        .run(&target, &[Stage::low_res(1, 10)]);
    let post = MultiLevelIlt::new(
        sim.clone(),
        IltConfig {
            postprocess: Some(SimplifyConfig { min_area: 4, ..SimplifyConfig::default() }),
            ..IltConfig::default()
        },
    )
    .run(&target, &[Stage::low_res(1, 10)]);
    assert!(
        shot_count(&post.mask) <= shot_count(&plain.mask),
        "post-processing must not add shots: {} vs {}",
        shot_count(&post.mask),
        shot_count(&plain.mask)
    );
}
