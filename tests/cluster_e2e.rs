//! End-to-end cluster chaos: a coordinator and two `ilt worker` processes
//! on loopback, one worker armed with an injected process crash
//! (`--inject crash@0`) that kills it mid-job. The coordinator must detect
//! the death, re-dispatch the lost shard to the survivor, and still serve
//! a mask byte-identical to the single-process batch engine — with the
//! re-dispatch visible in `/metrics`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use multilevel_ilt::cluster::{ExecPolicy, JobParams};
use multilevel_ilt::field::pgm_bytes;
use multilevel_ilt::runtime::{run_batch, SimulatorCache};

/// Kills the child on drop so a failing assertion never leaks processes.
struct Proc(Child);

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns the `ilt` binary and returns once it prints its listen line.
fn spawn_ilt(args: &[&str]) -> (Proc, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ilt"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ilt");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .unwrap_or_else(|| panic!("ilt {args:?} exited before its listen line"))
            .expect("read child stdout");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest.trim().to_string();
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (Proc(child), addr)
}

/// One `connection: close` HTTP exchange; returns status and body.
fn http(addr: &str, method: &str, path: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: 0\r\nconnection: close\r\n\r\n"
            )
            .as_bytes(),
        )
        .expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("response head") + 4;
    let status: u16 = String::from_utf8_lossy(&raw[..head_end])
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, raw[head_end..].to_vec())
}

#[test]
fn crashed_worker_is_redispatched_and_mask_stays_byte_identical() {
    const QUERY: &str = "via=7&grid=128&kernels=3&tile=64&halo=8&iters=2&threads=1&eval=0";

    // Reference: the in-process batch engine on the identical parameters.
    let params = JobParams::from_saved(QUERY, Vec::new(), &ExecPolicy::default()).expect("params");
    let (case, config) = params.plan().expect("plan");
    let cache = SimulatorCache::new();
    let reference =
        run_batch(std::slice::from_ref(&case), &config, &cache).expect("local batch");
    let reference_pgm = pgm_bytes(&reference.cases[0].mask, 0.0, 1.0);

    // Worker A aborts its own process right after job 0's checkpoint is
    // durable (the crash plan is local: the coordinator never forwards
    // fault specs). Worker B is healthy.
    let state_a = std::env::temp_dir().join(format!("ilt-cluster-e2e-{}", std::process::id()));
    let (worker_a, addr_a) = spawn_ilt(&[
        "worker",
        "--addr",
        "127.0.0.1:0",
        "--state-dir",
        state_a.to_str().expect("utf-8 temp path"),
        "--inject",
        "crash@0",
    ]);
    let (_worker_b, addr_b) = spawn_ilt(&["worker", "--addr", "127.0.0.1:0"]);
    let (_coordinator, addr_c) = spawn_ilt(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--threads",
        "1",
        "--workers",
        &format!("{addr_a},{addr_b}"),
        "--heartbeat-ms",
        "100",
    ]);

    let (status, body) = http(&addr_c, "POST", &format!("/v1/jobs?{QUERY}"));
    assert_eq!(status, 202, "submit: {}", String::from_utf8_lossy(&body));

    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let (status, body) = http(&addr_c, "GET", "/v1/jobs/0");
        assert_eq!(status, 200);
        let body = String::from_utf8_lossy(&body).into_owned();
        if body.contains("\"state\":\"done\"") {
            break;
        }
        assert!(!body.contains("\"state\":\"failed\""), "job must survive the crash: {body}");
        assert!(Instant::now() < deadline, "job did not finish in time: {body}");
        std::thread::sleep(Duration::from_millis(200));
    }

    let (status, mask) = http(&addr_c, "GET", "/v1/jobs/0/mask");
    assert_eq!(status, 200);
    assert_eq!(mask, reference_pgm, "cluster mask must match ilt batch byte-for-byte");

    let (status, metrics) = http(&addr_c, "GET", "/metrics");
    assert_eq!(status, 200);
    let metrics = String::from_utf8_lossy(&metrics).into_owned();
    let redispatched: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("ilt_shards_redispatched_total "))
        .expect("re-dispatch counter exported")
        .trim()
        .parse()
        .expect("numeric counter");
    assert!(redispatched >= 1, "the crashed shard must be re-dispatched:\n{metrics}");
    assert!(
        metrics.contains("ilt_workers_configured 2"),
        "both replicas configured:\n{metrics}"
    );

    // The crash plan really fired: worker A is dead of an abnormal exit,
    // not still serving.
    let mut worker_a = worker_a;
    let exit = worker_a
        .0
        .wait_timeout_like(Duration::from_secs(10))
        .expect("worker A must have aborted");
    assert!(!exit.success(), "worker A must die of the injected abort, got {exit:?}");

    let _ = std::fs::remove_dir_all(&state_a);
}

/// `Child::wait` with a deadline, std-only (no `wait-timeout` crate).
trait WaitTimeoutLike {
    fn wait_timeout_like(&mut self, limit: Duration) -> Option<std::process::ExitStatus>;
}

impl WaitTimeoutLike for Child {
    fn wait_timeout_like(&mut self, limit: Duration) -> Option<std::process::ExitStatus> {
        let deadline = Instant::now() + limit;
        while Instant::now() < deadline {
            if let Ok(Some(status)) = self.try_wait() {
                return Some(status);
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        None
    }
}
