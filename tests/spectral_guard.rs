//! End-to-end guard for the pruned spectral engine.
//!
//! The simulator's hot path now runs a real-input forward FFT and a pruned
//! padded inverse per kernel. This test re-derives the aerial image through
//! the textbook dense path — complex forward transform, explicit
//! `pad_centered_into`, full-size inverse — and asserts the production
//! pipeline matches to near machine precision, so the printed masks the rest
//! of the repo reasons about are bit-for-bit unchanged by the optimization.

use multilevel_ilt::fft::{crop_centered, pad_centered_into, Complex64, Fft2d};
use multilevel_ilt::prelude::*;

fn sim(grid: usize) -> LithoSimulator {
    let cfg = OpticsConfig {
        grid,
        nm_per_px: 4.0,
        num_kernels: 6,
        ..OpticsConfig::default()
    };
    LithoSimulator::new(cfg).expect("valid optics")
}

fn test_mask(n: usize) -> Field2D {
    // A via plus an L-bar: asymmetric on purpose so any index-convention
    // slip in the pruned path shows up as a shifted image.
    Field2D::from_fn(n, n, |r, c| {
        let via = (n / 5..n / 5 + n / 8).contains(&r) && (n / 2..n / 2 + n / 8).contains(&c);
        let bar = (n / 2..n * 3 / 4).contains(&r) && (n / 4..n / 4 + n / 16).contains(&c)
            || (n * 3 / 4 - n / 16..n * 3 / 4).contains(&r) && (n / 4..n * 5 / 8).contains(&c);
        if via || bar {
            1.0
        } else {
            0.0
        }
    })
}

/// Dense reference aerial image: Eq. 3 with no pruning, no real-input
/// packing, and per-call buffers. Deliberately naive.
fn dense_aerial(sim: &LithoSimulator, mask: &Field2D, defocus: bool) -> Field2D {
    let (m, _) = mask.shape();
    let kernels = sim.kernels(defocus);
    let p = kernels.p();
    let fft = Fft2d::new(m, m);

    let mut spec: Vec<Complex64> =
        mask.as_slice().iter().map(|&x| Complex64::from_real(x)).collect();
    fft.forward(&mut spec);
    let low = crop_centered(&spec, m, p);

    let mut intensity = vec![0.0; m * m];
    let mut buf = vec![Complex64::ZERO; m * m];
    for k in 0..kernels.num_kernels() {
        let w = kernels.weights()[k];
        let sk: Vec<Complex64> =
            kernels.spectrum(k).iter().zip(&low).map(|(&h, &f)| h * f).collect();
        pad_centered_into(&sk, p, &mut buf, m);
        fft.inverse(&mut buf);
        for (acc, z) in intensity.iter_mut().zip(&buf) {
            *acc += w * z.norm_sqr();
        }
    }
    Field2D::from_vec(m, m, intensity)
}

#[test]
fn pruned_aerial_matches_dense_reference() {
    let sim = sim(128);
    let mask = test_mask(128);
    for defocus in [false, true] {
        let fast = sim.aerial(&mask, defocus);
        let dense = dense_aerial(&sim, &mask, defocus);
        let worst = fast
            .as_slice()
            .iter()
            .zip(dense.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(worst <= 1e-12, "defocus={defocus}: aerial diverged by {worst:e}");
    }
}

#[test]
fn printed_masks_are_unchanged_by_the_pruned_engine() {
    let sim = sim(128);
    let mask = test_mask(128);
    for cond in [
        ProcessCondition::nominal(),
        ProcessCondition::inner(),
        ProcessCondition::outer(),
    ] {
        let fast = sim.print(&mask, cond);
        let reference =
            sim.resist_hard(&dense_aerial(&sim, &mask, cond.defocus), cond.dose);
        assert_eq!(
            fast.as_slice(),
            reference.as_slice(),
            "print differs from the dense reference under {cond:?}"
        );
    }
}
