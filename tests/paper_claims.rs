//! Tests that pin the paper's qualitative claims at miniature scale: each
//! test states the claim it guards.

use std::sync::Arc;

use multilevel_ilt::prelude::*;

fn sim(grid: usize, nm_per_px: f64, kernels: usize) -> Arc<LithoSimulator> {
    let cfg = OpticsConfig { grid, nm_per_px, num_kernels: kernels, ..OpticsConfig::default() };
    Arc::new(LithoSimulator::new(cfg).expect("valid optics"))
}

fn bar_target(n: usize) -> Field2D {
    Field2D::from_fn(n, n, |r, c| {
        if (n * 7 / 16..n * 9 / 16).contains(&r) && (n / 4..n * 3 / 4).contains(&c) {
            1.0
        } else {
            0.0
        }
    })
}

/// Section III-C: with `T_R = 0`, the first iterations drive the
/// background strongly negative, locking SRAFs out; with `T_R = 0.5` the
/// background stays plastic. We assert the direct mechanism: after the
/// same iteration budget, the background transmission (soft mask outside
/// the target) is higher under `T_R = 0.5`.
#[test]
fn improved_binary_function_keeps_background_plastic() {
    let s = sim(64, 8.0, 4);
    let target = bar_target(64);
    let background_mass = |binary: BinaryFunction| -> f64 {
        let cfg = IltConfig {
            binary,
            output_binary: binary,
            smoothing: None,
            ..IltConfig::default()
        };
        let result = MultiLevelIlt::new(s.clone(), cfg).run(&target, &[Stage::low_res(1, 10)]);
        // Soft mask value in the background region.
        let soft = binary.apply_field(&result.raw_mask);
        soft.as_slice()
            .iter()
            .zip(target.as_slice())
            .filter(|(_, &t)| t < 0.5)
            .map(|(&m, _)| m)
            .sum()
    };
    let legacy = background_mass(BinaryFunction::legacy_sigmoid());
    let paper = background_mass(BinaryFunction::paper_sigmoid());
    assert!(
        paper > legacy,
        "T_R = 0.5 must keep more background transmission: {paper} vs {legacy}"
    );
}

/// Section III-D: the 3x3 stride-1 average pool smooths contours, so the
/// optimized mask has no more connected components (holes/fragments) than
/// the unsmoothed run.
#[test]
fn smoothing_pool_reduces_mask_fragmentation() {
    let s = sim(64, 8.0, 4);
    let target = bar_target(64);
    let components = |smoothing: Option<Smoothing>| -> usize {
        let cfg = IltConfig { smoothing, ..IltConfig::default() };
        let result = MultiLevelIlt::new(s.clone(), cfg).run(&target, &[Stage::low_res(1, 15)]);
        multilevel_ilt::geom::component_count(&result.mask)
    };
    let with = components(Some(Smoothing::default()));
    let without = components(None);
    assert!(
        with <= without,
        "smoothing must not fragment the mask: {with} vs {without}"
    );
}

/// Section III-B: Eq. 8's all-reduced simulation is much cheaper than the
/// full-resolution Eq. 3 (the paper reports ~17x at s = 4 on 2048 grids;
/// we require >= 3x at s = 4 on a reduced grid, which already includes all
/// fixed overheads).
#[test]
fn low_res_simulation_is_much_faster() {
    let s = sim(256, 2.0, 6);
    let target = bar_target(256);
    let mask_s = avg_pool_down(&target, 4);

    // Warm both paths (plan construction).
    let _ = s.aerial(&target, false);
    let _ = s.aerial(&mask_s, false);

    let reps = 5;
    let t_full = TurnaroundTimer::start();
    for _ in 0..reps {
        std::hint::black_box(s.aerial(&target, false));
    }
    let full = t_full.elapsed().as_secs_f64();
    let t_low = TurnaroundTimer::start();
    for _ in 0..reps {
        std::hint::black_box(s.aerial(&mask_s, false));
    }
    let low = t_low.elapsed().as_secs_f64();
    assert!(
        full / low >= 3.0,
        "Eq. 8 speedup too small: {:.2}x (full {full:.4}s, low {low:.4}s)",
        full / low
    );
}

/// Section III-B: Eq. 7 equals Eq. 3 sampled every s pixels (exactly, for
/// band-limited kernels) while being significantly cheaper.
#[test]
fn eq7_is_exact_and_cheaper() {
    let s = sim(128, 4.0, 4);
    let target = bar_target(128);
    let full = s.aerial(&target, false);
    let sub = s.aerial_subsampled(&target, 4, false);
    for r in 0..32 {
        for c in 0..32 {
            assert!(
                (full[(r * 4, c * 4)] - sub[(r, c)]).abs() < 1e-9,
                "Eq. 7 must subsample exactly at ({r},{c})"
            );
        }
    }
}

/// Section IV-C: the iteration budget is an upper bound — with an
/// early-exit window the optimizer stops when the loss stalls.
#[test]
fn early_exit_bounds_iterations() {
    let s = sim(64, 8.0, 3);
    let target = bar_target(64);
    let cfg = IltConfig {
        learning_rate: 0.0, // stalls immediately
        early_exit_window: Some(15),
        ..IltConfig::default()
    };
    let result = MultiLevelIlt::new(s, cfg).run(&target, &[Stage::low_res(2, 100)]);
    assert_eq!(result.total_iterations, 16, "15-iteration window plus the first");
}

/// Table I's qualitative ordering: downsampled masks are simpler. The
/// high-res (downsampling) variant must produce no more shots than
/// conventional full-resolution ILT under the same budget.
#[test]
fn downsampling_simplifies_masks() {
    let s = sim(128, 4.0, 4);
    let target = bar_target(128);
    let full = MultiLevelIlt::new(s.clone(), IltConfig::default())
        .run(&target, &[Stage::low_res(1, 12)]);
    let down = MultiLevelIlt::new(s.clone(), IltConfig::default())
        .run(&target, &[Stage::high_res(2, 12)]);
    assert!(
        shot_count(&down.mask) <= shot_count(&full.mask),
        "downsampled mask must be simpler: {} vs {}",
        shot_count(&down.mask),
        shot_count(&full.mask)
    );
}

/// Fig. 7: under Option 2 the writable region includes the inter-feature
/// corridor, so the SRAF-capable method gets at least as much writable
/// area as under Option 1.
#[test]
fn option2_grants_more_writable_area() {
    let target = {
        let case = iccad2013_case(2);
        case.rasterize(128)
    };
    let o1 = OptimizeRegion::option1_default().region_mask(&target, 16.0);
    let o2 = OptimizeRegion::option2_default().region_mask(&target, 16.0);
    assert!(o2.count_on() >= o1.count_on());
}

/// Eq. 12 + Section III-C: the final output uses `T_R = 0.4`, which can
/// only keep *more* pixels than the optimization threshold would.
#[test]
fn output_threshold_is_more_permissive() {
    let raw = Field2D::from_fn(16, 16, |r, c| (r as f64 - 8.0) * 0.1 + (c as f64) * 0.01);
    let opt = BinaryFunction::paper_sigmoid().apply_field(&raw).threshold(0.5);
    let out = BinaryFunction::output_sigmoid().apply_field(&raw).threshold(0.5);
    for (a, b) in opt.as_slice().iter().zip(out.as_slice()) {
        assert!(b >= a, "output binarization must be a superset");
    }
    assert!(out.count_on() >= opt.count_on());
}
