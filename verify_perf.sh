#!/bin/bash
# Verifies the spectral-engine fast paths hold their performance claims:
#   1. `ilt bench-fft` completes — it cross-checks the pruned inverse and
#      real-input forward against the dense transforms internally and exits
#      non-zero on any divergence, so this doubles as a correctness gate;
#   2. the emitted JSON is well-formed and, at N=1024 (the full-chip serving
#      grid), the pruned padded inverse is no slower than the dense
#      pad-then-invert path it replaces.
# Speedup *targets* (2x pruned, 1.3x real) are recorded in BENCH_fft.json at
# the repo root; this gate only enforces "never a regression below 1x" so it
# stays robust on noisy shared machines.
set -e
BIN=./target/release/ilt
OUT=bench-out/fft
mkdir -p "$OUT"

"$BIN" bench-fft --json "$OUT/BENCH_fft.json" | tee "$OUT/bench-fft.log"

python3 - "$OUT/BENCH_fft.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["schema"] == "ilt-bench-fft/v1", doc.get("schema")
rows = {r["n"]: r for r in doc["results"]}
assert set(rows) == {256, 512, 1024, 2048}, sorted(rows)

r = rows[1024]
if r["pruned_inverse_us"] > r["dense_pad_inverse_us"]:
    sys.exit(
        f"PERF_REGRESSION: pruned inverse ({r['pruned_inverse_us']:.0f} us) slower "
        f"than dense ({r['dense_pad_inverse_us']:.0f} us) at N=1024"
    )
print(
    f"N=1024: pruned inverse {r['pruned_speedup']:.2f}x, "
    f"real forward {r['real_speedup']:.2f}x vs dense"
)
EOF

echo PERF_VERIFIED
