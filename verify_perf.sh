#!/bin/bash
# Verifies the spectral-engine fast paths hold their performance claims via
# the in-tree barometer (`ilt bench`, crates/ilt-perf) — no python anywhere:
#   1. `ilt bench run --tag fft` completes — each FFT workload cross-checks
#      its fast path against the dense reference internally and exits
#      non-zero on any divergence, so this doubles as a correctness gate;
#   2. every fresh result carries the runtime-detected SIMD kernel stamp
#      (`"simd": "avx2" | "sse2" | "scalar"`), so a checked-in number can
#      never be compared against a run on mystery hardware;
#   3. `ilt bench diff --tag fft` compares the fresh medians against the
#      checked-in BENCH_<workload>.json baselines at the repo root and exits
#      non-zero past a workload's regression threshold (50% for the FFT
#      family — generous enough to stay robust on noisy shared machines);
#   4. with ILT_FFT_FORCE_SCALAR=1 the scalar fallback passes the same
#      bit-identity guard tests as the SIMD kernels, proving the forced
#      path stays live and numerically identical.
set -e
BIN=./target/release/ilt
OUT=bench-out/perf
mkdir -p "$OUT"

"$BIN" bench run --tag fft --out "$OUT" | tee bench-out/bench-fft.log

# Every fresh FFT result must carry a recognized kernel stamp.
for f in "$OUT"/BENCH_fft_*.json; do
  grep -Eq '"simd": "(avx2|sse2|scalar)"' "$f" \
    || { echo "missing/unknown simd stamp in $f"; exit 1; }
done
echo "simd stamp: $(grep -Eo '"simd": "[a-z0-9]+"' "$OUT"/BENCH_fft_real_forward.json)"

"$BIN" bench diff --tag fft --out "$OUT" --baselines . | tee -a bench-out/bench-fft.log

# The forced-scalar fallback must stay bit-identical to the reference
# paths: run the kernel guard suite with SIMD disabled.
ILT_FFT_FORCE_SCALAR=1 cargo test -q -p ilt-fft --test kernel_guard \
  | tee bench-out/scalar-guard.log

echo PERF_VERIFIED
