#!/bin/bash
# Verifies the spectral-engine fast paths hold their performance claims via
# the in-tree barometer (`ilt bench`, crates/ilt-perf) — no python anywhere:
#   1. `ilt bench run --tag fft` completes — each FFT workload cross-checks
#      its fast path against the dense reference internally and exits
#      non-zero on any divergence, so this doubles as a correctness gate;
#   2. `ilt bench diff --tag fft` compares the fresh medians against the
#      checked-in BENCH_<workload>.json baselines at the repo root and exits
#      non-zero past a workload's regression threshold (50% for the FFT
#      family — generous enough to stay robust on noisy shared machines).
set -e
BIN=./target/release/ilt
OUT=bench-out/perf
mkdir -p "$OUT"

"$BIN" bench run --tag fft --out "$OUT" | tee bench-out/bench-fft.log
"$BIN" bench diff --tag fft --out "$OUT" --baselines . | tee -a bench-out/bench-fft.log

echo PERF_VERIFIED
