//! Synthetic M1-layer benchmark cases.
//!
//! The ICCAD 2013 contest layouts (cases 1–10) and the ten extended cases
//! released with Neural-ILT (cases 11–20) are not redistributable, so we
//! synthesize stand-ins that preserve what the experiments depend on:
//!
//! * the published polygon **area** of each case (Tables II and IV of the
//!   paper), matched to within one balance-wire quantum (64 nm^2),
//! * the 2048 nm clip at 32 nm-node M1 feature scale (60–80 nm wires),
//! * deterministic geometry (same case id -> same layout, forever).
//!
//! Patterns are ladders of horizontal wires (with T-stubs for shape
//! variety) plus a column field of vertical wires, finished with one
//! "balance wire" whose length makes the total area land on the published
//! value.

use crate::layout::{Layout, NmRect};

/// Side length of every benchmark clip, matching the contest's 2048 x 2048
/// nm layout window.
pub const CLIP_NM: u32 = 2048;

/// Published areas (nm^2) of ICCAD 2013 cases 1–10 (Table II of the paper).
pub const ICCAD2013_AREAS: [u64; 10] = [
    215344, 169280, 213504, 82560, 281958, 286234, 229149, 128544, 317581, 102400,
];

/// Published areas (nm^2) of the extended cases 11–20 (Table IV).
pub const EXTENDED_AREAS: [u64; 10] = [
    494560, 448496, 492720, 361776, 561174, 565450, 445365, 407760, 596797, 381616,
];

/// The synthetic stand-in for ICCAD 2013 `case1`..`case10`.
///
/// # Panics
///
/// Panics unless `1 <= id <= 10`.
///
/// # Examples
///
/// ```
/// use ilt_layouts::{iccad2013_case, ICCAD2013_AREAS};
///
/// let case4 = iccad2013_case(4);
/// let err = case4.area_nm2().abs_diff(ICCAD2013_AREAS[3]);
/// assert!(err < 64, "area off by {err} nm^2");
/// ```
pub fn iccad2013_case(id: usize) -> Layout {
    assert!((1..=10).contains(&id), "ICCAD 2013 has cases 1..=10, got {id}");
    if id == 10 {
        // The real case 10 is a single 320 x 320 nm square (area 102400).
        return Layout::new(
            "case10",
            CLIP_NM,
            vec![NmRect::new(864, 864, 1184, 1184)],
        );
    }
    synth_case(format!("case{id}"), ICCAD2013_AREAS[id - 1], id as u64)
}

/// The synthetic stand-in for extended `case11`..`case20` (denser clips
/// used by Table IV).
///
/// # Panics
///
/// Panics unless `11 <= id <= 20`.
pub fn extended_case(id: usize) -> Layout {
    assert!((11..=20).contains(&id), "extended cases are 11..=20, got {id}");
    synth_case(format!("case{id}"), EXTENDED_AREAS[id - 11], id as u64 * 31 + 7)
}

/// All ten ICCAD 2013 cases in order.
pub fn iccad2013_suite() -> Vec<Layout> {
    (1..=10).map(iccad2013_case).collect()
}

/// All ten extended cases in order.
pub fn extended_suite() -> Vec<Layout> {
    (11..=20).map(extended_case).collect()
}

/// Tiny deterministic LCG; `rand` is reserved for the via sampler where
/// rejection sampling wants a real RNG.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// Uniform value in `[lo, hi]`.
    fn range(&mut self, lo: u32, hi: u32) -> u32 {
        lo + (self.next() % u64::from(hi - lo + 1)) as u32
    }
}

fn synth_case(name: String, target_area: u64, seed: u64) -> Layout {
    let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
    let mut rects: Vec<NmRect> = Vec::new();
    let mut remaining = target_area;

    // Stop adding character features once the leftover fits comfortably in
    // the balance wires (keeps their lengths in a realistic range).
    const BALANCE_MIN: u64 = 24_000;
    const BALANCE_MAX: u64 = 60_000;

    // Horizontal wire ladder: bands at 140 nm pitch between y = 260 and
    // y = 1380; each wire (plus optional T-stub) stays inside its band.
    let mut band = 0u32;
    while remaining > BALANCE_MAX && band < 8 {
        let y0 = 260 + band * 140;
        let w = [64u32, 72, 80][(rng.next() % 3) as usize];
        let len = rng.range(360, 980);
        let x0 = rng.range(240, 2048 - len - 240);
        let wire = NmRect::new(x0, y0, x0 + len, y0 + w);
        if remaining < wire.area() + BALANCE_MIN {
            break;
        }
        remaining -= wire.area();
        rects.push(wire);

        // T-stub on top of some wires for shape variety.
        if rng.next() % 2 == 0 && remaining > BALANCE_MAX {
            let sw = rng.range(64, 96);
            let sx = x0 + rng.range(40, len - sw - 40);
            let stub = NmRect::new(sx, y0 + w, sx + sw, y0 + w + 48);
            if remaining >= stub.area() + BALANCE_MIN {
                remaining -= stub.area();
                rects.push(stub);
            }
        }
        band += 1;
    }

    // Vertical wire field: columns at 150 nm pitch in the top region.
    let mut col = 0u32;
    while remaining > BALANCE_MAX && col < 11 {
        let x0 = 260 + col * 150;
        let w = [64u32, 72][(rng.next() % 2) as usize];
        let h = rng.range(300, 480);
        let y0 = rng.range(1460, 1980 - h);
        let wire = NmRect::new(x0, y0, x0 + w, y0 + h);
        if remaining < wire.area() + BALANCE_MIN {
            break;
        }
        remaining -= wire.area();
        rects.push(wire);
        col += 1;
    }

    // Balance wires: up to three 64 nm-tall rows in a reserved bottom strip
    // (y < 260, below the ladder), with total length chosen so the area
    // lands on the published value. The sub-64 nm^2 residue is the only
    // mismatch.
    let mut len_total = (remaining / 64) as u32;
    assert!(
        (1..=3 * 1600).contains(&len_total),
        "balance length {len_total} out of range for {name} (remaining {remaining})"
    );
    for row in 0..3u32 {
        if len_total == 0 {
            break;
        }
        let len = len_total.min(1600);
        let x0 = (2048 - len) / 2;
        let y0 = 24 + row * 80;
        rects.push(NmRect::new(x0, y0, x0 + len, y0 + 64));
        len_total -= len;
    }

    Layout::new(name, CLIP_NM, rects)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_iccad_cases_match_published_areas() {
        for (id, &want) in (1..=10).zip(&ICCAD2013_AREAS) {
            let layout = iccad2013_case(id);
            let err = layout.area_nm2().abs_diff(want);
            assert!(err < 64, "case{id}: area {} vs published {want}", layout.area_nm2());
        }
    }

    #[test]
    fn all_extended_cases_match_published_areas() {
        for (id, &want) in (11..=20).zip(&EXTENDED_AREAS) {
            let layout = extended_case(id);
            let err = layout.area_nm2().abs_diff(want);
            assert!(err < 64, "case{id}: area {} vs published {want}", layout.area_nm2());
        }
    }

    #[test]
    fn case10_is_the_contest_square() {
        let layout = iccad2013_case(10);
        assert_eq!(layout.rects().len(), 1);
        assert_eq!(layout.area_nm2(), 102400);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(iccad2013_case(3), iccad2013_case(3));
        assert_eq!(extended_case(17), extended_case(17));
    }

    #[test]
    fn cases_are_distinct() {
        let a = iccad2013_case(1);
        let b = iccad2013_case(2);
        assert_ne!(a.rects(), b.rects());
    }

    #[test]
    fn extended_cases_have_more_geometry_than_iccad() {
        let avg_iccad: f64 = iccad2013_suite()
            .iter()
            .map(|l| l.rects().len() as f64)
            .sum::<f64>()
            / 10.0;
        let avg_ext: f64 =
            extended_suite().iter().map(|l| l.rects().len() as f64).sum::<f64>() / 10.0;
        assert!(
            avg_ext > avg_iccad,
            "extended cases should carry more shapes: {avg_ext} vs {avg_iccad}"
        );
    }

    #[test]
    fn features_are_m1_scale() {
        for layout in iccad2013_suite() {
            for r in layout.rects() {
                let w = (r.x1 - r.x0).min(r.y1 - r.y0);
                assert!((48..=320).contains(&w), "{}: feature width {w}", layout.name());
            }
        }
    }

    #[test]
    fn rasterization_round_trips_at_power_of_two_grids() {
        let layout = iccad2013_case(1);
        for grid in [256usize, 512] {
            let img = layout.rasterize(grid);
            let px_area = img.count_on() as f64 * layout.nm_per_px(grid).powi(2);
            let rel = (px_area - layout.area_nm2() as f64).abs() / layout.area_nm2() as f64;
            assert!(rel < 0.08, "grid {grid}: relative area error {rel}");
        }
    }

    #[test]
    #[should_panic(expected = "cases 1..=10")]
    fn out_of_range_case_panics() {
        let _ = iccad2013_case(11);
    }
}
