//! Benchmark layouts for multi-level ILT.
//!
//! Three families, mirroring the paper's evaluation (Section IV):
//!
//! * [`iccad2013_case`] — stand-ins for the ten ICCAD 2013 M1 contest
//!   clips, calibrated to the published areas of Table II,
//! * [`extended_case`] — stand-ins for the ten denser Neural-ILT cases of
//!   Table IV,
//! * [`via_pattern`] — random via clips for the Section IV-C study.
//!
//! Layouts are rectangle lists in nm ([`Layout`]) rasterizable onto any
//! grid size, so the same case can be run at the paper's full 2048-pixel
//! resolution or at reduced scale on small machines.
//!
//! # Example
//!
//! ```
//! use ilt_layouts::iccad2013_case;
//!
//! let case1 = iccad2013_case(1);
//! let target = case1.rasterize(512);           // 4 nm pixels
//! assert_eq!(target.shape(), (512, 512));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod layout;
mod m1;
mod rng;
mod via;

pub use layout::{Layout, NmRect};
pub use rng::Xorshift64Star;
pub use m1::{
    extended_case, extended_suite, iccad2013_case, iccad2013_suite, CLIP_NM, EXTENDED_AREAS,
    ICCAD2013_AREAS,
};
pub use via::{via_pattern, via_pattern_with, via_suite, ViaPatternConfig};
