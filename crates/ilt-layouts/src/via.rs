//! Random via-layer patterns (Section IV-C of the paper).
//!
//! The paper evaluates on fifteen 2048 x 2048 via clips drawn from the
//! dataset of [14] (attention-based hotspot detection). That dataset is not
//! redistributable, so we sample synthetic via arrays with the same
//! character: small square contacts (~70 nm) scattered with a minimum
//! center-to-center spacing, some in dense clusters, some isolated —
//! exactly the regime where "via shapes are smaller than shapes on the M1
//! layer and require finer adjustments".

use crate::layout::{Layout, NmRect};
use crate::m1::CLIP_NM;
use crate::rng::Xorshift64Star;

/// Configuration for the via-pattern sampler.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ViaPatternConfig {
    /// Side of each (square) via in nm.
    pub via_nm: u32,
    /// Number of vias to place.
    pub count: usize,
    /// Minimum center-to-center spacing in nm.
    pub min_spacing_nm: u32,
    /// Margin kept free at the clip border, in nm.
    pub margin_nm: u32,
}

impl Default for ViaPatternConfig {
    /// ~70 nm contacts, 25 per clip, 250 nm spacing — dense enough for
    /// optical interaction between neighbors.
    fn default() -> Self {
        ViaPatternConfig { via_nm: 70, count: 25, min_spacing_nm: 250, margin_nm: 300 }
    }
}

/// Samples a random via clip with the default configuration.
///
/// Deterministic per seed.
///
/// # Examples
///
/// ```
/// use ilt_layouts::via_pattern;
///
/// let clip = via_pattern(3);
/// assert_eq!(clip.rects().len(), 25);
/// assert_eq!(clip, via_pattern(3)); // deterministic
/// ```
pub fn via_pattern(seed: u64) -> Layout {
    via_pattern_with(seed, ViaPatternConfig::default())
}

/// Samples a random via clip with an explicit configuration.
///
/// # Panics
///
/// Panics if the configuration cannot be satisfied (too many vias for the
/// spacing) after a generous rejection-sampling budget.
pub fn via_pattern_with(seed: u64, cfg: ViaPatternConfig) -> Layout {
    let mut rng = Xorshift64Star::new(seed.wrapping_mul(0xA076_1D64_78BD_642F));
    let lo = cfg.margin_nm;
    let hi = CLIP_NM - cfg.margin_nm - cfg.via_nm;
    assert!(hi > lo, "margins leave no room for vias");

    let mut centers: Vec<(i64, i64)> = Vec::with_capacity(cfg.count);
    let mut rects = Vec::with_capacity(cfg.count);
    let mut attempts = 0usize;
    let mut stuck = 0usize;
    while rects.len() < cfg.count {
        attempts += 1;
        assert!(
            attempts < 1_000_000,
            "could not place {} vias with {} nm spacing",
            cfg.count,
            cfg.min_spacing_nm
        );
        // Sequential placement can jam (no room left for the remaining
        // vias even though a global arrangement exists). Restart from an
        // empty clip — the RNG stream continues, so the result is still a
        // pure function of the seed.
        stuck += 1;
        if stuck > 4000 {
            centers.clear();
            rects.clear();
            stuck = 0;
        }
        let x0 = rng.gen_range_u32(lo, hi);
        let y0 = rng.gen_range_u32(lo, hi);
        let cx = i64::from(x0) + i64::from(cfg.via_nm) / 2;
        let cy = i64::from(y0) + i64::from(cfg.via_nm) / 2;
        let min_d2 = i64::from(cfg.min_spacing_nm) * i64::from(cfg.min_spacing_nm);
        if centers
            .iter()
            .all(|&(px, py)| (px - cx).pow(2) + (py - cy).pow(2) >= min_d2)
        {
            centers.push((cx, cy));
            rects.push(NmRect::new(x0, y0, x0 + cfg.via_nm, y0 + cfg.via_nm));
            stuck = 0;
        }
    }
    rects.sort();
    Layout::new(format!("via{seed}"), CLIP_NM, rects)
}

/// The fifteen-clip via suite used by Section IV-C.
pub fn via_suite() -> Vec<Layout> {
    (0..15).map(via_pattern).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spacing_constraint_is_respected() {
        let cfg = ViaPatternConfig::default();
        let clip = via_pattern(7);
        let centers: Vec<(i64, i64)> = clip
            .rects()
            .iter()
            .map(|r| {
                (
                    i64::from(r.x0) + i64::from(cfg.via_nm) / 2,
                    i64::from(r.y0) + i64::from(cfg.via_nm) / 2,
                )
            })
            .collect();
        for i in 0..centers.len() {
            for j in i + 1..centers.len() {
                let d2 = (centers[i].0 - centers[j].0).pow(2)
                    + (centers[i].1 - centers[j].1).pow(2);
                assert!(
                    d2 >= i64::from(cfg.min_spacing_nm).pow(2),
                    "vias {i} and {j} too close"
                );
            }
        }
    }

    #[test]
    fn all_vias_have_requested_size() {
        let clip = via_pattern(1);
        for r in clip.rects() {
            assert_eq!(r.x1 - r.x0, 70);
            assert_eq!(r.y1 - r.y0, 70);
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(via_pattern(1), via_pattern(2));
    }

    #[test]
    fn suite_has_fifteen_clips() {
        let suite = via_suite();
        assert_eq!(suite.len(), 15);
        for clip in &suite {
            assert_eq!(clip.rects().len(), 25);
        }
    }

    #[test]
    fn custom_config_is_honored() {
        let cfg = ViaPatternConfig { via_nm: 90, count: 9, min_spacing_nm: 400, margin_nm: 200 };
        let clip = via_pattern_with(11, cfg);
        assert_eq!(clip.rects().len(), 9);
        assert_eq!(clip.rects()[0].x1 - clip.rects()[0].x0, 90);
    }

    #[test]
    fn margin_is_respected() {
        let clip = via_pattern(5);
        for r in clip.rects() {
            assert!(r.x0 >= 300 && r.y0 >= 300);
            assert!(r.x1 <= CLIP_NM - 300 && r.y1 <= CLIP_NM - 300);
        }
    }
}
