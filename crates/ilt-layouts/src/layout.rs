//! Layouts as rectangle lists in physical (nm) coordinates.

use ilt_field::Field2D;

/// An axis-aligned rectangle in nm, `[x0, x1) x [y0, y1)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NmRect {
    /// Left edge (nm).
    pub x0: u32,
    /// Bottom edge (nm).
    pub y0: u32,
    /// Right edge (nm, exclusive).
    pub x1: u32,
    /// Top edge (nm, exclusive).
    pub y1: u32,
}

impl NmRect {
    /// Creates a rectangle; coordinates must be ordered.
    ///
    /// # Panics
    ///
    /// Panics if `x1 < x0` or `y1 < y0`.
    pub fn new(x0: u32, y0: u32, x1: u32, y1: u32) -> Self {
        assert!(x1 >= x0 && y1 >= y0, "inverted rect ({x0},{y0})..({x1},{y1})");
        NmRect { x0, y0, x1, y1 }
    }

    /// Area in nm^2.
    pub fn area(&self) -> u64 {
        u64::from(self.x1 - self.x0) * u64::from(self.y1 - self.y0)
    }

    /// Returns `true` if the rectangles share interior area.
    pub fn overlaps(&self, other: &NmRect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }
}

/// A benchmark layout: disjoint rectangles inside a square clip.
///
/// # Examples
///
/// ```
/// use ilt_layouts::{Layout, NmRect};
///
/// let layout = Layout::new("demo", 2048, vec![NmRect::new(864, 864, 1184, 1184)]);
/// assert_eq!(layout.area_nm2(), 320 * 320);
/// let img = layout.rasterize(256);
/// assert!(img.count_on() > 0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Layout {
    name: String,
    clip_nm: u32,
    rects: Vec<NmRect>,
}

impl Layout {
    /// Builds a layout from disjoint rectangles.
    ///
    /// # Panics
    ///
    /// Panics if any rectangle leaves the clip or overlaps another (the
    /// generators rely on disjointness for exact area accounting).
    pub fn new(name: impl Into<String>, clip_nm: u32, rects: Vec<NmRect>) -> Self {
        for (i, r) in rects.iter().enumerate() {
            assert!(
                r.x1 <= clip_nm && r.y1 <= clip_nm,
                "rect {i} {r:?} exceeds the {clip_nm} nm clip"
            );
            for (j, other) in rects.iter().enumerate().skip(i + 1) {
                assert!(!r.overlaps(other), "rects {i} and {j} overlap: {r:?} vs {other:?}");
            }
        }
        Layout { name: name.into(), clip_nm, rects }
    }

    /// Human-readable case name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Clip side length in nm.
    pub fn clip_nm(&self) -> u32 {
        self.clip_nm
    }

    /// The layout's rectangles.
    pub fn rects(&self) -> &[NmRect] {
        &self.rects
    }

    /// Exact polygon area in nm^2 (rectangles are disjoint).
    pub fn area_nm2(&self) -> u64 {
        self.rects.iter().map(NmRect::area).sum()
    }

    /// Physical pixel pitch when rasterized onto a `grid x grid` image.
    pub fn nm_per_px(&self, grid: usize) -> f64 {
        f64::from(self.clip_nm) / grid as f64
    }

    /// Rasterizes onto a `grid x grid` binary image (row 0 = bottom edge).
    ///
    /// A pixel is foreground when its center falls inside a rectangle, so
    /// coarse grids sample the geometry rather than smearing it.
    ///
    /// # Panics
    ///
    /// Panics if `grid` is zero.
    pub fn rasterize(&self, grid: usize) -> Field2D {
        assert!(grid > 0, "grid must be positive");
        let scale = f64::from(self.clip_nm) / grid as f64;
        let mut img = Field2D::zeros(grid, grid);
        for r in &self.rects {
            // Pixel centers at (i + 0.5) * scale; center-in-rect test gives
            // the index ranges below.
            let px0 = ((f64::from(r.x0) / scale - 0.5).ceil().max(0.0)) as usize;
            let px1 = (((f64::from(r.x1) / scale - 0.5).floor()) as isize + 1).max(0) as usize;
            let py0 = ((f64::from(r.y0) / scale - 0.5).ceil().max(0.0)) as usize;
            let py1 = (((f64::from(r.y1) / scale - 0.5).floor()) as isize + 1).max(0) as usize;
            for y in py0..py1.min(grid) {
                for x in px0..px1.min(grid) {
                    img[(y, x)] = 1.0;
                }
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_accounting_is_exact_for_disjoint_rects() {
        let l = Layout::new(
            "t",
            1000,
            vec![NmRect::new(0, 0, 100, 50), NmRect::new(200, 200, 260, 400)],
        );
        assert_eq!(l.area_nm2(), 100 * 50 + 60 * 200);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_rects_panic() {
        let _ = Layout::new(
            "t",
            1000,
            vec![NmRect::new(0, 0, 100, 100), NmRect::new(50, 50, 150, 150)],
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_clip_panics() {
        let _ = Layout::new("t", 100, vec![NmRect::new(0, 0, 101, 10)]);
    }

    #[test]
    fn rasterized_area_tracks_polygon_area() {
        let l = Layout::new("t", 2048, vec![NmRect::new(512, 512, 1536, 1536)]);
        for grid in [256usize, 512, 1024] {
            let img = l.rasterize(grid);
            let px_area = img.count_on() as f64 * l.nm_per_px(grid).powi(2);
            let rel = (px_area - l.area_nm2() as f64).abs() / l.area_nm2() as f64;
            assert!(rel < 0.02, "grid {grid}: {rel}");
        }
    }

    #[test]
    fn rasterization_at_native_resolution_is_exact() {
        let l = Layout::new("t", 256, vec![NmRect::new(10, 20, 60, 70)]);
        let img = l.rasterize(256);
        assert_eq!(img.count_on() as u64, l.area_nm2());
        assert_eq!(img[(20, 10)], 1.0);
        assert_eq!(img[(69, 59)], 1.0);
        assert_eq!(img[(70, 60)], 0.0);
    }

    #[test]
    fn nm_rect_geometry() {
        let r = NmRect::new(0, 0, 10, 20);
        assert_eq!(r.area(), 200);
        assert!(r.overlaps(&NmRect::new(5, 5, 15, 15)));
        assert!(!r.overlaps(&NmRect::new(10, 0, 20, 20))); // touching edges
    }
}
