//! A tiny deterministic PRNG for layout sampling.
//!
//! The via-pattern sampler only needs reproducible uniform integers, not
//! cryptographic quality, so an xorshift64* generator (Vigna, "An
//! experimental exploration of Marsaglia's xorshift generators, scrambled")
//! keeps the crate dependency-free and bit-stable across platforms and
//! toolchains — the same seed yields the same layout everywhere, forever.

/// An xorshift64* pseudo-random generator.
///
/// # Examples
///
/// ```
/// use ilt_layouts::Xorshift64Star;
///
/// let mut a = Xorshift64Star::new(42);
/// let mut b = Xorshift64Star::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xorshift64Star {
    state: u64,
}

impl Xorshift64Star {
    /// Creates a generator from a seed; a zero seed is remapped (xorshift
    /// state must be non-zero) through SplitMix64's increment constant.
    pub fn new(seed: u64) -> Self {
        let state = if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed };
        Xorshift64Star { state }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// Uses rejection sampling (Lemire-style threshold on the modulus), so
    /// the distribution is exactly uniform, and stays deterministic for a
    /// given seed and call sequence.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = u64::from(hi - lo) + 1;
        // Reject the tail of the 64-bit space that would bias the modulus.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let x = self.next_u64();
            if x < zone {
                return lo + (x % span) as u32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xorshift64Star::new(7);
        let mut b = Xorshift64Star::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Xorshift64Star::new(1);
        let mut b = Xorshift64Star::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Xorshift64Star::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = Xorshift64Star::new(99);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.gen_range_u32(10, 17);
            assert!((10..=17).contains(&v));
            seen_lo |= v == 10;
            seen_hi |= v == 17;
        }
        assert!(seen_lo && seen_hi, "both endpoints should appear");
    }

    #[test]
    fn degenerate_range_is_constant() {
        let mut r = Xorshift64Star::new(5);
        for _ in 0..10 {
            assert_eq!(r.gen_range_u32(3, 3), 3);
        }
    }

    #[test]
    fn roughly_uniform_over_small_range() {
        let mut r = Xorshift64Star::new(1234);
        let mut counts = [0usize; 8];
        let draws = 80_000;
        for _ in 0..draws {
            counts[r.gen_range_u32(0, 7) as usize] += 1;
        }
        let expect = draws / 8;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < (expect / 10) as u64,
                "bucket {i} count {c} far from {expect}"
            );
        }
    }
}
