//! Runtime-dispatched SIMD butterfly kernels.
//!
//! The kernel is selected **once per process** from CPU feature detection
//! (`is_x86_feature_detected!`) and the `ILT_FFT_FORCE_SCALAR` environment
//! variable, then cached; every [`crate::FftPlan::process`] call dispatches
//! through the cached choice with zero per-call detection cost.
//!
//! ## Bit-compatibility contract
//!
//! Every SIMD kernel performs **exactly the same IEEE-754 operations in the
//! same order** as the scalar reference in `plan.rs`:
//!
//! * complex multiply uses separate `mul`/`addsub` (or `mul`/`xor`/`add` on
//!   SSE2) — never FMA, which would contract `a*c - b*d` into a differently
//!   rounded result;
//! * the imaginary part exploits only the bitwise-safe commutativity of IEEE
//!   addition (`x.re*w.im + x.im*w.re` vs `x.im*w.re + x.re*w.im`);
//! * the `±i` rotation is a lane swap plus a sign-bit XOR, exact in both
//!   paths;
//! * subtraction via `a + (-b)` (SSE2 path) is bitwise equal to `a - b`.
//!
//! Consequently `process` and `process_scalar` agree bit-for-bit, printed
//! masks do not depend on the host CPU, and `ILT_FFT_FORCE_SCALAR=1` runs
//! reproduce SIMD runs exactly. `crates/ilt-fft/tests/kernel_guard.rs` pins
//! this contract.

use std::sync::OnceLock;

/// Which butterfly implementation `FftPlan::process` dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Kernel {
    /// 256-bit lanes, two complex values per butterfly step.
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    Avx2,
    /// 128-bit lanes, one complex value per butterfly step.
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    Sse2,
    /// Portable reference path.
    Scalar,
}

impl Kernel {
    fn name(self) -> &'static str {
        match self {
            Kernel::Avx2 => "avx2",
            Kernel::Sse2 => "sse2",
            Kernel::Scalar => "scalar",
        }
    }
}

/// The process-wide kernel choice, computed once.
pub(crate) fn active() -> Kernel {
    static ACTIVE: OnceLock<Kernel> = OnceLock::new();
    *ACTIVE.get_or_init(detect)
}

/// Name of the butterfly kernel selected for this process: `"avx2"`,
/// `"sse2"`, or `"scalar"`.
///
/// Benchmark environment stamps record this so baselines from different
/// machines are comparable; set `ILT_FFT_FORCE_SCALAR=1` before the first
/// transform to pin `"scalar"`.
///
/// # Examples
///
/// ```
/// let k = ilt_fft::active_kernel();
/// assert!(["avx2", "sse2", "scalar"].contains(&k));
/// ```
pub fn active_kernel() -> &'static str {
    active().name()
}

fn detect() -> Kernel {
    if std::env::var("ILT_FFT_FORCE_SCALAR")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
    {
        return Kernel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            return Kernel::Avx2;
        }
        if is_x86_feature_detected!("sse2") {
            return Kernel::Sse2;
        }
    }
    Kernel::Scalar
}

/// Runs one fused radix-4 stage (`t >= 2`) with the given kernel. The safe
/// boundary of the crate's only unsafe code: the SIMD paths require the CPU
/// features verified once by [`detect`].
pub(crate) fn radix4_stage(
    data: &mut [crate::complex::Complex64],
    stage: &crate::plan::Radix4Stage,
    forward: bool,
    kernel: Kernel,
) {
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { x86::radix4_stage_avx2(data, stage, forward) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse2 => unsafe { x86::radix4_stage_sse2(data, stage, forward) },
        _ => crate::plan::radix4_stage_scalar(data, stage, forward),
    }
}

/// Runs the twiddle-free leading radix-2 pass with the given kernel.
pub(crate) fn radix2_pairs(data: &mut [crate::complex::Complex64], kernel: Kernel) {
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { x86::radix2_pairs_avx(data) },
        _ => crate::plan::radix2_pairs_scalar(data),
    }
}

/// Runs the twiddle-free `t == 1` fused radix-4 stage with the given kernel.
pub(crate) fn radix4_stage1(
    data: &mut [crate::complex::Complex64],
    forward: bool,
    kernel: Kernel,
) {
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { x86::radix4_stage1_avx(data, forward) },
        _ => crate::plan::radix4_stage1_scalar(data, forward),
    }
}

/// Runs the twiddle-free leading radix-2 pass across the rows of a
/// `rows x width` panel ([`crate::FftPlan::process_cols`]).
pub(crate) fn radix2_rows(panel: &mut [crate::complex::Complex64], width: usize, kernel: Kernel) {
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 if width % 2 == 0 => unsafe { x86::radix2_rows_avx(panel, width) },
        _ => crate::plan::radix2_rows_scalar(panel, width),
    }
}

/// Runs the `t == 1` fused radix-4 stage across panel columns.
pub(crate) fn radix4_stage1_cols(
    panel: &mut [crate::complex::Complex64],
    width: usize,
    forward: bool,
    kernel: Kernel,
) {
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 if width % 2 == 0 => unsafe {
            x86::radix4_stage1_cols_avx(panel, width, forward)
        },
        _ => crate::plan::radix4_stage1_cols_scalar(panel, width, forward),
    }
}

/// Runs a fused radix-4 stage (`t >= 2`) across panel columns: the twiddles
/// are broadcast once per butterfly row, and the vectors are unit-stride.
pub(crate) fn radix4_stage_cols(
    panel: &mut [crate::complex::Complex64],
    width: usize,
    stage: &crate::plan::Radix4Stage,
    forward: bool,
    kernel: Kernel,
) {
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 if width % 2 == 0 => unsafe {
            x86::radix4_stage_cols_avx(panel, width, stage, forward)
        },
        _ => crate::plan::radix4_stage_cols_scalar(panel, width, stage, forward),
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    use crate::complex::Complex64;
    use crate::plan::Radix4Stage;

    /// Complex multiply of two packed pairs `x * w`, matching the scalar
    /// `re = x.re*w.re - x.im*w.im; im = x.re*w.im + x.im*w.re` bit-for-bit.
    #[inline(always)]
    unsafe fn cmul256(x: __m256d, w: __m256d) -> __m256d {
        let wr = _mm256_movedup_pd(w); // [w0.re, w0.re, w1.re, w1.re]
        let wi = _mm256_permute_pd(w, 0b1111); // [w0.im, w0.im, w1.im, w1.im]
        let xs = _mm256_permute_pd(x, 0b0101); // [x0.im, x0.re, x1.im, x1.re]
        _mm256_addsub_pd(_mm256_mul_pd(x, wr), _mm256_mul_pd(xs, wi))
    }

    /// Fused radix-4 stage over 256-bit lanes (two complex values per step).
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX is available (checked once by `detect`).
    /// Requires `stage.t >= 2` so the inner loop advances two twiddles at a
    /// time; `data.len()` is a multiple of `4 * stage.t` by plan
    /// construction.
    #[target_feature(enable = "avx")]
    pub(crate) unsafe fn radix4_stage_avx2(
        data: &mut [Complex64],
        stage: &Radix4Stage,
        forward: bool,
    ) {
        let t = stage.t;
        debug_assert!(t >= 2 && t % 2 == 0);
        let stride = 4 * t;
        let n = data.len();
        let ptr = data.as_mut_ptr() as *mut f64;
        let w1 = stage.w1.as_ptr() as *const f64;
        let w2 = stage.w2.as_ptr() as *const f64;
        let w3 = stage.w3.as_ptr() as *const f64;
        // Sign mask implementing s*z (s = -i forward / +i inverse) as a lane
        // swap plus XOR: forward negates the post-swap imaginary lanes,
        // inverse the real lanes. `_mm256_set_pd` takes lanes high-to-low.
        let sigma_mask = if forward {
            _mm256_set_pd(-0.0, 0.0, -0.0, 0.0)
        } else {
            _mm256_set_pd(0.0, -0.0, 0.0, -0.0)
        };

        let mut base = 0usize;
        while base < n {
            let mut j = 0usize;
            while j < t {
                let pa = ptr.add(2 * (base + j));
                let pb = ptr.add(2 * (base + j + t));
                let pc = ptr.add(2 * (base + j + 2 * t));
                let pd = ptr.add(2 * (base + j + 3 * t));
                let a = _mm256_loadu_pd(pa);
                let u1 = cmul256(_mm256_loadu_pd(pb), _mm256_loadu_pd(w2.add(2 * j)));
                let u2 = cmul256(_mm256_loadu_pd(pc), _mm256_loadu_pd(w1.add(2 * j)));
                let u3 = cmul256(_mm256_loadu_pd(pd), _mm256_loadu_pd(w3.add(2 * j)));
                let t0 = _mm256_add_pd(a, u1);
                let t1 = _mm256_sub_pd(a, u1);
                let t2 = _mm256_add_pd(u2, u3);
                let t3 = _mm256_sub_pd(u2, u3);
                let s3 = _mm256_xor_pd(_mm256_permute_pd(t3, 0b0101), sigma_mask);
                _mm256_storeu_pd(pa, _mm256_add_pd(t0, t2));
                _mm256_storeu_pd(pb, _mm256_add_pd(t1, s3));
                _mm256_storeu_pd(pc, _mm256_sub_pd(t0, t2));
                _mm256_storeu_pd(pd, _mm256_sub_pd(t1, s3));
                j += 2;
            }
            base += stride;
        }
    }

    /// Leading radix-2 pass: two adjacent pairs per iteration, recombined
    /// across 128-bit halves so the adds happen 2-wide. Pure add/sub, so
    /// trivially bit-identical to the scalar pass.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX is available.
    #[target_feature(enable = "avx")]
    pub(crate) unsafe fn radix2_pairs_avx(data: &mut [Complex64]) {
        let n = data.len();
        let ptr = data.as_mut_ptr() as *mut f64;
        let mut i = 0usize;
        while i + 4 <= n {
            let v01 = _mm256_loadu_pd(ptr.add(2 * i)); // [a0, b0]
            let v23 = _mm256_loadu_pd(ptr.add(2 * i + 4)); // [a1, b1]
            let a = _mm256_permute2f128_pd(v01, v23, 0x20); // [a0, a1]
            let b = _mm256_permute2f128_pd(v01, v23, 0x31); // [b0, b1]
            let sum = _mm256_add_pd(a, b);
            let dif = _mm256_sub_pd(a, b);
            _mm256_storeu_pd(ptr.add(2 * i), _mm256_permute2f128_pd(sum, dif, 0x20));
            _mm256_storeu_pd(ptr.add(2 * i + 4), _mm256_permute2f128_pd(sum, dif, 0x31));
            i += 4;
        }
        while i < n {
            let a = data[i];
            let b = data[i + 1];
            data[i] = a + b;
            data[i + 1] = a - b;
            i += 2;
        }
    }

    /// The `t == 1` fused radix-4 stage: four adjacent complexes per block,
    /// no twiddle multiplies; cross-lane recombination keeps every add/sub
    /// and the sigma sign flip identical to the scalar stage.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX is available. `data.len()` is a multiple of 4
    /// by plan construction.
    #[target_feature(enable = "avx")]
    pub(crate) unsafe fn radix4_stage1_avx(data: &mut [Complex64], forward: bool) {
        let n = data.len();
        let ptr = data.as_mut_ptr() as *mut f64;
        // After the [t1, t3] -> [t1, swap(t3)] permute, forward negates the
        // new imaginary lane of t3 (element 3), inverse its real lane
        // (element 2).
        let sigma = if forward {
            _mm256_set_pd(-0.0, 0.0, 0.0, 0.0)
        } else {
            _mm256_set_pd(0.0, -0.0, 0.0, 0.0)
        };
        let mut i = 0usize;
        while i < n {
            let v01 = _mm256_loadu_pd(ptr.add(2 * i)); // [a, b]
            let v23 = _mm256_loadu_pd(ptr.add(2 * i + 4)); // [c, d]
            let ac = _mm256_permute2f128_pd(v01, v23, 0x20); // [a, c]
            let bd = _mm256_permute2f128_pd(v01, v23, 0x31); // [b, d]
            let sum = _mm256_add_pd(ac, bd); // [t0, t2]
            let dif = _mm256_sub_pd(ac, bd); // [t1, t3]
            // [t1, s*t3]: identity low lane, swap + sign flip high lane.
            let sdif = _mm256_xor_pd(_mm256_permute_pd(dif, 0b0110), sigma);
            let lows = _mm256_permute2f128_pd(sum, sdif, 0x20); // [t0, t1]
            let highs = _mm256_permute2f128_pd(sum, sdif, 0x31); // [t2, s*t3]
            _mm256_storeu_pd(ptr.add(2 * i), _mm256_add_pd(lows, highs)); // [A, B]
            _mm256_storeu_pd(ptr.add(2 * i + 4), _mm256_sub_pd(lows, highs)); // [C, D]
            i += 4;
        }
    }

    /// Complex multiply of two packed values by one broadcast twiddle
    /// (`wr = [w.re; 4]`, `wi = [w.im; 4]`), bit-identical to the scalar
    /// formula by the same argument as [`cmul256`].
    #[inline(always)]
    unsafe fn cmul_bcast(x: __m256d, wr: __m256d, wi: __m256d) -> __m256d {
        let xs = _mm256_permute_pd(x, 0b0101); // [x0.im, x0.re, x1.im, x1.re]
        _mm256_addsub_pd(_mm256_mul_pd(x, wr), _mm256_mul_pd(xs, wi))
    }

    /// Leading radix-2 pass across adjacent rows of a `rows x width` panel:
    /// the two butterfly inputs sit in different rows, so the vectors are
    /// unit-stride and no cross-lane shuffles are needed at all.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX is available and `width` is even.
    #[target_feature(enable = "avx")]
    pub(crate) unsafe fn radix2_rows_avx(panel: &mut [Complex64], width: usize) {
        let ptr = panel.as_mut_ptr() as *mut f64;
        let n = panel.len();
        let mut r0 = 0usize;
        while r0 < n {
            let top = ptr.add(2 * r0);
            let bot = ptr.add(2 * (r0 + width));
            let mut k = 0usize;
            while k < width {
                let a = _mm256_loadu_pd(top.add(2 * k));
                let b = _mm256_loadu_pd(bot.add(2 * k));
                _mm256_storeu_pd(top.add(2 * k), _mm256_add_pd(a, b));
                _mm256_storeu_pd(bot.add(2 * k), _mm256_sub_pd(a, b));
                k += 2;
            }
            r0 += 2 * width;
        }
    }

    /// The `t == 1` fused stage across columns: inputs live in four adjacent
    /// rows, so unlike [`radix4_stage1_avx`] no half-lane recombination is
    /// needed — just the sigma swap-and-flip on `t3`.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX is available and `width` is even.
    #[target_feature(enable = "avx")]
    pub(crate) unsafe fn radix4_stage1_cols_avx(
        panel: &mut [Complex64],
        width: usize,
        forward: bool,
    ) {
        let ptr = panel.as_mut_ptr() as *mut f64;
        let n = panel.len();
        let sigma_mask = if forward {
            _mm256_set_pd(-0.0, 0.0, -0.0, 0.0)
        } else {
            _mm256_set_pd(0.0, -0.0, 0.0, -0.0)
        };
        let mut r0 = 0usize;
        while r0 < n {
            let pa = ptr.add(2 * r0);
            let pb = ptr.add(2 * (r0 + width));
            let pc = ptr.add(2 * (r0 + 2 * width));
            let pd = ptr.add(2 * (r0 + 3 * width));
            let mut k = 0usize;
            while k < width {
                let o = 2 * k;
                let a = _mm256_loadu_pd(pa.add(o));
                let b = _mm256_loadu_pd(pb.add(o));
                let c = _mm256_loadu_pd(pc.add(o));
                let d = _mm256_loadu_pd(pd.add(o));
                let t0 = _mm256_add_pd(a, b);
                let t1 = _mm256_sub_pd(a, b);
                let t2 = _mm256_add_pd(c, d);
                let t3 = _mm256_sub_pd(c, d);
                let s3 = _mm256_xor_pd(_mm256_permute_pd(t3, 0b0101), sigma_mask);
                _mm256_storeu_pd(pa.add(o), _mm256_add_pd(t0, t2));
                _mm256_storeu_pd(pb.add(o), _mm256_add_pd(t1, s3));
                _mm256_storeu_pd(pc.add(o), _mm256_sub_pd(t0, t2));
                _mm256_storeu_pd(pd.add(o), _mm256_sub_pd(t1, s3));
                k += 2;
            }
            r0 += 4 * width;
        }
    }

    /// Fused radix-4 stage (`t >= 2`) across panel columns. Each butterfly
    /// row broadcasts its three twiddles once (six registers) and streams
    /// four unit-stride rows — the highest-throughput shape of the kernel
    /// family, used by the blocked 2-D column pass.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX is available and `width` is even.
    #[target_feature(enable = "avx")]
    pub(crate) unsafe fn radix4_stage_cols_avx(
        panel: &mut [Complex64],
        width: usize,
        stage: &Radix4Stage,
        forward: bool,
    ) {
        let t = stage.t;
        let stride = 4 * t * width;
        let n = panel.len();
        let ptr = panel.as_mut_ptr() as *mut f64;
        let sigma_mask = if forward {
            _mm256_set_pd(-0.0, 0.0, -0.0, 0.0)
        } else {
            _mm256_set_pd(0.0, -0.0, 0.0, -0.0)
        };

        let mut base = 0usize;
        while base < n {
            for j in 0..t {
                let w1 = stage.w1[j];
                let w2 = stage.w2[j];
                let w3 = stage.w3[j];
                let w1r = _mm256_set1_pd(w1.re);
                let w1i = _mm256_set1_pd(w1.im);
                let w2r = _mm256_set1_pd(w2.re);
                let w2i = _mm256_set1_pd(w2.im);
                let w3r = _mm256_set1_pd(w3.re);
                let w3i = _mm256_set1_pd(w3.im);
                let pa = ptr.add(2 * (base + j * width));
                let pb = ptr.add(2 * (base + (j + t) * width));
                let pc = ptr.add(2 * (base + (j + 2 * t) * width));
                let pd = ptr.add(2 * (base + (j + 3 * t) * width));
                let mut k = 0usize;
                while k < width {
                    let o = 2 * k;
                    let a = _mm256_loadu_pd(pa.add(o));
                    let u1 = cmul_bcast(_mm256_loadu_pd(pb.add(o)), w2r, w2i);
                    let u2 = cmul_bcast(_mm256_loadu_pd(pc.add(o)), w1r, w1i);
                    let u3 = cmul_bcast(_mm256_loadu_pd(pd.add(o)), w3r, w3i);
                    let t0 = _mm256_add_pd(a, u1);
                    let t1 = _mm256_sub_pd(a, u1);
                    let t2 = _mm256_add_pd(u2, u3);
                    let t3 = _mm256_sub_pd(u2, u3);
                    let s3 = _mm256_xor_pd(_mm256_permute_pd(t3, 0b0101), sigma_mask);
                    _mm256_storeu_pd(pa.add(o), _mm256_add_pd(t0, t2));
                    _mm256_storeu_pd(pb.add(o), _mm256_add_pd(t1, s3));
                    _mm256_storeu_pd(pc.add(o), _mm256_sub_pd(t0, t2));
                    _mm256_storeu_pd(pd.add(o), _mm256_sub_pd(t1, s3));
                    k += 2;
                }
            }
            base += stride;
        }
    }

    /// Complex multiply on one 128-bit lane. Subtraction of the `im*im`
    /// cross term is realized as `xor` of the sign bit plus `add`, which is
    /// bitwise equal to `sub` (SSE2 has no `addsub`; that arrived in SSE3).
    #[inline(always)]
    unsafe fn cmul128(x: __m128d, w: __m128d, neg_lo: __m128d) -> __m128d {
        let wr = _mm_shuffle_pd(w, w, 0b00); // [w.re, w.re]
        let wi = _mm_shuffle_pd(w, w, 0b11); // [w.im, w.im]
        let xs = _mm_shuffle_pd(x, x, 0b01); // [x.im, x.re]
        let prod = _mm_mul_pd(x, wr);
        let cross = _mm_xor_pd(_mm_mul_pd(xs, wi), neg_lo); // [-x.im*w.im, x.re*w.im]
        _mm_add_pd(prod, cross)
    }

    /// Fused radix-4 stage over 128-bit lanes (one complex value per step).
    ///
    /// # Safety
    ///
    /// Caller must ensure SSE2 is available (always true on x86_64; checked
    /// once by `detect`). Requires `stage.t >= 2`.
    #[target_feature(enable = "sse2")]
    pub(crate) unsafe fn radix4_stage_sse2(
        data: &mut [Complex64],
        stage: &Radix4Stage,
        forward: bool,
    ) {
        let t = stage.t;
        debug_assert!(t >= 2);
        let stride = 4 * t;
        let n = data.len();
        let ptr = data.as_mut_ptr() as *mut f64;
        let w1 = stage.w1.as_ptr() as *const f64;
        let w2 = stage.w2.as_ptr() as *const f64;
        let w3 = stage.w3.as_ptr() as *const f64;
        let neg_lo = _mm_set_pd(0.0, -0.0);
        let sigma_mask = if forward {
            _mm_set_pd(-0.0, 0.0)
        } else {
            _mm_set_pd(0.0, -0.0)
        };

        let mut base = 0usize;
        while base < n {
            for j in 0..t {
                let pa = ptr.add(2 * (base + j));
                let pb = ptr.add(2 * (base + j + t));
                let pc = ptr.add(2 * (base + j + 2 * t));
                let pd = ptr.add(2 * (base + j + 3 * t));
                let a = _mm_loadu_pd(pa);
                let u1 = cmul128(_mm_loadu_pd(pb), _mm_loadu_pd(w2.add(2 * j)), neg_lo);
                let u2 = cmul128(_mm_loadu_pd(pc), _mm_loadu_pd(w1.add(2 * j)), neg_lo);
                let u3 = cmul128(_mm_loadu_pd(pd), _mm_loadu_pd(w3.add(2 * j)), neg_lo);
                let t0 = _mm_add_pd(a, u1);
                let t1 = _mm_sub_pd(a, u1);
                let t2 = _mm_add_pd(u2, u3);
                let t3 = _mm_sub_pd(u2, u3);
                let s3 = _mm_xor_pd(_mm_shuffle_pd(t3, t3, 0b01), sigma_mask);
                _mm_storeu_pd(pa, _mm_add_pd(t0, t2));
                _mm_storeu_pd(pb, _mm_add_pd(t1, s3));
                _mm_storeu_pd(pc, _mm_sub_pd(t0, t2));
                _mm_storeu_pd(pd, _mm_sub_pd(t1, s3));
            }
            base += stride;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_kernel_is_a_known_name() {
        assert!(["avx2", "sse2", "scalar"].contains(&active_kernel()));
    }

    #[test]
    fn active_is_cached() {
        assert_eq!(active(), active());
    }
}
