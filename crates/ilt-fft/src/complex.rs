//! A minimal double-precision complex number.
//!
//! The lithography stack only needs a handful of complex operations
//! (arithmetic, conjugation, magnitude, unit-phase construction), so we carry
//! our own value type instead of pulling in an external numerics crate.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use ilt_fft::Complex64;
///
/// let i = Complex64::new(0.0, 1.0);
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilt_fft::Complex64;
    /// assert_eq!(Complex64::from_real(2.5).im, 0.0);
    /// ```
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates the unit-magnitude complex number `e^{i theta}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilt_fft::Complex64;
    /// let w = Complex64::from_polar_angle(std::f64::consts::PI);
    /// assert!((w.re + 1.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar_angle(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex64 { re: c, im: s }
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 { re: self.re, im: -self.im }
    }

    /// Returns the squared magnitude `re^2 + im^2`.
    ///
    /// This is the quantity accumulated by the Hopkins intensity model
    /// (`|h_k (x) M|^2`), so it gets a dedicated, sqrt-free accessor.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the magnitude `sqrt(re^2 + im^2)`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64 { re: self.re * s, im: self.im * s }
    }

    /// Returns `true` if both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex64 { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex64 { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Complex64 {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Complex64 { re: self.re / rhs, im: self.im / rhs }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Complex64 { re: -self.re, im: -self.im }
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert!(close(z / z, Complex64::ONE));
        assert_eq!(-(-z), z);
    }

    #[test]
    fn conjugate_and_norms() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        // z * conj(z) is |z|^2
        assert!(close(z * z.conj(), Complex64::from_real(25.0)));
    }

    #[test]
    fn polar_roundtrip() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::TAU / 16.0;
            let w = Complex64::from_polar_angle(theta);
            assert!((w.abs() - 1.0).abs() < 1e-15);
        }
        // e^{i pi/2} = i
        assert!(close(
            Complex64::from_polar_angle(std::f64::consts::FRAC_PI_2),
            Complex64::I
        ));
    }

    #[test]
    fn division_matches_multiplication() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.5, 3.25);
        assert!(close((a / b) * b, a));
    }

    #[test]
    fn mixed_scalar_ops() {
        let z = Complex64::new(1.0, 2.0);
        assert_eq!(z * 2.0, Complex64::new(2.0, 4.0));
        assert_eq!(2.0 * z, z * 2.0);
        assert_eq!(z / 2.0, Complex64::new(0.5, 1.0));
    }

    #[test]
    fn sum_of_roots_of_unity_is_zero() {
        let n = 8;
        let s: Complex64 = (0..n)
            .map(|k| Complex64::from_polar_angle(std::f64::consts::TAU * k as f64 / n as f64))
            .sum();
        assert!(s.abs() < 1e-14);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
