//! Reusable FFT workspaces.
//!
//! Every 2-D transform needs temporary storage: a column panel for the
//! cache-blocked column pass, a band-row buffer for the pruned paths, a
//! fold buffer for the pruned forward, and a packing buffer for the
//! real-input forward path. The batch runtime calls the simulator millions
//! of times from long-lived worker threads, so allocating that storage per
//! transform would put `malloc` in the innermost loop. [`Fft2dScratch`] owns
//! the buffers and grows them monotonically; once warm it allocates nothing.
//! It also memoizes the phase-twist tables of the pruned paths
//! ([`TwistCache`]), which would otherwise cost `p * n / q` trig calls per
//! transform.
//!
//! Callers that cannot conveniently thread a scratch value through (the
//! plain [`crate::Fft2d::forward`] / [`crate::Fft2d::inverse`] API) are
//! served by a thread-local arena via [`with_thread_scratch`], which is also
//! non-allocating on repeat calls.
//!
//! Execution layers that spawn short-lived threads (the runtime pool runs
//! each job attempt on a fresh thread for panic/timeout isolation) would
//! lose the thread-local arena on every attempt; [`ScratchPool`] +
//! [`with_installed_scratch`] let them keep a set of warm workspaces alive
//! across attempts and temporarily install one as the current thread's
//! arena, so every transform down the call stack reuses it without
//! signature changes.

use std::cell::RefCell;
use std::sync::Mutex;

use crate::complex::Complex64;

/// Grows `buf` to at least `len` and returns the `len`-prefix slice.
///
/// Contents are unspecified; callers must fully overwrite or zero it.
pub(crate) fn grown(buf: &mut Vec<Complex64>, len: usize) -> &mut [Complex64] {
    if buf.len() < len {
        buf.resize(len, Complex64::ZERO);
    }
    &mut buf[..len]
}

/// Key of a memoized phase-twist table: `(n, p, forward)`.
pub(crate) type TwistKey = (usize, usize, bool);

/// Bound on distinct twist tables kept per scratch; a multi-level simulator
/// touches a handful of `(n, p)` pairs, far below this.
const TWIST_CACHE_CAP: usize = 8;

/// Memoized phase-twist tables for the pruned transforms.
///
/// The pruned inverse needs `e^{+2 pi i f r0 / n} * q/n` for every retained
/// frequency `f` and residue `r0` (a `p x n/q` table); the pruned forward
/// needs `e^{-2 pi i f b / n}` over the Hermitian closure of the retained
/// set. Both are pure functions of `(n, p)`, so they are built once per
/// scratch and replayed — removing `p * n / q` `sin_cos` calls from every
/// transform.
#[derive(Debug, Default)]
pub(crate) struct TwistCache {
    entries: Vec<(TwistKey, Vec<Complex64>)>,
}

impl TwistCache {
    /// Returns the table for `key`, building it on first use.
    pub(crate) fn get_or_build(
        &mut self,
        key: TwistKey,
        build: impl FnOnce() -> Vec<Complex64>,
    ) -> &[Complex64] {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            return &self.entries[pos].1;
        }
        if self.entries.len() >= TWIST_CACHE_CAP {
            self.entries.remove(0);
        }
        self.entries.push((key, build()));
        &self.entries.last().expect("just pushed").1
    }

    fn stored_values(&self) -> usize {
        self.entries.iter().map(|(_, t)| t.len()).sum()
    }
}

/// Reusable workspace for [`crate::Fft2d`] transforms.
///
/// One scratch serves transforms of any size: buffers grow to the largest
/// request and are reused afterwards. A scratch is cheap to create empty, so
/// per-call construction is correct (just slower on the first transforms);
/// the intended pattern is one scratch per worker thread or per batch of
/// transforms.
///
/// Results never depend on scratch history: every path fully overwrites the
/// regions it reads, and the memoized twist tables are keyed by exact
/// transform shape.
///
/// # Examples
///
/// ```
/// use ilt_fft::{Complex64, Fft2d, Fft2dScratch};
///
/// let fft = Fft2d::new(8, 8);
/// let mut scratch = Fft2dScratch::new();
/// let mut data = vec![Complex64::ONE; 64];
/// fft.forward_with(&mut data, &mut scratch);
/// fft.inverse_with(&mut data, &mut scratch);
/// assert!((data[0] - Complex64::ONE).abs() < 1e-12);
/// ```
#[derive(Debug, Default)]
pub struct Fft2dScratch {
    /// Transposed column panels for the blocked column pass.
    pub(crate) panel: Vec<Complex64>,
    /// Row-transformed band rows (`p x n`) of the pruned paths.
    pub(crate) band: Vec<Complex64>,
    /// Residue grid (`q x n`) of the pruned padded inverse, and the packed
    /// row-pair buffer of the real-input forward pass.
    pub(crate) grid: Vec<Complex64>,
    /// Fold buffer (`s` contiguous length-`q` segments) of the pruned
    /// forward column pass, plus its per-column gathered input.
    pub(crate) fold: Vec<Complex64>,
    /// Per-column retained/closure spectrum values of the pruned forward.
    pub(crate) xz: Vec<Complex64>,
    /// Full-grid output buffer loaned out by the batched inverse.
    pub(crate) batch_out: Vec<Complex64>,
    /// Memoized phase-twist tables of the pruned paths.
    pub(crate) twist: TwistCache,
}

impl Fft2dScratch {
    /// Creates an empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total complex values currently held across all buffers and memoized
    /// tables.
    pub fn capacity(&self) -> usize {
        self.panel.len()
            + self.band.len()
            + self.grid.len()
            + self.fold.len()
            + self.xz.len()
            + self.batch_out.len()
            + self.twist.stored_values()
    }
}

/// A mutex-guarded free list of warm [`Fft2dScratch`] workspaces.
///
/// Execution layers that run work on short-lived threads (one thread per job
/// attempt in the runtime pool) check a workspace out, install it with
/// [`with_installed_scratch`] for the duration of the attempt, and restore
/// it afterwards — so grown buffers, twiddle-table `Arc`s resolved through
/// the planner, and memoized twist tables survive across attempts instead of
/// dying with each thread.
///
/// # Examples
///
/// ```
/// use ilt_fft::ScratchPool;
///
/// let pool = ScratchPool::new();
/// let scratch = pool.checkout(); // empty on first use
/// pool.restore(scratch);
/// assert_eq!(pool.idle(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<Fft2dScratch>>,
}

impl ScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a workspace from the free list, or creates an empty one.
    pub fn checkout(&self) -> Fft2dScratch {
        self.free
            .lock()
            .expect("scratch pool lock poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a workspace to the free list for the next checkout.
    pub fn restore(&self, scratch: Fft2dScratch) {
        self.free.lock().expect("scratch pool lock poisoned").push(scratch);
    }

    /// Number of idle workspaces currently in the free list.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("scratch pool lock poisoned").len()
    }
}

thread_local! {
    static ARENA: RefCell<Fft2dScratch> = RefCell::new(Fft2dScratch::new());
}

/// Runs `f` with this thread's shared FFT workspace.
///
/// The arena persists for the life of the thread, so repeated transforms of
/// the same sizes allocate nothing. Re-entrant use (calling
/// `with_thread_scratch` while already inside it) falls back to a fresh
/// temporary workspace instead of panicking, so the convenience
/// [`crate::Fft2d::forward`] API stays safe to call from anywhere.
///
/// # Examples
///
/// ```
/// use ilt_fft::with_thread_scratch;
///
/// let cap = with_thread_scratch(|scratch| scratch.capacity());
/// assert!(cap < usize::MAX);
/// ```
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut Fft2dScratch) -> R) -> R {
    ARENA.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut Fft2dScratch::new()),
    })
}

/// Swaps `s` with the thread arena; returns `false` (and does nothing) if
/// the arena is currently borrowed by an enclosing transform.
fn swap_with_arena(s: &mut Fft2dScratch) -> bool {
    ARENA.with(|cell| match cell.try_borrow_mut() {
        Ok(mut arena) => {
            std::mem::swap(&mut *arena, s);
            true
        }
        Err(_) => false,
    })
}

/// Runs `f` with `scratch` installed as the current thread's FFT arena.
///
/// Every transform reached through [`with_thread_scratch`] during `f` — the
/// whole simulator/optimizer stack — then reuses `scratch`'s warm buffers.
/// The previous arena contents are restored on exit, including on panic, so
/// the caller gets the (possibly further grown) workspace back in `scratch`
/// and can return it to a [`ScratchPool`].
///
/// If the arena is already borrowed by an enclosing transform (re-entrant
/// use), `f` simply runs without the installation.
///
/// # Examples
///
/// ```
/// use ilt_fft::{fft2_real, with_installed_scratch, Fft2dScratch};
///
/// let mut scratch = Fft2dScratch::new();
/// let img = vec![1.0; 64 * 64];
/// with_installed_scratch(&mut scratch, || {
///     let _ = fft2_real(&img, 64, 64); // warms `scratch`, not the arena
/// });
/// assert!(scratch.capacity() > 0);
/// ```
pub fn with_installed_scratch<R>(scratch: &mut Fft2dScratch, f: impl FnOnce() -> R) -> R {
    struct Restore<'a>(&'a mut Fft2dScratch);
    impl Drop for Restore<'_> {
        fn drop(&mut self) {
            swap_with_arena(self.0);
        }
    }

    if !swap_with_arena(scratch) {
        return f();
    }
    let restore = Restore(scratch);
    let result = f();
    drop(restore);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_grow_monotonically_and_are_reused() {
        let mut s = Fft2dScratch::new();
        assert_eq!(s.capacity(), 0);
        grown(&mut s.panel, 64);
        let after_first = s.capacity();
        grown(&mut s.panel, 32); // smaller request reuses the larger buffer
        assert_eq!(s.capacity(), after_first);
        grown(&mut s.panel, 128);
        assert!(s.capacity() > after_first);
    }

    #[test]
    fn thread_scratch_is_reentrant_safe() {
        let nested = with_thread_scratch(|outer| {
            grown(&mut outer.panel, 16);
            with_thread_scratch(|inner| {
                // The inner workspace is a fresh fallback, not the arena.
                inner.capacity()
            })
        });
        assert_eq!(nested, 0);
    }

    #[test]
    fn twist_cache_memoizes_and_bounds_entries() {
        let mut cache = TwistCache::default();
        let mut builds = 0;
        for _ in 0..3 {
            let t = cache.get_or_build((64, 5, true), || {
                builds += 1;
                vec![Complex64::ONE; 4]
            });
            assert_eq!(t.len(), 4);
        }
        assert_eq!(builds, 1, "same key must not rebuild");
        for n in 0..2 * TWIST_CACHE_CAP {
            cache.get_or_build((128 + n, 5, false), || vec![Complex64::ONE; 1]);
        }
        assert!(cache.entries.len() <= TWIST_CACHE_CAP);
    }

    #[test]
    fn scratch_pool_recycles_workspaces() {
        let pool = ScratchPool::new();
        assert_eq!(pool.idle(), 0);
        let mut s = pool.checkout();
        grown(&mut s.panel, 256);
        let warmed = s.capacity();
        pool.restore(s);
        assert_eq!(pool.idle(), 1);
        let back = pool.checkout();
        assert_eq!(back.capacity(), warmed, "checkout must return the warm workspace");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn installed_scratch_captures_arena_growth() {
        let mut scratch = Fft2dScratch::new();
        with_installed_scratch(&mut scratch, || {
            with_thread_scratch(|arena| {
                grown(&mut arena.band, 512);
            });
        });
        assert!(scratch.capacity() >= 512, "growth must land in the installed scratch");
    }

    #[test]
    fn installed_scratch_restores_arena_on_panic() {
        let before = with_thread_scratch(|arena| arena.capacity());
        let mut scratch = Fft2dScratch::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_installed_scratch(&mut scratch, || {
                with_thread_scratch(|arena| {
                    grown(&mut arena.grid, 64);
                });
                panic!("boom");
            })
        }));
        assert!(caught.is_err());
        assert!(scratch.capacity() >= 64, "panicked work still lands in the scratch");
        let after = with_thread_scratch(|arena| arena.capacity());
        assert_eq!(before, after, "arena must be restored after a panic");
    }
}
