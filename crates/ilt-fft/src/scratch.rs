//! Reusable FFT workspaces.
//!
//! Every 2-D transform needs temporary storage: a column panel for the
//! cache-blocked column pass, a band-row buffer for the pruned padded
//! inverse, and a packing buffer for the real-input forward path. The batch
//! runtime calls the simulator millions of times from long-lived worker
//! threads, so allocating that storage per transform would put `malloc` in
//! the innermost loop. [`Fft2dScratch`] owns the buffers and grows them
//! monotonically; once warm it allocates nothing.
//!
//! Callers that cannot conveniently thread a scratch value through (the
//! plain [`crate::Fft2d::forward`] / [`crate::Fft2d::inverse`] API) are
//! served by a thread-local arena via [`with_thread_scratch`], which is also
//! non-allocating on repeat calls.

use std::cell::RefCell;

use crate::complex::Complex64;

/// Grows `buf` to at least `len` and returns the `len`-prefix slice.
///
/// Contents are unspecified; callers must fully overwrite or zero it.
pub(crate) fn grown(buf: &mut Vec<Complex64>, len: usize) -> &mut [Complex64] {
    if buf.len() < len {
        buf.resize(len, Complex64::ZERO);
    }
    &mut buf[..len]
}

/// Reusable workspace for [`crate::Fft2d`] transforms.
///
/// One scratch serves transforms of any size: buffers grow to the largest
/// request and are reused afterwards. A scratch is cheap to create empty, so
/// per-call construction is correct (just slower on the first transforms);
/// the intended pattern is one scratch per worker thread or per batch of
/// transforms.
///
/// # Examples
///
/// ```
/// use ilt_fft::{Complex64, Fft2d, Fft2dScratch};
///
/// let fft = Fft2d::new(8, 8);
/// let mut scratch = Fft2dScratch::new();
/// let mut data = vec![Complex64::ONE; 64];
/// fft.forward_with(&mut data, &mut scratch);
/// fft.inverse_with(&mut data, &mut scratch);
/// assert!((data[0] - Complex64::ONE).abs() < 1e-12);
/// ```
#[derive(Debug, Default)]
pub struct Fft2dScratch {
    /// Transposed column panels for the blocked column pass.
    pub(crate) panel: Vec<Complex64>,
    /// Row-transformed band rows (`p x n`) of the pruned padded inverse.
    pub(crate) band: Vec<Complex64>,
    /// Residue grid (`q x n`) of the pruned padded inverse, and the packed
    /// row-pair buffer of the real-input forward pass.
    pub(crate) grid: Vec<Complex64>,
}

impl Fft2dScratch {
    /// Creates an empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total complex values currently held across all buffers.
    pub fn capacity(&self) -> usize {
        self.panel.len() + self.band.len() + self.grid.len()
    }

}

thread_local! {
    static ARENA: RefCell<Fft2dScratch> = RefCell::new(Fft2dScratch::new());
}

/// Runs `f` with this thread's shared FFT workspace.
///
/// The arena persists for the life of the thread, so repeated transforms of
/// the same sizes allocate nothing. Re-entrant use (calling
/// `with_thread_scratch` while already inside it) falls back to a fresh
/// temporary workspace instead of panicking, so the convenience
/// [`crate::Fft2d::forward`] API stays safe to call from anywhere.
///
/// # Examples
///
/// ```
/// use ilt_fft::with_thread_scratch;
///
/// let cap = with_thread_scratch(|scratch| scratch.capacity());
/// assert!(cap < usize::MAX);
/// ```
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut Fft2dScratch) -> R) -> R {
    ARENA.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut Fft2dScratch::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_grow_monotonically_and_are_reused() {
        let mut s = Fft2dScratch::new();
        assert_eq!(s.capacity(), 0);
        grown(&mut s.panel, 64);
        let after_first = s.capacity();
        grown(&mut s.panel, 32); // smaller request reuses the larger buffer
        assert_eq!(s.capacity(), after_first);
        grown(&mut s.panel, 128);
        assert!(s.capacity() > after_first);
    }

    #[test]
    fn thread_scratch_is_reentrant_safe() {
        let nested = with_thread_scratch(|outer| {
            grown(&mut outer.panel, 16);
            with_thread_scratch(|inner| {
                // The inner workspace is a fresh fallback, not the arena.
                inner.capacity()
            })
        });
        assert_eq!(nested, 0);
    }
}
