//! Planned power-of-two FFTs for multi-resolution lithography simulation.
//!
//! This crate is the numerical bedrock of the multi-level ILT stack. It
//! replaces the `torch.fft` dependency of the original DAC 2023
//! implementation with:
//!
//! * [`Complex64`] — a self-contained complex value type,
//! * [`FftPlanner`] / [`FftPlan`] — cached 1-D radix-2 plans, shared
//!   process-wide through [`FftPlanner::global`],
//! * [`Fft2d`] — reusable 2-D transforms over row-major buffers, with a
//!   cache-blocked column pass, a Hermitian-packed real-input forward
//!   ([`Fft2d::forward_real`]), and a pruned padded inverse
//!   ([`Fft2d::inverse_padded`]) that skips all work on the
//!   structurally-zero part of a padded kernel spectrum,
//! * [`Fft2dScratch`] / [`with_thread_scratch`] — reusable workspaces so
//!   long-lived worker threads never allocate inside a transform,
//! * spectrum utilities ([`crop_centered`], [`pad_centered`], [`fftshift`])
//!   implementing the frequency-domain size changes of Eqs. 3/7/8 of the
//!   paper ("discard the high-frequency part of `F(M)`").
//!
//! # Example: band-limited downsampling (the Eq. 7 trick)
//!
//! ```
//! use ilt_fft::{fft2_real, crop_centered, Fft2d, Complex64};
//!
//! // A 16x16 image; keep only its 8x8 low-frequency block and reconstruct
//! // at quarter area — the core move of low-resolution lithography.
//! let img: Vec<f64> = (0..256).map(|i| (i % 16) as f64 / 16.0).collect();
//! let spec = fft2_real(&img, 16, 16);
//! let mut small = crop_centered(&spec, 16, 8);
//! for z in &mut small { *z = z.scale(1.0 / 4.0); } // 1/s^2, s = 2
//! Fft2d::new(8, 8).inverse(&mut small);
//! assert_eq!(small.len(), 64);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod complex;
mod fft2d;
mod plan;
mod scratch;
// The one module allowed to use `unsafe`: `std::arch` SIMD butterflies,
// runtime-dispatched and pinned bit-for-bit against the scalar path.
#[allow(unsafe_code)]
mod simd;
mod spectrum;

pub use complex::Complex64;
pub use fft2d::{fft2_real, Fft2d};
pub use plan::{Direction, FftPlan, FftPlanner};
pub use scratch::{
    with_installed_scratch, with_thread_scratch, Fft2dScratch, ScratchPool,
};
pub use simd::active_kernel;
pub use spectrum::{
    crop_centered, fftshift, freq_index, ifftshift, pad_centered, pad_centered_into,
    signed_freq,
};
