//! FFT plans: precomputed twiddle factors and bit-reversal permutations.
//!
//! Multi-level ILT transforms the same handful of sizes (N, N/2, N/4, N/8 and
//! the kernel support P rounded up) thousands of times, so planning once and
//! replaying the plan is the dominant-cost-saving structure here, mirroring
//! FFTW-style planners.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::complex::Complex64;

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Forward transform, `X[k] = sum_n x[n] e^{-2 pi i n k / N}`.
    Forward,
    /// Inverse transform, `x[n] = (1/N) sum_k X[k] e^{+2 pi i n k / N}`.
    ///
    /// The `1/N` normalization is applied by [`FftPlan::process`].
    Inverse,
}

impl Direction {
    /// Sign of the exponent used by this direction.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

/// A reusable radix-2 decimation-in-time plan for a fixed power-of-two size.
///
/// Obtain plans through [`FftPlanner`], which caches them per size and
/// direction.
///
/// # Examples
///
/// ```
/// use ilt_fft::{Complex64, Direction, FftPlanner};
///
/// let mut planner = FftPlanner::new();
/// let fwd = planner.plan(8, Direction::Forward);
/// let inv = planner.plan(8, Direction::Inverse);
///
/// let mut data: Vec<Complex64> = (0..8).map(|i| Complex64::new(i as f64, 0.0)).collect();
/// let original = data.clone();
/// fwd.process(&mut data);
/// inv.process(&mut data);
/// for (a, b) in data.iter().zip(&original) {
///     assert!((*a - *b).abs() < 1e-12);
/// }
/// ```
pub struct FftPlan {
    len: usize,
    direction: Direction,
    /// Flattened per-stage twiddles: stage `s` (half-size `m = 2^s`) stores
    /// `m` twiddles `w^j = e^{sign * 2 pi i j / (2m)}` at offset `m - 1`.
    twiddles: Vec<Complex64>,
    /// Bit-reversal swap pairs `(i, j)` with `i < j`.
    swaps: Vec<(u32, u32)>,
}

impl fmt::Debug for FftPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FftPlan")
            .field("len", &self.len)
            .field("direction", &self.direction)
            .finish()
    }
}

impl FftPlan {
    /// Builds a plan for `len` points in the given direction.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or not a power of two.
    pub fn new(len: usize, direction: Direction) -> Self {
        assert!(len.is_power_of_two(), "FFT length {len} must be a power of two");
        let sign = direction.sign();

        // Twiddles, laid out stage-major. Total count = len - 1.
        let mut twiddles = Vec::with_capacity(len.saturating_sub(1));
        let mut m = 1;
        while m < len {
            let step = sign * std::f64::consts::PI / m as f64;
            for j in 0..m {
                twiddles.push(Complex64::from_polar_angle(step * j as f64));
            }
            m *= 2;
        }

        // Bit reversal permutation as swap pairs.
        let bits = len.trailing_zeros();
        let mut swaps = Vec::new();
        for i in 0..len as u32 {
            let j = i.reverse_bits() >> (32 - bits.max(1));
            let j = if bits == 0 { i } else { j };
            if i < j {
                swaps.push((i, j));
            }
        }

        FftPlan { len, direction, twiddles, swaps }
    }

    /// Number of points this plan transforms.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the plan is for the degenerate one-point transform.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len <= 1
    }

    /// Direction of this plan.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Transforms `data` in place.
    ///
    /// Inverse plans divide by `len` so that a forward/inverse pair is the
    /// identity.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned size.
    pub fn process(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.len, "buffer length must match plan size");
        if self.len <= 1 {
            return;
        }

        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }

        let mut m = 1;
        let mut toff = 0;
        while m < self.len {
            let tw = &self.twiddles[toff..toff + m];
            let stride = 2 * m;
            let mut base = 0;
            while base < self.len {
                for j in 0..m {
                    let w = tw[j];
                    let a = data[base + j];
                    let b = data[base + j + m] * w;
                    data[base + j] = a + b;
                    data[base + j + m] = a - b;
                }
                base += stride;
            }
            toff += m;
            m = stride;
        }

        if self.direction == Direction::Inverse {
            let scale = 1.0 / self.len as f64;
            for v in data.iter_mut() {
                *v = v.scale(scale);
            }
        }
    }
}

/// A size-and-direction cache of [`FftPlan`]s.
///
/// Plans are shared via [`Arc`], so clones handed out by [`FftPlanner::plan`]
/// are cheap and can be stored inside simulator structs.
#[derive(Debug, Default)]
pub struct FftPlanner {
    plans: HashMap<(usize, Direction), Arc<FftPlan>>,
}

impl FftPlanner {
    /// Creates an empty planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a (possibly cached) plan for `len` points.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or not a power of two.
    pub fn plan(&mut self, len: usize, direction: Direction) -> Arc<FftPlan> {
        self.plans
            .entry((len, direction))
            .or_insert_with(|| Arc::new(FftPlan::new(len, direction)))
            .clone()
    }

    /// Number of distinct plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.len()
    }

    /// Runs `f` against the process-wide shared planner.
    ///
    /// Every [`crate::Fft2d::new`] and [`crate::fft2_real`] call goes through
    /// this cache, so constructing a transform for an already-seen size costs
    /// four `Arc` clones instead of a twiddle-table build. The lock is held
    /// only for the map lookup, never across a transform.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilt_fft::{Direction, FftPlanner};
    ///
    /// let a = FftPlanner::global(|p| p.plan(64, Direction::Forward));
    /// let b = FftPlanner::global(|p| p.plan(64, Direction::Forward));
    /// assert!(std::sync::Arc::ptr_eq(&a, &b));
    /// ```
    pub fn global<R>(f: impl FnOnce(&mut FftPlanner) -> R) -> R {
        static GLOBAL: OnceLock<Mutex<FftPlanner>> = OnceLock::new();
        let mut guard = GLOBAL
            .get_or_init(|| Mutex::new(FftPlanner::new()))
            .lock()
            .expect("global FFT planner lock poisoned");
        f(&mut guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct O(n^2) reference DFT.
    fn naive_dft(input: &[Complex64], direction: Direction) -> Vec<Complex64> {
        let n = input.len();
        let sign = direction.sign();
        let mut out = vec![Complex64::ZERO; n];
        for (k, o) in out.iter_mut().enumerate() {
            for (j, &x) in input.iter().enumerate() {
                let theta = sign * std::f64::consts::TAU * (j * k) as f64 / n as f64;
                *o += x * Complex64::from_polar_angle(theta);
            }
            if direction == Direction::Inverse {
                *o = o.scale(1.0 / n as f64);
            }
        }
        out
    }

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new(i as f64 * 0.37 - 1.0, (i as f64 * 0.11).sin()))
            .collect()
    }

    #[test]
    fn matches_naive_dft_all_small_sizes() {
        for bits in 0..8 {
            let n = 1usize << bits;
            let input = ramp(n);
            for dir in [Direction::Forward, Direction::Inverse] {
                let mut data = input.clone();
                FftPlan::new(n, dir).process(&mut data);
                let want = naive_dft(&input, dir);
                for (a, b) in data.iter().zip(&want) {
                    assert!((*a - *b).abs() < 1e-9, "n={n} dir={dir:?}");
                }
            }
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let n = 256;
        let input = ramp(n);
        let mut data = input.clone();
        FftPlan::new(n, Direction::Forward).process(&mut data);
        FftPlan::new(n, Direction::Inverse).process(&mut data);
        for (a, b) in data.iter().zip(&input) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 64;
        let mut data = vec![Complex64::ZERO; n];
        data[0] = Complex64::ONE;
        FftPlan::new(n, Direction::Forward).process(&mut data);
        for v in &data {
            assert!((*v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let n = 64;
        let mut data = vec![Complex64::ONE; n];
        FftPlan::new(n, Direction::Forward).process(&mut data);
        assert!((data[0] - Complex64::from_real(n as f64)).abs() < 1e-10);
        for v in &data[1..] {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let input = ramp(n);
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut data = input;
        FftPlan::new(n, Direction::Forward).process(&mut data);
        let freq_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn single_point_is_identity() {
        let mut data = vec![Complex64::new(2.0, -3.0)];
        FftPlan::new(1, Direction::Forward).process(&mut data);
        assert_eq!(data[0], Complex64::new(2.0, -3.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = FftPlan::new(12, Direction::Forward);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_buffer_length_panics() {
        let plan = FftPlan::new(8, Direction::Forward);
        let mut data = vec![Complex64::ZERO; 4];
        plan.process(&mut data);
    }

    #[test]
    fn planner_caches_plans() {
        let mut planner = FftPlanner::new();
        let a = planner.plan(64, Direction::Forward);
        let b = planner.plan(64, Direction::Forward);
        assert!(Arc::ptr_eq(&a, &b));
        let _ = planner.plan(64, Direction::Inverse);
        assert_eq!(planner.cached_plans(), 2);
    }

    #[test]
    fn shift_theorem_holds() {
        // x[n-1] circularly shifted has spectrum X[k] * e^{-2 pi i k / N}.
        let n = 32;
        let input = ramp(n);
        let mut shifted = vec![Complex64::ZERO; n];
        for i in 0..n {
            shifted[(i + 1) % n] = input[i];
        }
        let plan = FftPlan::new(n, Direction::Forward);
        let mut fx = input.clone();
        plan.process(&mut fx);
        let mut fs = shifted;
        plan.process(&mut fs);
        for k in 0..n {
            let phase =
                Complex64::from_polar_angle(-std::f64::consts::TAU * k as f64 / n as f64);
            assert!((fs[k] - fx[k] * phase).abs() < 1e-9);
        }
    }
}
