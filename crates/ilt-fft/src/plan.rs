//! FFT plans: precomputed twiddle factors and bit-reversal permutations.
//!
//! Multi-level ILT transforms the same handful of sizes (N, N/2, N/4, N/8 and
//! the kernel support P rounded up) thousands of times, so planning once and
//! replaying the plan is the dominant-cost-saving structure here, mirroring
//! FFTW-style planners.
//!
//! Plans execute as a decimation-in-time pipeline of **fused radix-4
//! stages**: each stage combines what radix-2 would do in two passes into a
//! single sweep that needs only 3 complex multiplies per 4 outputs instead of
//! 4, cutting the total multiply count by ~25% and halving the number of
//! passes over the data. Sizes with an odd log2 get one twiddle-free radix-2
//! stage first, then proceed in radix-4. Because a fused radix-4 stage is
//! mathematically exactly two consecutive radix-2 stages, the classic
//! bit-reversal input permutation still applies unchanged (the mixed-radix
//! digit reversal is *not* an involution, so reusing bit reversal is what
//! keeps the cheap swap-pair permutation valid).
//!
//! Stage butterflies run through one of three kernels selected once per
//! process ([`crate::active_kernel`]): AVX2, SSE2, or the scalar reference.
//! The SIMD kernels are written to be **bit-identical** to the scalar path
//! (no FMA contraction, same operation order), so masks produced on any
//! machine agree bit-for-bit; `ILT_FFT_FORCE_SCALAR=1` pins the scalar path
//! for verification.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::complex::Complex64;
use crate::simd::{self, Kernel};

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Forward transform, `X[k] = sum_n x[n] e^{-2 pi i n k / N}`.
    Forward,
    /// Inverse transform, `x[n] = (1/N) sum_k X[k] e^{+2 pi i n k / N}`.
    ///
    /// The `1/N` normalization is applied by [`FftPlan::process`].
    Inverse,
}

impl Direction {
    /// Sign of the exponent used by this direction.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

/// One fused radix-4 stage: combines four sub-transforms of size `t` into one
/// of size `4t` using the grouped butterfly
///
/// ```text
/// u1 = W^{2j} b   u2 = W^j c   u3 = W^{3j} d        (3 multiplies)
/// t0 = a + u1     t1 = a - u1
/// t2 = u2 + u3    t3 = u2 - u3
/// A = t0 + t2     B = t1 + s*t3   C = t0 - t2   D = t1 - s*t3
/// ```
///
/// with `W = e^{sign 2 pi i / 4t}` and `s = e^{sign i pi / 2}` (`-i` forward,
/// `+i` inverse) — a free swap-and-negate rotation.
pub(crate) struct Radix4Stage {
    /// Quarter size: the stage merges sub-transforms of `t` points.
    pub(crate) t: usize,
    /// `w1[j] = W^j` for `j in 0..t`.
    pub(crate) w1: Vec<Complex64>,
    /// `w2[j] = W^{2j}`.
    pub(crate) w2: Vec<Complex64>,
    /// `w3[j] = W^{3j}`.
    pub(crate) w3: Vec<Complex64>,
}

/// A reusable decimation-in-time plan for a fixed power-of-two size.
///
/// Obtain plans through [`FftPlanner`], which caches them per size and
/// direction.
///
/// # Examples
///
/// ```
/// use ilt_fft::{Complex64, Direction, FftPlanner};
///
/// let mut planner = FftPlanner::new();
/// let fwd = planner.plan(8, Direction::Forward);
/// let inv = planner.plan(8, Direction::Inverse);
///
/// let mut data: Vec<Complex64> = (0..8).map(|i| Complex64::new(i as f64, 0.0)).collect();
/// let original = data.clone();
/// fwd.process(&mut data);
/// inv.process(&mut data);
/// for (a, b) in data.iter().zip(&original) {
///     assert!((*a - *b).abs() < 1e-12);
/// }
/// ```
pub struct FftPlan {
    len: usize,
    direction: Direction,
    /// Bit-reversal swap pairs `(i, j)` with `i < j`.
    swaps: Vec<(u32, u32)>,
    /// `true` when log2(len) is odd: run one twiddle-free radix-2 pass over
    /// adjacent pairs before the radix-4 stages.
    leading_radix2: bool,
    /// Fused radix-4 stages in execution order (`t = 1 or 2, then 4t, ...`).
    stages: Vec<Radix4Stage>,
}

impl fmt::Debug for FftPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FftPlan")
            .field("len", &self.len)
            .field("direction", &self.direction)
            .field("leading_radix2", &self.leading_radix2)
            .field("radix4_stages", &self.stages.len())
            .finish()
    }
}

impl FftPlan {
    /// Builds a plan for `len` points in the given direction.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or not a power of two.
    pub fn new(len: usize, direction: Direction) -> Self {
        assert!(len.is_power_of_two(), "FFT length {len} must be a power of two");
        let sign = direction.sign();
        let bits = len.trailing_zeros() as usize;

        let leading_radix2 = bits % 2 == 1;
        let mut stages = Vec::new();
        let mut t = if leading_radix2 { 2 } else { 1 };
        while 4 * t <= len {
            let step = sign * std::f64::consts::TAU / (4 * t) as f64;
            let mut w1 = Vec::with_capacity(t);
            let mut w2 = Vec::with_capacity(t);
            let mut w3 = Vec::with_capacity(t);
            for j in 0..t {
                w1.push(Complex64::from_polar_angle(step * j as f64));
                w2.push(Complex64::from_polar_angle(step * (2 * j) as f64));
                w3.push(Complex64::from_polar_angle(step * (3 * j) as f64));
            }
            stages.push(Radix4Stage { t, w1, w2, w3 });
            t *= 4;
        }

        // Bit reversal permutation as swap pairs.
        let mut swaps = Vec::new();
        for i in 0..len as u32 {
            let j = i.reverse_bits() >> (32 - (bits as u32).max(1));
            let j = if bits == 0 { i } else { j };
            if i < j {
                swaps.push((i, j));
            }
        }

        FftPlan { len, direction, swaps, leading_radix2, stages }
    }

    /// Number of points this plan transforms.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the plan is for the degenerate one-point transform.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len <= 1
    }

    /// Direction of this plan.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Transforms `data` in place using the process-wide selected kernel
    /// (AVX2/SSE2 when detected, scalar otherwise — see
    /// [`crate::active_kernel`]).
    ///
    /// Inverse plans divide by `len` so that a forward/inverse pair is the
    /// identity.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned size.
    pub fn process(&self, data: &mut [Complex64]) {
        self.run(data, simd::active());
    }

    /// Transforms `data` in place on the scalar reference path, regardless of
    /// detected CPU features.
    ///
    /// This is the baseline the SIMD kernels are pinned against: for any
    /// input, `process` and `process_scalar` produce bit-identical output.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned size.
    pub fn process_scalar(&self, data: &mut [Complex64]) {
        self.run(data, Kernel::Scalar);
    }

    /// Transforms `width` interleaved columns in place.
    ///
    /// `panel` is a row-major `len x width` block; every column receives
    /// exactly the transform of [`FftPlan::process`], bit-for-bit. The
    /// butterflies run *across* columns, so the SIMD kernels see unit-stride
    /// vectors and load each twiddle once per butterfly row instead of once
    /// per value — this is the workhorse of the blocked 2-D column pass.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `panel.len() != len * width`.
    pub fn process_cols(&self, panel: &mut [Complex64], width: usize) {
        self.run_cols(panel, width, simd::active());
    }

    /// [`FftPlan::process_cols`] on the scalar reference path.
    pub fn process_cols_scalar(&self, panel: &mut [Complex64], width: usize) {
        self.run_cols(panel, width, Kernel::Scalar);
    }

    fn run_cols(&self, panel: &mut [Complex64], width: usize, kernel: Kernel) {
        assert!(width > 0, "panel width must be nonzero");
        assert_eq!(
            panel.len(),
            self.len * width,
            "panel must be len*width = {}",
            self.len * width
        );
        if self.len <= 1 {
            return;
        }

        for &(i, j) in &self.swaps {
            let (i0, j0) = (i as usize * width, j as usize * width);
            for k in 0..width {
                panel.swap(i0 + k, j0 + k);
            }
        }

        let forward = self.direction == Direction::Forward;

        if self.leading_radix2 {
            simd::radix2_rows(panel, width, kernel);
        }

        for stage in &self.stages {
            if stage.t == 1 {
                simd::radix4_stage1_cols(panel, width, forward, kernel);
                continue;
            }
            simd::radix4_stage_cols(panel, width, stage, forward, kernel);
        }

        if self.direction == Direction::Inverse {
            let scale = 1.0 / self.len as f64;
            for v in panel.iter_mut() {
                *v = v.scale(scale);
            }
        }
    }

    fn run(&self, data: &mut [Complex64], kernel: Kernel) {
        assert_eq!(data.len(), self.len, "buffer length must match plan size");
        if self.len <= 1 {
            return;
        }

        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }

        let forward = self.direction == Direction::Forward;

        if self.leading_radix2 {
            // Twiddle-free radix-2 pass over adjacent pairs (W^0 = 1).
            simd::radix2_pairs(data, kernel);
        }

        for stage in &self.stages {
            if stage.t == 1 {
                // All twiddles are W^0 = 1: pure add/sub butterfly.
                simd::radix4_stage1(data, forward, kernel);
                continue;
            }
            simd::radix4_stage(data, stage, forward, kernel);
        }

        if self.direction == Direction::Inverse {
            let scale = 1.0 / self.len as f64;
            for v in data.iter_mut() {
                *v = v.scale(scale);
            }
        }
    }
}

/// `s * z` where `s = -i` (forward) or `+i` (inverse): a swap plus one sign
/// flip, exact in IEEE arithmetic.
#[inline(always)]
pub(crate) fn rotate_sigma(z: Complex64, forward: bool) -> Complex64 {
    if forward {
        Complex64::new(z.im, -z.re)
    } else {
        Complex64::new(-z.im, z.re)
    }
}

/// Scalar twiddle-free radix-2 pass over adjacent pairs.
pub(crate) fn radix2_pairs_scalar(data: &mut [Complex64]) {
    let mut i = 0;
    while i < data.len() {
        let a = data[i];
        let b = data[i + 1];
        data[i] = a + b;
        data[i + 1] = a - b;
        i += 2;
    }
}

/// The `t == 1` fused stage: four adjacent points, no twiddle multiplies.
pub(crate) fn radix4_stage1_scalar(data: &mut [Complex64], forward: bool) {
    let mut base = 0;
    while base < data.len() {
        let a = data[base];
        let b = data[base + 1];
        let c = data[base + 2];
        let d = data[base + 3];
        let t0 = a + b;
        let t1 = a - b;
        let t2 = c + d;
        let t3 = c - d;
        let s3 = rotate_sigma(t3, forward);
        data[base] = t0 + t2;
        data[base + 1] = t1 + s3;
        data[base + 2] = t0 - t2;
        data[base + 3] = t1 - s3;
        base += 4;
    }
}

/// Scalar fused radix-4 stage for `t >= 2`; the reference the SIMD kernels
/// must match bit-for-bit.
pub(crate) fn radix4_stage_scalar(data: &mut [Complex64], stage: &Radix4Stage, forward: bool) {
    let t = stage.t;
    let stride = 4 * t;
    let mut base = 0;
    while base < data.len() {
        for j in 0..t {
            let a = data[base + j];
            let u1 = data[base + j + t] * stage.w2[j];
            let u2 = data[base + j + 2 * t] * stage.w1[j];
            let u3 = data[base + j + 3 * t] * stage.w3[j];
            let t0 = a + u1;
            let t1 = a - u1;
            let t2 = u2 + u3;
            let t3 = u2 - u3;
            let s3 = rotate_sigma(t3, forward);
            data[base + j] = t0 + t2;
            data[base + j + t] = t1 + s3;
            data[base + j + 2 * t] = t0 - t2;
            data[base + j + 3 * t] = t1 - s3;
        }
        base += stride;
    }
}

/// Scalar twiddle-free radix-2 pass over adjacent *rows* of a
/// `rows x width` panel.
pub(crate) fn radix2_rows_scalar(panel: &mut [Complex64], width: usize) {
    let mut r0 = 0;
    while r0 < panel.len() {
        let (top, rest) = panel[r0..].split_at_mut(width);
        for (a, b) in top.iter_mut().zip(&mut rest[..width]) {
            let (x, y) = (*a, *b);
            *a = x + y;
            *b = x - y;
        }
        r0 += 2 * width;
    }
}

/// The `t == 1` fused stage across columns: four adjacent rows per block.
pub(crate) fn radix4_stage1_cols_scalar(panel: &mut [Complex64], width: usize, forward: bool) {
    let mut r0 = 0;
    while r0 < panel.len() {
        for k in r0..r0 + width {
            let a = panel[k];
            let b = panel[k + width];
            let c = panel[k + 2 * width];
            let d = panel[k + 3 * width];
            let t0 = a + b;
            let t1 = a - b;
            let t2 = c + d;
            let t3 = c - d;
            let s3 = rotate_sigma(t3, forward);
            panel[k] = t0 + t2;
            panel[k + width] = t1 + s3;
            panel[k + 2 * width] = t0 - t2;
            panel[k + 3 * width] = t1 - s3;
        }
        r0 += 4 * width;
    }
}

/// Scalar fused radix-4 stage (`t >= 2`) across columns: each butterfly row
/// loads its three twiddles once and applies them to all `width` columns.
pub(crate) fn radix4_stage_cols_scalar(
    panel: &mut [Complex64],
    width: usize,
    stage: &Radix4Stage,
    forward: bool,
) {
    let t = stage.t;
    let stride = 4 * t * width;
    let mut base = 0;
    while base < panel.len() {
        for j in 0..t {
            let w1 = stage.w1[j];
            let w2 = stage.w2[j];
            let w3 = stage.w3[j];
            let ra = base + j * width;
            for k in ra..ra + width {
                let a = panel[k];
                let u1 = panel[k + t * width] * w2;
                let u2 = panel[k + 2 * t * width] * w1;
                let u3 = panel[k + 3 * t * width] * w3;
                let t0 = a + u1;
                let t1 = a - u1;
                let t2 = u2 + u3;
                let t3 = u2 - u3;
                let s3 = rotate_sigma(t3, forward);
                panel[k] = t0 + t2;
                panel[k + t * width] = t1 + s3;
                panel[k + 2 * t * width] = t0 - t2;
                panel[k + 3 * t * width] = t1 - s3;
            }
        }
        base += stride;
    }
}

/// A size-and-direction cache of [`FftPlan`]s.
///
/// Plans are shared via [`Arc`], so clones handed out by [`FftPlanner::plan`]
/// are cheap and can be stored inside simulator structs.
#[derive(Debug, Default)]
pub struct FftPlanner {
    plans: HashMap<(usize, Direction), Arc<FftPlan>>,
}

impl FftPlanner {
    /// Creates an empty planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a (possibly cached) plan for `len` points.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or not a power of two.
    pub fn plan(&mut self, len: usize, direction: Direction) -> Arc<FftPlan> {
        self.plans
            .entry((len, direction))
            .or_insert_with(|| Arc::new(FftPlan::new(len, direction)))
            .clone()
    }

    /// Number of distinct plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.len()
    }

    /// Runs `f` against the process-wide shared planner.
    ///
    /// Every [`crate::Fft2d::new`] and [`crate::fft2_real`] call goes through
    /// this cache, so constructing a transform for an already-seen size costs
    /// four `Arc` clones instead of a twiddle-table build — and every worker
    /// thread in the pool shares one set of twiddle tables per size. The lock
    /// is held only for the map lookup, never across a transform.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilt_fft::{Direction, FftPlanner};
    ///
    /// let a = FftPlanner::global(|p| p.plan(64, Direction::Forward));
    /// let b = FftPlanner::global(|p| p.plan(64, Direction::Forward));
    /// assert!(std::sync::Arc::ptr_eq(&a, &b));
    /// ```
    pub fn global<R>(f: impl FnOnce(&mut FftPlanner) -> R) -> R {
        static GLOBAL: OnceLock<Mutex<FftPlanner>> = OnceLock::new();
        let mut guard = GLOBAL
            .get_or_init(|| Mutex::new(FftPlanner::new()))
            .lock()
            .expect("global FFT planner lock poisoned");
        f(&mut guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct O(n^2) reference DFT.
    fn naive_dft(input: &[Complex64], direction: Direction) -> Vec<Complex64> {
        let n = input.len();
        let sign = direction.sign();
        let mut out = vec![Complex64::ZERO; n];
        for (k, o) in out.iter_mut().enumerate() {
            for (j, &x) in input.iter().enumerate() {
                let theta = sign * std::f64::consts::TAU * (j * k) as f64 / n as f64;
                *o += x * Complex64::from_polar_angle(theta);
            }
            if direction == Direction::Inverse {
                *o = o.scale(1.0 / n as f64);
            }
        }
        out
    }

    fn ramp(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new(i as f64 * 0.37 - 1.0, (i as f64 * 0.11).sin()))
            .collect()
    }

    #[test]
    fn matches_naive_dft_all_small_sizes() {
        for bits in 0..8 {
            let n = 1usize << bits;
            let input = ramp(n);
            for dir in [Direction::Forward, Direction::Inverse] {
                let mut data = input.clone();
                FftPlan::new(n, dir).process(&mut data);
                let want = naive_dft(&input, dir);
                for (a, b) in data.iter().zip(&want) {
                    assert!((*a - *b).abs() < 1e-9, "n={n} dir={dir:?}");
                }
            }
        }
    }

    #[test]
    fn matches_naive_dft_up_to_1024() {
        // Covers both parities of log2 at sizes where several radix-4 stages
        // stack up, including the t=1 special case and SIMD-eligible stages.
        for n in [256usize, 512, 1024] {
            let input = ramp(n);
            for dir in [Direction::Forward, Direction::Inverse] {
                let mut data = input.clone();
                FftPlan::new(n, dir).process(&mut data);
                let want = naive_dft(&input, dir);
                let scale: f64 = input.iter().map(|z| z.abs()).sum::<f64>();
                for (a, b) in data.iter().zip(&want) {
                    assert!((*a - *b).abs() < 1e-9 * scale.max(1.0), "n={n} dir={dir:?}");
                }
            }
        }
    }

    #[test]
    fn simd_process_is_bit_identical_to_scalar() {
        // On machines without SIMD this trivially passes (both run scalar);
        // with AVX2/SSE2 it pins the kernels' bit-compatibility contract.
        for bits in 1..=10 {
            let n = 1usize << bits;
            let input = ramp(n);
            for dir in [Direction::Forward, Direction::Inverse] {
                let plan = FftPlan::new(n, dir);
                let mut fast = input.clone();
                let mut reference = input.clone();
                plan.process(&mut fast);
                plan.process_scalar(&mut reference);
                for (a, b) in fast.iter().zip(&reference) {
                    assert!(
                        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                        "n={n} dir={dir:?}: SIMD output diverged from scalar ({a} vs {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn process_cols_is_bit_identical_to_per_column_process() {
        // Both the SIMD and scalar column-parallel paths must reproduce the
        // single-column transform exactly, for every panel width the 2-D
        // passes use (including odd tail widths, which fall back to scalar).
        for bits in 0..=9 {
            let n = 1usize << bits;
            for width in [1usize, 2, 3, 7, 8] {
                let panel: Vec<Complex64> = (0..n * width)
                    .map(|i| Complex64::new((i as f64 * 0.23).sin(), i as f64 * 0.07 - 1.0))
                    .collect();
                for dir in [Direction::Forward, Direction::Inverse] {
                    let plan = FftPlan::new(n, dir);
                    let mut got = panel.clone();
                    plan.process_cols(&mut got, width);
                    let mut got_scalar = panel.clone();
                    plan.process_cols_scalar(&mut got_scalar, width);
                    for k in 0..width {
                        let mut col: Vec<Complex64> =
                            (0..n).map(|r| panel[r * width + k]).collect();
                        plan.process_scalar(&mut col);
                        for r in 0..n {
                            for (label, v) in
                                [("simd", got[r * width + k]), ("scalar", got_scalar[r * width + k])]
                            {
                                assert!(
                                    v.re.to_bits() == col[r].re.to_bits()
                                        && v.im.to_bits() == col[r].im.to_bits(),
                                    "n={n} width={width} dir={dir:?} col={k} row={r} ({label}): \
                                     {v} vs {}",
                                    col[r]
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let n = 256;
        let input = ramp(n);
        let mut data = input.clone();
        FftPlan::new(n, Direction::Forward).process(&mut data);
        FftPlan::new(n, Direction::Inverse).process(&mut data);
        for (a, b) in data.iter().zip(&input) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 64;
        let mut data = vec![Complex64::ZERO; n];
        data[0] = Complex64::ONE;
        FftPlan::new(n, Direction::Forward).process(&mut data);
        for v in &data {
            assert!((*v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let n = 64;
        let mut data = vec![Complex64::ONE; n];
        FftPlan::new(n, Direction::Forward).process(&mut data);
        assert!((data[0] - Complex64::from_real(n as f64)).abs() < 1e-10);
        for v in &data[1..] {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let input = ramp(n);
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut data = input;
        FftPlan::new(n, Direction::Forward).process(&mut data);
        let freq_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn single_point_is_identity() {
        let mut data = vec![Complex64::new(2.0, -3.0)];
        FftPlan::new(1, Direction::Forward).process(&mut data);
        assert_eq!(data[0], Complex64::new(2.0, -3.0));
    }

    #[test]
    fn two_point_transform_is_sum_and_difference() {
        let mut data = vec![Complex64::new(1.0, 2.0), Complex64::new(-0.5, 0.25)];
        FftPlan::new(2, Direction::Forward).process(&mut data);
        assert_eq!(data[0], Complex64::new(0.5, 2.25));
        assert_eq!(data[1], Complex64::new(1.5, 1.75));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = FftPlan::new(12, Direction::Forward);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_buffer_length_panics() {
        let plan = FftPlan::new(8, Direction::Forward);
        let mut data = vec![Complex64::ZERO; 4];
        plan.process(&mut data);
    }

    #[test]
    fn planner_caches_plans() {
        let mut planner = FftPlanner::new();
        let a = planner.plan(64, Direction::Forward);
        let b = planner.plan(64, Direction::Forward);
        assert!(Arc::ptr_eq(&a, &b));
        let _ = planner.plan(64, Direction::Inverse);
        assert_eq!(planner.cached_plans(), 2);
    }

    #[test]
    fn shift_theorem_holds() {
        // x[n-1] circularly shifted has spectrum X[k] * e^{-2 pi i k / N}.
        let n = 32;
        let input = ramp(n);
        let mut shifted = vec![Complex64::ZERO; n];
        for i in 0..n {
            shifted[(i + 1) % n] = input[i];
        }
        let plan = FftPlan::new(n, Direction::Forward);
        let mut fx = input.clone();
        plan.process(&mut fx);
        let mut fs = shifted;
        plan.process(&mut fs);
        for k in 0..n {
            let phase =
                Complex64::from_polar_angle(-std::f64::consts::TAU * k as f64 / n as f64);
            assert!((fs[k] - fx[k] * phase).abs() < 1e-9);
        }
    }
}
