//! Centered spectrum crop/pad utilities.
//!
//! These implement the two frequency-domain moves at the heart of the
//! multi-level simulation scheme:
//!
//! * **Crop** — "we discard the high-frequency part of `F(M)` so that it can
//!   be multiplied by `H_k`" (Eq. 3): keep only the `P x P` low-frequency
//!   block of an `N x N` spectrum.
//! * **Pad** — re-embed a small spectrum into a larger zero spectrum before an
//!   inverse FFT, restoring the original spatial size (Eq. 3) or a reduced
//!   `N/s` size (Eq. 7, with an extra `1/s^2` amplitude factor that
//!   compensates the change of inverse-FFT normalization).
//!
//! Spectra are stored **unshifted** (DC at index `[0,0]`), so "low
//! frequencies" are the four corner quadrants. All functions here use a
//! signed-frequency convention: output index `i` of a length-`p` axis
//! corresponds to frequency `i` when `i <= (p-1)/2` and `i - p` otherwise.

use crate::complex::Complex64;

/// Signed frequency of index `i` on an axis of length `len`.
///
/// # Examples
///
/// ```
/// use ilt_fft::signed_freq;
/// assert_eq!(signed_freq(0, 8), 0);
/// assert_eq!(signed_freq(3, 8), 3);
/// assert_eq!(signed_freq(4, 8), -4);
/// assert_eq!(signed_freq(7, 8), -1);
/// // Odd lengths split symmetrically.
/// assert_eq!(signed_freq(2, 5), 2);
/// assert_eq!(signed_freq(3, 5), -2);
/// ```
#[inline]
pub fn signed_freq(i: usize, len: usize) -> isize {
    debug_assert!(i < len);
    if i <= (len - 1) / 2 {
        i as isize
    } else {
        i as isize - len as isize
    }
}

/// Index on an axis of length `len` holding signed frequency `f`.
///
/// Inverse of [`signed_freq`]. `f` must satisfy `-len/2 <= f < len` range
/// constraints of the unshifted layout.
#[inline]
pub fn freq_index(f: isize, len: usize) -> usize {
    let len = len as isize;
    debug_assert!(f > -len && f < len);
    ((f + len) % len) as usize
}

/// Extracts the centered `out x out` low-frequency block of an unshifted
/// `n x n` spectrum.
///
/// Every retained output bin `(i, j)` carries the same signed frequency it
/// had in the input, so `crop` followed by [`pad_centered`] is an orthogonal
/// projection onto the retained band.
///
/// # Panics
///
/// Panics if `out > n` or `spec.len() != n * n`.
///
/// # Examples
///
/// ```
/// use ilt_fft::{crop_centered, Complex64};
///
/// // A 4x4 spectrum whose only energy is at DC survives any crop.
/// let mut spec = vec![Complex64::ZERO; 16];
/// spec[0] = Complex64::ONE;
/// let small = crop_centered(&spec, 4, 2);
/// assert_eq!(small[0], Complex64::ONE);
/// ```
pub fn crop_centered(spec: &[Complex64], n: usize, out: usize) -> Vec<Complex64> {
    assert!(out <= n, "crop size {out} exceeds source size {n}");
    assert_eq!(spec.len(), n * n, "spectrum must be n*n");
    // Indices 0..oh carry frequencies 0..oh and map to the same source
    // index; indices oh..out carry -ol..0 and map to the top end of the
    // source axis. Two contiguous segments per axis means the whole crop is
    // four block copies — this sits on the simulator's per-iteration path.
    let oh = out - out / 2;
    let ol = out / 2;
    let mut dst = vec![Complex64::ZERO; out * out];
    for (i, drow) in dst.chunks_exact_mut(out).enumerate() {
        let si = if i < oh { i } else { n - out + i };
        let srow = &spec[si * n..(si + 1) * n];
        drow[..oh].copy_from_slice(&srow[..oh]);
        drow[oh..].copy_from_slice(&srow[n - ol..]);
    }
    dst
}

/// Embeds a small unshifted `p x p` spectrum into the centered low-frequency
/// block of a zeroed `n x n` spectrum.
///
/// # Panics
///
/// Panics if `p > n` or `spec.len() != p * p`.
pub fn pad_centered(spec: &[Complex64], p: usize, n: usize) -> Vec<Complex64> {
    assert!(p <= n, "pad source {p} exceeds target size {n}");
    assert_eq!(spec.len(), p * p, "spectrum must be p*p");
    let mut dst = vec![Complex64::ZERO; n * n];
    pad_centered_into(spec, p, &mut dst, n);
    dst
}

/// Like [`pad_centered`] but writes into a caller-provided buffer (cleared
/// first), avoiding an allocation in the simulator's hot loop.
///
/// # Panics
///
/// Panics if `p > n`, `spec.len() != p * p`, or `dst.len() != n * n`.
pub fn pad_centered_into(spec: &[Complex64], p: usize, dst: &mut [Complex64], n: usize) {
    assert!(p <= n);
    assert_eq!(spec.len(), p * p);
    assert_eq!(dst.len(), n * n);
    dst.fill(Complex64::ZERO);
    // Mirror of `crop_centered`: four block copies instead of per-element
    // signed-frequency arithmetic.
    let ph = p - p / 2;
    let pl = p / 2;
    for (i, srow) in spec.chunks_exact(p).enumerate() {
        let ti = if i < ph { i } else { n - p + i };
        let drow = &mut dst[ti * n..(ti + 1) * n];
        drow[..ph].copy_from_slice(&srow[..ph]);
        drow[n - pl..].copy_from_slice(&srow[ph..]);
    }
}

/// Swaps quadrants so that DC moves to the array center (`fftshift`).
///
/// Useful for visualizing spectra and for constructing kernels whose natural
/// definition is centered. For odd sizes this is the standard
/// `floor(len/2)`-roll; [`ifftshift`] is its exact inverse.
pub fn fftshift(data: &[Complex64], n: usize) -> Vec<Complex64> {
    roll2(data, n, n / 2, n / 2)
}

/// Inverse of [`fftshift`].
pub fn ifftshift(data: &[Complex64], n: usize) -> Vec<Complex64> {
    roll2(data, n, n.div_ceil(2), n.div_ceil(2))
}

fn roll2(data: &[Complex64], n: usize, dr: usize, dc: usize) -> Vec<Complex64> {
    assert_eq!(data.len(), n * n);
    let mut out = vec![Complex64::ZERO; n * n];
    for r in 0..n {
        let tr = (r + dr) % n;
        for c in 0..n {
            let tc = (c + dc) % n;
            out[tr * n + tc] = data[r * n + c];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft2d::Fft2d;

    fn spec_of(img: &[f64], n: usize) -> Vec<Complex64> {
        let mut buf: Vec<Complex64> = img.iter().map(|&x| Complex64::from_real(x)).collect();
        Fft2d::new(n, n).forward(&mut buf);
        buf
    }

    #[test]
    fn signed_freq_roundtrips_through_index() {
        for len in [2usize, 3, 4, 5, 8, 35, 64] {
            for i in 0..len {
                let f = signed_freq(i, len);
                assert_eq!(freq_index(f, len), i, "len={len} i={i}");
            }
        }
    }

    #[test]
    fn crop_then_pad_is_projection() {
        let n = 16;
        let img: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.17).sin()).collect();
        let spec = spec_of(&img, n);
        let cropped = crop_centered(&spec, n, 8);
        let padded = pad_centered(&cropped, 8, n);
        // Applying crop/pad twice changes nothing (projection).
        let again = pad_centered(&crop_centered(&padded, n, 8), 8, n);
        for (a, b) in padded.iter().zip(&again) {
            assert!((*a - *b).abs() < 1e-14);
        }
    }

    #[test]
    fn crop_preserves_band_limited_signals() {
        // A signal containing only frequencies |f| < 4 survives a crop to 8 bins.
        let n = 32;
        let img: Vec<f64> = (0..n * n)
            .map(|idx| {
                let (r, c) = (idx / n, idx % n);
                let x = std::f64::consts::TAU * (r as f64) / n as f64;
                let y = std::f64::consts::TAU * (c as f64) / n as f64;
                1.0 + (2.0 * x).cos() + (3.0 * y).sin() + (x + 2.0 * y).cos()
            })
            .collect();
        let spec = spec_of(&img, n);
        let small = crop_centered(&spec, n, 8);
        let restored_spec = pad_centered(&small, 8, n);
        let mut restored = restored_spec;
        Fft2d::new(n, n).inverse(&mut restored);
        for (z, &x) in restored.iter().zip(&img) {
            assert!((z.re - x).abs() < 1e-9 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn crop_plus_small_inverse_subsamples_band_limited_signal() {
        // The Eq. 7 identity: for a spectrum supported inside the retained
        // band, ifft_{n/s}(crop / s^2) equals the subsampled ifft_n.
        let n = 32;
        let s = 4;
        let m = n / s;
        let img: Vec<f64> = (0..n * n)
            .map(|idx| {
                let (r, c) = (idx / n, idx % n);
                let x = std::f64::consts::TAU * (r as f64) / n as f64;
                let y = std::f64::consts::TAU * (c as f64) / n as f64;
                0.5 + (2.0 * x).cos() * (3.0 * y).cos()
            })
            .collect();
        let spec = spec_of(&img, n);
        // ifft_M(crop(X) / s^2) = x[s r, s c]: our inverse normalizes by
        // 1/M^2 instead of 1/N^2, and the 1/s^2 factor bridges the two.
        let mut small = crop_centered(&spec, n, m);
        for z in &mut small {
            *z = z.scale(1.0 / (s * s) as f64);
        }
        let mut rec = small;
        Fft2d::new(m, m).inverse(&mut rec);
        for rr in 0..m {
            for cc in 0..m {
                let want = img[(rr * s) * n + cc * s];
                let got = rec[rr * m + cc];
                assert!(
                    (got.re - want).abs() < 1e-9 && got.im.abs() < 1e-12,
                    "({rr},{cc}): got {got} want {want}"
                );
            }
        }
    }

    #[test]
    fn fftshift_roundtrip_even_and_odd() {
        for n in [4usize, 5, 8, 9] {
            let data: Vec<Complex64> =
                (0..n * n).map(|i| Complex64::new(i as f64, -(i as f64))).collect();
            let back = ifftshift(&fftshift(&data, n), n);
            assert_eq!(back, data, "n={n}");
        }
    }

    #[test]
    fn fftshift_moves_dc_to_center() {
        let n = 8;
        let mut data = vec![Complex64::ZERO; n * n];
        data[0] = Complex64::ONE;
        let shifted = fftshift(&data, n);
        assert_eq!(shifted[(n / 2) * n + n / 2], Complex64::ONE);
    }

    #[test]
    fn crop_to_same_size_is_identity() {
        let n = 8;
        let data: Vec<Complex64> =
            (0..n * n).map(|i| Complex64::new(i as f64, 1.0)).collect();
        assert_eq!(crop_centered(&data, n, n), data);
        assert_eq!(pad_centered(&data, n, n), data);
    }

    #[test]
    fn odd_crop_keeps_symmetric_band() {
        // Cropping to 5 bins keeps frequencies -2..=2 on each axis.
        let n = 16;
        let mut spec = vec![Complex64::ZERO; n * n];
        spec[freq_index(2, n) * n + freq_index(-2, n)] = Complex64::new(3.0, 1.0);
        spec[freq_index(-3, n) * n] = Complex64::ONE; // outside the band
        let small = crop_centered(&spec, n, 5);
        assert_eq!(small[freq_index(2, 5) * 5 + freq_index(-2, 5)], Complex64::new(3.0, 1.0));
        let total: f64 = small.iter().map(|z| z.norm_sqr()).sum();
        assert!((total - 10.0).abs() < 1e-12, "only the in-band coefficient survives");
    }

    #[test]
    #[should_panic(expected = "exceeds source size")]
    fn crop_larger_than_source_panics() {
        let _ = crop_centered(&[Complex64::ZERO; 4], 2, 3);
    }
}
