//! Two-dimensional FFTs over row-major buffers.
//!
//! The lithography simulator spends almost all of its time in `N x N`
//! transforms (Eq. 3 of the paper: one forward FFT of the mask plus `N_k`
//! inverse FFTs, one per optical kernel), so [`Fft2d`] owns its plans and is
//! designed to be constructed once per size and reused across iterations.
//! The type is `Send + Sync`: plans are immutable after construction, so one
//! instance can serve every worker thread of the batch runtime.

use std::fmt;
use std::sync::Arc;

use crate::complex::Complex64;
use crate::plan::{Direction, FftPlan, FftPlanner};

/// A reusable 2-D FFT for a fixed `rows x cols` shape.
///
/// Both dimensions must be powers of two. Forward and inverse plans are kept
/// for both axes; the inverse applies `1/(rows*cols)` normalization in total
/// (each 1-D inverse pass normalizes by its own length).
///
/// # Examples
///
/// ```
/// use ilt_fft::{Complex64, Fft2d};
///
/// let fft = Fft2d::new(4, 8);
/// let mut data = vec![Complex64::ZERO; 4 * 8];
/// data[0] = Complex64::ONE;
/// fft.forward(&mut data);
/// // An impulse has a flat spectrum.
/// assert!(data.iter().all(|z| (*z - Complex64::ONE).abs() < 1e-12));
/// fft.inverse(&mut data);
/// assert!((data[0] - Complex64::ONE).abs() < 1e-12);
/// ```
pub struct Fft2d {
    rows: usize,
    cols: usize,
    row_fwd: Arc<FftPlan>,
    row_inv: Arc<FftPlan>,
    col_fwd: Arc<FftPlan>,
    col_inv: Arc<FftPlan>,
}

impl fmt::Debug for Fft2d {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fft2d")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .finish()
    }
}

impl Fft2d {
    /// Creates a transform for `rows x cols` buffers.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or not a power of two.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::with_planner(rows, cols, &mut FftPlanner::new())
    }

    /// Creates a transform sharing plans from an existing planner cache.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or not a power of two.
    pub fn with_planner(rows: usize, cols: usize, planner: &mut FftPlanner) -> Self {
        assert!(rows.is_power_of_two() && cols.is_power_of_two());
        Fft2d {
            rows,
            cols,
            row_fwd: planner.plan(cols, Direction::Forward),
            row_inv: planner.plan(cols, Direction::Inverse),
            col_fwd: planner.plan(rows, Direction::Forward),
            col_inv: planner.plan(rows, Direction::Inverse),
        }
    }

    /// Number of rows transformed.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns transformed.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// In-place forward 2-D transform of a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn forward(&self, data: &mut [Complex64]) {
        self.transform(data, &self.row_fwd, &self.col_fwd);
    }

    /// In-place inverse 2-D transform (normalized) of a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.transform(data, &self.row_inv, &self.col_inv);
    }

    fn transform(&self, data: &mut [Complex64], row_plan: &FftPlan, col_plan: &FftPlan) {
        assert_eq!(
            data.len(),
            self.rows * self.cols,
            "buffer must be rows*cols = {}",
            self.rows * self.cols
        );

        for r in 0..self.rows {
            row_plan.process(&mut data[r * self.cols..(r + 1) * self.cols]);
        }

        // A per-call column buffer (rows complex values) keeps the type
        // shareable across threads; its cost is noise next to the
        // O(rows log rows) transform it feeds.
        let mut scratch = vec![Complex64::ZERO; self.rows];
        for c in 0..self.cols {
            for r in 0..self.rows {
                scratch[r] = data[r * self.cols + c];
            }
            col_plan.process(&mut scratch);
            for r in 0..self.rows {
                data[r * self.cols + c] = scratch[r];
            }
        }
    }
}

/// Computes the forward 2-D FFT of a real-valued row-major image into a new
/// complex buffer.
///
/// Convenience wrapper used at API boundaries where the input is a mask or
/// wafer image (`f64` pixels).
///
/// # Panics
///
/// Panics if `data.len() != rows * cols` or a dimension is not a power of two.
///
/// # Examples
///
/// ```
/// use ilt_fft::fft2_real;
///
/// let spec = fft2_real(&[1.0, 0.0, 0.0, 0.0], 2, 2);
/// assert!(spec.iter().all(|z| (z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12));
/// ```
pub fn fft2_real(data: &[f64], rows: usize, cols: usize) -> Vec<Complex64> {
    assert_eq!(data.len(), rows * cols);
    let mut buf: Vec<Complex64> = data.iter().map(|&x| Complex64::from_real(x)).collect();
    Fft2d::new(rows, cols).forward(&mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft2(input: &[Complex64], rows: usize, cols: usize) -> Vec<Complex64> {
        let mut out = vec![Complex64::ZERO; rows * cols];
        for kr in 0..rows {
            for kc in 0..cols {
                let mut acc = Complex64::ZERO;
                for r in 0..rows {
                    for c in 0..cols {
                        let theta = -std::f64::consts::TAU
                            * (kr as f64 * r as f64 / rows as f64
                                + kc as f64 * c as f64 / cols as f64);
                        acc += input[r * cols + c] * Complex64::from_polar_angle(theta);
                    }
                }
                out[kr * cols + kc] = acc;
            }
        }
        out
    }

    fn sample(rows: usize, cols: usize) -> Vec<Complex64> {
        (0..rows * cols)
            .map(|i| Complex64::new((i as f64 * 0.7).cos(), (i as f64 * 0.3).sin()))
            .collect()
    }

    #[test]
    fn matches_naive_2d_dft() {
        for (rows, cols) in [(2, 2), (4, 4), (4, 8), (8, 4), (16, 16)] {
            let input = sample(rows, cols);
            let mut data = input.clone();
            Fft2d::new(rows, cols).forward(&mut data);
            let want = naive_dft2(&input, rows, cols);
            for (a, b) in data.iter().zip(&want) {
                assert!((*a - *b).abs() < 1e-8, "{rows}x{cols}");
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let (rows, cols) = (32, 16);
        let input = sample(rows, cols);
        let fft = Fft2d::new(rows, cols);
        let mut data = input.clone();
        fft.forward(&mut data);
        fft.inverse(&mut data);
        for (a, b) in data.iter().zip(&input) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn separable_product_structure() {
        // fft2 of an outer product u v^T is the outer product of the 1-D ffts.
        let rows = 8;
        let cols = 8;
        let u: Vec<f64> = (0..rows).map(|i| (i as f64 * 0.9).sin() + 1.0).collect();
        let v: Vec<f64> = (0..cols).map(|i| (i as f64 * 0.4).cos()).collect();
        let outer: Vec<Complex64> = (0..rows * cols)
            .map(|i| Complex64::from_real(u[i / cols] * v[i % cols]))
            .collect();
        let mut data = outer;
        Fft2d::new(rows, cols).forward(&mut data);

        let mut fu: Vec<Complex64> = u.iter().map(|&x| Complex64::from_real(x)).collect();
        let mut fv: Vec<Complex64> = v.iter().map(|&x| Complex64::from_real(x)).collect();
        FftPlan::new(rows, Direction::Forward).process(&mut fu);
        FftPlan::new(cols, Direction::Forward).process(&mut fv);

        for r in 0..rows {
            for c in 0..cols {
                assert!((data[r * cols + c] - fu[r] * fv[c]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dc_term_is_sum() {
        let (rows, cols) = (8, 8);
        let input = sample(rows, cols);
        let total: Complex64 = input.iter().copied().sum();
        let mut data = input;
        Fft2d::new(rows, cols).forward(&mut data);
        assert!((data[0] - total).abs() < 1e-10);
    }

    #[test]
    fn real_helper_matches_complex_path() {
        let (rows, cols) = (8, 16);
        let img: Vec<f64> = (0..rows * cols).map(|i| (i as f64 * 0.21).sin()).collect();
        let via_helper = fft2_real(&img, rows, cols);
        let mut via_complex: Vec<Complex64> =
            img.iter().map(|&x| Complex64::from_real(x)).collect();
        Fft2d::new(rows, cols).forward(&mut via_complex);
        for (a, b) in via_helper.iter().zip(&via_complex) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn wrong_size_panics() {
        let fft = Fft2d::new(4, 4);
        let mut data = vec![Complex64::ZERO; 8];
        fft.forward(&mut data);
    }
}
