//! Two-dimensional FFTs over row-major buffers.
//!
//! The lithography simulator spends almost all of its time in `N x N`
//! transforms (Eq. 3 of the paper: one forward FFT of the mask plus `N_k`
//! inverse FFTs, one per optical kernel), so [`Fft2d`] owns its plans and is
//! designed to be constructed once per size and reused across iterations.
//! The type is `Send + Sync`: plans are immutable after construction, so one
//! instance can serve every worker thread of the batch runtime.
//!
//! Three structural optimizations keep the hot path fast:
//!
//! * **Cache-blocked column pass** — columns are processed in transposed
//!   panels so each cache line of the row-major buffer is touched once per
//!   panel instead of once per column.
//! * **Pruned padded inverse** ([`Fft2d::inverse_padded`]) — the simulator
//!   only ever inverts `N x N` spectra whose support is a tiny centered
//!   `P x P` block; the pruned path runs row transforms over the `P` nonzero
//!   rows only and replaces each length-`N` column transform by a length-`Q`
//!   transform (`Q` = `P` rounded up to a power of two) plus a phase twist,
//!   which is exactly the last `log2(Q)` butterfly stages — the first
//!   `log2(N/Q)` stages of the dense transform only ever combine zeros.
//! * **Real-input forward** ([`Fft2d::forward_real`]) — the mask is real, so
//!   two rows are packed into one complex transform and the spectra are
//!   separated through Hermitian symmetry, halving the row pass; the column
//!   pass covers only the non-redundant half-spectrum, with the upper
//!   columns filled by conjugate mirroring.
//! * **Pruned forward** ([`Fft2d::forward_cropped`],
//!   [`Fft2d::forward_real_cropped`]) — the mirror of the pruned inverse:
//!   when only the centered `P x P` block of the spectrum is kept, the
//!   column pass runs first and folds each column into `q`-point transforms
//!   plus a phase twist, so only the `P` surviving rows are ever
//!   row-transformed. The real variant packs column pairs and separates them
//!   through Hermitian symmetry over the closure of the retained set.
//! * **Batched transforms** ([`Fft2d::forward_real_batch`],
//!   [`Fft2d::inverse_padded_batch`]) — many-tile/many-kernel shapes share
//!   one workspace, so twiddle tables, memoized twist tables and grown
//!   buffers are warm for everything after the first item.
//!
//! All paths are exact restructurings of the same sums, so they agree with
//! the dense transforms to f64 rounding (~1e-15 relative).

use std::fmt;
use std::sync::Arc;

use crate::complex::Complex64;
use crate::plan::{Direction, FftPlan, FftPlanner};
use crate::scratch::{grown, with_thread_scratch, Fft2dScratch};
use crate::spectrum::{freq_index, signed_freq};

/// Columns per transposed panel of the blocked column pass. Eight complex
/// values are 128 bytes (two cache lines) per row visit, and a panel of a
/// 2048-point column is 256 KiB — comfortably L2-resident.
const PANEL_COLS: usize = 8;

/// Runs `plan` down every column of the row-major `rows x cols` buffer.
///
/// Columns are copied into row-major panels of [`PANEL_COLS`] columns and
/// transformed side by side by [`FftPlan::process_cols`]: each panel row is
/// one contiguous 128-byte copy in and out, and the butterflies vectorize
/// *across* the panel's columns with one twiddle broadcast per butterfly
/// row.
fn col_pass(
    data: &mut [Complex64],
    rows: usize,
    cols: usize,
    plan: &FftPlan,
    panel_buf: &mut Vec<Complex64>,
) {
    col_pass_limit(data, rows, cols, cols, plan, panel_buf);
}

/// [`col_pass`] over the leading `limit` columns only; the rest of the
/// buffer is left untouched (used by the Hermitian forward path, which
/// reconstructs the remaining columns by conjugate mirroring).
fn col_pass_limit(
    data: &mut [Complex64],
    rows: usize,
    cols: usize,
    limit: usize,
    plan: &FftPlan,
    panel_buf: &mut Vec<Complex64>,
) {
    if rows <= 1 {
        return;
    }
    let panel = grown(panel_buf, PANEL_COLS.min(limit.max(1)) * rows);
    let mut c0 = 0;
    while c0 < limit {
        let w = PANEL_COLS.min(limit - c0);
        for r in 0..rows {
            panel[r * w..(r + 1) * w]
                .copy_from_slice(&data[r * cols + c0..r * cols + c0 + w]);
        }
        plan.process_cols(&mut panel[..rows * w], w);
        for r in 0..rows {
            data[r * cols + c0..r * cols + c0 + w]
                .copy_from_slice(&panel[r * w..(r + 1) * w]);
        }
        c0 += w;
    }
}

/// A reusable 2-D FFT for a fixed `rows x cols` shape.
///
/// Both dimensions must be powers of two. Forward and inverse plans are kept
/// for both axes; the inverse applies `1/(rows*cols)` normalization in total
/// (each 1-D inverse pass normalizes by its own length).
///
/// # Examples
///
/// ```
/// use ilt_fft::{Complex64, Fft2d};
///
/// let fft = Fft2d::new(4, 8);
/// let mut data = vec![Complex64::ZERO; 4 * 8];
/// data[0] = Complex64::ONE;
/// fft.forward(&mut data);
/// // An impulse has a flat spectrum.
/// assert!(data.iter().all(|z| (*z - Complex64::ONE).abs() < 1e-12));
/// fft.inverse(&mut data);
/// assert!((data[0] - Complex64::ONE).abs() < 1e-12);
/// ```
pub struct Fft2d {
    rows: usize,
    cols: usize,
    row_fwd: Arc<FftPlan>,
    row_inv: Arc<FftPlan>,
    col_fwd: Arc<FftPlan>,
    col_inv: Arc<FftPlan>,
}

impl fmt::Debug for Fft2d {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fft2d")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .finish()
    }
}

impl Fft2d {
    /// Creates a transform for `rows x cols` buffers.
    ///
    /// Plans come from the process-wide [`FftPlanner::global`] cache, so
    /// repeated construction for an already-seen size is four `Arc` clones.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or not a power of two.
    pub fn new(rows: usize, cols: usize) -> Self {
        FftPlanner::global(|planner| Self::with_planner(rows, cols, planner))
    }

    /// Creates a transform sharing plans from an existing planner cache.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or not a power of two.
    pub fn with_planner(rows: usize, cols: usize, planner: &mut FftPlanner) -> Self {
        assert!(rows.is_power_of_two() && cols.is_power_of_two());
        Fft2d {
            rows,
            cols,
            row_fwd: planner.plan(cols, Direction::Forward),
            row_inv: planner.plan(cols, Direction::Inverse),
            col_fwd: planner.plan(rows, Direction::Forward),
            col_inv: planner.plan(rows, Direction::Inverse),
        }
    }

    /// Number of rows transformed.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns transformed.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// In-place forward 2-D transform of a row-major buffer.
    ///
    /// Uses the thread-local scratch arena; prefer
    /// [`Fft2d::forward_with`] where a workspace can be threaded through.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn forward(&self, data: &mut [Complex64]) {
        with_thread_scratch(|scratch| self.forward_with(data, scratch));
    }

    /// In-place inverse 2-D transform (normalized) of a row-major buffer.
    ///
    /// Uses the thread-local scratch arena; prefer
    /// [`Fft2d::inverse_with`] where a workspace can be threaded through.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn inverse(&self, data: &mut [Complex64]) {
        with_thread_scratch(|scratch| self.inverse_with(data, scratch));
    }

    /// [`Fft2d::forward`] with an explicit reusable workspace.
    pub fn forward_with(&self, data: &mut [Complex64], scratch: &mut Fft2dScratch) {
        self.transform(data, &self.row_fwd, &self.col_fwd, scratch);
    }

    /// [`Fft2d::inverse`] with an explicit reusable workspace.
    pub fn inverse_with(&self, data: &mut [Complex64], scratch: &mut Fft2dScratch) {
        self.transform(data, &self.row_inv, &self.col_inv, scratch);
    }

    fn transform(
        &self,
        data: &mut [Complex64],
        row_plan: &FftPlan,
        col_plan: &FftPlan,
        scratch: &mut Fft2dScratch,
    ) {
        assert_eq!(
            data.len(),
            self.rows * self.cols,
            "buffer must be rows*cols = {}",
            self.rows * self.cols
        );
        for row in data.chunks_exact_mut(self.cols) {
            row_plan.process(row);
        }
        col_pass(data, self.rows, self.cols, col_plan, &mut scratch.panel);
    }

    /// Forward 2-D transform of a real-valued image into a new complex
    /// buffer, exploiting Hermitian symmetry.
    ///
    /// Two real rows are packed into one complex row transform and the two
    /// spectra separated afterwards, so the row pass costs half of the
    /// complex path's; the column pass runs over the non-redundant
    /// half-spectrum only, with the remaining columns reconstructed by
    /// conjugate mirroring. The result equals the dense complex transform of
    /// the same image to f64 rounding.
    ///
    /// # Panics
    ///
    /// Panics if `img.len() != rows * cols`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilt_fft::{Complex64, Fft2d};
    ///
    /// let fft = Fft2d::new(2, 2);
    /// let spec = fft.forward_real(&[1.0, 0.0, 0.0, 0.0]);
    /// assert!(spec.iter().all(|z| (*z - Complex64::ONE).abs() < 1e-12));
    /// ```
    pub fn forward_real(&self, img: &[f64]) -> Vec<Complex64> {
        let mut out = vec![Complex64::ZERO; self.rows * self.cols];
        with_thread_scratch(|scratch| self.forward_real_with(img, &mut out, scratch));
        out
    }

    /// [`Fft2d::forward_real`] writing into a caller-provided buffer with an
    /// explicit reusable workspace.
    ///
    /// # Panics
    ///
    /// Panics if `img.len()` or `out.len()` differ from `rows * cols`.
    pub fn forward_real_with(
        &self,
        img: &[f64],
        out: &mut [Complex64],
        scratch: &mut Fft2dScratch,
    ) {
        let (rows, cols) = (self.rows, self.cols);
        assert_eq!(img.len(), rows * cols, "image must be rows*cols = {}", rows * cols);
        assert_eq!(out.len(), rows * cols, "output must be rows*cols = {}", rows * cols);

        if rows == 1 {
            for (o, &x) in out.iter_mut().zip(img) {
                *o = Complex64::from_real(x);
            }
            self.row_fwd.process(out);
            return;
        }

        // Row pass: transform rows (2t, 2t+1) as one complex row x + i*y,
        // then split via X[k] = (Z[k] + conj(Z[-k]))/2,
        // Y[k] = (Z[k] - conj(Z[-k]))/(2i). Only columns 0..=cols/2 are
        // unpacked: the 2-D spectrum of a real image is Hermitian, so the
        // upper columns come from conjugate mirroring after the column pass.
        let half = cols / 2;
        let pack = grown(&mut scratch.grid, cols);
        for t in 0..rows / 2 {
            let x = &img[(2 * t) * cols..(2 * t + 1) * cols];
            let y = &img[(2 * t + 1) * cols..(2 * t + 2) * cols];
            for (z, (&xv, &yv)) in pack.iter_mut().zip(x.iter().zip(y)) {
                *z = Complex64::new(xv, yv);
            }
            self.row_fwd.process(pack);
            for k in 0..=half {
                let a = pack[k];
                let b = pack[(cols - k) % cols].conj();
                out[(2 * t) * cols + k] = (a + b).scale(0.5);
                let d = a - b;
                out[(2 * t + 1) * cols + k] = Complex64::new(d.im * 0.5, -d.re * 0.5);
            }
        }

        // Column pass over the non-redundant half-spectrum only, then fill
        // the rest via X[r, c] = conj(X[(rows-r) % rows, cols-c]).
        col_pass_limit(out, rows, cols, half + 1, &self.col_fwd, &mut scratch.panel);
        for r in 0..rows {
            let rm = if r == 0 { 0 } else { rows - r };
            for c in half + 1..cols {
                out[r * cols + c] = out[rm * cols + (cols - c)].conj();
            }
        }
    }

    /// Inverse transform of an `n x n` spectrum that is zero outside its
    /// centered `p x p` low-frequency block, fused with the padding step.
    ///
    /// Equivalent to [`crate::pad_centered_into`] followed by
    /// [`Fft2d::inverse`], but prunes all work on structurally-zero data:
    /// the row pass transforms only the `p` nonzero rows, and the column
    /// pass runs `q`-point transforms (`q = p.next_power_of_two()`) plus a
    /// per-residue phase twist instead of `n`-point transforms — skipping
    /// the `log2(n/q)` leading butterfly stages whose inputs are all zero.
    ///
    /// `spec` is a `p x p` block in the unshifted signed-frequency layout
    /// produced by [`crate::crop_centered`]; the result is written to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the transform is not square, `p` is zero or exceeds `n`,
    /// `spec.len() != p * p`, or `out.len() != n * n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilt_fft::{pad_centered, Complex64, Fft2d};
    ///
    /// let fft = Fft2d::new(64, 64);
    /// let spec: Vec<Complex64> =
    ///     (0..25).map(|i| Complex64::new(i as f64, -1.0)).collect();
    /// // Dense reference: pad to 64x64, then inverse.
    /// let mut dense = pad_centered(&spec, 5, 64);
    /// fft.inverse(&mut dense);
    /// // Pruned path.
    /// let mut out = vec![Complex64::ZERO; 64 * 64];
    /// fft.inverse_padded(&spec, 5, &mut out);
    /// for (a, b) in out.iter().zip(&dense) {
    ///     assert!((*a - *b).abs() < 1e-12);
    /// }
    /// ```
    pub fn inverse_padded(&self, spec: &[Complex64], p: usize, out: &mut [Complex64]) {
        with_thread_scratch(|scratch| self.inverse_padded_with(spec, p, out, scratch));
    }

    /// [`Fft2d::inverse_padded`] with an explicit reusable workspace.
    pub fn inverse_padded_with(
        &self,
        spec: &[Complex64],
        p: usize,
        out: &mut [Complex64],
        scratch: &mut Fft2dScratch,
    ) {
        let n = self.rows;
        assert_eq!(self.rows, self.cols, "inverse_padded requires a square transform");
        assert!(p >= 1 && p <= n, "support {p} must be within 1..={n}");
        assert_eq!(spec.len(), p * p, "spectrum must be p*p");
        assert_eq!(out.len(), n * n, "output must be n*n");

        // Band split: indices 0..ph carry frequencies 0..ph, indices ph..p
        // carry -pl..0 and land at the top end of the length-n axis.
        let ph = p - p / 2;
        let pl = p / 2;

        // Row pass over the p nonzero rows only (the dense path transforms
        // all n rows, n/p of which are identically zero).
        let band = grown(&mut scratch.band, p * n);
        for (i, brow) in band.chunks_exact_mut(n).enumerate() {
            let srow = &spec[i * p..(i + 1) * p];
            brow.fill(Complex64::ZERO);
            brow[..ph].copy_from_slice(&srow[..ph]);
            brow[n - pl..].copy_from_slice(&srow[ph..]);
            self.row_inv.process(brow);
        }

        // Column pass on the q-grid. Output rows split into s = n/q residue
        // classes r0 + s*j; for each class, the length-n column transform
        // collapses to a length-q transform of the band rows twisted by
        // e^{i 2 pi f r0 / n}. The q/n amplitude bridges the 1/q plan
        // normalization to the 1/n the dense path applies.
        let q = p.next_power_of_two();
        let s = n / q;
        let qplan = FftPlanner::global(|planner| planner.plan(q, Direction::Inverse));
        let amp = q as f64 / n as f64;
        // Twist table `e^{+2 pi i f r0 / n} * q/n`, memoized per (n, p): a
        // multi-level simulator replays the same shapes thousands of times,
        // so the p * s sin_cos calls happen once per scratch, not per call.
        let twist = scratch.twist.get_or_build((n, p, false), || {
            let mut table = Vec::with_capacity(p * s);
            for i in 0..p {
                let f = signed_freq(i, p);
                for r0 in 0..s {
                    table.push(
                        Complex64::from_polar_angle(
                            std::f64::consts::TAU * f as f64 * r0 as f64 / n as f64,
                        )
                        .scale(amp),
                    );
                }
            }
            table
        });
        let grid = grown(&mut scratch.grid, q * n);
        for r0 in 0..s {
            // Band rows land at q-grid rows 0..ph and q-pl..q, each fully
            // overwritten below; only the middle q-p rows need zeroing
            // (every row needs it each pass — col_pass overwrites them all).
            grid[ph * n..(q - pl) * n].fill(Complex64::ZERO);
            for i in 0..p {
                let f = signed_freq(i, p);
                let phase = twist[i * s + r0];
                let dst = &mut grid[freq_index(f, q) * n..][..n];
                for (d, &v) in dst.iter_mut().zip(&band[i * n..(i + 1) * n]) {
                    *d = v * phase;
                }
            }
            col_pass(grid, q, n, &qplan, &mut scratch.panel);
            for j in 0..q {
                out[(r0 + s * j) * n..][..n].copy_from_slice(&grid[j * n..(j + 1) * n]);
            }
        }
    }

    /// Forward transform of an `n x n` complex buffer, fused with the crop
    /// to the centered `p x p` low-frequency block.
    ///
    /// Equivalent to [`Fft2d::forward`] followed by
    /// [`crate::crop_centered`], but prunes all work on the discarded
    /// frequencies — the mirror of [`Fft2d::inverse_padded`]. The column
    /// pass runs first and computes only the `p` retained row frequencies by
    /// residue folding: each length-`n` column is decimated into `s = n/q`
    /// interleaved length-`q` segments (`q = p.next_power_of_two()`), the
    /// segments are `q`-point transformed, and the retained frequencies are
    /// recombined with a phase twist (`X[f] = sum_b e^{-2 pi i f b / n}
    /// V_b[f mod q]`). Only the `p` surviving rows are then row-transformed,
    /// so the row pass shrinks from `n` to `p` transforms.
    ///
    /// # Panics
    ///
    /// Panics if the transform is not square, `p` is zero or exceeds `n`,
    /// `data.len() != n * n`, or `out.len() != p * p`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilt_fft::{crop_centered, Complex64, Fft2d};
    ///
    /// let fft = Fft2d::new(16, 16);
    /// let data: Vec<Complex64> =
    ///     (0..256).map(|i| Complex64::new((i as f64 * 0.3).sin(), 0.1)).collect();
    /// // Dense reference: full forward, then crop.
    /// let mut dense = data.clone();
    /// fft.forward(&mut dense);
    /// let want = crop_centered(&dense, 16, 5);
    /// // Pruned path.
    /// let mut got = vec![Complex64::ZERO; 25];
    /// fft.forward_cropped(&data, 5, &mut got);
    /// for (a, b) in got.iter().zip(&want) {
    ///     assert!((*a - *b).abs() < 1e-9);
    /// }
    /// ```
    pub fn forward_cropped(&self, data: &[Complex64], p: usize, out: &mut [Complex64]) {
        with_thread_scratch(|scratch| self.forward_cropped_with(data, p, out, scratch));
    }

    /// [`Fft2d::forward_cropped`] with an explicit reusable workspace.
    pub fn forward_cropped_with(
        &self,
        data: &[Complex64],
        p: usize,
        out: &mut [Complex64],
        scratch: &mut Fft2dScratch,
    ) {
        let n = self.rows;
        assert_eq!(self.rows, self.cols, "forward_cropped requires a square transform");
        assert!(p >= 1 && p <= n, "support {p} must be within 1..={n}");
        assert_eq!(data.len(), n * n, "input must be n*n");
        assert_eq!(out.len(), p * p, "output must be p*p");

        if n == 1 {
            out[0] = data[0];
            return;
        }

        let (ph, pl) = (p - p / 2, p / 2);
        let q = p.next_power_of_two();
        let s = n / q;
        let qplan = FftPlanner::global(|planner| planner.plan(q, Direction::Forward));
        let twist = scratch.twist.get_or_build((n, p, true), || build_forward_twist(n, p));
        let band = grown(&mut scratch.band, p * n);
        let fold = grown(&mut scratch.fold, n * PANEL_COLS.min(n));

        // Column pass in panels of PANEL_COLS columns. A panel viewed as a
        // `q x (s*w)` block *is* the stride-s decimation of its columns
        // (row a, sub-column (b, j) sits at fold[(a*s + b)*w + j] =
        // col_j[a*s + b]), so one `process_cols` call runs every length-q
        // segment transform of the whole panel.
        let mut c0 = 0;
        while c0 < n {
            let w = PANEL_COLS.min(n - c0);
            for r in 0..n {
                fold[r * w..(r + 1) * w]
                    .copy_from_slice(&data[r * n + c0..r * n + c0 + w]);
            }
            qplan.process_cols(&mut fold[..n * w], s * w);
            // Recombine the retained frequencies only:
            // X[f] = sum_b e^{-2 pi i f b / n} V_b[f mod q].
            for i in 0..p {
                let fi = freq_index(signed_freq(i, p), q);
                if s == 1 {
                    band[i * n + c0..i * n + c0 + w]
                        .copy_from_slice(&fold[fi * w..(fi + 1) * w]);
                    continue;
                }
                let trow = &twist[i * s..(i + 1) * s];
                for j in 0..w {
                    let mut acc = Complex64::ZERO;
                    for (b, &tw) in trow.iter().enumerate() {
                        acc += tw * fold[(fi * s + b) * w + j];
                    }
                    band[i * n + c0 + j] = acc;
                }
            }
            c0 += w;
        }

        // Row pass over the p retained rows only, cropping columns on the
        // way out.
        for (i, brow) in band.chunks_exact_mut(n).enumerate() {
            self.row_fwd.process(brow);
            let orow = &mut out[i * p..(i + 1) * p];
            orow[..ph].copy_from_slice(&brow[..ph]);
            orow[ph..].copy_from_slice(&brow[n - pl..]);
        }
    }

    /// Forward transform of a real-valued image, fused with the crop to the
    /// centered `p x p` low-frequency block.
    ///
    /// Combines both pruning tricks: adjacent *columns* are packed into one
    /// complex column (the column pass runs first here), folded and
    /// recombined as in [`Fft2d::forward_cropped`], then separated through
    /// Hermitian symmetry. Because separation at frequency `f` needs the
    /// packed spectrum at `-f`, the recombination covers the symmetric
    /// closure of the retained set (at most one extra frequency, `+p/2` for
    /// even `p`). Only the `p` retained rows are ever row-transformed.
    ///
    /// # Panics
    ///
    /// Panics if the transform is not square, `p` is zero or exceeds `n`,
    /// `img.len() != n * n`, or `out.len() != p * p`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilt_fft::{crop_centered, Complex64, Fft2d};
    ///
    /// let fft = Fft2d::new(16, 16);
    /// let img: Vec<f64> = (0..256).map(|i| (i as f64 * 0.17).cos()).collect();
    /// let want = crop_centered(&fft.forward_real(&img), 16, 6);
    /// let mut got = vec![Complex64::ZERO; 36];
    /// fft.forward_real_cropped(&img, 6, &mut got);
    /// for (a, b) in got.iter().zip(&want) {
    ///     assert!((*a - *b).abs() < 1e-9);
    /// }
    /// ```
    pub fn forward_real_cropped(&self, img: &[f64], p: usize, out: &mut [Complex64]) {
        with_thread_scratch(|scratch| self.forward_real_cropped_with(img, p, out, scratch));
    }

    /// [`Fft2d::forward_real_cropped`] with an explicit reusable workspace.
    pub fn forward_real_cropped_with(
        &self,
        img: &[f64],
        p: usize,
        out: &mut [Complex64],
        scratch: &mut Fft2dScratch,
    ) {
        let n = self.rows;
        assert_eq!(self.rows, self.cols, "forward_real_cropped requires a square transform");
        assert!(p >= 1 && p <= n, "support {p} must be within 1..={n}");
        assert_eq!(img.len(), n * n, "image must be n*n");
        assert_eq!(out.len(), p * p, "output must be p*p");

        if n == 1 {
            out[0] = Complex64::from_real(img[0]);
            return;
        }

        let (ph, pl) = (p - p / 2, p / 2);
        let q = p.next_power_of_two();
        let s = n / q;
        let pc = closure_len(n, p);
        let qplan = FftPlanner::global(|planner| planner.plan(q, Direction::Forward));
        let twist = scratch.twist.get_or_build((n, p, true), || build_forward_twist(n, p));
        let band = grown(&mut scratch.band, p * n);
        let half_cols = n / 2;
        let panel_w = PANEL_COLS.min(half_cols);
        let fold = grown(&mut scratch.fold, n * panel_w);
        let xz = grown(&mut scratch.xz, pc * panel_w);

        // Packed column pass in panels: each packed column pairs two real
        // columns, and the panel viewed as `q x (s*w)` is the stride-s
        // decimation of its packed columns (see `forward_cropped_with`).
        let mut cp0 = 0;
        while cp0 < half_cols {
            let w = panel_w.min(half_cols - cp0);
            for r in 0..n {
                let src = &img[r * n + 2 * cp0..r * n + 2 * (cp0 + w)];
                for (v, pair) in fold[r * w..(r + 1) * w].iter_mut().zip(src.chunks_exact(2)) {
                    *v = Complex64::new(pair[0], pair[1]);
                }
            }
            qplan.process_cols(&mut fold[..n * w], s * w);
            // Packed spectra over the symmetric closure of the retained set.
            for ci in 0..pc {
                let fi = freq_index(closure_freq(ci, p), q);
                if s == 1 {
                    xz[ci * w..(ci + 1) * w].copy_from_slice(&fold[fi * w..(fi + 1) * w]);
                    continue;
                }
                let trow = &twist[ci * s..(ci + 1) * s];
                for j in 0..w {
                    let mut acc = Complex64::ZERO;
                    for (b, &tw) in trow.iter().enumerate() {
                        acc += tw * fold[(fi * s + b) * w + j];
                    }
                    xz[ci * w + j] = acc;
                }
            }
            // Hermitian separation: the even (real) part of a packed column
            // is its first real column, the odd part the second.
            for i in 0..p {
                let ni = closure_neg_index(i, p, n);
                for j in 0..w {
                    let a = xz[i * w + j];
                    let b = xz[ni * w + j].conj();
                    let c = 2 * (cp0 + j);
                    band[i * n + c] = (a + b).scale(0.5);
                    let d = a - b;
                    band[i * n + c + 1] = Complex64::new(d.im * 0.5, -d.re * 0.5);
                }
            }
            cp0 += w;
        }

        for (i, brow) in band.chunks_exact_mut(n).enumerate() {
            self.row_fwd.process(brow);
            let orow = &mut out[i * p..(i + 1) * p];
            orow[..ph].copy_from_slice(&brow[..ph]);
            orow[ph..].copy_from_slice(&brow[n - pl..]);
        }
    }

    /// [`Fft2d::forward_real`] over many images, reusing one workspace (and
    /// therefore one set of twiddle/twist tables) across the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if any image length differs from `rows * cols`.
    pub fn forward_real_batch(&self, imgs: &[&[f64]]) -> Vec<Vec<Complex64>> {
        with_thread_scratch(|scratch| self.forward_real_batch_with(imgs, scratch))
    }

    /// [`Fft2d::forward_real_batch`] with an explicit reusable workspace.
    pub fn forward_real_batch_with(
        &self,
        imgs: &[&[f64]],
        scratch: &mut Fft2dScratch,
    ) -> Vec<Vec<Complex64>> {
        imgs.iter()
            .map(|img| {
                let mut out = vec![Complex64::ZERO; self.rows * self.cols];
                self.forward_real_with(img, &mut out, scratch);
                out
            })
            .collect()
    }

    /// [`Fft2d::inverse_padded`] over many spectra sharing one support `p`,
    /// streaming each full-grid result to `each(index, grid)` from a single
    /// reused buffer.
    ///
    /// This is the shape of the Hopkins aerial accumulation (Eq. 3): `N_k`
    /// kernel spectra inverted back-to-back, each consumed immediately. The
    /// batch shares one workspace, so the twiddle tables, twist tables and
    /// grown buffers are warm for every spectrum after the first.
    ///
    /// # Panics
    ///
    /// Panics as [`Fft2d::inverse_padded`] for any spectrum in the batch.
    pub fn inverse_padded_batch(
        &self,
        specs: &[&[Complex64]],
        p: usize,
        each: impl FnMut(usize, &[Complex64]),
    ) {
        with_thread_scratch(|scratch| self.inverse_padded_batch_with(specs, p, each, scratch));
    }

    /// [`Fft2d::inverse_padded_batch`] with an explicit reusable workspace.
    pub fn inverse_padded_batch_with(
        &self,
        specs: &[&[Complex64]],
        p: usize,
        mut each: impl FnMut(usize, &[Complex64]),
        scratch: &mut Fft2dScratch,
    ) {
        let n = self.rows * self.cols;
        let mut buf = std::mem::take(&mut scratch.batch_out);
        grown(&mut buf, n);
        for (k, spec) in specs.iter().enumerate() {
            self.inverse_padded_with(spec, p, &mut buf[..n], scratch);
            each(k, &buf[..n]);
        }
        scratch.batch_out = buf;
    }
}

/// Number of frequencies in the symmetric closure of the retained set: even
/// `p` needs one extra (`+p/2`, the mirror of `-p/2`) unless `p == n`, where
/// `+p/2` and `-p/2` alias to the same bin.
fn closure_len(n: usize, p: usize) -> usize {
    if p % 2 == 0 && p < n {
        p + 1
    } else {
        p
    }
}

/// Signed frequency of closure index `ci`: indices `0..p` are the retained
/// set in [`signed_freq`] order; index `p` (even `p` only) is `+p/2`.
fn closure_freq(ci: usize, p: usize) -> isize {
    if ci < p {
        signed_freq(ci, p)
    } else {
        (p / 2) as isize
    }
}

/// Closure index holding frequency `-f` for retained index `i`.
fn closure_neg_index(i: usize, p: usize, n: usize) -> usize {
    let g = -signed_freq(i, p);
    if g < (p - p / 2) as isize {
        freq_index(g, p)
    } else if p < n {
        p // the extra +p/2 closure row
    } else {
        i // +p/2 aliases -p/2 when p == n: the bin is self-conjugate
    }
}

/// Twist table of the pruned forward: `e^{-2 pi i f b / n}` for every
/// closure frequency `f` (rows) and fold offset `b in 0..s` (columns).
fn build_forward_twist(n: usize, p: usize) -> Vec<Complex64> {
    let q = p.next_power_of_two();
    let s = n / q;
    let rows = closure_len(n, p);
    let mut table = Vec::with_capacity(rows * s);
    for ci in 0..rows {
        let f = closure_freq(ci, p);
        for b in 0..s {
            table.push(Complex64::from_polar_angle(
                -std::f64::consts::TAU * f as f64 * b as f64 / n as f64,
            ));
        }
    }
    table
}

/// Computes the forward 2-D FFT of a real-valued row-major image into a new
/// complex buffer.
///
/// Convenience wrapper used at API boundaries where the input is a mask or
/// wafer image (`f64` pixels). Routed through the global planner cache and
/// the Hermitian-packed row pass, so calling it repeatedly does not rebuild
/// twiddle tables.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols` or a dimension is not a power of two.
///
/// # Examples
///
/// ```
/// use ilt_fft::fft2_real;
///
/// let spec = fft2_real(&[1.0, 0.0, 0.0, 0.0], 2, 2);
/// assert!(spec.iter().all(|z| (z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12));
/// ```
pub fn fft2_real(data: &[f64], rows: usize, cols: usize) -> Vec<Complex64> {
    assert_eq!(data.len(), rows * cols);
    Fft2d::new(rows, cols).forward_real(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::pad_centered;

    fn naive_dft2(input: &[Complex64], rows: usize, cols: usize) -> Vec<Complex64> {
        let mut out = vec![Complex64::ZERO; rows * cols];
        for kr in 0..rows {
            for kc in 0..cols {
                let mut acc = Complex64::ZERO;
                for r in 0..rows {
                    for c in 0..cols {
                        let theta = -std::f64::consts::TAU
                            * (kr as f64 * r as f64 / rows as f64
                                + kc as f64 * c as f64 / cols as f64);
                        acc += input[r * cols + c] * Complex64::from_polar_angle(theta);
                    }
                }
                out[kr * cols + kc] = acc;
            }
        }
        out
    }

    fn sample(rows: usize, cols: usize) -> Vec<Complex64> {
        (0..rows * cols)
            .map(|i| Complex64::new((i as f64 * 0.7).cos(), (i as f64 * 0.3).sin()))
            .collect()
    }

    /// Deterministic pseudo-random values in [-1, 1] (splitmix-style).
    fn lcg_vals(seed: u64, len: usize) -> Vec<f64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    fn lcg_complex(seed: u64, len: usize) -> Vec<Complex64> {
        let vals = lcg_vals(seed, 2 * len);
        (0..len).map(|i| Complex64::new(vals[2 * i], vals[2 * i + 1])).collect()
    }

    fn max_abs_diff(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (*x - *y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn matches_naive_2d_dft() {
        for (rows, cols) in [(2, 2), (4, 4), (4, 8), (8, 4), (16, 16)] {
            let input = sample(rows, cols);
            let mut data = input.clone();
            Fft2d::new(rows, cols).forward(&mut data);
            let want = naive_dft2(&input, rows, cols);
            for (a, b) in data.iter().zip(&want) {
                assert!((*a - *b).abs() < 1e-8, "{rows}x{cols}");
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let (rows, cols) = (32, 16);
        let input = sample(rows, cols);
        let fft = Fft2d::new(rows, cols);
        let mut data = input.clone();
        fft.forward(&mut data);
        fft.inverse(&mut data);
        for (a, b) in data.iter().zip(&input) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn separable_product_structure() {
        // fft2 of an outer product u v^T is the outer product of the 1-D ffts.
        let rows = 8;
        let cols = 8;
        let u: Vec<f64> = (0..rows).map(|i| (i as f64 * 0.9).sin() + 1.0).collect();
        let v: Vec<f64> = (0..cols).map(|i| (i as f64 * 0.4).cos()).collect();
        let outer: Vec<Complex64> = (0..rows * cols)
            .map(|i| Complex64::from_real(u[i / cols] * v[i % cols]))
            .collect();
        let mut data = outer;
        Fft2d::new(rows, cols).forward(&mut data);

        let mut fu: Vec<Complex64> = u.iter().map(|&x| Complex64::from_real(x)).collect();
        let mut fv: Vec<Complex64> = v.iter().map(|&x| Complex64::from_real(x)).collect();
        FftPlan::new(rows, Direction::Forward).process(&mut fu);
        FftPlan::new(cols, Direction::Forward).process(&mut fv);

        for r in 0..rows {
            for c in 0..cols {
                assert!((data[r * cols + c] - fu[r] * fv[c]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dc_term_is_sum() {
        let (rows, cols) = (8, 8);
        let input = sample(rows, cols);
        let total: Complex64 = input.iter().copied().sum();
        let mut data = input;
        Fft2d::new(rows, cols).forward(&mut data);
        assert!((data[0] - total).abs() < 1e-10);
    }

    #[test]
    fn real_helper_matches_complex_path() {
        let (rows, cols) = (8, 16);
        let img: Vec<f64> = (0..rows * cols).map(|i| (i as f64 * 0.21).sin()).collect();
        let via_helper = fft2_real(&img, rows, cols);
        let mut via_complex: Vec<Complex64> =
            img.iter().map(|&x| Complex64::from_real(x)).collect();
        Fft2d::new(rows, cols).forward(&mut via_complex);
        for (a, b) in via_helper.iter().zip(&via_complex) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn forward_real_matches_complex_on_random_images() {
        for (seed, (rows, cols)) in
            [(1u64, (1usize, 8usize)), (2, (2, 2)), (3, (16, 8)), (4, (64, 64)), (5, (128, 32))]
                .into_iter()
        {
            let img = lcg_vals(seed, rows * cols);
            let fft = Fft2d::new(rows, cols);
            let real_path = fft.forward_real(&img);
            let mut complex_path: Vec<Complex64> =
                img.iter().map(|&x| Complex64::from_real(x)).collect();
            fft.forward(&mut complex_path);
            let diff = max_abs_diff(&real_path, &complex_path);
            assert!(diff <= 1e-12, "{rows}x{cols}: max |diff| = {diff:e}");
        }
    }

    #[test]
    fn pruned_inverse_matches_dense_on_random_spectra() {
        for (seed, (n, p)) in
            [(11u64, (64usize, 8usize)), (12, (256, 25)), (13, (512, 25))].into_iter()
        {
            let spec = lcg_complex(seed, p * p);
            let fft = Fft2d::new(n, n);
            let mut dense = pad_centered(&spec, p, n);
            fft.inverse(&mut dense);
            let mut pruned = vec![Complex64::ZERO; n * n];
            fft.inverse_padded(&spec, p, &mut pruned);
            let diff = max_abs_diff(&pruned, &dense);
            assert!(diff <= 1e-12, "n={n} p={p}: max |diff| = {diff:e}");
        }
    }

    #[test]
    fn pruned_inverse_handles_degenerate_supports() {
        // p = 1 (single DC bin), p = n (no pruning possible), and an even p.
        for (n, p) in [(16usize, 1usize), (16, 16), (32, 6)] {
            let spec = lcg_complex(7 + n as u64, p * p);
            let fft = Fft2d::new(n, n);
            let mut dense = pad_centered(&spec, p, n);
            fft.inverse(&mut dense);
            let mut pruned = vec![Complex64::ZERO; n * n];
            fft.inverse_padded(&spec, p, &mut pruned);
            let diff = max_abs_diff(&pruned, &dense);
            assert!(diff <= 1e-12, "n={n} p={p}: max |diff| = {diff:e}");
        }
    }

    #[test]
    fn forward_cropped_matches_dense_forward_plus_crop() {
        use crate::spectrum::crop_centered;
        for (seed, (n, p)) in [
            (41u64, (8usize, 1usize)),
            (42, (16, 7)),
            (43, (64, 25)),
            (44, (64, 64)),
            (45, (128, 6)),
        ] {
            let input = lcg_complex(seed, n * n);
            let fft = Fft2d::new(n, n);
            let mut dense = input.clone();
            fft.forward(&mut dense);
            let want = crop_centered(&dense, n, p);
            let mut got = vec![Complex64::ZERO; p * p];
            fft.forward_cropped(&input, p, &mut got);
            let scale: f64 = want.iter().map(|z| z.abs()).fold(1.0, f64::max);
            let diff = max_abs_diff(&got, &want);
            assert!(diff <= 1e-12 * scale, "n={n} p={p}: max |diff| = {diff:e}");
        }
    }

    #[test]
    fn forward_real_cropped_matches_dense_forward_plus_crop() {
        use crate::spectrum::crop_centered;
        for (seed, (n, p)) in [
            (51u64, (8usize, 1usize)),
            (52, (16, 7)),
            (53, (64, 25)),
            (54, (64, 64)),
            (55, (128, 6)),
            (56, (32, 2)),
        ] {
            let img = lcg_vals(seed, n * n);
            let fft = Fft2d::new(n, n);
            let want = crop_centered(&fft.forward_real(&img), n, p);
            let mut got = vec![Complex64::ZERO; p * p];
            fft.forward_real_cropped(&img, p, &mut got);
            let scale: f64 = want.iter().map(|z| z.abs()).fold(1.0, f64::max);
            let diff = max_abs_diff(&got, &want);
            assert!(diff <= 1e-12 * scale, "n={n} p={p}: max |diff| = {diff:e}");
        }
    }

    #[test]
    fn batch_apis_match_sequential_calls() {
        let n = 32;
        let p = 7;
        let fft = Fft2d::new(n, n);
        let imgs: Vec<Vec<f64>> = (0..3).map(|k| lcg_vals(60 + k, n * n)).collect();
        let img_refs: Vec<&[f64]> = imgs.iter().map(|v| v.as_slice()).collect();
        let batched = fft.forward_real_batch(&img_refs);
        for (img, got) in imgs.iter().zip(&batched) {
            let want = fft.forward_real(img);
            assert_eq!(got, &want, "batched forward must equal the sequential path");
        }

        let specs: Vec<Vec<Complex64>> = (0..3).map(|k| lcg_complex(70 + k, p * p)).collect();
        let spec_refs: Vec<&[Complex64]> = specs.iter().map(|v| v.as_slice()).collect();
        let mut seen = 0;
        fft.inverse_padded_batch(&spec_refs, p, |k, grid| {
            let mut want = vec![Complex64::ZERO; n * n];
            fft.inverse_padded(&specs[k], p, &mut want);
            assert_eq!(grid, want.as_slice(), "batched inverse must equal the sequential path");
            seen += 1;
        });
        assert_eq!(seen, specs.len());
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let (n, p) = (64usize, 9usize);
        let fft = Fft2d::new(n, n);
        let img = lcg_vals(21, n * n);
        let spec = lcg_complex(22, p * p);

        // Warm a scratch on unrelated sizes first, then reuse it.
        let mut reused = Fft2dScratch::new();
        let other = Fft2d::new(128, 128);
        let mut tmp = lcg_complex(23, 128 * 128);
        other.forward_with(&mut tmp, &mut reused);

        let mut out_reused = vec![Complex64::ZERO; n * n];
        fft.forward_real_with(&img, &mut out_reused, &mut reused);
        let mut out_fresh = vec![Complex64::ZERO; n * n];
        fft.forward_real_with(&img, &mut out_fresh, &mut Fft2dScratch::new());
        assert_eq!(out_reused, out_fresh, "forward_real must not depend on scratch history");

        let mut inv_reused = vec![Complex64::ZERO; n * n];
        fft.inverse_padded_with(&spec, p, &mut inv_reused, &mut reused);
        let mut inv_fresh = vec![Complex64::ZERO; n * n];
        fft.inverse_padded_with(&spec, p, &mut inv_fresh, &mut Fft2dScratch::new());
        assert_eq!(inv_reused, inv_fresh, "inverse_padded must not depend on scratch history");
    }

    #[test]
    fn explicit_scratch_matches_thread_local_path() {
        let n = 32;
        let input = lcg_complex(31, n * n);
        let mut via_arena = input.clone();
        Fft2d::new(n, n).forward(&mut via_arena);
        let mut via_explicit = input;
        Fft2d::new(n, n).forward_with(&mut via_explicit, &mut Fft2dScratch::new());
        assert_eq!(via_arena, via_explicit);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn wrong_size_panics() {
        let fft = Fft2d::new(4, 4);
        let mut data = vec![Complex64::ZERO; 8];
        fft.forward(&mut data);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn inverse_padded_rejects_rectangular() {
        let fft = Fft2d::new(4, 8);
        let mut out = vec![Complex64::ZERO; 32];
        fft.inverse_padded(&[Complex64::ONE], 1, &mut out);
    }

    #[test]
    #[should_panic(expected = "support")]
    fn inverse_padded_rejects_oversized_support() {
        let fft = Fft2d::new(4, 4);
        let mut out = vec![Complex64::ZERO; 16];
        fft.inverse_padded(&vec![Complex64::ONE; 25], 5, &mut out);
    }
}
