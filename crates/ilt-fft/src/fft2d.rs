//! Two-dimensional FFTs over row-major buffers.
//!
//! The lithography simulator spends almost all of its time in `N x N`
//! transforms (Eq. 3 of the paper: one forward FFT of the mask plus `N_k`
//! inverse FFTs, one per optical kernel), so [`Fft2d`] owns its plans and is
//! designed to be constructed once per size and reused across iterations.
//! The type is `Send + Sync`: plans are immutable after construction, so one
//! instance can serve every worker thread of the batch runtime.
//!
//! Three structural optimizations keep the hot path fast:
//!
//! * **Cache-blocked column pass** — columns are processed in transposed
//!   panels so each cache line of the row-major buffer is touched once per
//!   panel instead of once per column.
//! * **Pruned padded inverse** ([`Fft2d::inverse_padded`]) — the simulator
//!   only ever inverts `N x N` spectra whose support is a tiny centered
//!   `P x P` block; the pruned path runs row transforms over the `P` nonzero
//!   rows only and replaces each length-`N` column transform by a length-`Q`
//!   transform (`Q` = `P` rounded up to a power of two) plus a phase twist,
//!   which is exactly the last `log2(Q)` butterfly stages — the first
//!   `log2(N/Q)` stages of the dense transform only ever combine zeros.
//! * **Real-input forward** ([`Fft2d::forward_real`]) — the mask is real, so
//!   two rows are packed into one complex transform and the spectra are
//!   separated through Hermitian symmetry, halving the row pass; the column
//!   pass covers only the non-redundant half-spectrum, with the upper
//!   columns filled by conjugate mirroring.
//!
//! All paths are exact restructurings of the same sums, so they agree with
//! the dense transforms to f64 rounding (~1e-15 relative).

use std::fmt;
use std::sync::Arc;

use crate::complex::Complex64;
use crate::plan::{Direction, FftPlan, FftPlanner};
use crate::scratch::{grown, with_thread_scratch, Fft2dScratch};
use crate::spectrum::{freq_index, signed_freq};

/// Columns per transposed panel of the blocked column pass. Eight complex
/// values are 128 bytes (two cache lines) per row visit, and a panel of a
/// 2048-point column is 256 KiB — comfortably L2-resident.
const PANEL_COLS: usize = 8;

/// Runs `plan` down every column of the row-major `rows x cols` buffer.
///
/// Columns are gathered into contiguous panels of [`PANEL_COLS`] transposed
/// columns, transformed, and scattered back, so the row-major buffer is
/// streamed a full cache line at a time in both directions.
fn col_pass(
    data: &mut [Complex64],
    rows: usize,
    cols: usize,
    plan: &FftPlan,
    panel_buf: &mut Vec<Complex64>,
) {
    col_pass_limit(data, rows, cols, cols, plan, panel_buf);
}

/// [`col_pass`] over the leading `limit` columns only; the rest of the
/// buffer is left untouched (used by the Hermitian forward path, which
/// reconstructs the remaining columns by conjugate mirroring).
fn col_pass_limit(
    data: &mut [Complex64],
    rows: usize,
    cols: usize,
    limit: usize,
    plan: &FftPlan,
    panel_buf: &mut Vec<Complex64>,
) {
    if rows <= 1 {
        return;
    }
    let panel = grown(panel_buf, PANEL_COLS.min(limit.max(1)) * rows);
    let mut c0 = 0;
    while c0 < limit {
        let w = PANEL_COLS.min(limit - c0);
        for r in 0..rows {
            let src = &data[r * cols + c0..r * cols + c0 + w];
            for (k, &v) in src.iter().enumerate() {
                panel[k * rows + r] = v;
            }
        }
        for col in panel[..w * rows].chunks_exact_mut(rows) {
            plan.process(col);
        }
        for r in 0..rows {
            let dst = &mut data[r * cols + c0..r * cols + c0 + w];
            for (k, d) in dst.iter_mut().enumerate() {
                *d = panel[k * rows + r];
            }
        }
        c0 += w;
    }
}

/// A reusable 2-D FFT for a fixed `rows x cols` shape.
///
/// Both dimensions must be powers of two. Forward and inverse plans are kept
/// for both axes; the inverse applies `1/(rows*cols)` normalization in total
/// (each 1-D inverse pass normalizes by its own length).
///
/// # Examples
///
/// ```
/// use ilt_fft::{Complex64, Fft2d};
///
/// let fft = Fft2d::new(4, 8);
/// let mut data = vec![Complex64::ZERO; 4 * 8];
/// data[0] = Complex64::ONE;
/// fft.forward(&mut data);
/// // An impulse has a flat spectrum.
/// assert!(data.iter().all(|z| (*z - Complex64::ONE).abs() < 1e-12));
/// fft.inverse(&mut data);
/// assert!((data[0] - Complex64::ONE).abs() < 1e-12);
/// ```
pub struct Fft2d {
    rows: usize,
    cols: usize,
    row_fwd: Arc<FftPlan>,
    row_inv: Arc<FftPlan>,
    col_fwd: Arc<FftPlan>,
    col_inv: Arc<FftPlan>,
}

impl fmt::Debug for Fft2d {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fft2d")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .finish()
    }
}

impl Fft2d {
    /// Creates a transform for `rows x cols` buffers.
    ///
    /// Plans come from the process-wide [`FftPlanner::global`] cache, so
    /// repeated construction for an already-seen size is four `Arc` clones.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or not a power of two.
    pub fn new(rows: usize, cols: usize) -> Self {
        FftPlanner::global(|planner| Self::with_planner(rows, cols, planner))
    }

    /// Creates a transform sharing plans from an existing planner cache.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or not a power of two.
    pub fn with_planner(rows: usize, cols: usize, planner: &mut FftPlanner) -> Self {
        assert!(rows.is_power_of_two() && cols.is_power_of_two());
        Fft2d {
            rows,
            cols,
            row_fwd: planner.plan(cols, Direction::Forward),
            row_inv: planner.plan(cols, Direction::Inverse),
            col_fwd: planner.plan(rows, Direction::Forward),
            col_inv: planner.plan(rows, Direction::Inverse),
        }
    }

    /// Number of rows transformed.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns transformed.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// In-place forward 2-D transform of a row-major buffer.
    ///
    /// Uses the thread-local scratch arena; prefer
    /// [`Fft2d::forward_with`] where a workspace can be threaded through.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn forward(&self, data: &mut [Complex64]) {
        with_thread_scratch(|scratch| self.forward_with(data, scratch));
    }

    /// In-place inverse 2-D transform (normalized) of a row-major buffer.
    ///
    /// Uses the thread-local scratch arena; prefer
    /// [`Fft2d::inverse_with`] where a workspace can be threaded through.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn inverse(&self, data: &mut [Complex64]) {
        with_thread_scratch(|scratch| self.inverse_with(data, scratch));
    }

    /// [`Fft2d::forward`] with an explicit reusable workspace.
    pub fn forward_with(&self, data: &mut [Complex64], scratch: &mut Fft2dScratch) {
        self.transform(data, &self.row_fwd, &self.col_fwd, scratch);
    }

    /// [`Fft2d::inverse`] with an explicit reusable workspace.
    pub fn inverse_with(&self, data: &mut [Complex64], scratch: &mut Fft2dScratch) {
        self.transform(data, &self.row_inv, &self.col_inv, scratch);
    }

    fn transform(
        &self,
        data: &mut [Complex64],
        row_plan: &FftPlan,
        col_plan: &FftPlan,
        scratch: &mut Fft2dScratch,
    ) {
        assert_eq!(
            data.len(),
            self.rows * self.cols,
            "buffer must be rows*cols = {}",
            self.rows * self.cols
        );
        for row in data.chunks_exact_mut(self.cols) {
            row_plan.process(row);
        }
        col_pass(data, self.rows, self.cols, col_plan, &mut scratch.panel);
    }

    /// Forward 2-D transform of a real-valued image into a new complex
    /// buffer, exploiting Hermitian symmetry.
    ///
    /// Two real rows are packed into one complex row transform and the two
    /// spectra separated afterwards, so the row pass costs half of the
    /// complex path's; the column pass runs over the non-redundant
    /// half-spectrum only, with the remaining columns reconstructed by
    /// conjugate mirroring. The result equals the dense complex transform of
    /// the same image to f64 rounding.
    ///
    /// # Panics
    ///
    /// Panics if `img.len() != rows * cols`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilt_fft::{Complex64, Fft2d};
    ///
    /// let fft = Fft2d::new(2, 2);
    /// let spec = fft.forward_real(&[1.0, 0.0, 0.0, 0.0]);
    /// assert!(spec.iter().all(|z| (*z - Complex64::ONE).abs() < 1e-12));
    /// ```
    pub fn forward_real(&self, img: &[f64]) -> Vec<Complex64> {
        let mut out = vec![Complex64::ZERO; self.rows * self.cols];
        with_thread_scratch(|scratch| self.forward_real_with(img, &mut out, scratch));
        out
    }

    /// [`Fft2d::forward_real`] writing into a caller-provided buffer with an
    /// explicit reusable workspace.
    ///
    /// # Panics
    ///
    /// Panics if `img.len()` or `out.len()` differ from `rows * cols`.
    pub fn forward_real_with(
        &self,
        img: &[f64],
        out: &mut [Complex64],
        scratch: &mut Fft2dScratch,
    ) {
        let (rows, cols) = (self.rows, self.cols);
        assert_eq!(img.len(), rows * cols, "image must be rows*cols = {}", rows * cols);
        assert_eq!(out.len(), rows * cols, "output must be rows*cols = {}", rows * cols);

        if rows == 1 {
            for (o, &x) in out.iter_mut().zip(img) {
                *o = Complex64::from_real(x);
            }
            self.row_fwd.process(out);
            return;
        }

        // Row pass: transform rows (2t, 2t+1) as one complex row x + i*y,
        // then split via X[k] = (Z[k] + conj(Z[-k]))/2,
        // Y[k] = (Z[k] - conj(Z[-k]))/(2i). Only columns 0..=cols/2 are
        // unpacked: the 2-D spectrum of a real image is Hermitian, so the
        // upper columns come from conjugate mirroring after the column pass.
        let half = cols / 2;
        let pack = grown(&mut scratch.grid, cols);
        for t in 0..rows / 2 {
            let x = &img[(2 * t) * cols..(2 * t + 1) * cols];
            let y = &img[(2 * t + 1) * cols..(2 * t + 2) * cols];
            for (z, (&xv, &yv)) in pack.iter_mut().zip(x.iter().zip(y)) {
                *z = Complex64::new(xv, yv);
            }
            self.row_fwd.process(pack);
            for k in 0..=half {
                let a = pack[k];
                let b = pack[(cols - k) % cols].conj();
                out[(2 * t) * cols + k] = (a + b).scale(0.5);
                let d = a - b;
                out[(2 * t + 1) * cols + k] = Complex64::new(d.im * 0.5, -d.re * 0.5);
            }
        }

        // Column pass over the non-redundant half-spectrum only, then fill
        // the rest via X[r, c] = conj(X[(rows-r) % rows, cols-c]).
        col_pass_limit(out, rows, cols, half + 1, &self.col_fwd, &mut scratch.panel);
        for r in 0..rows {
            let rm = if r == 0 { 0 } else { rows - r };
            for c in half + 1..cols {
                out[r * cols + c] = out[rm * cols + (cols - c)].conj();
            }
        }
    }

    /// Inverse transform of an `n x n` spectrum that is zero outside its
    /// centered `p x p` low-frequency block, fused with the padding step.
    ///
    /// Equivalent to [`crate::pad_centered_into`] followed by
    /// [`Fft2d::inverse`], but prunes all work on structurally-zero data:
    /// the row pass transforms only the `p` nonzero rows, and the column
    /// pass runs `q`-point transforms (`q = p.next_power_of_two()`) plus a
    /// per-residue phase twist instead of `n`-point transforms — skipping
    /// the `log2(n/q)` leading butterfly stages whose inputs are all zero.
    ///
    /// `spec` is a `p x p` block in the unshifted signed-frequency layout
    /// produced by [`crate::crop_centered`]; the result is written to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the transform is not square, `p` is zero or exceeds `n`,
    /// `spec.len() != p * p`, or `out.len() != n * n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilt_fft::{pad_centered, Complex64, Fft2d};
    ///
    /// let fft = Fft2d::new(64, 64);
    /// let spec: Vec<Complex64> =
    ///     (0..25).map(|i| Complex64::new(i as f64, -1.0)).collect();
    /// // Dense reference: pad to 64x64, then inverse.
    /// let mut dense = pad_centered(&spec, 5, 64);
    /// fft.inverse(&mut dense);
    /// // Pruned path.
    /// let mut out = vec![Complex64::ZERO; 64 * 64];
    /// fft.inverse_padded(&spec, 5, &mut out);
    /// for (a, b) in out.iter().zip(&dense) {
    ///     assert!((*a - *b).abs() < 1e-12);
    /// }
    /// ```
    pub fn inverse_padded(&self, spec: &[Complex64], p: usize, out: &mut [Complex64]) {
        with_thread_scratch(|scratch| self.inverse_padded_with(spec, p, out, scratch));
    }

    /// [`Fft2d::inverse_padded`] with an explicit reusable workspace.
    pub fn inverse_padded_with(
        &self,
        spec: &[Complex64],
        p: usize,
        out: &mut [Complex64],
        scratch: &mut Fft2dScratch,
    ) {
        let n = self.rows;
        assert_eq!(self.rows, self.cols, "inverse_padded requires a square transform");
        assert!(p >= 1 && p <= n, "support {p} must be within 1..={n}");
        assert_eq!(spec.len(), p * p, "spectrum must be p*p");
        assert_eq!(out.len(), n * n, "output must be n*n");

        // Band split: indices 0..ph carry frequencies 0..ph, indices ph..p
        // carry -pl..0 and land at the top end of the length-n axis.
        let ph = p - p / 2;
        let pl = p / 2;

        // Row pass over the p nonzero rows only (the dense path transforms
        // all n rows, n/p of which are identically zero).
        let band = grown(&mut scratch.band, p * n);
        for (i, brow) in band.chunks_exact_mut(n).enumerate() {
            let srow = &spec[i * p..(i + 1) * p];
            brow.fill(Complex64::ZERO);
            brow[..ph].copy_from_slice(&srow[..ph]);
            brow[n - pl..].copy_from_slice(&srow[ph..]);
            self.row_inv.process(brow);
        }

        // Column pass on the q-grid. Output rows split into s = n/q residue
        // classes r0 + s*j; for each class, the length-n column transform
        // collapses to a length-q transform of the band rows twisted by
        // e^{i 2 pi f r0 / n}. The q/n amplitude bridges the 1/q plan
        // normalization to the 1/n the dense path applies.
        let q = p.next_power_of_two();
        let s = n / q;
        let qplan = FftPlanner::global(|planner| planner.plan(q, Direction::Inverse));
        let amp = q as f64 / n as f64;
        let grid = grown(&mut scratch.grid, q * n);
        for r0 in 0..s {
            // Band rows land at q-grid rows 0..ph and q-pl..q, each fully
            // overwritten below; only the middle q-p rows need zeroing
            // (every row needs it each pass — col_pass overwrites them all).
            grid[ph * n..(q - pl) * n].fill(Complex64::ZERO);
            for i in 0..p {
                let f = signed_freq(i, p);
                let phase = Complex64::from_polar_angle(
                    std::f64::consts::TAU * f as f64 * r0 as f64 / n as f64,
                )
                .scale(amp);
                let dst = &mut grid[freq_index(f, q) * n..][..n];
                for (d, &v) in dst.iter_mut().zip(&band[i * n..(i + 1) * n]) {
                    *d = v * phase;
                }
            }
            col_pass(grid, q, n, &qplan, &mut scratch.panel);
            for j in 0..q {
                out[(r0 + s * j) * n..][..n].copy_from_slice(&grid[j * n..(j + 1) * n]);
            }
        }
    }
}

/// Computes the forward 2-D FFT of a real-valued row-major image into a new
/// complex buffer.
///
/// Convenience wrapper used at API boundaries where the input is a mask or
/// wafer image (`f64` pixels). Routed through the global planner cache and
/// the Hermitian-packed row pass, so calling it repeatedly does not rebuild
/// twiddle tables.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols` or a dimension is not a power of two.
///
/// # Examples
///
/// ```
/// use ilt_fft::fft2_real;
///
/// let spec = fft2_real(&[1.0, 0.0, 0.0, 0.0], 2, 2);
/// assert!(spec.iter().all(|z| (z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12));
/// ```
pub fn fft2_real(data: &[f64], rows: usize, cols: usize) -> Vec<Complex64> {
    assert_eq!(data.len(), rows * cols);
    Fft2d::new(rows, cols).forward_real(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::pad_centered;

    fn naive_dft2(input: &[Complex64], rows: usize, cols: usize) -> Vec<Complex64> {
        let mut out = vec![Complex64::ZERO; rows * cols];
        for kr in 0..rows {
            for kc in 0..cols {
                let mut acc = Complex64::ZERO;
                for r in 0..rows {
                    for c in 0..cols {
                        let theta = -std::f64::consts::TAU
                            * (kr as f64 * r as f64 / rows as f64
                                + kc as f64 * c as f64 / cols as f64);
                        acc += input[r * cols + c] * Complex64::from_polar_angle(theta);
                    }
                }
                out[kr * cols + kc] = acc;
            }
        }
        out
    }

    fn sample(rows: usize, cols: usize) -> Vec<Complex64> {
        (0..rows * cols)
            .map(|i| Complex64::new((i as f64 * 0.7).cos(), (i as f64 * 0.3).sin()))
            .collect()
    }

    /// Deterministic pseudo-random values in [-1, 1] (splitmix-style).
    fn lcg_vals(seed: u64, len: usize) -> Vec<f64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    fn lcg_complex(seed: u64, len: usize) -> Vec<Complex64> {
        let vals = lcg_vals(seed, 2 * len);
        (0..len).map(|i| Complex64::new(vals[2 * i], vals[2 * i + 1])).collect()
    }

    fn max_abs_diff(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (*x - *y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn matches_naive_2d_dft() {
        for (rows, cols) in [(2, 2), (4, 4), (4, 8), (8, 4), (16, 16)] {
            let input = sample(rows, cols);
            let mut data = input.clone();
            Fft2d::new(rows, cols).forward(&mut data);
            let want = naive_dft2(&input, rows, cols);
            for (a, b) in data.iter().zip(&want) {
                assert!((*a - *b).abs() < 1e-8, "{rows}x{cols}");
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let (rows, cols) = (32, 16);
        let input = sample(rows, cols);
        let fft = Fft2d::new(rows, cols);
        let mut data = input.clone();
        fft.forward(&mut data);
        fft.inverse(&mut data);
        for (a, b) in data.iter().zip(&input) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn separable_product_structure() {
        // fft2 of an outer product u v^T is the outer product of the 1-D ffts.
        let rows = 8;
        let cols = 8;
        let u: Vec<f64> = (0..rows).map(|i| (i as f64 * 0.9).sin() + 1.0).collect();
        let v: Vec<f64> = (0..cols).map(|i| (i as f64 * 0.4).cos()).collect();
        let outer: Vec<Complex64> = (0..rows * cols)
            .map(|i| Complex64::from_real(u[i / cols] * v[i % cols]))
            .collect();
        let mut data = outer;
        Fft2d::new(rows, cols).forward(&mut data);

        let mut fu: Vec<Complex64> = u.iter().map(|&x| Complex64::from_real(x)).collect();
        let mut fv: Vec<Complex64> = v.iter().map(|&x| Complex64::from_real(x)).collect();
        FftPlan::new(rows, Direction::Forward).process(&mut fu);
        FftPlan::new(cols, Direction::Forward).process(&mut fv);

        for r in 0..rows {
            for c in 0..cols {
                assert!((data[r * cols + c] - fu[r] * fv[c]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dc_term_is_sum() {
        let (rows, cols) = (8, 8);
        let input = sample(rows, cols);
        let total: Complex64 = input.iter().copied().sum();
        let mut data = input;
        Fft2d::new(rows, cols).forward(&mut data);
        assert!((data[0] - total).abs() < 1e-10);
    }

    #[test]
    fn real_helper_matches_complex_path() {
        let (rows, cols) = (8, 16);
        let img: Vec<f64> = (0..rows * cols).map(|i| (i as f64 * 0.21).sin()).collect();
        let via_helper = fft2_real(&img, rows, cols);
        let mut via_complex: Vec<Complex64> =
            img.iter().map(|&x| Complex64::from_real(x)).collect();
        Fft2d::new(rows, cols).forward(&mut via_complex);
        for (a, b) in via_helper.iter().zip(&via_complex) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn forward_real_matches_complex_on_random_images() {
        for (seed, (rows, cols)) in
            [(1u64, (1usize, 8usize)), (2, (2, 2)), (3, (16, 8)), (4, (64, 64)), (5, (128, 32))]
                .into_iter()
        {
            let img = lcg_vals(seed, rows * cols);
            let fft = Fft2d::new(rows, cols);
            let real_path = fft.forward_real(&img);
            let mut complex_path: Vec<Complex64> =
                img.iter().map(|&x| Complex64::from_real(x)).collect();
            fft.forward(&mut complex_path);
            let diff = max_abs_diff(&real_path, &complex_path);
            assert!(diff <= 1e-12, "{rows}x{cols}: max |diff| = {diff:e}");
        }
    }

    #[test]
    fn pruned_inverse_matches_dense_on_random_spectra() {
        for (seed, (n, p)) in
            [(11u64, (64usize, 8usize)), (12, (256, 25)), (13, (512, 25))].into_iter()
        {
            let spec = lcg_complex(seed, p * p);
            let fft = Fft2d::new(n, n);
            let mut dense = pad_centered(&spec, p, n);
            fft.inverse(&mut dense);
            let mut pruned = vec![Complex64::ZERO; n * n];
            fft.inverse_padded(&spec, p, &mut pruned);
            let diff = max_abs_diff(&pruned, &dense);
            assert!(diff <= 1e-12, "n={n} p={p}: max |diff| = {diff:e}");
        }
    }

    #[test]
    fn pruned_inverse_handles_degenerate_supports() {
        // p = 1 (single DC bin), p = n (no pruning possible), and an even p.
        for (n, p) in [(16usize, 1usize), (16, 16), (32, 6)] {
            let spec = lcg_complex(7 + n as u64, p * p);
            let fft = Fft2d::new(n, n);
            let mut dense = pad_centered(&spec, p, n);
            fft.inverse(&mut dense);
            let mut pruned = vec![Complex64::ZERO; n * n];
            fft.inverse_padded(&spec, p, &mut pruned);
            let diff = max_abs_diff(&pruned, &dense);
            assert!(diff <= 1e-12, "n={n} p={p}: max |diff| = {diff:e}");
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let (n, p) = (64usize, 9usize);
        let fft = Fft2d::new(n, n);
        let img = lcg_vals(21, n * n);
        let spec = lcg_complex(22, p * p);

        // Warm a scratch on unrelated sizes first, then reuse it.
        let mut reused = Fft2dScratch::new();
        let other = Fft2d::new(128, 128);
        let mut tmp = lcg_complex(23, 128 * 128);
        other.forward_with(&mut tmp, &mut reused);

        let mut out_reused = vec![Complex64::ZERO; n * n];
        fft.forward_real_with(&img, &mut out_reused, &mut reused);
        let mut out_fresh = vec![Complex64::ZERO; n * n];
        fft.forward_real_with(&img, &mut out_fresh, &mut Fft2dScratch::new());
        assert_eq!(out_reused, out_fresh, "forward_real must not depend on scratch history");

        let mut inv_reused = vec![Complex64::ZERO; n * n];
        fft.inverse_padded_with(&spec, p, &mut inv_reused, &mut reused);
        let mut inv_fresh = vec![Complex64::ZERO; n * n];
        fft.inverse_padded_with(&spec, p, &mut inv_fresh, &mut Fft2dScratch::new());
        assert_eq!(inv_reused, inv_fresh, "inverse_padded must not depend on scratch history");
    }

    #[test]
    fn explicit_scratch_matches_thread_local_path() {
        let n = 32;
        let input = lcg_complex(31, n * n);
        let mut via_arena = input.clone();
        Fft2d::new(n, n).forward(&mut via_arena);
        let mut via_explicit = input;
        Fft2d::new(n, n).forward_with(&mut via_explicit, &mut Fft2dScratch::new());
        assert_eq!(via_arena, via_explicit);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn wrong_size_panics() {
        let fft = Fft2d::new(4, 4);
        let mut data = vec![Complex64::ZERO; 8];
        fft.forward(&mut data);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn inverse_padded_rejects_rectangular() {
        let fft = Fft2d::new(4, 8);
        let mut out = vec![Complex64::ZERO; 32];
        fft.inverse_padded(&[Complex64::ONE], 1, &mut out);
    }

    #[test]
    #[should_panic(expected = "support")]
    fn inverse_padded_rejects_oversized_support() {
        let fft = Fft2d::new(4, 4);
        let mut out = vec![Complex64::ZERO; 16];
        fft.inverse_padded(&vec![Complex64::ONE; 25], 5, &mut out);
    }
}
