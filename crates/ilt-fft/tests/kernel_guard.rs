//! Guard for the rebuilt spectral kernels: the radix-4 plan, the SIMD
//! butterflies, the pruned (crop-fused) forward, and the batched 2-D paths
//! are all pinned here against dense scalar references through the public
//! API, across sizes 8..=1024 and kernel supports P in {1, 7, 25, N}.
//!
//! Two kinds of pin. Paths that re-associate the arithmetic (pruned
//! transforms compute the same spectrum through a different factorization)
//! are held to 1e-12 relative to the reference scale. Paths that promise
//! the *same* arithmetic (SIMD vs. scalar, batch vs. sequential) are held
//! to bit identity via `to_bits` — no tolerance at all.

use ilt_fft::{
    crop_centered, pad_centered_into, Complex64, Direction, Fft2d, FftPlan,
};

/// xorshift64* — deterministic fixtures without pulling in another crate.
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        let bits = self.0.wrapping_mul(0x2545_F491_4F6C_DD1D);
        (bits >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    fn complex_buf(&mut self, len: usize) -> Vec<Complex64> {
        (0..len).map(|_| Complex64::new(self.next_f64(), self.next_f64())).collect()
    }

    fn real_buf(&mut self, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.next_f64()).collect()
    }
}

/// O(n^2) textbook DFT: the ground truth no factorization shares.
fn naive_dft(data: &[Complex64], direction: Direction) -> Vec<Complex64> {
    let n = data.len();
    let sign = direction.sign();
    let mut out = vec![Complex64::ZERO; n];
    for (k, slot) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &x) in data.iter().enumerate() {
            let angle = sign * std::f64::consts::TAU * (k as f64) * (j as f64) / n as f64;
            acc = acc + x * Complex64::new(angle.cos(), angle.sin());
        }
        *slot = acc;
    }
    if direction == Direction::Inverse {
        let scale = 1.0 / n as f64;
        for z in &mut out {
            *z = z.scale(scale);
        }
    }
    out
}

fn assert_close(got: &[Complex64], want: &[Complex64], tol: f64, what: &str) {
    let scale = want.iter().map(|z| z.abs()).fold(1.0, f64::max);
    let worst = got.iter().zip(want).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
    assert!(
        worst <= tol * scale,
        "{what}: |diff| {worst:e} exceeds {tol:e} * scale {scale:e}"
    );
}

fn assert_bits(got: &[Complex64], want: &[Complex64], what: &str) {
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        assert!(
            a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
            "{what}: bit divergence at {i}: {a:?} vs {b:?}"
        );
    }
}

/// The supports the pruned paths are pinned at: degenerate (1), odd and
/// coprime with 4 (7), the production kernel support (25), and the
/// no-pruning edge P == N.
fn supports(n: usize) -> Vec<usize> {
    let mut ps: Vec<usize> = [1, 7, 25, n].into_iter().filter(|&p| p <= n).collect();
    ps.dedup();
    ps
}

#[test]
fn radix4_plan_matches_the_naive_dft() {
    // Both parities of log2(n) — odd hits the leading radix-2 pass.
    for bits in 3..=8 {
        let n = 1usize << bits;
        let mut rng = Rng(0x9E37_79B9 ^ n as u64);
        let input = rng.complex_buf(n);
        for direction in [Direction::Forward, Direction::Inverse] {
            let want = naive_dft(&input, direction);
            let mut got = input.clone();
            FftPlan::new(n, direction).process(&mut got);
            // The naive sum's own rounding dominates this bound.
            assert_close(&got, &want, 1e-10, &format!("radix-4 {direction:?} n={n}"));
        }
    }
}

#[test]
fn simd_paths_are_bit_identical_to_scalar_through_1024() {
    for bits in 3..=10 {
        let n = 1usize << bits;
        let mut rng = Rng(0xDEAD_BEEF ^ n as u64);
        let input = rng.complex_buf(n);
        for direction in [Direction::Forward, Direction::Inverse] {
            let plan = FftPlan::new(n, direction);
            let mut scalar = input.clone();
            plan.process_scalar(&mut scalar);
            let mut fast = input.clone();
            plan.process(&mut fast);
            assert_bits(&fast, &scalar, &format!("process {direction:?} n={n}"));

            // The column-parallel kernel: every column must get exactly
            // the single-column transform, whatever the panel width.
            for width in [1usize, 2, 5, 8] {
                let panel: Vec<Complex64> = rng.complex_buf(n * width);
                let mut want = panel.clone();
                for c in 0..width {
                    let mut col: Vec<Complex64> =
                        (0..n).map(|r| panel[r * width + c]).collect();
                    plan.process_scalar(&mut col);
                    for (r, z) in col.into_iter().enumerate() {
                        want[r * width + c] = z;
                    }
                }
                let mut fast = panel.clone();
                plan.process_cols(&mut fast, width);
                assert_bits(
                    &fast,
                    &want,
                    &format!("process_cols {direction:?} n={n} width={width}"),
                );
                let mut scalar_cols = panel.clone();
                plan.process_cols_scalar(&mut scalar_cols, width);
                assert_bits(
                    &scalar_cols,
                    &want,
                    &format!("process_cols_scalar {direction:?} n={n} width={width}"),
                );
            }
        }
    }
}

#[test]
fn pruned_forward_matches_dense_crop_across_sizes_and_supports() {
    for n in [8usize, 16, 64, 256, 1024] {
        let fft = Fft2d::new(n, n);
        let mut rng = Rng(0x5EED ^ n as u64);
        let img = rng.real_buf(n * n);

        let mut dense: Vec<Complex64> =
            img.iter().map(|&x| Complex64::from_real(x)).collect();
        fft.forward(&mut dense);

        for p in supports(n) {
            let want = crop_centered(&dense, n, p);
            let label = format!("n={n} p={p}");

            let complex_input: Vec<Complex64> =
                img.iter().map(|&x| Complex64::from_real(x)).collect();
            let mut got = vec![Complex64::ZERO; p * p];
            fft.forward_cropped(&complex_input, p, &mut got);
            assert_close(&got, &want, 1e-12, &format!("forward_cropped {label}"));

            let mut got_real = vec![Complex64::ZERO; p * p];
            fft.forward_real_cropped(&img, p, &mut got_real);
            assert_close(&got_real, &want, 1e-12, &format!("forward_real_cropped {label}"));
        }
    }
}

#[test]
fn pruned_inverse_matches_dense_pad_across_sizes_and_supports() {
    for n in [8usize, 16, 64, 256, 1024] {
        let fft = Fft2d::new(n, n);
        let mut rng = Rng(0xBADC_0FFE ^ n as u64);
        for p in supports(n) {
            let spec = rng.complex_buf(p * p);
            let mut want = vec![Complex64::ZERO; n * n];
            pad_centered_into(&spec, p, &mut want, n);
            fft.inverse(&mut want);

            let mut got = vec![Complex64::ZERO; n * n];
            fft.inverse_padded(&spec, p, &mut got);
            assert_close(&got, &want, 1e-12, &format!("inverse_padded n={n} p={p}"));
        }
    }
}

#[test]
fn batched_paths_are_bit_identical_to_sequential() {
    let (n, p, k) = (64usize, 7usize, 3usize);
    let fft = Fft2d::new(n, n);
    let mut rng = Rng(0xB47C_4ED5);

    let imgs: Vec<Vec<f64>> = (0..k).map(|_| rng.real_buf(n * n)).collect();
    let img_refs: Vec<&[f64]> = imgs.iter().map(|v| v.as_slice()).collect();
    let batch = fft.forward_real_batch(&img_refs);
    assert_eq!(batch.len(), k);
    for (i, img) in imgs.iter().enumerate() {
        let want = fft.forward_real(img);
        assert_bits(&batch[i], &want, &format!("forward_real_batch item {i}"));
    }

    let specs: Vec<Vec<Complex64>> = (0..k).map(|_| rng.complex_buf(p * p)).collect();
    let spec_refs: Vec<&[Complex64]> = specs.iter().map(|v| v.as_slice()).collect();
    let mut seen = vec![false; k];
    fft.inverse_padded_batch(&spec_refs, p, |i, z| {
        let mut want = vec![Complex64::ZERO; n * n];
        fft.inverse_padded(&specs[i], p, &mut want);
        assert_bits(z, &want, &format!("inverse_padded_batch item {i}"));
        seen[i] = true;
    });
    assert!(seen.iter().all(|&s| s), "batch skipped a spectrum");
}
