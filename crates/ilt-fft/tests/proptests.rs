// Gated behind `slow-tests`: proptest comes from the registry, which the
// hermetic tier-1 build never touches. To run these, restore the `proptest`
// dev-dependency in Cargo.toml and pass `--features slow-tests`.
#![cfg(feature = "slow-tests")]

//! Property-based tests for the FFT substrate.

use ilt_fft::{
    crop_centered, fft2_real, fftshift, ifftshift, pad_centered, Complex64, Direction, Fft2d,
    FftPlan,
};
use proptest::prelude::*;

fn complex_vec(len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex64::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ifft(fft(x)) == x for every power-of-two size up to 256.
    #[test]
    fn fft_roundtrip(bits in 1usize..=8, seed in proptest::num::u64::ANY) {
        let n = 1usize << bits;
        let mut rng_state = seed;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((rng_state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let input: Vec<Complex64> = (0..n).map(|_| Complex64::new(next(), next())).collect();
        let mut data = input.clone();
        FftPlan::new(n, Direction::Forward).process(&mut data);
        FftPlan::new(n, Direction::Inverse).process(&mut data);
        for (a, b) in data.iter().zip(&input) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    /// FFT is linear: fft(a*x + y) == a*fft(x) + fft(y).
    #[test]
    fn fft_linearity(x in complex_vec(64), y in complex_vec(64), a in -10.0f64..10.0) {
        let plan = FftPlan::new(64, Direction::Forward);
        let mut combo: Vec<Complex64> =
            x.iter().zip(&y).map(|(&xv, &yv)| xv.scale(a) + yv).collect();
        plan.process(&mut combo);
        let mut fx = x;
        plan.process(&mut fx);
        let mut fy = y;
        plan.process(&mut fy);
        for i in 0..64 {
            prop_assert!((combo[i] - (fx[i].scale(a) + fy[i])).abs() < 1e-7);
        }
    }

    /// Parseval for the 2-D transform.
    #[test]
    fn fft2_parseval(data in complex_vec(16 * 16)) {
        let spatial: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let mut spec = data;
        Fft2d::new(16, 16).forward(&mut spec);
        let freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 256.0;
        prop_assert!((spatial - freq).abs() <= 1e-7 * spatial.max(1.0));
    }

    /// crop is a left inverse of pad for any p <= n (powers of two not required for p).
    #[test]
    fn crop_inverts_pad(p in 1usize..=16, data_seed in proptest::num::u32::ANY) {
        let n = 16usize;
        let small: Vec<Complex64> = (0..p * p)
            .map(|i| {
                let v = (i as u32).wrapping_mul(2654435761).wrapping_add(data_seed);
                Complex64::new((v & 0xffff) as f64, (v >> 16) as f64)
            })
            .collect();
        let padded = pad_centered(&small, p, n);
        let back = crop_centered(&padded, n, p);
        prop_assert_eq!(back, small);
    }

    /// Real-input spectra are conjugate-symmetric: X[-k] = conj(X[k]).
    #[test]
    fn real_input_conjugate_symmetry(img in proptest::collection::vec(-10.0f64..10.0, 64)) {
        let n = 8usize;
        let spec = fft2_real(&img, n, n);
        for r in 0..n {
            for c in 0..n {
                let mr = (n - r) % n;
                let mc = (n - c) % n;
                let a = spec[r * n + c];
                let b = spec[mr * n + mc].conj();
                prop_assert!((a - b).abs() < 1e-8);
            }
        }
    }

    /// fftshift and ifftshift are mutually inverse for all sizes.
    #[test]
    fn shift_roundtrip(n in 1usize..=12, seed in proptest::num::u32::ANY) {
        let data: Vec<Complex64> = (0..n * n)
            .map(|i| {
                let v = (i as u32).wrapping_mul(40503).wrapping_add(seed);
                Complex64::new(v as f64, -(v as f64))
            })
            .collect();
        prop_assert_eq!(ifftshift(&fftshift(&data, n), n), data.clone());
        prop_assert_eq!(fftshift(&ifftshift(&data, n), n), data);
    }
}
