//! Integration tests of the multi-level optimizer against its substrates:
//! step-level gradient checks, branch equivalences, and schedule semantics.

use std::sync::Arc;

use ilt_core::{
    schedules, BinaryFunction, IltConfig, MultiLevelIlt, OptimizeRegion, Smoothing,
    SmoothingPlacement, Stage,
};
use ilt_field::Field2D;
use ilt_optics::{LithoSimulator, OpticsConfig, SourceSpec};

fn sim(grid: usize) -> Arc<LithoSimulator> {
    let cfg = OpticsConfig {
        grid,
        nm_per_px: 8.0,
        num_kernels: 4,
        source: SourceSpec::Annular { sigma_in: 0.5, sigma_out: 0.9 },
        defocus_nm: 60.0,
        ..OpticsConfig::default()
    };
    Arc::new(LithoSimulator::new(cfg).expect("valid config"))
}

fn bar(n: usize) -> Field2D {
    Field2D::from_fn(n, n, |r, c| {
        if (n * 3 / 8..n * 5 / 8).contains(&r) && (n / 4..n * 3 / 4).contains(&c) {
            1.0
        } else {
            0.0
        }
    })
}

/// At scale 1, the high-resolution branch (upsample + pool are identities)
/// must match the low-resolution branch without smoothing exactly.
#[test]
fn high_res_equals_low_res_at_scale_one() {
    let s = sim(64);
    let target = bar(64);
    let cfg = IltConfig { smoothing: None, ..IltConfig::default() };
    let lo = MultiLevelIlt::new(s.clone(), cfg.clone()).run(&target, &[Stage::low_res(1, 5)]);
    let hi = MultiLevelIlt::new(s, cfg).run(&target, &[Stage::high_res(1, 5)]);
    assert_eq!(lo.mask, hi.mask);
    for (a, b) in lo.loss_history.iter().zip(&hi.loss_history) {
        assert!((a.loss - b.loss).abs() < 1e-9, "{} vs {}", a.loss, b.loss);
    }
}

/// A single gradient step with learning rate `lr` must decrease the loss
/// for small enough `lr` (the gradient is a true descent direction).
#[test]
fn gradient_is_a_descent_direction() {
    let s = sim(64);
    let target = bar(64);
    for lr in [1e-3, 1e-2] {
        let cfg = IltConfig { learning_rate: lr, ..IltConfig::default() };
        let result = MultiLevelIlt::new(s.clone(), cfg).run(&target, &[Stage::low_res(2, 2)]);
        let l0 = result.loss_history[0].loss;
        let l1 = result.loss_history[1].loss;
        assert!(
            l1 <= l0 + 1e-9,
            "lr {lr}: one small step must not increase loss ({l0} -> {l1})"
        );
    }
}

/// Two half-steps from the same state equal... nothing exact, but the loss
/// trace must be reproducible across identical configurations even with
/// the smoothing pool and both corners involved.
#[test]
fn loss_trace_is_reproducible() {
    let s = sim(64);
    let target = bar(64);
    let run = || {
        MultiLevelIlt::new(s.clone(), IltConfig::default())
            .run(&target, &[Stage::low_res(2, 4), Stage::high_res(2, 2)])
            .loss_history
            .iter()
            .map(|r| r.loss)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// The loss recorded by the optimizer matches an independent evaluation of
/// Eq. 5 on the same mask state (first iteration, before any update).
#[test]
fn recorded_loss_matches_manual_eq5() {
    let s = sim(64);
    let target = bar(64);
    let cfg = IltConfig { smoothing: None, ..IltConfig::default() };
    let result = MultiLevelIlt::new(s.clone(), cfg).run(&target, &[Stage::low_res(1, 1)]);
    let recorded = result.loss_history[0].loss;

    // Recompute by hand: M' = target, binarized with the paper sigmoid.
    let m = BinaryFunction::paper_sigmoid().apply_field(&target);
    let alpha = s.config().resist_steepness;
    let i_th = s.config().resist_threshold;
    let soft = |i: &Field2D, dose: f64| {
        i.map(|v| 1.0 / (1.0 + (-alpha * (dose * v - i_th)).exp()))
    };
    let z_out = soft(&s.aerial(&m, false), 1.02);
    let z_in = soft(&s.aerial(&m, true), 0.98);
    let manual = z_out.sq_l2_dist(&target) + z_in.sq_l2_dist(&z_out);
    assert!(
        (recorded - manual).abs() < 1e-9 * manual.max(1.0),
        "{recorded} vs {manual}"
    );
}

/// Stage transfer: a schedule ending at a coarse scale must hand the
/// finalizer a mask whose upsampled shape matches the grid, regardless of
/// the path taken through scales.
#[test]
fn scale_transfers_compose() {
    let s = sim(64);
    let target = bar(64);
    for schedule in [
        vec![Stage::low_res(4, 2), Stage::low_res(2, 2), Stage::low_res(4, 2)],
        vec![Stage::low_res(1, 2), Stage::low_res(4, 2)],
        vec![Stage::high_res(2, 2), Stage::low_res(2, 2), Stage::high_res(4, 2)],
    ] {
        let result = MultiLevelIlt::new(s.clone(), IltConfig::default()).run(&target, &schedule);
        assert_eq!(result.mask.shape(), (64, 64));
        assert_eq!(result.final_scale, schedule.last().unwrap().scale);
        assert_eq!(
            result.raw_mask.shape(),
            (64 / result.final_scale, 64 / result.final_scale)
        );
    }
}

/// Smoothing placement options both run and differ (the DESIGN.md ablation
/// hinges on them being genuinely distinct code paths).
#[test]
fn smoothing_placements_are_distinct() {
    let s = sim(64);
    let target = bar(64);
    let run = |placement| {
        let cfg = IltConfig {
            smoothing: Some(Smoothing { kernel: 3, placement }),
            ..IltConfig::default()
        };
        MultiLevelIlt::new(s.clone(), cfg).run(&target, &[Stage::low_res(2, 5)])
    };
    let before = run(SmoothingPlacement::BeforeBinarize);
    let after = run(SmoothingPlacement::AfterBinarize);
    assert_ne!(before.raw_mask, after.raw_mask);
}

/// The paper's named schedules survive pitch clamping with structure
/// intact and run end to end on a small grid.
#[test]
fn named_schedules_run_after_clamping() {
    let s = sim(64);
    let target = bar(64);
    for schedule in [schedules::our_fast(), schedules::our_exact(), schedules::via_recipe()] {
        let clamped = schedules::clamp_effective_pitch(&schedule, 8.0, 8.0);
        let clamped = schedules::clamp_scales(&clamped, 64, 16);
        let cfg = IltConfig { early_exit_window: Some(5), ..IltConfig::default() };
        let result = MultiLevelIlt::new(s.clone(), cfg).run(&target, &clamped);
        assert!(result.total_iterations > 0);
        assert_eq!(result.mask.shape(), (64, 64));
    }
}

/// Frozen pixels never move: the raw mask outside the region stays at the
/// frozen value through arbitrary schedules.
#[test]
fn frozen_pixels_never_move() {
    let s = sim(64);
    let target = bar(64);
    let cfg = IltConfig {
        region: OptimizeRegion::Option1 { margin_nm: 24.0 },
        frozen_value: -3.0,
        ..IltConfig::default()
    };
    let region = cfg.region.region_mask_at_scale(&target, 8.0, 2);
    let result = MultiLevelIlt::new(s, cfg).run(&target, &[Stage::low_res(2, 6)]);
    for (i, (&m, &reg)) in result
        .raw_mask
        .as_slice()
        .iter()
        .zip(region.as_slice())
        .enumerate()
    {
        if reg < 0.5 {
            assert_eq!(m, -3.0, "frozen pixel {i} moved to {m}");
        }
    }
}
