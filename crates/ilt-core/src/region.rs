//! Optimizing-region options (Fig. 7 of the paper).
//!
//! Every published baseline constrains where mask pixels may change.
//! Neural-ILT and A2-ILT use per-feature boxes (**Option 1**); GLS-ILT and
//! DevelSet use one corridor around the whole pattern (**Option 2**).
//! Option 2 gives SRAF-producing methods more room, which is why the paper
//! reports both (Tables II and III). Pixels outside the region are frozen
//! opaque.

use ilt_field::{avg_pool_down, Field2D};
use ilt_geom::{label_components, Rect};

/// How the writable mask region is derived from the target.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OptimizeRegion {
    /// The whole clip is writable.
    Full,
    /// Option 1 (Neural-ILT / A2-ILT): each target feature's bounding box,
    /// expanded by `margin_nm`.
    Option1 {
        /// Margin around each feature in nm.
        margin_nm: f64,
    },
    /// Option 2 (GLS-ILT / DevelSet): the bounding box of *all* features,
    /// expanded by `margin_nm`.
    Option2 {
        /// Margin around the combined pattern in nm.
        margin_nm: f64,
    },
}

impl OptimizeRegion {
    /// The paper's default margins: generous SRAF room around features.
    pub const fn option1_default() -> Self {
        OptimizeRegion::Option1 { margin_nm: 120.0 }
    }

    /// Default Option 2 corridor.
    pub const fn option2_default() -> Self {
        OptimizeRegion::Option2 { margin_nm: 220.0 }
    }

    /// Computes the binary writable-region mask for a target image.
    ///
    /// `nm_per_px` converts the margins to pixels.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilt_core::OptimizeRegion;
    /// use ilt_field::Field2D;
    ///
    /// let target = Field2D::from_fn(64, 64, |r, c| {
    ///     if (28..36).contains(&r) && (28..36).contains(&c) { 1.0 } else { 0.0 }
    /// });
    /// let region = OptimizeRegion::Option1 { margin_nm: 8.0 }.region_mask(&target, 1.0);
    /// assert!(region.count_on() > target.count_on());
    /// assert!(region.count_on() < 64 * 64);
    /// ```
    pub fn region_mask(&self, target: &Field2D, nm_per_px: f64) -> Field2D {
        let (rows, cols) = target.shape();
        match *self {
            OptimizeRegion::Full => Field2D::filled(rows, cols, 1.0),
            OptimizeRegion::Option1 { margin_nm } => {
                let margin = (margin_nm / nm_per_px).round() as usize;
                let mut region = Field2D::zeros(rows, cols);
                for comp in label_components(target) {
                    comp.bbox.expand_clamped(margin, rows, cols).fill(&mut region, 1.0);
                }
                region
            }
            OptimizeRegion::Option2 { margin_nm } => {
                let margin = (margin_nm / nm_per_px).round() as usize;
                let comps = label_components(target);
                let mut region = Field2D::zeros(rows, cols);
                if let Some(first) = comps.first() {
                    let bbox = comps
                        .iter()
                        .skip(1)
                        .fold(first.bbox, |acc, c| acc.union_bbox(&c.bbox));
                    bbox.expand_clamped(margin, rows, cols).fill(&mut region, 1.0);
                }
                region
            }
        }
    }

    /// Region mask downsampled to scale `s` (a reduced pixel is writable
    /// when any covered pixel is writable, so border SRAF room survives
    /// pooling).
    ///
    /// # Panics
    ///
    /// Panics if `s` does not divide the region dimensions.
    pub fn region_mask_at_scale(&self, target: &Field2D, nm_per_px: f64, s: usize) -> Field2D {
        let full = self.region_mask(target, nm_per_px);
        if s == 1 {
            return full;
        }
        avg_pool_down(&full, s).map(|v| if v > 0.0 { 1.0 } else { 0.0 })
    }
}

/// Convenience: bounding box of all foreground pixels, if any.
pub fn pattern_bbox(target: &Field2D) -> Option<Rect> {
    let comps = label_components(target);
    let first = comps.first()?;
    Some(
        comps
            .iter()
            .skip(1)
            .fold(first.bbox, |acc, c| acc.union_bbox(&c.bbox)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_geom::rasterize_rects;

    fn two_features() -> Field2D {
        rasterize_rects(
            &[Rect::new(10, 10, 20, 20), Rect::new(40, 44, 50, 54)],
            64,
            64,
        )
    }

    #[test]
    fn full_region_is_everything() {
        let t = two_features();
        let r = OptimizeRegion::Full.region_mask(&t, 1.0);
        assert_eq!(r.count_on(), 64 * 64);
    }

    #[test]
    fn option1_hugs_features() {
        let t = two_features();
        let r = OptimizeRegion::Option1 { margin_nm: 4.0 }.region_mask(&t, 1.0);
        // Two expanded boxes: (6..24)^2 plus (36..54)x(40..58).
        assert_eq!(r.count_on(), 18 * 18 * 2);
        // The gap between the features stays frozen.
        assert_eq!(r[(30, 30)], 0.0);
    }

    #[test]
    fn option2_covers_the_corridor_between_features() {
        let t = two_features();
        let r = OptimizeRegion::Option2 { margin_nm: 4.0 }.region_mask(&t, 1.0);
        // One box from (6,6) to (54,58).
        assert_eq!(r.count_on(), 48 * 52);
        assert_eq!(r[(30, 30)], 1.0, "corridor must be writable under option 2");
    }

    #[test]
    fn option2_is_superset_of_option1() {
        let t = two_features();
        let r1 = OptimizeRegion::Option1 { margin_nm: 6.0 }.region_mask(&t, 1.0);
        let r2 = OptimizeRegion::Option2 { margin_nm: 6.0 }.region_mask(&t, 1.0);
        for (a, b) in r1.as_slice().iter().zip(r2.as_slice()) {
            assert!(b >= a, "option 2 must contain option 1");
        }
    }

    #[test]
    fn margins_scale_with_pixel_pitch() {
        let t = two_features();
        let fine = OptimizeRegion::Option1 { margin_nm: 8.0 }.region_mask(&t, 1.0);
        let coarse = OptimizeRegion::Option1 { margin_nm: 8.0 }.region_mask(&t, 4.0);
        assert!(fine.count_on() > coarse.count_on());
    }

    #[test]
    fn scaled_region_preserves_any_coverage() {
        let t = two_features();
        let r = OptimizeRegion::Option1 { margin_nm: 5.0 };
        let s4 = r.region_mask_at_scale(&t, 1.0, 4);
        assert_eq!(s4.shape(), (16, 16));
        // Every writable full-res pixel maps into a writable reduced pixel.
        let full = r.region_mask(&t, 1.0);
        for row in 0..64 {
            for col in 0..64 {
                if full[(row, col)] >= 0.5 {
                    assert_eq!(s4[(row / 4, col / 4)], 1.0, "({row},{col})");
                }
            }
        }
    }

    #[test]
    fn empty_target_has_empty_region_under_options() {
        let t = Field2D::zeros(32, 32);
        assert_eq!(
            OptimizeRegion::Option2 { margin_nm: 10.0 }.region_mask(&t, 1.0).count_on(),
            0
        );
        assert!(pattern_bbox(&t).is_none());
    }

    #[test]
    fn pattern_bbox_spans_all_features() {
        let t = two_features();
        assert_eq!(pattern_bbox(&t), Some(Rect::new(10, 10, 50, 54)));
    }
}
