//! Mask binary functions (Section III-C of the paper).
//!
//! ILT optimizes a free-valued mask `M'`; a binary function squashes it
//! into `(0, 1)` so the lithography model sees a near-binary transmission.
//! The paper's key observation: the conventional sigmoid with `T_R = 0`
//! binarizes the initial target mask to `{0.5, ~1}`, forcing the first
//! iterations to push background pixels hard negative — after which SRAFs
//! can barely emerge. Setting `T_R = 0.5` during optimization (and `0.4`
//! for the final output, to rescue faint SRAFs) starts at `{~0.1, ~0.9}`
//! and leaves the background responsive.

use ilt_autodiff::{Graph, Var};
use ilt_field::Field2D;

/// A differentiable mask binarization function.
///
/// # Examples
///
/// ```
/// use ilt_core::BinaryFunction;
///
/// let paper = BinaryFunction::paper_sigmoid();       // beta = 4, T_R = 0.5
/// let legacy = BinaryFunction::legacy_sigmoid();     // beta = 4, T_R = 0
/// // At M' = 0 (a background pixel of the initial mask):
/// assert!((paper.value(0.0) - 0.119).abs() < 1e-3);  // ~0.1, still plastic
/// assert!((legacy.value(0.0) - 0.5).abs() < 1e-12);  // stuck at the cliff
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BinaryFunction {
    /// Eq. 11: `M = 1 / (1 + exp(-beta (M' - t_r)))`.
    Sigmoid {
        /// Steepness `beta` (the literature standard is 4).
        beta: f64,
        /// Threshold shift `T_R`.
        t_r: f64,
    },
    /// Eq. 10 ([11]): `M = (1 + cos M') / 2`. Periodic, so learning-rate
    /// sensitive; included as a baseline.
    Cosine,
}

impl BinaryFunction {
    /// The paper's improved optimization sigmoid: `beta = 4`, `T_R = 0.5`.
    pub const fn paper_sigmoid() -> Self {
        BinaryFunction::Sigmoid { beta: 4.0, t_r: 0.5 }
    }

    /// The paper's output sigmoid: `beta = 4`, `T_R = 0.4` (a smaller
    /// threshold promotes faint SRAFs into the final mask).
    pub const fn output_sigmoid() -> Self {
        BinaryFunction::Sigmoid { beta: 4.0, t_r: 0.4 }
    }

    /// The conventional sigmoid used by most pixel ILTs ([12]): `beta = 4`,
    /// `T_R = 0`.
    pub const fn legacy_sigmoid() -> Self {
        BinaryFunction::Sigmoid { beta: 4.0, t_r: 0.0 }
    }

    /// Scalar forward value.
    pub fn value(&self, x: f64) -> f64 {
        match *self {
            BinaryFunction::Sigmoid { beta, t_r } => 1.0 / (1.0 + (-beta * (x - t_r)).exp()),
            BinaryFunction::Cosine => 0.5 * (1.0 + x.cos()),
        }
    }

    /// Scalar derivative.
    pub fn derivative(&self, x: f64) -> f64 {
        match *self {
            BinaryFunction::Sigmoid { beta, t_r } => {
                let y = 1.0 / (1.0 + (-beta * (x - t_r)).exp());
                beta * y * (1.0 - y)
            }
            BinaryFunction::Cosine => -0.5 * x.sin(),
        }
    }

    /// Applies the function to a whole field.
    pub fn apply_field(&self, x: &Field2D) -> Field2D {
        x.map(|v| self.value(v))
    }

    /// Records the function on an autodiff graph.
    pub fn apply(&self, g: &mut Graph, x: Var) -> Var {
        match *self {
            BinaryFunction::Sigmoid { beta, t_r } => g.sigmoid(x, beta, t_r),
            BinaryFunction::Cosine => g.cosine_binary(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_autodiff::finite_diff;

    #[test]
    fn paper_sigmoid_initial_values() {
        // Section III-C: with T_R = 0.5 the initial binarized mask is
        // {~0.1, ~0.9} — much closer to the original {0, 1} than {0.5, ~1}.
        let f = BinaryFunction::paper_sigmoid();
        assert!((f.value(0.0) - 0.119).abs() < 1e-3);
        assert!((f.value(1.0) - 0.881).abs() < 1e-3);
        let legacy = BinaryFunction::legacy_sigmoid();
        assert!((legacy.value(0.0) - 0.5).abs() < 1e-12);
        assert!(legacy.value(1.0) > 0.98);
    }

    #[test]
    fn gradient_peak_location_differs() {
        // Fig. 5(b): with T_R = 0 the gradient peaks exactly at M' = 0 (the
        // background's initial value), driving it away; with T_R = 0.5 the
        // peak sits mid-range.
        let legacy = BinaryFunction::legacy_sigmoid();
        let paper = BinaryFunction::paper_sigmoid();
        assert!(legacy.derivative(0.0) > legacy.derivative(0.5));
        assert!(paper.derivative(0.5) > paper.derivative(0.0));
    }

    #[test]
    fn derivatives_match_finite_differences() {
        for f in [
            BinaryFunction::paper_sigmoid(),
            BinaryFunction::legacy_sigmoid(),
            BinaryFunction::Cosine,
            BinaryFunction::Sigmoid { beta: 8.0, t_r: -0.3 },
        ] {
            for x in [-2.0, -0.5, 0.0, 0.3, 0.5, 1.0, 2.5] {
                let eps = 1e-6;
                let fd = (f.value(x + eps) - f.value(x - eps)) / (2.0 * eps);
                assert!(
                    (f.derivative(x) - fd).abs() < 1e-8,
                    "{f:?} at {x}: {} vs {fd}",
                    f.derivative(x)
                );
            }
        }
    }

    #[test]
    fn sigmoid_output_range_is_open_unit_interval() {
        let f = BinaryFunction::paper_sigmoid();
        let x = Field2D::from_fn(4, 4, |r, c| (r as f64 - 2.0) * 3.0 + c as f64);
        let y = f.apply_field(&x);
        for &v in y.as_slice() {
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn graph_application_matches_scalar_path() {
        let f = BinaryFunction::output_sigmoid();
        let x0 = Field2D::from_fn(3, 3, |r, c| (r as f64) * 0.4 - (c as f64) * 0.3);
        let mut g = Graph::without_simulator();
        let x = g.leaf(x0.clone());
        let y = f.apply(&mut g, x);
        let want = f.apply_field(&x0);
        assert_eq!(g.value(y), &want);

        // And its gradient agrees with finite differences.
        let loss = g.weighted_sum(y, Field2D::filled(3, 3, 1.0));
        let grads = g.backward(loss);
        let numeric = finite_diff(&x0, 1e-6, |xv| f.apply_field(xv).sum());
        ilt_autodiff::assert_gradients_close(grads.wrt(x).unwrap(), &numeric, 1e-7);
    }

    #[test]
    fn cosine_is_periodic() {
        let f = BinaryFunction::Cosine;
        assert!((f.value(0.3) - f.value(0.3 + std::f64::consts::TAU)).abs() < 1e-12);
        assert!((f.value(0.0) - 1.0).abs() < 1e-12);
        assert!(f.value(std::f64::consts::PI) < 1e-12);
    }
}
