//! Named schedules from the paper's experimental section.

use crate::optimizer::Stage;

/// "Our-fast" (Tables II/III): 35 low-resolution iterations at `s = 4`
/// plus 5 high-resolution iterations at `s = 8`.
pub fn our_fast() -> Vec<Stage> {
    vec![Stage::low_res(4, 35), Stage::high_res(8, 5)]
}

/// "Our-exact" (Tables II/III): 80 low-resolution iterations at `s = 4`
/// plus 10 high-resolution iterations at `s = 8`.
pub fn our_exact() -> Vec<Stage> {
    vec![Stage::low_res(4, 80), Stage::high_res(8, 10)]
}

/// The via-layer recipe (Section IV-C): 100/100/50 low-resolution
/// iterations at `s = 8, 4, 2`, then 15 high-resolution iterations at
/// `s = 8`. Budgets are upper bounds; pair with an early-exit window of 15.
pub fn via_recipe() -> Vec<Stage> {
    vec![
        Stage::low_res(8, 100),
        Stage::low_res(4, 100),
        Stage::low_res(2, 50),
        Stage::high_res(8, 15),
    ]
}

/// Clamps scale factors so the **effective pixel pitch** of the reduced
/// grid (`scale * nm_per_px`) never exceeds `max_eff_nm`.
///
/// The paper's `s = 4` on a 1 nm/px grid is a 4 nm effective pitch; masks
/// quantized much coarser than ~8 nm can no longer represent good
/// solutions (low-resolution ILT then *hurts* quality instead of merely
/// approximating it). When running at reduced grid resolutions, clamp the
/// paper's schedules with this before [`clamp_scales`].
///
/// # Examples
///
/// ```
/// use ilt_core::schedules::{clamp_effective_pitch, our_fast};
///
/// // On a 4 nm/px grid, s = 4 would mean 16 nm pixels: clamp to s = 2.
/// let clamped = clamp_effective_pitch(&our_fast(), 4.0, 8.0);
/// assert_eq!(clamped[0].scale, 2);
/// ```
pub fn clamp_effective_pitch(
    schedule: &[Stage],
    nm_per_px: f64,
    max_eff_nm: f64,
) -> Vec<Stage> {
    schedule
        .iter()
        .map(|st| {
            let mut scale = st.scale;
            while scale > 1 && scale as f64 * nm_per_px > max_eff_nm {
                scale /= 2;
            }
            Stage { scale, ..*st }
        })
        .collect()
}

/// Rescales a schedule's scale factors for a grid smaller than the paper's
/// 2048, clamping so the reduced size never falls below `min_size` pixels.
///
/// Running "Our-fast" on a 512-pixel grid with `s = 8` would leave a
/// 64-pixel simulation — often below the kernel support. This helper keeps
/// the *iteration structure* of a schedule while adapting scales.
pub fn clamp_scales(schedule: &[Stage], grid: usize, min_size: usize) -> Vec<Stage> {
    schedule
        .iter()
        .map(|st| {
            let mut scale = st.scale;
            while scale > 1 && grid / scale < min_size {
                scale /= 2;
            }
            Stage { scale, ..*st }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::StageKind;

    #[test]
    fn named_schedules_match_the_paper() {
        let fast = our_fast();
        assert_eq!(fast.len(), 2);
        assert_eq!((fast[0].kind, fast[0].scale, fast[0].iterations), (StageKind::LowRes, 4, 35));
        assert_eq!((fast[1].kind, fast[1].scale, fast[1].iterations), (StageKind::HighRes, 8, 5));

        let exact = our_exact();
        assert_eq!(exact[0].iterations, 80);
        assert_eq!(exact[1].iterations, 10);

        let via = via_recipe();
        assert_eq!(via.iter().map(|s| s.scale).collect::<Vec<_>>(), vec![8, 4, 2, 8]);
        assert_eq!(
            via.iter().map(|s| s.iterations).collect::<Vec<_>>(),
            vec![100, 100, 50, 15]
        );
    }

    #[test]
    fn clamping_preserves_structure() {
        let clamped = clamp_scales(&our_exact(), 512, 128);
        assert_eq!(clamped.len(), 2);
        assert_eq!(clamped[0].scale, 4); // 512/4 = 128 >= 128: kept
        assert_eq!(clamped[1].scale, 4); // 512/8 = 64 < 128: halved
        assert_eq!(clamped[0].iterations, 80);
        // Full-size grids keep the paper's scales.
        let full = clamp_scales(&our_exact(), 2048, 128);
        assert_eq!(full[1].scale, 8);
    }

    #[test]
    fn clamping_bottoms_out_at_one() {
        let clamped = clamp_scales(&via_recipe(), 64, 128);
        assert!(clamped.iter().all(|s| s.scale == 1));
    }

    #[test]
    fn effective_pitch_clamp() {
        // 1 nm pixels: the paper's scales survive untouched.
        let full = clamp_effective_pitch(&via_recipe(), 1.0, 8.0);
        assert_eq!(full.iter().map(|s| s.scale).collect::<Vec<_>>(), vec![8, 4, 2, 8]);
        // 4 nm pixels: everything clamps to s = 2 (8 nm effective).
        let coarse = clamp_effective_pitch(&via_recipe(), 4.0, 8.0);
        assert_eq!(coarse.iter().map(|s| s.scale).collect::<Vec<_>>(), vec![2, 2, 2, 2]);
        // 16 nm pixels: everything collapses to full resolution.
        let huge = clamp_effective_pitch(&via_recipe(), 16.0, 8.0);
        assert!(huge.iter().all(|s| s.scale == 1));
        // Iteration counts survive.
        assert_eq!(coarse[0].iterations, 100);
    }
}
