//! Multi-level inverse lithography technology — the DAC 2023 contribution.
//!
//! This crate assembles the substrates (`ilt-optics`, `ilt-autodiff`,
//! `ilt-field`, `ilt-geom`) into the paper's ILT framework:
//!
//! * [`BinaryFunction`] — the improved mask binary function (Section III-C):
//!   sigmoid with `T_R = 0.5` during optimization, `T_R = 0.4` at output,
//! * [`OptimizeRegion`] — the two writable-region conventions of Fig. 7,
//! * [`MultiLevelIlt`] + [`Stage`] — Algorithm 1 with low-resolution
//!   (Eq. 8) and high-resolution (Eq. 3 + pooling) branches, early exit,
//!   contour [`Smoothing`] and final mask synthesis (Eq. 12),
//! * [`schedules`] — the named recipes behind "Our-fast", "Our-exact" and
//!   the via-layer flow.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use ilt_core::{schedules, IltConfig, MultiLevelIlt};
//! use ilt_field::Field2D;
//! use ilt_optics::{LithoSimulator, OpticsConfig};
//!
//! # fn main() -> Result<(), String> {
//! let optics = OpticsConfig { grid: 64, nm_per_px: 8.0, num_kernels: 3, ..OpticsConfig::default() };
//! let sim = Arc::new(LithoSimulator::new(optics)?);
//! let target = Field2D::from_fn(64, 64, |r, c| {
//!     if (24..40).contains(&r) && (16..48).contains(&c) { 1.0 } else { 0.0 }
//! });
//! let ilt = MultiLevelIlt::new(sim, IltConfig::default());
//! let schedule = schedules::clamp_scales(&schedules::our_fast(), 64, 32);
//! let result = ilt.run(&target, &schedule);
//! assert!(result.total_iterations > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod binary;
mod loss;
mod optimizer;
mod region;
pub mod schedules;
mod update;

pub use binary::BinaryFunction;
pub use loss::LossWeights;
pub use update::{UpdateRule, UpdateState};
pub use optimizer::{
    IltConfig, IltResult, LossRecord, MultiLevelIlt, Smoothing, SmoothingPlacement, Stage,
    StageKind,
};
pub use region::{pattern_bbox, OptimizeRegion};
