//! The multi-level ILT optimizer (Algorithm 1 + Fig. 2 of the paper).
//!
//! A run executes a **schedule** of stages. Each stage is either
//!
//! * **low-resolution** (`flag = 0`): everything — smoothing pool, sigmoid
//!   binarization, lithography (Eq. 8), loss, gradient — happens at size
//!   `N/s`, which is where the >10x per-iteration speedup comes from, or
//! * **high-resolution** (`flag = 1`): the mask is kept at `N/s` but
//!   upsampled for an exact full-size simulation (Eq. 3); the wafer image
//!   is pooled back down before the loss, so the update stays on the
//!   reduced grid and the mask stays simple.
//!
//! The loss is Eq. 5 (`L = L_l2 + L_pvb`, with `Z_out` replacing `Z_norm`
//! in `L_l2` to save a third simulation), gradients flow through the
//! `ilt-autodiff` tape, and a stage exits early when no new minimum loss
//! appears within a configurable window (the paper uses 15 iterations for
//! via layers).

use std::sync::Arc;

use ilt_autodiff::Graph;
use ilt_field::{avg_pool_down, upsample_nearest, Field2D};
use ilt_geom::{simplify_mask, SimplifyConfig};
use ilt_optics::{LithoSimulator, ProcessCondition};

use crate::binary::BinaryFunction;
use crate::loss::LossWeights;
use crate::region::OptimizeRegion;
use crate::update::{UpdateRule, UpdateState};

/// Which Algorithm 1 branch a stage runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// `flag = 0`: simulate and optimize at `N/s` (Eq. 8).
    LowRes,
    /// `flag = 1`: simulate at `N`, optimize at `N/s` (Eq. 3 + pooling).
    HighRes,
}

/// One stage of a multi-level schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Stage {
    /// Branch selector.
    pub kind: StageKind,
    /// Scale factor `s` (power of two, `>= 1`).
    pub scale: usize,
    /// Iteration budget (an upper bound when early exit is enabled).
    pub iterations: usize,
}

impl Stage {
    /// A low-resolution stage.
    pub const fn low_res(scale: usize, iterations: usize) -> Self {
        Stage { kind: StageKind::LowRes, scale, iterations }
    }

    /// A high-resolution stage.
    pub const fn high_res(scale: usize, iterations: usize) -> Self {
        Stage { kind: StageKind::HighRes, scale, iterations }
    }
}

/// Where the Section III-D smoothing pool sits relative to binarization.
///
/// The paper's text and Fig. 3(b) smooth **before** binarizing, while the
/// Algorithm 1 listing smooths after; both are offered (the ablation bench
/// compares them) with the text's order as default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SmoothingPlacement {
    /// Pool `M'` before the binary function (paper text, Fig. 3(b)).
    #[default]
    BeforeBinarize,
    /// Pool the binarized mask (Algorithm 1 listing, line 11).
    AfterBinarize,
}

/// The contour-smoothing pool configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Smoothing {
    /// Window size `n` (odd; the paper uses 3).
    pub kernel: usize,
    /// Placement relative to binarization.
    pub placement: SmoothingPlacement,
}

impl Default for Smoothing {
    fn default() -> Self {
        Smoothing { kernel: 3, placement: SmoothingPlacement::default() }
    }
}

/// Hyper-parameters of a multi-level ILT run.
#[derive(Clone, Debug, PartialEq)]
pub struct IltConfig {
    /// Gradient-descent step size (the paper's ablation uses 1).
    pub learning_rate: f64,
    /// Binary function during optimization (paper: sigmoid, `T_R = 0.5`).
    pub binary: BinaryFunction,
    /// Binary function for the final output (paper: sigmoid, `T_R = 0.4`).
    pub output_binary: BinaryFunction,
    /// Final hard threshold `t_m` (Eq. 12; paper: 0.5).
    pub final_threshold: f64,
    /// Contour smoothing in low-resolution stages (`None` disables).
    pub smoothing: Option<Smoothing>,
    /// Writable-region policy.
    pub region: OptimizeRegion,
    /// Stop a stage when no new minimum loss within this many iterations.
    pub early_exit_window: Option<usize>,
    /// `M'` value assigned to frozen (outside-region) pixels; strongly
    /// negative so they binarize opaque.
    pub frozen_value: f64,
    /// Optional shape post-processing of the final mask.
    pub postprocess: Option<SimplifyConfig>,
    /// Loss term weights (Eq. 5 plus optional regularizers).
    pub loss_weights: LossWeights,
    /// Gradient update rule (the paper uses plain SGD).
    pub update_rule: UpdateRule,
}

impl Default for IltConfig {
    fn default() -> Self {
        IltConfig {
            learning_rate: 1.0,
            binary: BinaryFunction::paper_sigmoid(),
            output_binary: BinaryFunction::output_sigmoid(),
            final_threshold: 0.5,
            smoothing: Some(Smoothing::default()),
            region: OptimizeRegion::option2_default(),
            early_exit_window: None,
            frozen_value: -2.0,
            postprocess: None,
            loss_weights: LossWeights::paper(),
            update_rule: UpdateRule::Sgd,
        }
    }
}

/// One loss sample from the optimization trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LossRecord {
    /// Index of the stage in the schedule.
    pub stage: usize,
    /// Iteration within the stage.
    pub iteration: usize,
    /// Scale factor of the stage.
    pub scale: usize,
    /// Raw Eq. 5 loss at the stage's resolution (multiply by `scale^2` for
    /// a cross-scale comparable figure).
    pub loss: f64,
}

/// Output of a multi-level ILT run.
#[derive(Clone, Debug)]
pub struct IltResult {
    /// Final full-resolution binary mask (Eq. 12 output, post-processed if
    /// configured).
    pub mask: Field2D,
    /// The optimized free-valued mask `M'` at the final stage's scale.
    pub raw_mask: Field2D,
    /// Scale factor of `raw_mask`.
    pub final_scale: usize,
    /// Loss trace across all stages.
    pub loss_history: Vec<LossRecord>,
    /// Total gradient iterations actually executed.
    pub total_iterations: usize,
}

impl IltResult {
    /// Best cross-scale-normalized loss seen during the run.
    pub fn best_normalized_loss(&self) -> Option<f64> {
        self.loss_history
            .iter()
            .map(|r| r.loss * (r.scale * r.scale) as f64)
            .min_by(|a, b| a.partial_cmp(b).expect("finite losses"))
    }
}

/// The multi-level ILT engine.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use ilt_core::{IltConfig, MultiLevelIlt, Stage};
/// use ilt_field::Field2D;
/// use ilt_optics::{LithoSimulator, OpticsConfig};
///
/// # fn main() -> Result<(), String> {
/// let cfg = OpticsConfig { grid: 64, nm_per_px: 8.0, num_kernels: 3, ..OpticsConfig::default() };
/// let sim = Arc::new(LithoSimulator::new(cfg)?);
/// let target = Field2D::from_fn(64, 64, |r, c| {
///     if (24..40).contains(&r) && (16..48).contains(&c) { 1.0 } else { 0.0 }
/// });
/// let ilt = MultiLevelIlt::new(sim, IltConfig::default());
/// let result = ilt.run(&target, &[Stage::low_res(2, 8)]);
/// assert_eq!(result.mask.shape(), (64, 64));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MultiLevelIlt {
    sim: Arc<LithoSimulator>,
    cfg: IltConfig,
}

impl MultiLevelIlt {
    /// Creates an optimizer bound to a simulator and hyper-parameters.
    pub fn new(sim: Arc<LithoSimulator>, cfg: IltConfig) -> Self {
        MultiLevelIlt { sim, cfg }
    }

    /// The hyper-parameters in use.
    pub fn config(&self) -> &IltConfig {
        &self.cfg
    }

    /// The simulator in use.
    pub fn simulator(&self) -> &Arc<LithoSimulator> {
        &self.sim
    }

    /// Runs the full multi-level schedule on a target and synthesizes the
    /// final mask.
    ///
    /// # Panics
    ///
    /// Panics if the target does not match the simulator grid, the schedule
    /// is empty, or a scale is invalid (zero, non-power-of-two, kernel
    /// support exceeded).
    pub fn run(&self, target: &Field2D, schedule: &[Stage]) -> IltResult {
        let n = self.sim.config().grid;
        assert_eq!(target.shape(), (n, n), "target must match the simulator grid {n}");
        assert!(!schedule.is_empty(), "schedule must contain at least one stage");
        for st in schedule {
            assert!(st.scale >= 1 && st.scale.is_power_of_two(), "bad scale {}", st.scale);
            assert!(n / st.scale >= self.sim.kernels(false).p(), "scale {} too coarse", st.scale);
        }
        let nm_per_px = self.sim.config().nm_per_px;

        // Algorithm 1 lines 2-3: M'_s <- AvgPool(Z_t, s).
        let mut scale = schedule[0].scale;
        let mut m_raw = avg_pool_down(target, scale);
        let mut region_s = self.cfg.region.region_mask_at_scale(target, nm_per_px, scale);
        freeze(&mut m_raw, &region_s, self.cfg.frozen_value);

        let mut history = Vec::new();
        let mut total_iterations = 0;

        for (stage_idx, stage) in schedule.iter().enumerate() {
            if stage.scale != scale {
                m_raw = resample_raw(&m_raw, scale, stage.scale);
                scale = stage.scale;
                region_s = self.cfg.region.region_mask_at_scale(target, nm_per_px, scale);
                freeze(&mut m_raw, &region_s, self.cfg.frozen_value);
            }
            let z_t_s = avg_pool_down(target, scale);

            let mut best_loss = f64::INFINITY;
            let mut best_mask = m_raw.clone();
            let mut since_best = 0usize;
            let mut opt_state = UpdateState::new();

            for iteration in 0..stage.iterations {
                let (loss, grad) = match stage.kind {
                    StageKind::LowRes => self.low_res_step(&m_raw, &z_t_s),
                    StageKind::HighRes => self.high_res_step(&m_raw, &z_t_s, scale),
                };
                history.push(LossRecord { stage: stage_idx, iteration, scale, loss });
                total_iterations += 1;

                if loss < best_loss {
                    best_loss = loss;
                    best_mask = m_raw.clone();
                    since_best = 0;
                } else {
                    since_best += 1;
                    if let Some(window) = self.cfg.early_exit_window {
                        if since_best >= window {
                            break;
                        }
                    }
                }

                // Gradient step, restricted to the writable region
                // (Algorithm 1 line 15).
                let masked = grad.hadamard(&region_s);
                let delta = opt_state.step(self.cfg.update_rule, &masked, self.cfg.learning_rate);
                m_raw -= &delta.hadamard(&region_s);
            }

            // Keep the best-loss mask of the stage (the iteration budget is
            // an upper bound, not a commitment).
            if best_loss.is_finite() {
                m_raw = best_mask;
            }
        }

        let mask = self.finalize(&m_raw, scale, target, &region_s);
        IltResult {
            mask,
            raw_mask: m_raw,
            final_scale: scale,
            loss_history: history,
            total_iterations,
        }
    }

    /// One low-resolution iteration: returns `(loss, dL/dM')` at scale size.
    fn low_res_step(&self, m_raw: &Field2D, z_t_s: &Field2D) -> (f64, Field2D) {
        let mut g = Graph::new(self.sim.clone());
        let v_raw = g.leaf(m_raw.clone());
        let m = self.binarize_with_smoothing(&mut g, v_raw);
        let loss = self.eq5_loss(&mut g, m, z_t_s, 1);
        let loss_value = g.scalar(loss);
        let grads = g.backward(loss);
        (loss_value, grads.wrt(v_raw).expect("mask influences loss").clone())
    }

    /// One high-resolution iteration (Algorithm 1 lines 7-9).
    fn high_res_step(&self, m_raw: &Field2D, z_t_s: &Field2D, s: usize) -> (f64, Field2D) {
        let mut g = Graph::new(self.sim.clone());
        let v_raw = g.leaf(m_raw.clone());
        // High-resolution ILT binarizes without the smoothing pool (the
        // smoothing operation "is only adopted by low-resolution ILTs").
        let m_s = self.cfg.binary.apply(&mut g, v_raw);
        let m_full = g.upsample_nearest(m_s, s);
        let loss = self.eq5_loss(&mut g, m_full, z_t_s, s);
        let loss_value = g.scalar(loss);
        let grads = g.backward(loss);
        (loss_value, grads.wrt(v_raw).expect("mask influences loss").clone())
    }

    fn binarize_with_smoothing(
        &self,
        g: &mut Graph,
        v_raw: ilt_autodiff::Var,
    ) -> ilt_autodiff::Var {
        match self.cfg.smoothing {
            Some(Smoothing { kernel, placement: SmoothingPlacement::BeforeBinarize }) => {
                let smoothed = g.avg_pool_same(v_raw, kernel);
                self.cfg.binary.apply(g, smoothed)
            }
            Some(Smoothing { kernel, placement: SmoothingPlacement::AfterBinarize }) => {
                let m = self.cfg.binary.apply(g, v_raw);
                g.avg_pool_same(m, kernel)
            }
            None => self.cfg.binary.apply(g, v_raw),
        }
    }

    /// Eq. 5 on a mask node: simulate both corners, pool by `pool` if the
    /// wafer images are larger than the target, and combine the two terms.
    fn eq5_loss(
        &self,
        g: &mut Graph,
        mask: ilt_autodiff::Var,
        z_t_s: &Field2D,
        pool: usize,
    ) -> ilt_autodiff::Var {
        let alpha = self.sim.config().resist_steepness;
        let i_th = self.sim.config().resist_threshold;
        let outer = ProcessCondition::outer();
        let inner = ProcessCondition::inner();

        let i_out = g.hopkins(mask, outer.defocus);
        let mut z_out = g.resist_sigmoid(i_out, alpha, outer.dose, i_th);
        let i_in = g.hopkins(mask, inner.defocus);
        let mut z_in = g.resist_sigmoid(i_in, alpha, inner.dose, i_th);
        if pool > 1 {
            z_out = g.avg_pool_down(z_out, pool);
            z_in = g.avg_pool_down(z_in, pool);
        }
        self.cfg.loss_weights.build(g, z_out, z_in, z_t_s, mask)
    }

    /// Final mask synthesis: output binary function (`T_R = 0.4`), nearest
    /// upsample to full resolution, hard threshold `t_m`, region freeze and
    /// optional shape post-processing.
    fn finalize(
        &self,
        m_raw: &Field2D,
        scale: usize,
        target: &Field2D,
        region_s: &Field2D,
    ) -> Field2D {
        let soft = self.cfg.output_binary.apply_field(m_raw);
        let soft = soft.hadamard(region_s); // frozen pixels stay opaque
        let full = if scale > 1 { upsample_nearest(&soft, scale) } else { soft };
        let mut binary = full.threshold(self.cfg.final_threshold);
        if let Some(pp) = self.cfg.postprocess {
            binary = simplify_mask(&binary, target, pp).0;
        }
        binary
    }
}

/// Transfers the raw mask between stage scales.
fn resample_raw(m_raw: &Field2D, from: usize, to: usize) -> Field2D {
    if to == from {
        m_raw.clone()
    } else if to > from {
        assert!(to % from == 0, "scale {to} not a multiple of {from}");
        avg_pool_down(m_raw, to / from)
    } else {
        assert!(from % to == 0, "scale {from} not a multiple of {to}");
        upsample_nearest(m_raw, from / to)
    }
}

/// Sets `M'` to `frozen` wherever `region` is zero.
fn freeze(m_raw: &mut Field2D, region: &Field2D, frozen: f64) {
    let reg = region.as_slice();
    for (i, v) in m_raw.as_mut_slice().iter_mut().enumerate() {
        if reg[i] < 0.5 {
            *v = frozen;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_optics::{OpticsConfig, SourceSpec};

    fn test_sim(grid: usize) -> Arc<LithoSimulator> {
        let cfg = OpticsConfig {
            grid,
            nm_per_px: 8.0,
            num_kernels: 4,
            source: SourceSpec::Annular { sigma_in: 0.5, sigma_out: 0.9 },
            defocus_nm: 60.0,
            ..OpticsConfig::default()
        };
        Arc::new(LithoSimulator::new(cfg).expect("valid config"))
    }

    fn bar_target(n: usize) -> Field2D {
        Field2D::from_fn(n, n, |r, c| {
            if (n * 3 / 8..n * 5 / 8).contains(&r) && (n / 4..n * 3 / 4).contains(&c) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn loss_decreases_over_low_res_iterations() {
        let sim = test_sim(64);
        let target = bar_target(64);
        let ilt = MultiLevelIlt::new(sim, IltConfig::default());
        let result = ilt.run(&target, &[Stage::low_res(2, 10)]);
        let first = result.loss_history.first().unwrap().loss;
        let last_min = result
            .loss_history
            .iter()
            .map(|r| r.loss)
            .fold(f64::INFINITY, f64::min);
        assert!(
            last_min < first * 0.9,
            "loss should drop by >10%: first {first}, best {last_min}"
        );
    }

    #[test]
    fn high_res_stage_runs_and_improves() {
        let sim = test_sim(64);
        let target = bar_target(64);
        let ilt = MultiLevelIlt::new(sim, IltConfig::default());
        let result = ilt.run(&target, &[Stage::high_res(2, 8)]);
        assert_eq!(result.total_iterations, 8);
        let first = result.loss_history.first().unwrap().loss;
        let best = result
            .loss_history
            .iter()
            .map(|r| r.loss)
            .fold(f64::INFINITY, f64::min);
        assert!(best < first, "high-res loss must improve: {best} vs {first}");
    }

    #[test]
    fn multi_stage_schedule_transfers_between_scales() {
        let sim = test_sim(64);
        let target = bar_target(64);
        let ilt = MultiLevelIlt::new(sim, IltConfig::default());
        let result = ilt.run(
            &target,
            &[Stage::low_res(4, 5), Stage::low_res(2, 5), Stage::high_res(4, 3)],
        );
        assert_eq!(result.total_iterations, 13);
        assert_eq!(result.final_scale, 4);
        assert_eq!(result.raw_mask.shape(), (16, 16));
        assert_eq!(result.mask.shape(), (64, 64));
        // Scales recorded faithfully.
        assert_eq!(result.loss_history[0].scale, 4);
        assert_eq!(result.loss_history[5].scale, 2);
        assert_eq!(result.loss_history[10].scale, 4);
    }

    #[test]
    fn final_mask_is_binary_and_prints_near_target() {
        let sim = test_sim(64);
        let target = bar_target(64);
        let ilt = MultiLevelIlt::new(sim.clone(), IltConfig::default());
        let result = ilt.run(&target, &[Stage::low_res(2, 15)]);
        for &v in result.mask.as_slice() {
            assert!(v == 0.0 || v == 1.0);
        }
        let print = sim.print(&result.mask, ProcessCondition::nominal());
        let err = print.xor_count(&target);
        // The optimized mask must print substantially closer to the target
        // than printing the raw target does.
        let baseline = sim.print(&target, ProcessCondition::nominal()).xor_count(&target);
        assert!(
            err <= baseline,
            "optimized print error {err} vs unoptimized {baseline}"
        );
    }

    #[test]
    fn early_exit_stops_a_stalled_stage() {
        let sim = test_sim(64);
        let target = bar_target(64);
        // A zero learning rate never improves: the stage should stop after
        // exactly window + 1 iterations.
        let cfg = IltConfig {
            learning_rate: 0.0,
            early_exit_window: Some(3),
            ..IltConfig::default()
        };
        let ilt = MultiLevelIlt::new(sim, cfg);
        let result = ilt.run(&target, &[Stage::low_res(2, 50)]);
        assert_eq!(result.total_iterations, 4);
    }

    #[test]
    fn region_freeze_keeps_outside_opaque() {
        let sim = test_sim(64);
        let target = bar_target(64);
        let cfg = IltConfig {
            region: OptimizeRegion::Option1 { margin_nm: 32.0 },
            ..IltConfig::default()
        };
        let ilt = MultiLevelIlt::new(sim, cfg.clone());
        let result = ilt.run(&target, &[Stage::low_res(2, 6)]);
        let region = cfg.region.region_mask(&target, 8.0);
        for (i, (&m, &reg)) in result
            .mask
            .as_slice()
            .iter()
            .zip(region.as_slice())
            .enumerate()
        {
            if reg < 0.5 {
                assert_eq!(m, 0.0, "pixel {i} outside the region must stay opaque");
            }
        }
    }

    #[test]
    fn smoothing_off_changes_the_result() {
        let sim = test_sim(64);
        let target = bar_target(64);
        let with = MultiLevelIlt::new(sim.clone(), IltConfig::default())
            .run(&target, &[Stage::low_res(2, 8)]);
        let without = MultiLevelIlt::new(
            sim,
            IltConfig { smoothing: None, ..IltConfig::default() },
        )
        .run(&target, &[Stage::low_res(2, 8)]);
        assert_ne!(with.raw_mask, without.raw_mask);
    }

    #[test]
    fn postprocess_runs_when_configured() {
        let sim = test_sim(64);
        let target = bar_target(64);
        let cfg = IltConfig {
            postprocess: Some(SimplifyConfig { min_area: 2, ..SimplifyConfig::default() }),
            ..IltConfig::default()
        };
        let ilt = MultiLevelIlt::new(sim, cfg);
        let result = ilt.run(&target, &[Stage::low_res(2, 6)]);
        for &v in result.mask.as_slice() {
            assert!(v == 0.0 || v == 1.0);
        }
    }

    #[test]
    fn resample_raw_round_trips() {
        let m = Field2D::from_fn(8, 8, |r, c| (r * 8 + c) as f64);
        let down = resample_raw(&m, 2, 4); // coarser
        assert_eq!(down.shape(), (4, 4));
        let up = resample_raw(&down, 4, 2);
        assert_eq!(up.shape(), (8, 8));
        assert_eq!(resample_raw(&m, 2, 2), m);
    }

    #[test]
    #[should_panic(expected = "schedule must contain")]
    fn empty_schedule_panics() {
        let sim = test_sim(64);
        let ilt = MultiLevelIlt::new(sim, IltConfig::default());
        let _ = ilt.run(&bar_target(64), &[]);
    }

    #[test]
    #[should_panic(expected = "too coarse")]
    fn absurd_scale_panics() {
        let sim = test_sim(64);
        let ilt = MultiLevelIlt::new(sim, IltConfig::default());
        let _ = ilt.run(&bar_target(64), &[Stage::low_res(16, 1)]);
    }
}
