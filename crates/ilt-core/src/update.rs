//! Gradient update rules.
//!
//! The paper uses plain gradient descent (`M' -= lr * G`, Algorithm 1
//! line 15); the A2-ILT baseline it compares against uses Adam. Both are
//! provided so the ablation harness can quantify what the update rule
//! contributes independently of the multi-level structure.

use ilt_field::Field2D;

/// First-order update rule for the mask variable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UpdateRule {
    /// Plain gradient descent (the paper's Algorithm 1).
    Sgd,
    /// Heavy-ball momentum: `v = beta v + g; M' -= lr v`.
    Momentum {
        /// Momentum coefficient in `[0, 1)`.
        beta: f64,
    },
    /// Adam with bias correction.
    Adam {
        /// First-moment decay (typical 0.9).
        beta1: f64,
        /// Second-moment decay (typical 0.999).
        beta2: f64,
        /// Numerical floor in the denominator.
        epsilon: f64,
    },
}

impl Default for UpdateRule {
    fn default() -> Self {
        UpdateRule::Sgd
    }
}

impl UpdateRule {
    /// Adam with the literature-standard constants.
    pub const fn adam_default() -> Self {
        UpdateRule::Adam { beta1: 0.9, beta2: 0.999, epsilon: 1e-8 }
    }
}

/// Mutable state carried across iterations of one stage.
///
/// Created fresh per stage (the mask shape changes between scales).
#[derive(Clone, Debug, Default)]
pub struct UpdateState {
    velocity: Option<Field2D>,
    first: Option<Field2D>,
    second: Option<Field2D>,
    step: usize,
}

impl UpdateState {
    /// Fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the update step `delta` such that `M' -= delta`, advancing
    /// the internal state.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape changes between calls.
    pub fn step(&mut self, rule: UpdateRule, grad: &Field2D, lr: f64) -> Field2D {
        self.step += 1;
        match rule {
            UpdateRule::Sgd => grad.scale(lr),
            UpdateRule::Momentum { beta } => {
                let v = match self.velocity.take() {
                    Some(prev) => prev.zip_map(grad, |pv, g| beta * pv + g),
                    None => grad.clone(),
                };
                let delta = v.scale(lr);
                self.velocity = Some(v);
                delta
            }
            UpdateRule::Adam { beta1, beta2, epsilon } => {
                let m = match self.first.take() {
                    Some(prev) => prev.zip_map(grad, |pm, g| beta1 * pm + (1.0 - beta1) * g),
                    None => grad.scale(1.0 - beta1),
                };
                let v = match self.second.take() {
                    Some(prev) => {
                        prev.zip_map(grad, |pv, g| beta2 * pv + (1.0 - beta2) * g * g)
                    }
                    None => grad.map(|g| (1.0 - beta2) * g * g),
                };
                let bc1 = 1.0 - beta1.powi(self.step as i32);
                let bc2 = 1.0 - beta2.powi(self.step as i32);
                let delta = m.zip_map(&v, |mi, vi| {
                    lr * (mi / bc1) / ((vi / bc2).sqrt() + epsilon)
                });
                self.first = Some(m);
                self.second = Some(v);
                delta
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad(v: f64) -> Field2D {
        Field2D::filled(2, 2, v)
    }

    #[test]
    fn sgd_is_stateless_scaling() {
        let mut st = UpdateState::new();
        let d1 = st.step(UpdateRule::Sgd, &grad(2.0), 0.5);
        let d2 = st.step(UpdateRule::Sgd, &grad(2.0), 0.5);
        assert_eq!(d1, d2);
        assert_eq!(d1[(0, 0)], 1.0);
    }

    #[test]
    fn momentum_accumulates() {
        let mut st = UpdateState::new();
        let rule = UpdateRule::Momentum { beta: 0.5 };
        let d1 = st.step(rule, &grad(1.0), 1.0);
        let d2 = st.step(rule, &grad(1.0), 1.0);
        let d3 = st.step(rule, &grad(1.0), 1.0);
        assert_eq!(d1[(0, 0)], 1.0);
        assert_eq!(d2[(0, 0)], 1.5); // 0.5*1 + 1
        assert_eq!(d3[(0, 0)], 1.75);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step is ~lr * sign(g).
        let mut st = UpdateState::new();
        let d = st.step(UpdateRule::adam_default(), &grad(0.3), 0.01);
        assert!((d[(0, 0)] - 0.01).abs() < 1e-6, "{}", d[(0, 0)]);
        // And scale-invariant in |g|.
        let mut st2 = UpdateState::new();
        let d2 = st2.step(UpdateRule::adam_default(), &grad(30.0), 0.01);
        assert!((d2[(0, 0)] - 0.01).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        // Minimize f(x) = (x - 3)^2 per pixel.
        let mut x = Field2D::filled(2, 2, 0.0);
        let mut st = UpdateState::new();
        for _ in 0..500 {
            let g = x.map(|v| 2.0 * (v - 3.0));
            let d = st.step(UpdateRule::adam_default(), &g, 0.05);
            x -= &d;
        }
        for &v in x.as_slice() {
            assert!((v - 3.0).abs() < 0.05, "{v}");
        }
    }

    #[test]
    fn zero_gradient_yields_zero_step_for_sgd_and_momentum() {
        let mut st = UpdateState::new();
        assert_eq!(st.step(UpdateRule::Sgd, &grad(0.0), 1.0).sum(), 0.0);
        let mut st2 = UpdateState::new();
        assert_eq!(
            st2.step(UpdateRule::Momentum { beta: 0.9 }, &grad(0.0), 1.0).sum(),
            0.0
        );
    }
}
