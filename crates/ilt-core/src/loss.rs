//! Loss assembly: Eq. 5 plus the optional regularizers from the related
//! work the paper builds on.
//!
//! The paper's loss is `L = L_l2 + L_pvb` (Eq. 5). Two optional penalty
//! terms from the baselines it discusses are provided for ablations and
//! extensions:
//!
//! * **curvature** — a smoothness penalty in the spirit of DevelSet [5]:
//!   `||M - mean3(M)||^2` punishes high-curvature, ragged contours,
//! * **gray** — a binary-ness penalty in the spirit of Neural-ILT's
//!   complexity term [4]: `sum(M (1 - M))` pushes transmissions to {0, 1},
//!   discouraging the faint debris that inflates shot counts.
//!
//! Both are expressed through the existing autodiff operator set, so their
//! gradients are exact.

use ilt_autodiff::{Graph, Var};
use ilt_field::Field2D;

/// Weights of the loss terms. The paper's configuration is
/// `l2 = pvband = 1`, regularizers off.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LossWeights {
    /// Weight of `L_l2 = ||Z_out - Z_t||^2`.
    pub l2: f64,
    /// Weight of `L_pvb = ||Z_in - Z_out||^2`.
    pub pvband: f64,
    /// Weight of the curvature (contour smoothness) penalty on the
    /// binarized mask.
    pub curvature: f64,
    /// Weight of the gray-level (binary-ness) penalty on the binarized
    /// mask.
    pub gray: f64,
}

impl Default for LossWeights {
    fn default() -> Self {
        LossWeights { l2: 1.0, pvband: 1.0, curvature: 0.0, gray: 0.0 }
    }
}

impl LossWeights {
    /// The paper's exact Eq. 5 configuration.
    pub const fn paper() -> Self {
        LossWeights { l2: 1.0, pvband: 1.0, curvature: 0.0, gray: 0.0 }
    }

    /// Returns `true` if any regularizer is active.
    pub fn has_regularizers(&self) -> bool {
        self.curvature != 0.0 || self.gray != 0.0
    }

    /// Assembles the total loss node from the two wafer images, the target
    /// and the (binarized) mask.
    ///
    /// `z_out`/`z_in` are the outer/inner corner wafer nodes at target
    /// resolution; `mask` is the binarized mask node the regularizers act
    /// on.
    pub fn build(
        &self,
        g: &mut Graph,
        z_out: Var,
        z_in: Var,
        target: &Field2D,
        mask: Var,
    ) -> Var {
        let t = g.leaf(target.clone());
        let l_l2 = g.sq_diff_sum(z_out, t);
        let l_pvb = g.sq_diff_sum(z_in, z_out);
        let a = g.scale(l_l2, self.l2);
        let b = g.scale(l_pvb, self.pvband);
        let mut total = g.add(a, b);

        if self.curvature != 0.0 {
            let smooth = g.avg_pool_same(mask, 3);
            let rough = g.sq_diff_sum(mask, smooth);
            let term = g.scale(rough, self.curvature);
            total = g.add(total, term);
        }
        if self.gray != 0.0 {
            // sum(M (1 - M)) = sum(M) - sum(M^2) = <M, 1> - <M.M, 1>.
            let shape = g.value(mask).shape();
            let ones = Field2D::filled(shape.0, shape.1, 1.0);
            let linear = g.weighted_sum(mask, ones.clone());
            let m_sq = g.mul(mask, mask);
            let quad = g.weighted_sum(m_sq, ones);
            let neg_quad = g.scale(quad, -1.0);
            let gray = g.add(linear, neg_quad);
            let term = g.scale(gray, self.gray);
            total = g.add(total, term);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_autodiff::finite_diff;

    fn fields() -> (Field2D, Field2D, Field2D, Field2D) {
        let mask = Field2D::from_fn(6, 6, |r, c| 0.5 + 0.3 * ((r * 2 + c) as f64 * 0.7).sin());
        let z_out = mask.map(|v| v * 0.9);
        let z_in = mask.map(|v| v * 0.8 + 0.05);
        let target = Field2D::from_fn(6, 6, |r, _| if r >= 2 && r < 4 { 1.0 } else { 0.0 });
        (mask, z_out, z_in, target)
    }

    fn eval(w: LossWeights, mask: &Field2D, z_out: &Field2D, z_in: &Field2D, t: &Field2D) -> f64 {
        let mut g = Graph::without_simulator();
        let m = g.leaf(mask.clone());
        let zo = g.leaf(z_out.clone());
        let zi = g.leaf(z_in.clone());
        let loss = w.build(&mut g, zo, zi, t, m);
        g.scalar(loss)
    }

    #[test]
    fn paper_weights_reproduce_eq5() {
        let (mask, z_out, z_in, target) = fields();
        let got = eval(LossWeights::paper(), &mask, &z_out, &z_in, &target);
        let want = z_out.sq_l2_dist(&target) + z_in.sq_l2_dist(&z_out);
        assert!((got - want).abs() < 1e-12);
        assert!(!LossWeights::paper().has_regularizers());
    }

    #[test]
    fn weights_scale_terms_linearly() {
        let (mask, z_out, z_in, target) = fields();
        let w = LossWeights { l2: 2.0, pvband: 0.5, ..LossWeights::default() };
        let got = eval(w, &mask, &z_out, &z_in, &target);
        let want = 2.0 * z_out.sq_l2_dist(&target) + 0.5 * z_in.sq_l2_dist(&z_out);
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn gray_penalty_is_zero_for_binary_masks() {
        let (_, z_out, z_in, target) = fields();
        let binary = target.clone();
        let w = LossWeights { gray: 3.0, ..LossWeights::default() };
        let with = eval(w, &binary, &z_out, &z_in, &target);
        let without = eval(LossWeights::paper(), &binary, &z_out, &z_in, &target);
        assert!((with - without).abs() < 1e-12, "binary mask must incur no gray penalty");

        // And positive for a gray mask.
        let gray_mask = Field2D::filled(6, 6, 0.5);
        let with_gray = eval(w, &gray_mask, &z_out, &z_in, &target);
        assert!(with_gray > without);
    }

    #[test]
    fn curvature_penalty_prefers_smooth_masks() {
        let (_, z_out, z_in, target) = fields();
        let w = LossWeights { curvature: 1.0, ..LossWeights::default() };
        let smooth = Field2D::filled(6, 6, 0.7);
        let rough = Field2D::from_fn(6, 6, |r, c| ((r + c) % 2) as f64);
        let base = eval(LossWeights::paper(), &smooth, &z_out, &z_in, &target);
        let smooth_pen = eval(w, &smooth, &z_out, &z_in, &target) - base;
        let rough_pen = eval(w, &rough, &z_out, &z_in, &target) - base;
        // A constant mask only pays the zero-padded border residue of the
        // mean filter; a checkerboard pays everywhere.
        assert!(
            smooth_pen < 0.2 * rough_pen,
            "smooth {smooth_pen} vs rough {rough_pen}"
        );
        assert!(rough_pen > 1.0, "checkerboard must be penalized, got {rough_pen}");
    }

    #[test]
    fn regularizer_gradients_match_fd() {
        let (mask, z_out, z_in, target) = fields();
        let w = LossWeights { curvature: 0.7, gray: 0.3, ..LossWeights::default() };
        let mut g = Graph::without_simulator();
        let m = g.leaf(mask.clone());
        let zo = g.leaf(z_out.clone());
        let zi = g.leaf(z_in.clone());
        let loss = w.build(&mut g, zo, zi, &target, m);
        let grads = g.backward(loss);
        let numeric = finite_diff(&mask, 1e-6, |mv| eval(w, mv, &z_out, &z_in, &target));
        ilt_autodiff::assert_gradients_close(grads.wrt(m).unwrap(), &numeric, 1e-6);
    }
}
