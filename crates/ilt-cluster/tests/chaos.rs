//! Network-fault chaos: the loopback cluster under injected transport
//! damage. The standing invariant — for any fault schedule that leaves at
//! least one worker able to make progress, the clustered mask is
//! byte-identical to a single-process `ilt batch` run; and when a
//! speculation race surfaces two *disagreeing* results, the job fails hard
//! rather than emit a possibly-wrong mask.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use ilt_cluster::transport::{serve_connection, ConnOptions, Request, Response};
use ilt_cluster::wire::{parse_job_ids, shard_header_line, shard_job_line, ShardHeader};
use ilt_cluster::{
    BreakerConfig, ClusterConfig, Coordinator, ExecPolicy, JobParams, Worker, WorkerConfig,
};
use ilt_field::pgm_bytes;
use ilt_runtime::{
    assemble_batch, planned_job_list, run_batch, FaultPlan, JobOutput, JobRecord, JobStatus,
    SimulatorCache, StageTimes,
};

fn spawn_worker(faults: FaultPlan) -> (String, std::thread::JoinHandle<()>) {
    let worker = Worker::bind(WorkerConfig {
        addr: "127.0.0.1:0".into(),
        faults,
        ..WorkerConfig::default()
    })
    .expect("bind worker");
    let addr = worker.local_addr().expect("worker addr").to_string();
    let handle = std::thread::spawn(move || worker.run());
    (addr, handle)
}

fn shutdown(addr: &str) {
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let _ = stream.write_all(
            format!(
                "POST /v1/shutdown HTTP/1.1\r\nhost: {addr}\r\ncontent-length: 0\r\nconnection: close\r\n\r\n"
            )
            .as_bytes(),
        );
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    }
}

fn tiny_params() -> JobParams {
    JobParams::from_saved(
        "via=7&grid=128&kernels=3&tile=64&halo=8&iters=2&threads=1&eval=0",
        Vec::new(),
        &ExecPolicy::default(),
    )
    .expect("valid params")
}

#[test]
fn transport_chaos_with_a_live_worker_is_byte_identical() {
    let params = tiny_params();
    let (case, config) = params.plan().expect("plan");
    let query = params.to_query();
    let cache = SimulatorCache::new();
    let reference = run_batch(std::slice::from_ref(&case), &config, &cache).expect("local batch");
    let reference_pgm = pgm_bytes(&reference.cases[0].mask, 0.0, 1.0);
    let plan = planned_job_list(std::slice::from_ref(&case), &config).expect("plan list");

    // Every replica damages the FIRST dispatch of whatever shard carries
    // these jobs: a garbled body (hash-verified away), a torn response
    // (short read), and a stalled one (slow but intact). Second attempts
    // are clean — the flaky-network regime where every /healthz passes.
    let chaos = FaultPlan::parse("garble@0:1,torn_response@1:1,read_stall@2:1=150")
        .expect("fault plan");
    let (a, a_handle) = spawn_worker(chaos.clone());
    let (b, b_handle) = spawn_worker(chaos.clone());
    let (c, c_handle) = spawn_worker(chaos);
    let coordinator = Coordinator::new(ClusterConfig {
        workers: vec![a.clone(), b.clone()],
        heartbeat: Duration::from_millis(50),
        heartbeat_failures: 1000,
        // Pure transport chaos: keep the breaker out of the picture so the
        // assert pins the retry path, not the quarantine path.
        breaker: BreakerConfig { threshold: 1000, ..BreakerConfig::default() },
        speculate_factor: 0.0,
        ..ClusterConfig::default()
    })
    .expect("coordinator");
    assert!(coordinator.join(&c), "third replica joins before the run");

    let outputs = coordinator
        .run_job(1, &query, &[], &plan, &config.cancel, &config.progress)
        .expect("chaos run completes");
    assert!(
        outputs.iter().all(|o| o.record.status == JobStatus::Done),
        "every tile must survive the chaos"
    );
    let outcome = assemble_batch(std::slice::from_ref(&case), &config, outputs, &cache, 0.0)
        .expect("assemble");
    assert_eq!(outcome.cases[0].failed_tiles, 0);
    assert_eq!(
        pgm_bytes(&outcome.cases[0].mask, 0.0, 1.0),
        reference_pgm,
        "garbled/torn/stalled responses must never reach the mask"
    );
    assert!(
        coordinator.stats().shards_redispatched.get() >= 2,
        "garble and torn_response each force a re-dispatch"
    );
    assert_eq!(coordinator.stats().members_joined.get(), 3);

    for addr in [a, b, c] {
        shutdown(&addr);
    }
    for handle in [a_handle, b_handle, c_handle] {
        handle.join().expect("worker thread");
    }
}

#[test]
fn stragglers_are_speculated_and_the_fast_copy_wins() {
    let params = tiny_params();
    let (case, config) = params.plan().expect("plan");
    let query = params.to_query();
    let cache = SimulatorCache::new();
    let reference = run_batch(std::slice::from_ref(&case), &config, &cache).expect("local batch");
    let reference_pgm = pgm_bytes(&reference.cases[0].mask, 0.0, 1.0);
    let plan = planned_job_list(std::slice::from_ref(&case), &config).expect("plan list");

    // Replica A stalls every shard response for 2.5 s (computes fine, the
    // network is molasses); B is healthy. A's shards must be speculated
    // onto B and B's copies must win.
    let stall = (0..plan.len())
        .map(|j| format!("read_stall@{j}=2500"))
        .collect::<Vec<_>>()
        .join(",");
    let (slow, slow_handle) = spawn_worker(FaultPlan::parse(&stall).expect("fault plan"));
    let (fast, fast_handle) = spawn_worker(FaultPlan::none());
    let coordinator = Coordinator::new(ClusterConfig {
        workers: vec![slow.clone(), fast.clone()],
        heartbeat: Duration::from_millis(50),
        heartbeat_failures: 1000,
        speculate_factor: 1.5,
        speculate_min_samples: 1,
        // Losers stuck in the stall get cut short quickly.
        cancel_grace: Duration::from_secs(1),
        ..ClusterConfig::default()
    })
    .expect("coordinator");

    let outputs = coordinator
        .run_job(1, &query, &[], &plan, &config.cancel, &config.progress)
        .expect("speculated run completes");
    assert!(outputs.iter().all(|o| o.record.status == JobStatus::Done));
    let outcome = assemble_batch(std::slice::from_ref(&case), &config, outputs, &cache, 0.0)
        .expect("assemble");
    assert_eq!(outcome.cases[0].failed_tiles, 0);
    assert_eq!(
        pgm_bytes(&outcome.cases[0].mask, 0.0, 1.0),
        reference_pgm,
        "speculation must not change the mask"
    );
    assert!(
        coordinator.stats().shards_speculated.get() >= 1,
        "the stalled replica's shards must be speculated"
    );
    assert!(
        coordinator.stats().speculation_wins.get() >= 1,
        "the healthy copy must win at least one race"
    );

    shutdown(&slow);
    shutdown(&fast);
    slow_handle.join().expect("worker thread");
    fast_handle.join().expect("worker thread");
}

/// A worker-shaped liar: speaks the shard wire protocol fluently and
/// instantly, but fabricates its results (failed records under a bogus
/// configuration fingerprint). Self-consistent enough to parse cleanly —
/// only the speculation agreement check can catch it.
fn spawn_lying_worker() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind liar");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            std::thread::spawn(move || {
                serve_connection(stream, &ConnOptions::default(), lie, || true);
            });
        }
    });
    addr
}

fn lie(req: &Request) -> Response {
    if req.method == "GET" && req.path.ends_with("healthz") {
        return Response::text(200, "ok\n");
    }
    if req.method == "DELETE" {
        return Response::json(202, "{\"cancelling\":true}");
    }
    let sid = req.query_param("shard").unwrap_or("?").to_string();
    let ids = req.query_param("jobs").and_then(|raw| parse_job_ids(raw).ok()).unwrap_or_default();
    let header = ShardHeader {
        shard: sid,
        jobs: ids.len(),
        // Not the fingerprint any honest replica would compute.
        fingerprint: 0xbad0_bad0_bad0_bad0,
        restored: 0,
    };
    let mut body = shard_header_line(&header);
    body.push('\n');
    for id in ids {
        let fake = JobOutput {
            record: JobRecord {
                job_id: id,
                case: "via-7".into(),
                tile: None,
                grid: 128,
                attempts: 1,
                status: JobStatus::Failed("fabricated".into()),
                metrics: None,
                times: StageTimes::default(),
                wall_ms: 0.1,
            },
            mask: None,
        };
        body.push_str(&shard_job_line(&fake));
        body.push('\n');
    }
    Response::jsonl(200, body)
}

#[test]
fn disagreeing_speculation_results_fail_the_job_hard() {
    let params = tiny_params();
    let (case, config) = params.plan().expect("plan");
    let query = params.to_query();
    let plan = planned_job_list(std::slice::from_ref(&case), &config).expect("plan list");

    // The honest replica computes everything but stalls the response of
    // whatever shard carries job 0 for 4 s — long enough to look like a
    // straggler once the other shards' latencies set the median.
    let (honest, honest_handle) =
        spawn_worker(FaultPlan::parse("read_stall@0=4000").expect("fault plan"));
    let coordinator = Arc::new(
        Coordinator::new(ClusterConfig {
            workers: vec![honest.clone()],
            heartbeat: Duration::from_millis(50),
            heartbeat_failures: 1000,
            // All shards go to the honest replica concurrently, so the
            // liar (joining mid-job) can only ever receive a speculative
            // copy — the worst case for catching it.
            max_inflight_per_worker: 8,
            speculate_factor: 2.0,
            speculate_min_samples: 1,
            // Generous grace: the straggling loser must get to deliver its
            // honest result so the agreement check can run.
            cancel_grace: Duration::from_secs(20),
            ..ClusterConfig::default()
        })
        .expect("coordinator"),
    );

    let runner = {
        let coordinator = Arc::clone(&coordinator);
        let query = query.clone();
        let plan = plan.clone();
        let cancel = config.cancel.clone();
        let progress = config.progress.clone();
        std::thread::spawn(move || coordinator.run_job(1, &query, &[], &plan, &cancel, &progress))
    };
    // Let the fast shards finish (establishing the latency median), then
    // present the liar as a fresh replica.
    let started = std::time::Instant::now();
    while coordinator.stats().shard_ms.count() < 3 {
        assert!(started.elapsed() < Duration::from_secs(60), "fast shards never finished");
        std::thread::sleep(Duration::from_millis(2));
    }
    let liar = spawn_lying_worker();
    assert!(coordinator.join(&liar));

    let err = runner
        .join()
        .expect("runner")
        .expect_err("a fabricated speculative result must fail the job, not merge");
    assert!(err.contains("disagreement"), "{err}");
    assert!(err.contains("fingerprint"), "{err}");
    assert!(
        coordinator.stats().shards_speculated.get() >= 1,
        "the liar must have been engaged via speculation"
    );

    shutdown(&honest);
    honest_handle.join().expect("worker thread");
}
