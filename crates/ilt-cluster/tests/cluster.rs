//! Loopback cluster integration: shard-boundary determinism, dead-worker
//! re-dispatch, and cancellation fan-out — all in-process (real sockets,
//! no child processes; process-crash chaos lives in the root `cluster_e2e`
//! test, which can afford to lose a worker process).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::time::Duration;

use ilt_cluster::{
    BreakerConfig, ClusterConfig, Coordinator, ExecPolicy, JobParams, Worker, WorkerConfig,
};
use ilt_field::pgm_bytes;
use ilt_runtime::{
    assemble_batch, planned_job_list, run_batch, FaultPlan, JobStatus, SimulatorCache,
};

/// Binds one worker replica on an ephemeral loopback port and serves it
/// from a background thread until `shutdown` is called on its address.
fn spawn_worker(faults: FaultPlan) -> (String, std::thread::JoinHandle<()>) {
    let worker = Worker::bind(WorkerConfig {
        addr: "127.0.0.1:0".into(),
        faults,
        ..WorkerConfig::default()
    })
    .expect("bind worker");
    let addr = worker.local_addr().expect("worker addr").to_string();
    let handle = std::thread::spawn(move || worker.run());
    (addr, handle)
}

fn shutdown(addr: &str) {
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let _ = stream.write_all(
            format!(
                "POST /v1/shutdown HTTP/1.1\r\nhost: {addr}\r\ncontent-length: 0\r\nconnection: close\r\n\r\n"
            )
            .as_bytes(),
        );
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    }
}

/// A small multi-tile job: 128 px via clip split into 64 px tiles with an
/// 8 px halo, 2 iterations — enough tiles to shard three ways, small
/// enough to run in seconds.
fn tiny_params() -> JobParams {
    JobParams::from_saved(
        "via=7&grid=128&kernels=3&tile=64&halo=8&iters=2&threads=1&eval=0",
        Vec::new(),
        &ExecPolicy::default(),
    )
    .expect("valid params")
}

#[test]
fn sharded_masks_are_byte_identical_across_worker_counts() {
    let params = tiny_params();
    let (case, config) = params.plan().expect("plan");
    let query = params.to_query();

    // Reference: the single-process batch engine.
    let cache = SimulatorCache::new();
    let reference = run_batch(std::slice::from_ref(&case), &config, &cache)
        .expect("local batch");
    let reference_pgm = pgm_bytes(&reference.cases[0].mask, 0.0, 1.0);

    let plan = planned_job_list(std::slice::from_ref(&case), &config).expect("plan list");
    assert!(plan.len() >= 3, "need enough tiles to shard: got {}", plan.len());

    for replicas in [1usize, 2, 3] {
        let workers: Vec<_> =
            (0..replicas).map(|_| spawn_worker(FaultPlan::none())).collect();
        let coordinator = Coordinator::new(ClusterConfig {
            workers: workers.iter().map(|(addr, _)| addr.clone()).collect(),
            ..ClusterConfig::default()
        })
        .expect("coordinator");
        let outputs = coordinator
            .run_job(1, &query, &[], &plan, &config.cancel, &config.progress)
            .expect("clustered run");
        let outcome = assemble_batch(
            std::slice::from_ref(&case),
            &config,
            outputs,
            &cache,
            0.0,
        )
        .expect("assemble");
        assert_eq!(outcome.cases[0].failed_tiles, 0, "{replicas} replica(s)");
        assert_eq!(
            pgm_bytes(&outcome.cases[0].mask, 0.0, 1.0),
            reference_pgm,
            "{replicas}-replica mask must be byte-identical to ilt batch"
        );
        for (addr, handle) in workers {
            shutdown(&addr);
            handle.join().expect("worker thread");
        }
    }
}

#[test]
fn dead_worker_shards_are_redispatched_to_survivors() {
    let params = tiny_params();
    let (case, config) = params.plan().expect("plan");
    let query = params.to_query();
    let cache = SimulatorCache::new();
    let reference = run_batch(std::slice::from_ref(&case), &config, &cache)
        .expect("local batch");
    let reference_pgm = pgm_bytes(&reference.cases[0].mask, 0.0, 1.0);
    let plan = planned_job_list(std::slice::from_ref(&case), &config).expect("plan list");

    // A port that was bound and released: connecting gets refused, which is
    // exactly what a crashed worker looks like to the coordinator.
    let dead_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("probe port");
        listener.local_addr().expect("addr").to_string()
    };
    let (live_addr, handle) = spawn_worker(FaultPlan::none());

    let coordinator = Coordinator::new(ClusterConfig {
        workers: vec![dead_addr, live_addr.clone()],
        heartbeat: Duration::from_millis(50),
        heartbeat_failures: 1,
        ..ClusterConfig::default()
    })
    .expect("coordinator");
    let outputs = coordinator
        .run_job(1, &query, &[], &plan, &config.cancel, &config.progress)
        .expect("clustered run despite a dead replica");
    let outcome =
        assemble_batch(std::slice::from_ref(&case), &config, outputs, &cache, 0.0)
            .expect("assemble");
    assert_eq!(outcome.cases[0].failed_tiles, 0);
    assert_eq!(
        pgm_bytes(&outcome.cases[0].mask, 0.0, 1.0),
        reference_pgm,
        "re-dispatched shards must not change the mask"
    );
    assert!(
        coordinator.stats().shards_redispatched.get() >= 1,
        "the dead replica's shard must be re-dispatched"
    );
    assert_eq!(
        coordinator.stats().workers_alive.load(Ordering::Relaxed),
        1,
        "the heartbeat monitor must see exactly one live replica"
    );
    shutdown(&live_addr);
    handle.join().expect("worker thread");
}

#[test]
fn cancellation_fans_out_to_workers() {
    let params = tiny_params();
    let (case, config) = params.plan().expect("plan");
    let query = params.to_query();
    let plan = planned_job_list(std::slice::from_ref(&case), &config).expect("plan list");

    // The worker stalls its first tile for 30 s; the coordinator-side
    // cancel must cut the shard short long before that budget elapses.
    let faults = FaultPlan::parse("delay@0:1=30000").expect("fault plan");
    let (addr, handle) = spawn_worker(faults);
    let coordinator = Coordinator::new(ClusterConfig {
        workers: vec![addr.clone()],
        heartbeat: Duration::from_millis(50),
        cancel_grace: Duration::from_secs(3),
        ..ClusterConfig::default()
    })
    .expect("coordinator");

    let cancel = config.cancel.clone();
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        cancel.cancel();
    });
    let started = std::time::Instant::now();
    let outputs = coordinator
        .run_job(1, &query, &[], &plan, &config.cancel, &config.progress)
        .expect("cancelled run still merges");
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "cancellation must cut the 30 s stall short"
    );
    assert_eq!(outputs.len(), plan.len(), "every planned job gets a record");
    assert!(
        outputs.iter().any(|o| o.record.status == JobStatus::Cancelled),
        "cancellation must reach the worker's tiles"
    );
    shutdown(&addr);
    handle.join().expect("worker thread");
}

/// A fault plan applying `kind` (with optional `=V` argument) to every job
/// id in the plan, e.g. `conn_refuse@0,conn_refuse@1,...`.
fn fault_for_all(kind: &str, ids: usize, arg: &str) -> FaultPlan {
    let spec = (0..ids).map(|j| format!("{kind}@{j}{arg}")).collect::<Vec<_>>().join(",");
    FaultPlan::parse(&spec).expect("fault plan")
}

#[test]
fn quarantine_stops_dispatches_while_heartbeats_still_pass() {
    let params = tiny_params();
    let (case, config) = params.plan().expect("plan");
    let query = params.to_query();
    let cache = SimulatorCache::new();
    let reference = run_batch(std::slice::from_ref(&case), &config, &cache).expect("local batch");
    let reference_pgm = pgm_bytes(&reference.cases[0].mask, 0.0, 1.0);
    let plan = planned_job_list(std::slice::from_ref(&case), &config).expect("plan list");

    // Replica A refuses every shard dispatch at the transport layer but
    // keeps answering /healthz: the flaky-but-alive regime heartbeats
    // cannot catch. B is healthy.
    let (flaky, flaky_handle) = spawn_worker(fault_for_all("conn_refuse", plan.len(), ""));
    let (clean, clean_handle) = spawn_worker(FaultPlan::none());
    let coordinator = Coordinator::new(ClusterConfig {
        workers: vec![flaky.clone(), clean.clone()],
        heartbeat: Duration::from_millis(50),
        heartbeat_failures: 1000, // never declare death: quarantine must act alone
        breaker: BreakerConfig {
            threshold: 1,
            base: Duration::from_secs(60),
            cap: Duration::from_secs(60),
            ..BreakerConfig::default()
        },
        ..ClusterConfig::default()
    })
    .expect("coordinator");

    let outputs = coordinator
        .run_job(1, &query, &[], &plan, &config.cancel, &config.progress)
        .expect("clustered run despite a quarantined replica");
    let outcome = assemble_batch(std::slice::from_ref(&case), &config, outputs, &cache, 0.0)
        .expect("assemble");
    assert_eq!(outcome.cases[0].failed_tiles, 0);
    assert_eq!(
        pgm_bytes(&outcome.cases[0].mask, 0.0, 1.0),
        reference_pgm,
        "quarantine re-routing must not change the mask"
    );

    let views = coordinator.member_views();
    let flaky_view = views.iter().find(|v| v.addr == flaky).expect("flaky member");
    let clean_view = views.iter().find(|v| v.addr == clean).expect("clean member");
    assert_eq!(flaky_view.breaker, "open", "one refusal must open the breaker");
    assert_eq!(flaky_view.completed, 0, "no shard ever completes on the flaky replica");
    assert!(
        flaky_view.dispatches >= 1 && flaky_view.dispatches <= 2,
        "breaker must stop dispatches after the initial concurrent window, got {}",
        flaky_view.dispatches
    );
    assert!(clean_view.completed >= 4, "every shard lands on the healthy replica");
    assert!(coordinator.stats().shards_redispatched.get() >= 1);
    let mut metrics = String::new();
    coordinator.render_metrics(&mut metrics);
    assert!(
        metrics.contains(&format!("ilt_worker_breaker_state{{worker=\"{flaky}\"}} 2")),
        "{metrics}"
    );
    // The quarantined replica still passes heartbeats: alive, just unused.
    assert!(flaky_view.alive, "quarantine is not death");

    shutdown(&flaky);
    shutdown(&clean);
    flaky_handle.join().expect("worker thread");
    clean_handle.join().expect("worker thread");
}

#[test]
fn open_breaker_re_earns_trust_through_half_open_probes() {
    let params = tiny_params();
    let (case, config) = params.plan().expect("plan");
    let query = params.to_query();
    let cache = SimulatorCache::new();
    let reference = run_batch(std::slice::from_ref(&case), &config, &cache).expect("local batch");
    let reference_pgm = pgm_bytes(&reference.cases[0].mask, 0.0, 1.0);
    let plan = planned_job_list(std::slice::from_ref(&case), &config).expect("plan list");

    // The only replica refuses the FIRST dispatch of every shard (the
    // worker-side per-shard attempt counter), then behaves. The job can
    // only finish if the open breaker admits half-open probes and the
    // succeeding probes close it again.
    let (addr, handle) = spawn_worker(fault_for_all("conn_refuse", plan.len(), ":1"));
    let coordinator = Coordinator::new(ClusterConfig {
        workers: vec![addr.clone()],
        heartbeat: Duration::from_millis(50),
        heartbeat_failures: 1000,
        breaker: BreakerConfig {
            threshold: 1,
            base: Duration::from_millis(40),
            cap: Duration::from_millis(40),
            ..BreakerConfig::default()
        },
        ..ClusterConfig::default()
    })
    .expect("coordinator");

    let outputs = coordinator
        .run_job(1, &query, &[], &plan, &config.cancel, &config.progress)
        .expect("half-open probes must let the job finish");
    let outcome = assemble_batch(std::slice::from_ref(&case), &config, outputs, &cache, 0.0)
        .expect("assemble");
    assert_eq!(outcome.cases[0].failed_tiles, 0);
    assert_eq!(pgm_bytes(&outcome.cases[0].mask, 0.0, 1.0), reference_pgm);
    let view = &coordinator.member_views()[0];
    assert_eq!(view.breaker, "closed", "successful probes re-earn a closed breaker");
    assert!(view.completed >= 4, "every shard eventually completes here");
    assert!(
        coordinator.stats().shards_redispatched.get() >= plan.len().min(4) as u64,
        "each shard's refused first attempt forces a re-dispatch"
    );

    shutdown(&addr);
    handle.join().expect("worker thread");
}

#[test]
fn late_joining_worker_picks_up_queued_shards_mid_job() {
    let params = tiny_params();
    let (case, config) = params.plan().expect("plan");
    let query = params.to_query();
    let cache = SimulatorCache::new();
    let reference = run_batch(std::slice::from_ref(&case), &config, &cache).expect("local batch");
    let reference_pgm = pgm_bytes(&reference.cases[0].mask, 0.0, 1.0);
    let plan = planned_job_list(std::slice::from_ref(&case), &config).expect("plan list");

    // One worker, serialized (max_inflight 1): the 4-way shard split
    // leaves shards queued, which is what the late joiner picks up.
    let (first, first_handle) = spawn_worker(FaultPlan::none());
    let coordinator = std::sync::Arc::new(
        Coordinator::new(ClusterConfig {
            workers: vec![first.clone()],
            heartbeat: Duration::from_millis(50),
            max_inflight_per_worker: 1,
            ..ClusterConfig::default()
        })
        .expect("coordinator"),
    );

    let runner = {
        let coordinator = std::sync::Arc::clone(&coordinator);
        let query = query.clone();
        let plan = plan.clone();
        let cancel = config.cancel.clone();
        let progress = config.progress.clone();
        std::thread::spawn(move || coordinator.run_job(1, &query, &[], &plan, &cancel, &progress))
    };
    // Wait until at least one shard finished (so the job is provably mid
    // flight), then register the second replica.
    let started = std::time::Instant::now();
    while coordinator.stats().shard_ms.count() < 1 {
        assert!(started.elapsed() < Duration::from_secs(60), "first shard never finished");
        std::thread::sleep(Duration::from_millis(2));
    }
    let (late, late_handle) = spawn_worker(FaultPlan::none());
    assert!(coordinator.join(&late), "join is accepted mid-job");

    let outputs = runner.join().expect("runner").expect("clustered run");
    let outcome = assemble_batch(std::slice::from_ref(&case), &config, outputs, &cache, 0.0)
        .expect("assemble");
    assert_eq!(outcome.cases[0].failed_tiles, 0);
    assert_eq!(
        pgm_bytes(&outcome.cases[0].mask, 0.0, 1.0),
        reference_pgm,
        "a mid-job join must not change the mask"
    );
    let views = coordinator.member_views();
    let late_view = views.iter().find(|v| v.addr == late).expect("late member");
    assert!(
        late_view.completed >= 1,
        "the late joiner must execute at least one queued shard"
    );
    assert_eq!(coordinator.stats().members_joined.get(), 2);

    shutdown(&first);
    shutdown(&late);
    first_handle.join().expect("worker thread");
    late_handle.join().expect("worker thread");
}

#[test]
fn lost_shard_records_carry_the_full_attempt_history() {
    let params = tiny_params();
    let (case, config) = params.plan().expect("plan");
    let query = params.to_query();
    let plan = planned_job_list(std::slice::from_ref(&case), &config).expect("plan list");

    // Every dispatch is refused and the breaker never opens (threshold
    // 1000), so each shard burns its full attempt budget on the same
    // replica and the synthesized failure must tell that story.
    let (addr, handle) = spawn_worker(fault_for_all("conn_refuse", plan.len(), ""));
    let coordinator = Coordinator::new(ClusterConfig {
        workers: vec![addr.clone()],
        heartbeat: Duration::from_millis(50),
        heartbeat_failures: 1000,
        max_shard_attempts: 2,
        breaker: BreakerConfig { threshold: 1000, ..BreakerConfig::default() },
        ..ClusterConfig::default()
    })
    .expect("coordinator");

    let outputs = coordinator
        .run_job(1, &query, &[], &plan, &config.cancel, &config.progress)
        .expect("lost shards synthesize records, not errors");
    assert_eq!(outputs.len(), plan.len());
    for output in &outputs {
        let JobStatus::Failed(reason) = &output.record.status else {
            panic!("expected every record failed, got {:?}", output.record.status);
        };
        assert!(reason.contains("shard lost"), "{reason}");
        assert!(reason.contains("gave up after 2 dispatch attempts"), "{reason}");
        assert!(reason.contains(&format!("attempt 1 on {addr}")), "{reason}");
        assert!(reason.contains(&format!("attempt 2 on {addr}")), "{reason}");
        assert!(reason.contains("ms)"), "per-attempt elapsed time: {reason}");
    }

    shutdown(&addr);
    handle.join().expect("worker thread");
}
