//! Loopback cluster integration: shard-boundary determinism, dead-worker
//! re-dispatch, and cancellation fan-out — all in-process (real sockets,
//! no child processes; process-crash chaos lives in the root `cluster_e2e`
//! test, which can afford to lose a worker process).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::time::Duration;

use ilt_cluster::{
    ClusterConfig, Coordinator, ExecPolicy, JobParams, Worker, WorkerConfig,
};
use ilt_field::pgm_bytes;
use ilt_runtime::{
    assemble_batch, planned_job_list, run_batch, FaultPlan, JobStatus, SimulatorCache,
};

/// Binds one worker replica on an ephemeral loopback port and serves it
/// from a background thread until `shutdown` is called on its address.
fn spawn_worker(faults: FaultPlan) -> (String, std::thread::JoinHandle<()>) {
    let worker = Worker::bind(WorkerConfig {
        addr: "127.0.0.1:0".into(),
        faults,
        ..WorkerConfig::default()
    })
    .expect("bind worker");
    let addr = worker.local_addr().expect("worker addr").to_string();
    let handle = std::thread::spawn(move || worker.run());
    (addr, handle)
}

fn shutdown(addr: &str) {
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let _ = stream.write_all(
            format!(
                "POST /v1/shutdown HTTP/1.1\r\nhost: {addr}\r\ncontent-length: 0\r\nconnection: close\r\n\r\n"
            )
            .as_bytes(),
        );
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    }
}

/// A small multi-tile job: 128 px via clip split into 64 px tiles with an
/// 8 px halo, 2 iterations — enough tiles to shard three ways, small
/// enough to run in seconds.
fn tiny_params() -> JobParams {
    JobParams::from_saved(
        "via=7&grid=128&kernels=3&tile=64&halo=8&iters=2&threads=1&eval=0",
        Vec::new(),
        &ExecPolicy::default(),
    )
    .expect("valid params")
}

#[test]
fn sharded_masks_are_byte_identical_across_worker_counts() {
    let params = tiny_params();
    let (case, config) = params.plan().expect("plan");
    let query = params.to_query();

    // Reference: the single-process batch engine.
    let cache = SimulatorCache::new();
    let reference = run_batch(std::slice::from_ref(&case), &config, &cache)
        .expect("local batch");
    let reference_pgm = pgm_bytes(&reference.cases[0].mask, 0.0, 1.0);

    let plan = planned_job_list(std::slice::from_ref(&case), &config).expect("plan list");
    assert!(plan.len() >= 3, "need enough tiles to shard: got {}", plan.len());

    for replicas in [1usize, 2, 3] {
        let workers: Vec<_> =
            (0..replicas).map(|_| spawn_worker(FaultPlan::none())).collect();
        let coordinator = Coordinator::new(ClusterConfig {
            workers: workers.iter().map(|(addr, _)| addr.clone()).collect(),
            ..ClusterConfig::default()
        })
        .expect("coordinator");
        let outputs = coordinator
            .run_job(1, &query, &[], &plan, &config.cancel, &config.progress)
            .expect("clustered run");
        let outcome = assemble_batch(
            std::slice::from_ref(&case),
            &config,
            outputs,
            &cache,
            0.0,
        )
        .expect("assemble");
        assert_eq!(outcome.cases[0].failed_tiles, 0, "{replicas} replica(s)");
        assert_eq!(
            pgm_bytes(&outcome.cases[0].mask, 0.0, 1.0),
            reference_pgm,
            "{replicas}-replica mask must be byte-identical to ilt batch"
        );
        for (addr, handle) in workers {
            shutdown(&addr);
            handle.join().expect("worker thread");
        }
    }
}

#[test]
fn dead_worker_shards_are_redispatched_to_survivors() {
    let params = tiny_params();
    let (case, config) = params.plan().expect("plan");
    let query = params.to_query();
    let cache = SimulatorCache::new();
    let reference = run_batch(std::slice::from_ref(&case), &config, &cache)
        .expect("local batch");
    let reference_pgm = pgm_bytes(&reference.cases[0].mask, 0.0, 1.0);
    let plan = planned_job_list(std::slice::from_ref(&case), &config).expect("plan list");

    // A port that was bound and released: connecting gets refused, which is
    // exactly what a crashed worker looks like to the coordinator.
    let dead_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("probe port");
        listener.local_addr().expect("addr").to_string()
    };
    let (live_addr, handle) = spawn_worker(FaultPlan::none());

    let coordinator = Coordinator::new(ClusterConfig {
        workers: vec![dead_addr, live_addr.clone()],
        heartbeat: Duration::from_millis(50),
        heartbeat_failures: 1,
        ..ClusterConfig::default()
    })
    .expect("coordinator");
    let outputs = coordinator
        .run_job(1, &query, &[], &plan, &config.cancel, &config.progress)
        .expect("clustered run despite a dead replica");
    let outcome =
        assemble_batch(std::slice::from_ref(&case), &config, outputs, &cache, 0.0)
            .expect("assemble");
    assert_eq!(outcome.cases[0].failed_tiles, 0);
    assert_eq!(
        pgm_bytes(&outcome.cases[0].mask, 0.0, 1.0),
        reference_pgm,
        "re-dispatched shards must not change the mask"
    );
    assert!(
        coordinator.stats().shards_redispatched.get() >= 1,
        "the dead replica's shard must be re-dispatched"
    );
    assert_eq!(
        coordinator.stats().workers_alive.load(Ordering::Relaxed),
        1,
        "the heartbeat monitor must see exactly one live replica"
    );
    shutdown(&live_addr);
    handle.join().expect("worker thread");
}

#[test]
fn cancellation_fans_out_to_workers() {
    let params = tiny_params();
    let (case, config) = params.plan().expect("plan");
    let query = params.to_query();
    let plan = planned_job_list(std::slice::from_ref(&case), &config).expect("plan list");

    // The worker stalls its first tile for 30 s; the coordinator-side
    // cancel must cut the shard short long before that budget elapses.
    let faults = FaultPlan::parse("delay@0:1=30000").expect("fault plan");
    let (addr, handle) = spawn_worker(faults);
    let coordinator = Coordinator::new(ClusterConfig {
        workers: vec![addr.clone()],
        heartbeat: Duration::from_millis(50),
        cancel_grace: Duration::from_secs(3),
        ..ClusterConfig::default()
    })
    .expect("coordinator");

    let cancel = config.cancel.clone();
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        cancel.cancel();
    });
    let started = std::time::Instant::now();
    let outputs = coordinator
        .run_job(1, &query, &[], &plan, &config.cancel, &config.progress)
        .expect("cancelled run still merges");
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "cancellation must cut the 30 s stall short"
    );
    assert_eq!(outputs.len(), plan.len(), "every planned job gets a record");
    assert!(
        outputs.iter().any(|o| o.record.status == JobStatus::Cancelled),
        "cancellation must reach the worker's tiles"
    );
    shutdown(&addr);
    handle.join().expect("worker thread");
}
