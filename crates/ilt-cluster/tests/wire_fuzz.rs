//! Seeded fuzz for the shard-response wire parsers: torn lines, truncated
//! base64, and byte garbage must come back as typed `Err` values — never a
//! panic, and never a silently-accepted corrupt mask. These are exactly
//! the inputs the `torn_response`/`garble` transport faults manufacture,
//! so the parser is the last line of defense behind the chaos tests.

use ilt_cluster::wire::{parse_shard_header, parse_shard_job, shard_header_line, shard_job_line, ShardHeader};
use ilt_field::Field2D;
use ilt_layouts::Xorshift64Star;
use ilt_runtime::{field_hash, JobMetrics, JobOutput, JobRecord, JobStatus, StageTimes};

fn masked_output(job_id: usize) -> JobOutput {
    let mask = Field2D::from_fn(24, 24, |r, c| if (r * 31 + c * 7 + job_id) % 3 == 0 { 1.0 } else { 0.0 });
    JobOutput {
        record: JobRecord {
            job_id,
            case: "fuzz".into(),
            tile: Some((job_id % 3, job_id / 3)),
            grid: 24,
            attempts: 1,
            status: JobStatus::Done,
            metrics: Some(JobMetrics {
                l2_nm2: 12.5,
                pvband_nm2: 3.25,
                epe_violations: 1,
                shots: 9,
                iterations: 17,
                mask_hash: field_hash(&mask),
            }),
            times: StageTimes { sim_ms: 1.0, optimize_ms: 2.0, evaluate_ms: 0.5 },
            wall_ms: 3.5,
        },
        mask: Some(mask),
    }
}

fn header_line() -> String {
    shard_header_line(&ShardHeader {
        shard: "9-2".into(),
        jobs: 4,
        fingerprint: 0x0123_4567_89ab_cdef,
        restored: 2,
    })
}

/// Every truncation of a valid line — the `torn_response` shape — parses
/// to a typed error, or (when the tear only shaves trailing syntax and
/// every field survives intact) to exactly the original value. Never a
/// panic, never fabricated data.
#[test]
fn torn_lines_never_panic_and_never_fabricate() {
    let original = masked_output(5);
    let job = shard_job_line(&original);
    for cut in 0..job.len() {
        match parse_shard_job(&job[..cut]) {
            Err(e) => assert!(!e.is_empty(), "typed error for cut at {cut}"),
            Ok(got) => {
                assert_eq!(got.record, original.record, "cut at {cut} fabricated a record");
                assert_eq!(
                    field_hash(got.mask.as_ref().expect("mask")),
                    original.record.metrics.as_ref().unwrap().mask_hash,
                    "cut at {cut} fabricated a mask"
                );
            }
        }
    }
    assert!(parse_shard_job(&job).is_ok(), "the untouched line still parses");

    let original_header = ShardHeader {
        shard: "9-2".into(),
        jobs: 4,
        fingerprint: 0x0123_4567_89ab_cdef,
        restored: 2,
    };
    let header = header_line();
    for cut in 0..header.len() {
        match parse_shard_header(&header[..cut]) {
            Err(e) => assert!(!e.is_empty(), "typed error for cut at {cut}"),
            Ok(got) => {
                assert_eq!(got, original_header, "cut at {cut} fabricated a header")
            }
        }
    }
    assert!(parse_shard_header(&header).is_ok());
}

/// Seeded single-byte corruption across the whole line — the `garble`
/// shape. Corrupting the mask payload or its hash must be caught; nothing
/// may panic; and any mutation the parser does accept must decode to a
/// mask matching its own record's hash (the parser re-verifies, so a
/// successful parse is self-consistent by construction).
#[test]
fn garbled_bytes_are_rejected_or_self_consistent() {
    let job = shard_job_line(&masked_output(2));
    let mut rng = Xorshift64Star::new(0x5eed_f00d);
    let mut rejected = 0u32;
    for _ in 0..4000 {
        let mut bytes = job.clone().into_bytes();
        let at = (rng.next_u64() as usize) % bytes.len();
        let flip = (rng.next_u64() % 255) as u8 + 1;
        bytes[at] ^= flip;
        let Ok(line) = String::from_utf8(bytes) else { continue };
        match parse_shard_job(&line) {
            Err(_) => rejected += 1,
            Ok(output) => {
                // A mutation that survives (e.g. inside a float digit or
                // the case label) must still be internally consistent:
                // decoded mask matches the record's own hash.
                if let (Some(mask), Some(metrics)) = (&output.mask, &output.record.metrics) {
                    assert_eq!(
                        field_hash(mask),
                        metrics.mask_hash,
                        "an accepted line must never carry a mismatched mask"
                    );
                }
            }
        }
    }
    assert!(rejected > 1000, "most single-byte garbles must be rejected, got {rejected}");
}

/// Truncating or padding the base64 mask payload specifically — the
/// subtlest torn shape, since the JSON around it stays intact.
#[test]
fn truncated_base64_masks_are_typed_errors() {
    let job = shard_job_line(&masked_output(7));
    let mask_start = job.find("\"mask\":\"").expect("mask field") + "\"mask\":\"".len();
    let mask_end = job[mask_start..].find('"').expect("close quote") + mask_start;
    for keep in [0, 1, 7, (mask_end - mask_start) / 2, mask_end - mask_start - 1] {
        let mut cut = String::new();
        cut.push_str(&job[..mask_start + keep]);
        cut.push_str(&job[mask_end..]);
        let err = parse_shard_job(&cut).expect_err("truncated base64 must not parse");
        assert!(
            err.contains("base64") || err.contains("PGM") || err.contains("hash"),
            "typed error, got: {err}"
        );
    }
}

/// Pure seeded garbage — random bytes, random lengths — fed to both
/// parsers: always a typed error, never a panic.
#[test]
fn random_garbage_is_always_a_typed_error() {
    let mut rng = Xorshift64Star::new(0xdead_cafe);
    for _ in 0..2000 {
        let len = (rng.next_u64() % 300) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() % 256) as u8).collect();
        let line = String::from_utf8_lossy(&bytes).into_owned();
        assert!(parse_shard_header(&line).is_err());
        assert!(parse_shard_job(&line).is_err());
    }
    // JSON-shaped but wrong: also typed errors.
    assert!(parse_shard_job("{\"kind\":\"shard_header\"}").is_err());
    assert!(parse_shard_header("{}").is_err());
    assert!(parse_shard_job("{}").is_err());
}
