//! The coordinator half of sharded execution: splits one job's planned
//! tile set across worker replicas, supervises the shards, and merges the
//! per-tile outputs for central stitching.
//!
//! PR 6 dispatched `tile_id % N` over a fixed worker list; this version is
//! self-healing under partial, asymmetric, and transient failure:
//!
//! - **Dynamic membership**: workers join, drain, and leave a running
//!   coordinator ([`Coordinator::join`] etc., wired to `POST /v1/members`).
//!   Shards are split finer than the worker count and supervisors draw
//!   workers from the *live* set ([`Membership::acquire`]), so a replica
//!   that joins mid-job picks up queued shards immediately.
//! - **Death detection**: a monitor thread probes every member's
//!   `GET /healthz` on a fixed interval; after a configured number of
//!   consecutive failures the worker is marked dead (and revived on the
//!   next successful probe).
//! - **Quarantine**: each member carries a circuit [`Breaker`]
//!   (closed → open → half-open, decorrelated-jitter backoff). Consecutive
//!   *shard* failures open it and only a successful shard closes it — a
//!   flaky-but-alive worker whose heartbeats pass stops receiving
//!   dispatches without being declared dead.
//! - **Straggler speculation**: the coordinator tracks a running median of
//!   shard latency per job; a shard exceeding `speculate_factor × median`
//!   is speculatively re-executed on a second worker. First result wins;
//!   when the loser still delivers, the two results must agree (config
//!   fingerprint and per-job mask hashes) — disagreement poisons the whole
//!   job rather than emitting a possibly-wrong mask.
//! - **Re-dispatch**: a shard whose worker dies or flakes mid-exchange is
//!   re-sent — same shard id, same job ids — to the next admitted worker.
//!   The shard id keys the worker-side checkpoint WAL directory, so a
//!   replica that already holds partial results restores them instead of
//!   recomputing.
//! - **Cancel fan-out**: when the job's [`CancelToken`] fires, each
//!   in-flight shard gets a `DELETE /v1/shards/<sid>`; the coordinator
//!   then *keeps waiting* (bounded by the cancel grace period) for the
//!   worker's cancelled-at-tile-boundary records.
//! - **Lost shards**: a shard that exhausts its attempt budget (or finds
//!   no live worker) synthesizes terminal `failed` records carrying the
//!   full per-attempt history — worker, error, elapsed — so the journal
//!   explains *how* the shard died, not just that it did.
//!
//! Determinism: per-tile masks are bit-exact regardless of which replica
//! computed them (hash-verified in [`crate::wire`]), outputs are merged in
//! job-id order, and stitching/evaluation happen centrally — so any worker
//! count, split, join/leave schedule, or crash/re-dispatch history yields
//! byte-identical masks to a single-process `ilt batch` run.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use ilt_runtime::{
    CancelToken, JobOutput, JobRecord, JobStatus, PlannedJob, Progress, StageTimes,
};

use crate::breaker::BreakerConfig;
use crate::membership::{Acquire, MemberView, Membership, Settle, WorkerSlot};
use crate::stats::ClusterStats;
use crate::wire::{encode_job_ids, parse_shard_header, parse_shard_job};

/// Cluster topology and supervision tuning.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Initial worker replica addresses (`host:port`); may be empty when
    /// workers will register themselves via `POST /v1/members`.
    pub workers: Vec<String>,
    /// Heartbeat probe interval; also the liveness-poll granularity while
    /// waiting on an in-flight shard.
    pub heartbeat: Duration,
    /// Consecutive failed probes before a worker is declared dead.
    pub heartbeat_failures: u32,
    /// Per-connection connect timeout.
    pub connect_timeout: Duration,
    /// After cancel fan-out (or a speculation loss), how long to keep
    /// waiting for a worker's records before giving up on the exchange.
    pub cancel_grace: Duration,
    /// Maximum shards dispatched to one worker concurrently.
    pub max_inflight_per_worker: u32,
    /// Dispatch attempts per shard before it is declared lost
    /// (0 = automatic: `max(4, 2 × members)`).
    pub max_shard_attempts: u32,
    /// Circuit-breaker tuning shared by every member.
    pub breaker: BreakerConfig,
    /// Speculate a shard once it runs longer than this multiple of the
    /// job's median shard latency (0.0 disables speculation).
    pub speculate_factor: f64,
    /// Completed-shard samples required before the median is trusted.
    pub speculate_min_samples: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            workers: Vec::new(),
            heartbeat: Duration::from_millis(500),
            heartbeat_failures: 3,
            connect_timeout: Duration::from_secs(2),
            cancel_grace: Duration::from_secs(10),
            max_inflight_per_worker: 2,
            max_shard_attempts: 0,
            breaker: BreakerConfig::default(),
            speculate_factor: 3.0,
            speculate_min_samples: 3,
        }
    }
}

/// Supervises a dynamic set of worker replicas and executes jobs across
/// them. Owned by the serving process; dropped (stopping the heartbeat
/// monitor) on shutdown.
pub struct Coordinator {
    config: ClusterConfig,
    members: Arc<Membership>,
    stats: Arc<ClusterStats>,
    stop: Arc<AtomicBool>,
}

impl Coordinator {
    /// Builds the coordinator and starts its heartbeat monitor thread.
    /// The initial worker list may be empty — members can join later —
    /// but jobs fail until at least one worker is registered.
    ///
    /// # Errors
    ///
    /// Currently infallible; kept fallible for config validation growth.
    pub fn new(config: ClusterConfig) -> Result<Coordinator, String> {
        let members = Arc::new(Membership::new(&config.workers, config.breaker));
        let stats = Arc::new(ClusterStats::default());
        stats.members_joined.add(members.len() as u64);
        stats.workers_alive.store(members.len() as u64, Ordering::Relaxed);
        let stop = Arc::new(AtomicBool::new(false));
        {
            let members = Arc::clone(&members);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let config = config.clone();
            std::thread::spawn(move || monitor_loop(&config, &members, &stats, &stop));
        }
        Ok(Coordinator { config, members, stats, stop })
    }

    /// The live cluster metrics, for `/metrics` rendering.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Number of currently registered worker replicas.
    pub fn workers_configured(&self) -> usize {
        self.members.len()
    }

    /// Registers a worker address. Returns `false` when it is already a
    /// member.
    pub fn join(&self, addr: &str) -> bool {
        let joined = self.members.join(addr);
        if joined {
            self.stats.members_joined.inc();
            self.publish_alive();
        }
        joined
    }

    /// Marks a worker as draining: in-flight shards finish, no new
    /// dispatches. Returns `false` for unknown addresses.
    pub fn drain(&self, addr: &str) -> bool {
        self.members.drain(addr)
    }

    /// Removes a worker from the membership. Returns `false` for unknown
    /// addresses.
    pub fn leave(&self, addr: &str) -> bool {
        let left = self.members.leave(addr);
        if left {
            self.stats.members_left.inc();
            self.publish_alive();
        }
        left
    }

    /// Point-in-time views of every member (the `GET /v1/members` rows and
    /// the breaker-state metric source).
    pub fn member_views(&self) -> Vec<MemberView> {
        self.members.snapshot().iter().map(|s| MemberView::of(s)).collect()
    }

    /// Appends the full cluster exposition — counters, histograms, and the
    /// per-worker `ilt_worker_breaker_state` gauge — to `out`.
    pub fn render_metrics(&self, out: &mut String) {
        self.stats.render(self.members.len(), out);
        out.push_str(
            "# HELP ilt_worker_breaker_state Circuit-breaker state per worker (0 closed, 1 half-open, 2 open).\n# TYPE ilt_worker_breaker_state gauge\n",
        );
        for view in self.member_views() {
            out.push_str(&format!(
                "ilt_worker_breaker_state{{worker=\"{}\"}} {}\n",
                view.addr, view.breaker_gauge
            ));
        }
    }

    /// Executes one job's full tile plan across the cluster and returns
    /// the merged per-tile outputs in job-id order, ready for
    /// [`ilt_runtime::assemble_batch`].
    ///
    /// `query` is the job's persisted parameter query (fault injection
    /// stripped — faults stay local to workers); `body` carries the target
    /// PGM for inline sources. `progress` ticks once per executed
    /// (non-synthesized, non-cancelled) tile as shards complete.
    ///
    /// # Errors
    ///
    /// Returns a message when the plan is empty, no worker is registered,
    /// replicas disagree on the configuration fingerprint, or a
    /// speculation race surfaces disagreeing results (version/parameter
    /// skew — never emit a possibly-wrong mask); lost shards are NOT
    /// errors — they synthesize failed or cancelled records.
    pub fn run_job(
        &self,
        job_id: usize,
        query: &str,
        body: &[u8],
        plan: &[PlannedJob],
        cancel: &CancelToken,
        progress: &Progress,
    ) -> Result<Vec<JobOutput>, String> {
        if plan.is_empty() {
            return Err("job plans no tiles".into());
        }
        let members = self.members.snapshot();
        if members.is_empty() {
            return Err(
                "cluster has no registered workers; start one with `ilt worker --register` \
                 or add it via POST /v1/members"
                    .into(),
            );
        }
        // Split finer than the member count so late joiners find queued
        // shards and stragglers stall less of the plan.
        let shard_count = plan.len().min((members.len() * 2).max(4));
        let mut assignments: Vec<Vec<&PlannedJob>> = vec![Vec::new(); shard_count];
        for job in plan {
            assignments[job.id % shard_count].push(job);
        }
        let latencies = Mutex::new(Vec::new());
        let poison: Mutex<Option<String>> = Mutex::new(None);

        let results: Vec<(usize, ShardResult)> = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .iter()
                .enumerate()
                .filter(|(_, jobs)| !jobs.is_empty())
                .map(|(shard_idx, jobs)| {
                    // The shard's "home" replica under the static layout;
                    // landing anywhere else counts as a re-dispatch.
                    let preferred = members[shard_idx % members.len()].addr.clone();
                    let latencies = &latencies;
                    let poison = &poison;
                    scope.spawn(move || {
                        let sid = format!("{job_id}-{shard_idx}");
                        let result = self.run_shard_supervised(
                            &sid, &preferred, query, body, jobs, cancel, latencies, poison,
                        );
                        (shard_idx, result)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard supervisor panicked")).collect()
        });

        if let Some(reason) = poison.into_inner().unwrap() {
            return Err(reason);
        }

        let mut outputs: Vec<JobOutput> = Vec::with_capacity(plan.len());
        let mut fingerprint: Option<u64> = None;
        for (shard_idx, result) in results {
            match result {
                ShardResult::Done { outputs: shard_outputs, fingerprint: fp } => {
                    match fingerprint {
                        None => fingerprint = Some(fp),
                        Some(seen) if seen != fp => {
                            return Err(format!(
                                "workers disagree on configuration fingerprint \
                                 ({seen:016x} vs {fp:016x}) — replica version or parameter skew"
                            ));
                        }
                        Some(_) => {}
                    }
                    for output in shard_outputs {
                        if output.record.status != JobStatus::Cancelled {
                            progress.tick();
                        }
                        outputs.push(output);
                    }
                }
                ShardResult::Lost(reason) => {
                    // The shard can no longer be computed anywhere; finish
                    // the job with terminal records instead of hanging.
                    let status = if cancel.is_cancelled() {
                        JobStatus::Cancelled
                    } else {
                        JobStatus::Failed(format!("shard lost: {reason}"))
                    };
                    for job in &assignments[shard_idx] {
                        outputs.push(synthesize(job, status.clone()));
                    }
                }
            }
        }
        outputs.sort_by_key(|o| o.record.job_id);
        Ok(outputs)
    }

    /// Runs one shard to completion: acquire a worker from the live
    /// membership, dispatch (racing a speculative copy when the shard
    /// straggles), settle breakers, and re-dispatch on retryable failure
    /// until the attempt budget runs out.
    #[allow(clippy::too_many_arguments)]
    fn run_shard_supervised(
        &self,
        sid: &str,
        preferred: &str,
        query: &str,
        body: &[u8],
        jobs: &[&PlannedJob],
        cancel: &CancelToken,
        latencies: &Mutex<Vec<f64>>,
        poison: &Mutex<Option<String>>,
    ) -> ShardResult {
        let ids: Vec<usize> = jobs.iter().map(|j| j.id).collect();
        let path = format!(
            "/v1/shards?shard={sid}&jobs={}{}{query}",
            encode_job_ids(&ids),
            if query.is_empty() { "" } else { "&" }
        );
        let budget = if self.config.max_shard_attempts > 0 {
            self.config.max_shard_attempts
        } else {
            (self.members.len().max(1) as u32 * 2).max(4)
        };
        // Per-attempt history: worker, error, elapsed. Carried into the
        // synthesized failure so the journal explains the shard's death.
        let mut attempts: Vec<String> = Vec::new();
        loop {
            if poison.lock().unwrap().is_some() {
                return ShardResult::Lost("job poisoned by speculation disagreement".into());
            }
            if cancel.is_cancelled() && attempts.is_empty() {
                // Never *start* work for a cancelled job; in-flight shards
                // are handled inside the exchange below.
                return ShardResult::Lost("cancelled before dispatch".into());
            }
            if attempts.len() as u32 >= budget {
                return ShardResult::Lost(format!(
                    "gave up after {} dispatch attempts: {}",
                    attempts.len(),
                    attempts.join("; ")
                ));
            }
            let slot = match self.members.acquire(self.config.max_inflight_per_worker, cancel) {
                Acquire::Ok(slot) => slot,
                Acquire::Cancelled => {
                    return ShardResult::Lost("cancelled before dispatch".into());
                }
                Acquire::NoWorkers => {
                    return ShardResult::Lost(if attempts.is_empty() {
                        "no live worker".into()
                    } else {
                        format!(
                            "no live worker after {} dispatch attempts: {}",
                            attempts.len(),
                            attempts.join("; ")
                        )
                    });
                }
            };
            // Any dispatch that is not the shard's first attempt on its
            // preferred replica is a re-dispatch — whether the preferred
            // worker died, is quarantined, or was simply saturated.
            if !attempts.is_empty() || slot.addr != preferred {
                self.stats.shards_redispatched.inc();
            }
            let addr = slot.addr.clone();
            let started = Instant::now();
            match self.race_shard(slot, sid, &path, body, &ids, cancel, latencies, poison) {
                Ok((fingerprint, outputs)) => {
                    let ms = started.elapsed().as_secs_f64() * 1e3;
                    self.stats.shard_ms.observe(ms);
                    latencies.lock().unwrap().push(ms);
                    return ShardResult::Done { outputs, fingerprint };
                }
                Err(ShardError::Permanent(reason)) => {
                    // Deterministic rejection (bad parameters, refused
                    // dispatch) or a poisoned race: re-dispatch cannot help.
                    return ShardResult::Lost(reason);
                }
                Err(ShardError::Superseded) => {
                    // Only loser copies inside the race are superseded; a
                    // race that *returns* it would be a logic error — treat
                    // it as retryable rather than crash.
                    attempts.push(format!(
                        "attempt {} on {addr}: superseded ({} ms)",
                        attempts.len() + 1,
                        started.elapsed().as_millis()
                    ));
                }
                Err(ShardError::Retry(reason)) => {
                    attempts.push(format!(
                        "attempt {} on {addr}: {reason} ({} ms)",
                        attempts.len() + 1,
                        started.elapsed().as_millis()
                    ));
                }
            }
        }
    }

    /// One supervised dispatch: run the shard on `primary`, and if it
    /// straggles past `speculate_factor × median`, race a speculative copy
    /// on another worker. First result wins; the loser gets a cancel and a
    /// bounded grace to surface its records, and when it does, the two
    /// results must agree.
    #[allow(clippy::too_many_arguments)]
    fn race_shard(
        &self,
        primary: Arc<WorkerSlot>,
        sid: &str,
        path: &str,
        body: &[u8],
        ids: &[usize],
        cancel: &CancelToken,
        latencies: &Mutex<Vec<f64>>,
        poison: &Mutex<Option<String>>,
    ) -> Result<(u64, Vec<JobOutput>), ShardError> {
        struct CopyDone {
            speculative: bool,
            addr: String,
            result: Result<(u64, Vec<JobOutput>), ShardError>,
        }
        let speculation_on = self.config.speculate_factor > 0.0;
        let primary_abort = AtomicBool::new(false);
        let spec_abort = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel::<CopyDone>();

        std::thread::scope(|scope| {
            {
                let tx = tx.clone();
                let primary = Arc::clone(&primary);
                let primary_abort = &primary_abort;
                scope.spawn(move || {
                    let result =
                        self.exchange_shard(&primary, sid, path, body, ids, cancel, primary_abort);
                    self.settle(&primary, &result);
                    let _ = tx.send(CopyDone {
                        speculative: false,
                        addr: primary.addr.clone(),
                        result,
                    });
                });
            }

            let started = Instant::now();
            let mut outstanding = 1usize;
            let mut spec_slot: Option<Arc<WorkerSlot>> = None;
            let mut winner: Option<(bool, String, u64, Vec<JobOutput>)> = None;
            let mut permanent: Option<String> = None;
            let mut retry_errors: Vec<String> = Vec::new();

            while outstanding > 0 {
                match rx.recv_timeout(Duration::from_millis(20)) {
                    Ok(done) => {
                        outstanding -= 1;
                        match done.result {
                            Ok((fp, outs)) => {
                                if let Some((_, waddr, wfp, wouts)) = &winner {
                                    // The loser still delivered: the race is
                                    // only sound if both copies agree.
                                    if let Some(msg) = disagreement(
                                        sid, waddr, *wfp, wouts, &done.addr, fp, &outs,
                                    ) {
                                        *poison.lock().unwrap() = Some(msg.clone());
                                        permanent = Some(msg);
                                    }
                                } else {
                                    winner = Some((done.speculative, done.addr, fp, outs));
                                    if outstanding > 0 {
                                        // Stand the other copy down: cancel
                                        // its pending compute, but let it
                                        // surface already-finished records
                                        // (bounded by cancel_grace) so the
                                        // agreement check above can run.
                                        if done.speculative {
                                            primary_abort.store(true, Ordering::SeqCst);
                                            self.send_cancel(&primary.addr, sid);
                                        } else if let Some(slot) = &spec_slot {
                                            spec_abort.store(true, Ordering::SeqCst);
                                            self.send_cancel(&slot.addr, sid);
                                        }
                                    }
                                }
                            }
                            // The losing copy was cut short: neither a win
                            // nor evidence against the worker.
                            Err(ShardError::Superseded) => {}
                            Err(ShardError::Permanent(reason)) => {
                                permanent.get_or_insert(reason);
                            }
                            Err(ShardError::Retry(reason)) => {
                                retry_errors.push(format!("{}: {reason}", done.addr));
                                if done.speculative {
                                    // The speculative copy died on a flaky
                                    // worker; the straggler is still out
                                    // there, so re-open the slot and let the
                                    // next tick pick a different replica.
                                    spec_slot = None;
                                }
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if winner.is_none()
                            && spec_slot.is_none()
                            && speculation_on
                            && !cancel.is_cancelled()
                            && self.should_speculate(started, latencies)
                        {
                            if let Some(slot) = self.members.try_acquire(
                                self.config.max_inflight_per_worker,
                                &[primary.addr.as_str()],
                            ) {
                                self.stats.shards_speculated.inc();
                                outstanding += 1;
                                spec_slot = Some(Arc::clone(&slot));
                                let tx = tx.clone();
                                let spec_abort = &spec_abort;
                                scope.spawn(move || {
                                    let result = self.exchange_shard(
                                        &slot, sid, path, body, ids, cancel, spec_abort,
                                    );
                                    self.settle(&slot, &result);
                                    let _ = tx.send(CopyDone {
                                        speculative: true,
                                        addr: slot.addr.clone(),
                                        result,
                                    });
                                });
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }

            match winner {
                Some(_) if permanent.is_some() => Err(ShardError::Permanent(permanent.unwrap())),
                Some((speculative, _, fp, outs)) => {
                    if speculative {
                        self.stats.speculation_wins.inc();
                    }
                    Ok((fp, outs))
                }
                None => match permanent {
                    Some(reason) => Err(ShardError::Permanent(reason)),
                    None => Err(ShardError::Retry(if retry_errors.is_empty() {
                        "shard dispatch failed".into()
                    } else {
                        retry_errors.join("; ")
                    })),
                },
            }
        })
    }

    /// Is the current dispatch a straggler worth speculating on?
    fn should_speculate(&self, started: Instant, latencies: &Mutex<Vec<f64>>) -> bool {
        let samples = latencies.lock().unwrap();
        if samples.len() < self.config.speculate_min_samples.max(1) {
            return false;
        }
        let mut sorted = samples.clone();
        drop(samples);
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2].max(1.0);
        started.elapsed().as_secs_f64() * 1e3 > self.config.speculate_factor * median
    }

    /// Applies one exchange outcome to the worker's ledgers: breaker
    /// verdict, suspicion marking, and the inflight release.
    fn settle(&self, slot: &WorkerSlot, result: &Result<(u64, Vec<JobOutput>), ShardError>) {
        let verdict = match result {
            Ok(_) => Settle::Success,
            // Connection-level flakiness: breaker failure, and declare the
            // worker suspect immediately (the monitor confirms or revives).
            Err(ShardError::Retry(_)) => Settle::Failure,
            // Deterministic rejections and superseded losers say nothing
            // about the worker's health.
            Err(ShardError::Permanent(_)) | Err(ShardError::Superseded) => Settle::Neutral,
        };
        if matches!(result, Err(ShardError::Retry(_))) {
            mark_probe(slot, false, &self.config, &self.stats);
            self.publish_alive();
        }
        self.members.release(slot, verdict);
    }

    /// One dispatch attempt: POST the shard, wait for the streamed result,
    /// polling liveness, the cancel token, and the race-abort flag while
    /// the worker computes.
    #[allow(clippy::too_many_arguments)]
    fn exchange_shard(
        &self,
        slot: &WorkerSlot,
        sid: &str,
        path: &str,
        body: &[u8],
        expected_ids: &[usize],
        cancel: &CancelToken,
        abort: &AtomicBool,
    ) -> Result<(u64, Vec<JobOutput>), ShardError> {
        let mut stream = connect(&slot.addr, self.config.connect_timeout)
            .map_err(ShardError::Retry)?;
        write_request(&mut stream, "POST", path, body).map_err(ShardError::Retry)?;
        // Short read timeouts turn the blocking wait into a poll loop so
        // cancellation, worker death, and a lost speculation race interrupt
        // a long compute promptly — the poll must stay well under the
        // heartbeat interval or a superseded copy sits blind until its
        // stalled read completes.
        let _ = stream.set_read_timeout(Some(
            self.config.heartbeat.min(Duration::from_millis(25)).max(Duration::from_millis(5)),
        ));
        let mut raw = Vec::new();
        let mut cancel_sent = false;
        let mut cancel_deadline: Option<Instant> = None;
        let mut abort_deadline: Option<Instant> = None;
        loop {
            let mut chunk = [0u8; 65536];
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if abort.load(Ordering::SeqCst) && abort_deadline.is_none() {
                        // The race was decided against this copy. The
                        // winner's supervisor already sent the cancel; give
                        // the worker a bounded grace to surface whatever it
                        // finished (feeding the agreement check), then
                        // stand down.
                        abort_deadline = Some(Instant::now() + self.config.cancel_grace);
                    }
                    if let Some(deadline) = abort_deadline {
                        if Instant::now() >= deadline {
                            return Err(ShardError::Superseded);
                        }
                    }
                    if cancel.is_cancelled() && !cancel_sent {
                        // Fan the cancellation out to the worker, then keep
                        // waiting (bounded) for its cancelled records: the
                        // job must not turn terminal while a replica still
                        // computes on its behalf.
                        self.send_cancel(&slot.addr, sid);
                        cancel_sent = true;
                        cancel_deadline = Some(Instant::now() + self.config.cancel_grace);
                    }
                    if let Some(deadline) = cancel_deadline {
                        if Instant::now() >= deadline {
                            return Err(ShardError::Permanent(
                                "worker did not acknowledge cancellation in time".into(),
                            ));
                        }
                    }
                    if !slot.is_alive() {
                        return Err(ShardError::Retry(format!(
                            "worker {} died mid-shard (heartbeat)",
                            slot.addr
                        )));
                    }
                }
                Err(e) => {
                    return Err(ShardError::Retry(format!(
                        "worker {} connection failed mid-shard: {e}",
                        slot.addr
                    )))
                }
            }
        }

        let (status, response_body) = parse_response(&raw).map_err(ShardError::Retry)?;
        if status != 200 {
            let reason = format!(
                "worker {} refused shard {sid}: HTTP {status} {}",
                slot.addr,
                String::from_utf8_lossy(&response_body).trim()
            );
            // 4xx is deterministic (bad dispatch); anything else might be
            // replica-local (mid-shutdown, resource pressure) and is worth
            // one try elsewhere.
            return Err(if (400..500).contains(&status) {
                ShardError::Permanent(reason)
            } else {
                ShardError::Retry(reason)
            });
        }
        let text = std::str::from_utf8(&response_body)
            .map_err(|_| ShardError::Retry("non-utf8 shard response".into()))?;
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| ShardError::Retry("empty shard response".into()))
            .and_then(|l| parse_shard_header(l).map_err(ShardError::Retry))?;
        let mut outputs = Vec::with_capacity(header.jobs);
        for line in lines {
            outputs.push(parse_shard_job(line).map_err(ShardError::Retry)?);
        }
        outputs.sort_by_key(|o| o.record.job_id);
        let got: Vec<usize> = outputs.iter().map(|o| o.record.job_id).collect();
        let mut want = expected_ids.to_vec();
        want.sort_unstable();
        if got != want || outputs.len() != header.jobs {
            return Err(ShardError::Retry(format!(
                "shard {sid} answered jobs {got:?}, expected {want:?}"
            )));
        }
        Ok((header.fingerprint, outputs))
    }

    /// Best-effort cancel fan-out to one worker.
    fn send_cancel(&self, addr: &str, sid: &str) {
        let Ok(mut stream) = connect(addr, self.config.connect_timeout) else { return };
        let _ = stream.set_read_timeout(Some(self.config.connect_timeout));
        if write_request(&mut stream, "DELETE", &format!("/v1/shards/{sid}"), &[]).is_ok() {
            // Drain the (tiny) ack so the worker never blocks on us; a 404
            // means the shard already finished, which is an ack too.
            let mut sink = [0u8; 1024];
            while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
        }
    }

    /// Recomputes the `workers_alive` gauge from the membership.
    fn publish_alive(&self) {
        self.stats.workers_alive.store(self.members.alive_count() as u64, Ordering::Relaxed);
        self.members.notify();
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// Posts a membership action (`join`, `leave`, `drain`) for `worker_addr`
/// to the coordinator at `coordinator_addr` — the client half of
/// `POST /v1/members`, used by `ilt worker --register`.
///
/// # Errors
///
/// Returns a message when the coordinator is unreachable or refuses the
/// action.
pub fn post_membership(
    coordinator_addr: &str,
    worker_addr: &str,
    action: &str,
    timeout: Duration,
) -> Result<(), String> {
    let mut stream = connect(coordinator_addr, timeout)?;
    let _ = stream.set_read_timeout(Some(timeout));
    let path = format!(
        "/v1/members?addr={}&action={action}",
        crate::params::query_encode(worker_addr)
    );
    write_request(&mut stream, "POST", &path, &[])?;
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    match parse_response(&raw) {
        Ok((200, _)) => Ok(()),
        Ok((status, body)) => Err(format!(
            "coordinator {coordinator_addr} refused {action}: HTTP {status} {}",
            String::from_utf8_lossy(&body).trim()
        )),
        Err(e) => Err(format!("bad membership response from {coordinator_addr}: {e}")),
    }
}

enum ShardResult {
    Done { outputs: Vec<JobOutput>, fingerprint: u64 },
    Lost(String),
}

enum ShardError {
    /// Worth re-dispatching to another replica.
    Retry(String),
    /// Deterministic or final; re-dispatch cannot help.
    Permanent(String),
    /// This copy lost a speculation race and was cut short.
    Superseded,
}

/// When a speculation race yields two results, they must be the same
/// computation: same config fingerprint, and for every job both copies
/// completed, the same mask hash. Records one side cancelled or failed are
/// not evidence either way (worker-local interruption), so they are
/// skipped. Returns the poisoning message on disagreement.
fn disagreement(
    sid: &str,
    winner_addr: &str,
    winner_fp: u64,
    winner: &[JobOutput],
    loser_addr: &str,
    loser_fp: u64,
    loser: &[JobOutput],
) -> Option<String> {
    if winner_fp != loser_fp {
        return Some(format!(
            "speculation disagreement on shard {sid}: configuration fingerprint {winner_fp:016x} \
             (worker {winner_addr}) vs {loser_fp:016x} (worker {loser_addr})"
        ));
    }
    for (a, b) in winner.iter().zip(loser) {
        if a.record.job_id != b.record.job_id {
            return Some(format!(
                "speculation disagreement on shard {sid}: job sets diverge ({} vs {})",
                a.record.job_id, b.record.job_id
            ));
        }
        let both_done =
            a.record.status == JobStatus::Done && b.record.status == JobStatus::Done;
        if let (true, Some(ma), Some(mb)) = (both_done, &a.record.metrics, &b.record.metrics) {
            if ma.mask_hash != mb.mask_hash {
                return Some(format!(
                    "speculation disagreement on shard {sid}: job {} mask hash {:016x} \
                     (worker {winner_addr}) vs {:016x} (worker {loser_addr}) — refusing to \
                     emit a possibly-wrong mask",
                    a.record.job_id, ma.mask_hash, mb.mask_hash
                ));
            }
        }
    }
    None
}

/// Terminal record for a job whose shard could not be computed.
fn synthesize(job: &PlannedJob, status: JobStatus) -> JobOutput {
    JobOutput {
        record: JobRecord {
            job_id: job.id,
            case: job.case.clone(),
            tile: job.tile,
            grid: job.grid,
            attempts: 0,
            status,
            metrics: None,
            times: StageTimes::default(),
            wall_ms: 0.0,
        },
        mask: None,
    }
}

fn monitor_loop(
    config: &ClusterConfig,
    members: &Membership,
    stats: &ClusterStats,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::SeqCst) {
        for slot in members.snapshot() {
            let ok = probe(&slot.addr, config);
            mark_probe(&slot, ok, config, stats);
        }
        stats.workers_alive.store(members.alive_count() as u64, Ordering::Relaxed);
        // Health changed or time passed: unpark waiting supervisors.
        members.notify();
        // Sleep in small steps so drop() stops the thread promptly.
        let deadline = Instant::now() + config.heartbeat;
        while Instant::now() < deadline && !stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// Applies one probe (or dispatch-failure) observation to a slot. Note
/// this touches only *liveness* — a successful heartbeat never closes the
/// worker's breaker; quarantine is earned back through shard successes.
fn mark_probe(slot: &WorkerSlot, ok: bool, config: &ClusterConfig, stats: &ClusterStats) {
    if ok {
        slot.heartbeat_fails().store(0, Ordering::Relaxed);
        slot.set_alive(true);
    } else {
        stats.heartbeat_failures.inc();
        let fails = slot.heartbeat_fails().fetch_add(1, Ordering::Relaxed) + 1;
        if fails >= config.heartbeat_failures {
            slot.set_alive(false);
        }
    }
}

/// One `GET /healthz` probe.
fn probe(addr: &str, config: &ClusterConfig) -> bool {
    let Ok(mut stream) = connect(addr, config.connect_timeout) else { return false };
    let _ = stream.set_read_timeout(Some(config.connect_timeout));
    if write_request(&mut stream, "GET", "/healthz", &[]).is_err() {
        return false;
    }
    let mut raw = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    matches!(parse_response(&raw), Ok((200, _)))
}

fn connect(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    let targets: Vec<SocketAddr> = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve worker {addr}: {e}"))?
        .collect();
    let mut last = format!("worker {addr} resolves to no address");
    for target in targets {
        match TcpStream::connect_timeout(&target, timeout) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) => last = format!("cannot connect to worker {addr}: {e}"),
        }
    }
    Err(last)
}

fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<(), String> {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: worker\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("cannot send request: {e}"))
}

/// Minimal HTTP/1.1 response parse: status code + body. The worker always
/// answers `connection: close`, so the caller reads to EOF first.
fn parse_response(raw: &[u8]) -> Result<(u16, Vec<u8>), String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("truncated response head")?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| "non-utf8 response head")?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    Ok((status, raw[head_end + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_runtime::JobMetrics;

    #[test]
    fn response_parse_extracts_status_and_body() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\n\r\nhello";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"hello");
        assert!(parse_response(b"HTTP/1.1 200").is_err());
    }

    #[test]
    fn probe_failures_accumulate_to_death_and_recovery_resets() {
        let config = ClusterConfig { heartbeat_failures: 2, ..ClusterConfig::default() };
        let stats = ClusterStats::default();
        let members = Membership::new(&["x:1".into()], BreakerConfig::default());
        let slot = &members.snapshot()[0];
        mark_probe(slot, false, &config, &stats);
        assert!(slot.is_alive(), "one failure is not death");
        mark_probe(slot, false, &config, &stats);
        assert!(!slot.is_alive(), "threshold reached");
        assert_eq!(stats.heartbeat_failures.get(), 2);
        mark_probe(slot, true, &config, &stats);
        assert!(slot.is_alive(), "a good probe revives");
        assert_eq!(slot.heartbeat_fails().load(Ordering::Relaxed), 0);
    }

    #[test]
    fn empty_membership_is_allowed_and_grows_at_runtime() {
        let c = Coordinator::new(ClusterConfig::default()).unwrap();
        assert_eq!(c.workers_configured(), 0);
        let plan =
            vec![PlannedJob { id: 0, case: "c".into(), tile: None, grid: 64 }];
        let err = c
            .run_job(0, "", &[], &plan, &CancelToken::new(), &Progress::default())
            .unwrap_err();
        assert!(err.contains("no registered workers"), "{err}");
        assert!(c.join("10.0.0.1:7"));
        assert!(!c.join("10.0.0.1:7"), "duplicate join refused");
        assert_eq!(c.workers_configured(), 1);
        assert_eq!(c.stats().members_joined.get(), 1);
        assert!(c.drain("10.0.0.1:7"));
        assert!(c.member_views()[0].draining);
        assert!(c.leave("10.0.0.1:7"));
        assert_eq!(c.stats().members_left.get(), 1);
        assert_eq!(c.workers_configured(), 0);
    }

    #[test]
    fn render_metrics_includes_breaker_gauge_per_worker() {
        let config = ClusterConfig {
            workers: vec!["10.0.0.1:7".into(), "10.0.0.2:7".into()],
            ..ClusterConfig::default()
        };
        let c = Coordinator::new(config).unwrap();
        let mut out = String::new();
        c.render_metrics(&mut out);
        assert!(out.contains("ilt_workers_configured 2\n"), "{out}");
        assert!(out.contains("ilt_members_joined_total 2\n"), "{out}");
        assert!(out.contains("ilt_worker_breaker_state{worker=\"10.0.0.1:7\"} 0\n"), "{out}");
        assert!(out.contains("ilt_worker_breaker_state{worker=\"10.0.0.2:7\"} 0\n"), "{out}");
        for line in out.lines() {
            assert!(line.starts_with('#') || line.split_whitespace().count() == 2, "{line}");
        }
    }

    fn output(job_id: usize, status: JobStatus, hash: u64) -> JobOutput {
        JobOutput {
            record: JobRecord {
                job_id,
                case: "c".into(),
                tile: None,
                grid: 64,
                attempts: 1,
                status: status.clone(),
                metrics: status.has_mask().then_some(JobMetrics {
                    l2_nm2: 0.0,
                    pvband_nm2: 0.0,
                    epe_violations: 0,
                    shots: 0,
                    iterations: 0,
                    mask_hash: hash,
                }),
                times: StageTimes::default(),
                wall_ms: 0.0,
            },
            mask: None,
        }
    }

    #[test]
    fn disagreement_detects_skew_and_skips_interrupted_records() {
        let a = [output(0, JobStatus::Done, 1), output(1, JobStatus::Done, 2)];
        let b = [output(0, JobStatus::Done, 1), output(1, JobStatus::Done, 2)];
        assert!(disagreement("s", "wa", 7, &a, "wb", 7, &b).is_none(), "identical agrees");
        let msg = disagreement("s", "wa", 7, &a, "wb", 8, &b).unwrap();
        assert!(msg.contains("fingerprint"), "{msg}");
        let c = [output(0, JobStatus::Done, 1), output(1, JobStatus::Done, 99)];
        let msg = disagreement("s", "wa", 7, &a, "wb", 7, &c).unwrap();
        assert!(msg.contains("mask hash") && msg.contains("job 1"), "{msg}");
        // A cancelled loser record is an interruption, not evidence.
        let d = [output(0, JobStatus::Done, 1), output(1, JobStatus::Cancelled, 0)];
        assert!(disagreement("s", "wa", 7, &a, "wb", 7, &d).is_none());
    }

    #[test]
    fn synthesized_records_carry_plan_identity() {
        let job = PlannedJob { id: 7, case: "c".into(), tile: Some((1, 2)), grid: 64 };
        let out = synthesize(&job, JobStatus::Cancelled);
        assert_eq!(out.record.job_id, 7);
        assert_eq!(out.record.tile, Some((1, 2)));
        assert_eq!(out.record.status, JobStatus::Cancelled);
        assert!(out.mask.is_none());
    }
}
