//! The coordinator half of sharded execution: splits one job's planned
//! tile set across worker replicas, supervises the shards, and merges the
//! per-tile outputs for central stitching.
//!
//! Fault handling composes the existing single-process machinery instead
//! of inventing new state:
//!
//! - **Death detection**: a monitor thread probes every worker's
//!   `GET /healthz` on a fixed interval; after a configured number of
//!   consecutive failures the worker is marked dead (and revived on the
//!   next successful probe).
//! - **Re-dispatch**: a shard whose worker dies or drops the connection is
//!   re-sent — same shard id, same job ids — to the next live worker. The
//!   shard id keys the worker-side checkpoint WAL directory, so a replica
//!   that already holds partial results for that shard restores them
//!   instead of recomputing.
//! - **Cancel fan-out**: when the job's [`CancelToken`] fires, each
//!   in-flight shard gets a `DELETE /v1/shards/<sid>`; the coordinator
//!   then *keeps waiting* (bounded by the cancel grace period) for the
//!   worker to come back with its cancelled-at-tile-boundary records, so
//!   the job only turns terminal after every shard acknowledged or timed
//!   out. Shards that can no longer answer synthesize local `cancelled`
//!   records.
//! - **Lost shards**: when no live worker remains, the shard's jobs become
//!   synthesized `failed` records — the job finishes (degraded cores fall
//!   back to target geometry in stitching) rather than hanging.
//!
//! Determinism: per-tile masks are bit-exact regardless of which replica
//! computed them (hash-verified in [`crate::wire`]), outputs are merged in
//! job-id order, and stitching/evaluation happen centrally — so any worker
//! count, split, or crash/re-dispatch history yields byte-identical masks
//! to a single-process `ilt batch` run.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ilt_runtime::{
    CancelToken, JobOutput, JobRecord, JobStatus, PlannedJob, Progress, StageTimes,
};

use crate::stats::ClusterStats;
use crate::wire::{encode_job_ids, parse_shard_header, parse_shard_job};

/// Cluster topology and supervision tuning.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Worker replica addresses (`host:port`).
    pub workers: Vec<String>,
    /// Heartbeat probe interval; also the liveness-poll granularity while
    /// waiting on an in-flight shard.
    pub heartbeat: Duration,
    /// Consecutive failed probes before a worker is declared dead.
    pub heartbeat_failures: u32,
    /// Per-connection connect timeout.
    pub connect_timeout: Duration,
    /// After cancel fan-out, how long to keep waiting for a worker's
    /// cancelled records before synthesizing them locally.
    pub cancel_grace: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            workers: Vec::new(),
            heartbeat: Duration::from_millis(500),
            heartbeat_failures: 3,
            connect_timeout: Duration::from_secs(2),
            cancel_grace: Duration::from_secs(10),
        }
    }
}

/// One worker replica's live state.
#[derive(Debug)]
struct WorkerSlot {
    addr: String,
    /// Last successful resolution, reused when DNS/parse succeeds once.
    alive: AtomicBool,
    consecutive_fails: AtomicU32,
}

/// Supervises a fixed set of worker replicas and executes jobs across
/// them. Owned by the serving process; dropped (stopping the heartbeat
/// monitor) on shutdown.
pub struct Coordinator {
    config: ClusterConfig,
    slots: Vec<Arc<WorkerSlot>>,
    stats: Arc<ClusterStats>,
    stop: Arc<AtomicBool>,
}

impl Coordinator {
    /// Builds the coordinator and starts its heartbeat monitor thread.
    ///
    /// # Errors
    ///
    /// Rejects an empty worker list.
    pub fn new(config: ClusterConfig) -> Result<Coordinator, String> {
        if config.workers.is_empty() {
            return Err("cluster mode needs at least one worker address".into());
        }
        let slots: Vec<Arc<WorkerSlot>> = config
            .workers
            .iter()
            .map(|addr| {
                Arc::new(WorkerSlot {
                    addr: addr.clone(),
                    // Optimistically alive: the first probe (or the first
                    // dispatch failure) corrects this within one interval.
                    alive: AtomicBool::new(true),
                    consecutive_fails: AtomicU32::new(0),
                })
            })
            .collect();
        let stats = Arc::new(ClusterStats::default());
        stats.workers_alive.store(slots.len() as u64, Ordering::Relaxed);
        let stop = Arc::new(AtomicBool::new(false));
        {
            let slots = slots.clone();
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let config = config.clone();
            std::thread::spawn(move || monitor_loop(&config, &slots, &stats, &stop));
        }
        Ok(Coordinator { config, slots, stats, stop })
    }

    /// The live cluster metrics, for `/metrics` rendering.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Number of configured worker replicas.
    pub fn workers_configured(&self) -> usize {
        self.slots.len()
    }

    /// Executes one job's full tile plan across the cluster and returns
    /// the merged per-tile outputs in job-id order, ready for
    /// [`ilt_runtime::assemble_batch`].
    ///
    /// `query` is the job's persisted parameter query (fault injection
    /// stripped — faults stay local to workers); `body` carries the target
    /// PGM for inline sources. `progress` ticks once per executed
    /// (non-synthesized, non-cancelled) tile as shards complete.
    ///
    /// # Errors
    ///
    /// Returns a message when the plan is empty or replicas disagree on
    /// the configuration fingerprint (version/parameter skew); lost shards
    /// are NOT errors — they synthesize failed or cancelled records.
    pub fn run_job(
        &self,
        job_id: usize,
        query: &str,
        body: &[u8],
        plan: &[PlannedJob],
        cancel: &CancelToken,
        progress: &Progress,
    ) -> Result<Vec<JobOutput>, String> {
        if plan.is_empty() {
            return Err("job plans no tiles".into());
        }
        let shard_count = self.slots.len().min(plan.len());
        let mut assignments: Vec<Vec<&PlannedJob>> = vec![Vec::new(); shard_count];
        for job in plan {
            assignments[job.id % shard_count].push(job);
        }

        let results: Vec<(usize, ShardResult)> = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .iter()
                .enumerate()
                .map(|(shard_idx, jobs)| {
                    scope.spawn(move || {
                        let sid = format!("{job_id}-{shard_idx}");
                        (shard_idx, self.run_shard_supervised(&sid, shard_idx, query, body, jobs, cancel))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard supervisor panicked")).collect()
        });

        let mut outputs: Vec<JobOutput> = Vec::with_capacity(plan.len());
        let mut fingerprint: Option<u64> = None;
        for (shard_idx, result) in results {
            match result {
                ShardResult::Done { outputs: shard_outputs, fingerprint: fp } => {
                    match fingerprint {
                        None => fingerprint = Some(fp),
                        Some(seen) if seen != fp => {
                            return Err(format!(
                                "workers disagree on configuration fingerprint \
                                 ({seen:016x} vs {fp:016x}) — replica version or parameter skew"
                            ));
                        }
                        Some(_) => {}
                    }
                    for output in shard_outputs {
                        if output.record.status != JobStatus::Cancelled {
                            progress.tick();
                        }
                        outputs.push(output);
                    }
                }
                ShardResult::Lost(reason) => {
                    // The shard can no longer be computed anywhere; finish
                    // the job with terminal records instead of hanging.
                    let status = if cancel.is_cancelled() {
                        JobStatus::Cancelled
                    } else {
                        JobStatus::Failed(format!("shard lost: {reason}"))
                    };
                    for job in &assignments[shard_idx] {
                        outputs.push(synthesize(job, status.clone()));
                    }
                }
            }
        }
        outputs.sort_by_key(|o| o.record.job_id);
        Ok(outputs)
    }

    /// Runs one shard to completion: dispatch, supervise, re-dispatch on
    /// worker death, fan out cancellation.
    fn run_shard_supervised(
        &self,
        sid: &str,
        shard_idx: usize,
        query: &str,
        body: &[u8],
        jobs: &[&PlannedJob],
        cancel: &CancelToken,
    ) -> ShardResult {
        let ids: Vec<usize> = jobs.iter().map(|j| j.id).collect();
        let path = format!(
            "/v1/shards?shard={sid}&jobs={}{}{query}",
            encode_job_ids(&ids),
            if query.is_empty() { "" } else { "&" }
        );
        let mut dispatched = 0u32;
        let max_dispatches = (self.slots.len() as u32) * 2;
        let preferred = shard_idx % self.slots.len();
        let mut skip = 0usize;
        let mut last_error = String::from("no live worker");
        loop {
            if cancel.is_cancelled() && dispatched == 0 {
                // Never *start* work for a cancelled job; in-flight shards
                // are handled inside the exchange below.
                return ShardResult::Lost("cancelled before dispatch".into());
            }
            let Some((slot_index, slot)) = self.pick_alive(shard_idx + skip) else {
                return ShardResult::Lost(last_error);
            };
            // Any dispatch that is not the shard's first attempt on its
            // preferred replica is a re-dispatch — whether the preferred
            // worker died mid-shard or was already marked dead.
            if dispatched > 0 || slot_index != preferred {
                self.stats.shards_redispatched.inc();
            }
            if dispatched >= max_dispatches {
                return ShardResult::Lost(format!(
                    "gave up after {dispatched} dispatches; last error: {last_error}"
                ));
            }
            dispatched += 1;
            let started = Instant::now();
            match self.exchange_shard(slot, sid, &path, body, &ids, cancel) {
                Ok((fingerprint, outputs)) => {
                    self.stats.shard_ms.observe(started.elapsed().as_secs_f64() * 1e3);
                    return ShardResult::Done { outputs, fingerprint };
                }
                Err(ShardError::Permanent(reason)) => {
                    // Deterministic rejection (bad parameters, refused
                    // dispatch): every replica would answer the same.
                    return ShardResult::Lost(reason);
                }
                Err(ShardError::Retry(reason)) => {
                    // Connection-level failure: declare this worker suspect
                    // immediately (the monitor confirms or revives it) and
                    // move to the next replica.
                    mark_probe(slot, false, &self.config, &self.stats);
                    self.publish_alive();
                    last_error = reason;
                    skip += 1;
                }
            }
        }
    }

    /// Next live worker at or after `preferred` (round-robin with wrap).
    fn pick_alive(&self, preferred: usize) -> Option<(usize, &Arc<WorkerSlot>)> {
        let n = self.slots.len();
        (0..n)
            .map(|i| (preferred + i) % n)
            .map(|idx| (idx, &self.slots[idx]))
            .find(|(_, s)| s.alive.load(Ordering::Relaxed))
    }

    /// One dispatch attempt: POST the shard, wait for the streamed result,
    /// polling liveness and the cancel token while the worker computes.
    fn exchange_shard(
        &self,
        slot: &WorkerSlot,
        sid: &str,
        path: &str,
        body: &[u8],
        expected_ids: &[usize],
        cancel: &CancelToken,
    ) -> Result<(u64, Vec<JobOutput>), ShardError> {
        let mut stream = connect(&slot.addr, self.config.connect_timeout)
            .map_err(ShardError::Retry)?;
        write_request(&mut stream, "POST", path, body).map_err(ShardError::Retry)?;
        // Short read timeouts turn the blocking wait into a poll loop so
        // cancellation and worker death interrupt a long compute.
        let _ = stream.set_read_timeout(Some(self.config.heartbeat.max(Duration::from_millis(10))));
        let mut raw = Vec::new();
        let mut cancel_sent = false;
        let mut cancel_deadline: Option<Instant> = None;
        loop {
            let mut chunk = [0u8; 65536];
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if cancel.is_cancelled() && !cancel_sent {
                        // Fan the cancellation out to the worker, then keep
                        // waiting (bounded) for its cancelled records: the
                        // job must not turn terminal while a replica still
                        // computes on its behalf.
                        self.send_cancel(&slot.addr, sid);
                        cancel_sent = true;
                        cancel_deadline = Some(Instant::now() + self.config.cancel_grace);
                    }
                    if let Some(deadline) = cancel_deadline {
                        if Instant::now() >= deadline {
                            return Err(ShardError::Permanent(
                                "worker did not acknowledge cancellation in time".into(),
                            ));
                        }
                    }
                    if !slot.alive.load(Ordering::Relaxed) {
                        return Err(ShardError::Retry(format!(
                            "worker {} died mid-shard (heartbeat)",
                            slot.addr
                        )));
                    }
                }
                Err(e) => {
                    return Err(ShardError::Retry(format!(
                        "worker {} connection failed mid-shard: {e}",
                        slot.addr
                    )))
                }
            }
        }

        let (status, response_body) = parse_response(&raw).map_err(ShardError::Retry)?;
        if status != 200 {
            let reason = format!(
                "worker {} refused shard {sid}: HTTP {status} {}",
                slot.addr,
                String::from_utf8_lossy(&response_body).trim()
            );
            // 4xx is deterministic (bad dispatch); anything else might be
            // replica-local (mid-shutdown, resource pressure) and is worth
            // one try elsewhere.
            return Err(if (400..500).contains(&status) {
                ShardError::Permanent(reason)
            } else {
                ShardError::Retry(reason)
            });
        }
        let text = std::str::from_utf8(&response_body)
            .map_err(|_| ShardError::Retry("non-utf8 shard response".into()))?;
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| ShardError::Retry("empty shard response".into()))
            .and_then(|l| parse_shard_header(l).map_err(ShardError::Retry))?;
        let mut outputs = Vec::with_capacity(header.jobs);
        for line in lines {
            outputs.push(parse_shard_job(line).map_err(ShardError::Retry)?);
        }
        outputs.sort_by_key(|o| o.record.job_id);
        let got: Vec<usize> = outputs.iter().map(|o| o.record.job_id).collect();
        let mut want = expected_ids.to_vec();
        want.sort_unstable();
        if got != want || outputs.len() != header.jobs {
            return Err(ShardError::Retry(format!(
                "shard {sid} answered jobs {got:?}, expected {want:?}"
            )));
        }
        Ok((header.fingerprint, outputs))
    }

    /// Best-effort cancel fan-out to one worker.
    fn send_cancel(&self, addr: &str, sid: &str) {
        let Ok(mut stream) = connect(addr, self.config.connect_timeout) else { return };
        let _ = stream.set_read_timeout(Some(self.config.connect_timeout));
        if write_request(&mut stream, "DELETE", &format!("/v1/shards/{sid}"), &[]).is_ok() {
            // Drain the (tiny) ack so the worker never blocks on us; a 404
            // means the shard already finished, which is an ack too.
            let mut sink = [0u8; 1024];
            while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
        }
    }

    /// Recomputes the `workers_alive` gauge from the slots.
    fn publish_alive(&self) {
        let alive = self.slots.iter().filter(|s| s.alive.load(Ordering::Relaxed)).count();
        self.stats.workers_alive.store(alive as u64, Ordering::Relaxed);
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

enum ShardResult {
    Done { outputs: Vec<JobOutput>, fingerprint: u64 },
    Lost(String),
}

enum ShardError {
    /// Worth re-dispatching to another replica.
    Retry(String),
    /// Deterministic or final; re-dispatch cannot help.
    Permanent(String),
}

/// Terminal record for a job whose shard could not be computed.
fn synthesize(job: &PlannedJob, status: JobStatus) -> JobOutput {
    JobOutput {
        record: JobRecord {
            job_id: job.id,
            case: job.case.clone(),
            tile: job.tile,
            grid: job.grid,
            attempts: 0,
            status,
            metrics: None,
            times: StageTimes::default(),
            wall_ms: 0.0,
        },
        mask: None,
    }
}

fn monitor_loop(
    config: &ClusterConfig,
    slots: &[Arc<WorkerSlot>],
    stats: &ClusterStats,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::SeqCst) {
        for slot in slots {
            let ok = probe(&slot.addr, config);
            mark_probe(slot, ok, config, stats);
        }
        let alive = slots.iter().filter(|s| s.alive.load(Ordering::Relaxed)).count();
        stats.workers_alive.store(alive as u64, Ordering::Relaxed);
        // Sleep in small steps so drop() stops the thread promptly.
        let deadline = Instant::now() + config.heartbeat;
        while Instant::now() < deadline && !stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// Applies one probe (or dispatch-failure) observation to a slot.
fn mark_probe(slot: &WorkerSlot, ok: bool, config: &ClusterConfig, stats: &ClusterStats) {
    if ok {
        slot.consecutive_fails.store(0, Ordering::Relaxed);
        slot.alive.store(true, Ordering::Relaxed);
    } else {
        stats.heartbeat_failures.inc();
        let fails = slot.consecutive_fails.fetch_add(1, Ordering::Relaxed) + 1;
        if fails >= config.heartbeat_failures {
            slot.alive.store(false, Ordering::Relaxed);
        }
    }
}

/// One `GET /healthz` probe.
fn probe(addr: &str, config: &ClusterConfig) -> bool {
    let Ok(mut stream) = connect(addr, config.connect_timeout) else { return false };
    let _ = stream.set_read_timeout(Some(config.connect_timeout));
    if write_request(&mut stream, "GET", "/healthz", &[]).is_err() {
        return false;
    }
    let mut raw = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    matches!(parse_response(&raw), Ok((200, _)))
}

fn connect(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    let targets: Vec<SocketAddr> = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve worker {addr}: {e}"))?
        .collect();
    let mut last = format!("worker {addr} resolves to no address");
    for target in targets {
        match TcpStream::connect_timeout(&target, timeout) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) => last = format!("cannot connect to worker {addr}: {e}"),
        }
    }
    Err(last)
}

fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<(), String> {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: worker\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("cannot send request: {e}"))
}

/// Minimal HTTP/1.1 response parse: status code + body. The worker always
/// answers `connection: close`, so the caller reads to EOF first.
fn parse_response(raw: &[u8]) -> Result<(u16, Vec<u8>), String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("truncated response head")?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| "non-utf8 response head")?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    Ok((status, raw[head_end + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_parse_extracts_status_and_body() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\n\r\nhello";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"hello");
        assert!(parse_response(b"HTTP/1.1 200").is_err());
    }

    #[test]
    fn probe_failures_accumulate_to_death_and_recovery_resets() {
        let config = ClusterConfig { heartbeat_failures: 2, ..ClusterConfig::default() };
        let stats = ClusterStats::default();
        let slot = WorkerSlot {
            addr: "x".into(),
            alive: AtomicBool::new(true),
            consecutive_fails: AtomicU32::new(0),
        };
        mark_probe(&slot, false, &config, &stats);
        assert!(slot.alive.load(Ordering::Relaxed), "one failure is not death");
        mark_probe(&slot, false, &config, &stats);
        assert!(!slot.alive.load(Ordering::Relaxed), "threshold reached");
        assert_eq!(stats.heartbeat_failures.get(), 2);
        mark_probe(&slot, true, &config, &stats);
        assert!(slot.alive.load(Ordering::Relaxed), "a good probe revives");
        assert_eq!(slot.consecutive_fails.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn coordinator_rejects_empty_worker_list() {
        assert!(Coordinator::new(ClusterConfig::default()).is_err());
    }

    #[test]
    fn synthesized_records_carry_plan_identity() {
        let job = PlannedJob { id: 7, case: "c".into(), tile: Some((1, 2)), grid: 64 };
        let out = synthesize(&job, JobStatus::Cancelled);
        assert_eq!(out.record.job_id, 7);
        assert_eq!(out.record.tile, Some((1, 2)));
        assert_eq!(out.record.status, JobStatus::Cancelled);
        assert!(out.mask.is_none());
    }
}
