//! Sharded multi-process execution for the ILT batch engine.
//!
//! One `ilt serve` process can only scale to its own cores. This crate
//! adds a coordinator/worker topology on top of the existing runtime:
//!
//! - [`transport`] — the std-only HTTP/1.1 parser/writer and keep-alive
//!   connection loop shared by the job service and the worker (extracted
//!   from `ilt-server` so both speak the identical wire dialect).
//! - [`params`] — the validated job specification ([`JobParams`]) whose
//!   query serialization doubles as the dispatch format: every process
//!   plans the job through the same code path, which is what makes
//!   sharded output byte-identical to single-process output.
//! - [`wire`] — the shard dispatch/result codec (JSON Lines over HTTP,
//!   masks as hash-verified base64 PGM).
//! - [`worker`] — the `ilt worker` service: executes designated tile
//!   subsets via [`ilt_runtime::run_shard`], checkpoints them to the
//!   standard WAL, and honors cooperative cancellation per shard.
//! - [`membership`] — the dynamic worker registry (join/drain/leave at
//!   runtime) and the scheduler that admits dispatches: least-loaded
//!   first, breaker-gated, condvar-parked until capacity appears.
//! - [`breaker`] — the per-worker circuit breaker (closed → open →
//!   half-open with decorrelated-jitter backoff) that quarantines
//!   flaky-but-alive replicas.
//! - [`coordinator`] — shards a job's tile plan across the live
//!   membership, supervises shards with heartbeats and attempt budgets,
//!   re-dispatches on failure, speculatively re-executes stragglers
//!   (first result wins, results must agree), fans out cancellation, and
//!   merges outputs for central stitching via
//!   [`ilt_runtime::assemble_batch`].
//! - [`stats`] — lock-free counters/histograms (shared with the server's
//!   `/metrics`) plus the cluster-health families.
//!
//! Everything is `std`-only; no registry dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod coordinator;
pub mod membership;
pub mod params;
pub mod stats;
pub mod transport;
pub mod wire;
pub mod worker;

pub use breaker::{Breaker, BreakerConfig, BreakerState};
pub use coordinator::{post_membership, ClusterConfig, Coordinator};
pub use membership::{MemberView, Membership};
pub use params::{query_decode, query_encode, ExecPolicy, JobParams, JobSource};
pub use stats::{ClusterStats, Counter, FailureKinds, Histogram, FAILURE_KINDS, LATENCY_BUCKETS_MS};
pub use transport::{
    base64_decode, base64_encode, serve_connection, ConnOptions, HttpError, Limits, Request,
    Response, WireFault,
};
pub use wire::{ShardHeader, SHARD_PATH};
pub use worker::{Worker, WorkerConfig};
