//! Dynamic worker membership: the live, mutable set of replicas.
//!
//! PR 6's coordinator took a fixed `--workers` list at construction; this
//! module replaces it with a registry workers can join, drain, and leave at
//! runtime (the `POST /v1/members` wire call). Shard supervisors draw
//! workers from the *current* set through [`Membership::acquire`], which is
//! where the scheduling policy lives: least-loaded first, draining workers
//! excluded, and every candidate gated by its circuit [`Breaker`] — so a
//! quarantined worker receives no dispatches even while its heartbeats
//! pass. Blocked supervisors park on a condvar and wake when a worker
//! joins, a shard completes, or a backoff elapses, which is exactly how a
//! late-joining worker picks up queued shards mid-job.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use ilt_runtime::CancelToken;

use crate::breaker::{Breaker, BreakerConfig, BreakerState};

/// One registered worker replica and its health ledger.
pub struct WorkerSlot {
    /// Dispatch address, `host:port`.
    pub addr: String,
    alive: AtomicBool,
    consecutive_fails: AtomicU32,
    draining: AtomicBool,
    inflight: AtomicU32,
    dispatches: AtomicU64,
    completed: AtomicU64,
    /// This worker's circuit breaker (quarantine state machine).
    pub breaker: Breaker,
}

impl WorkerSlot {
    fn new(addr: String, breaker_cfg: BreakerConfig) -> Self {
        // Salt the jitter stream with the address so replicas sharing one
        // config seed do not back off in lockstep.
        let salt = addr.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
        WorkerSlot {
            addr,
            alive: AtomicBool::new(true),
            consecutive_fails: AtomicU32::new(0),
            draining: AtomicBool::new(false),
            inflight: AtomicU32::new(0),
            dispatches: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            breaker: Breaker::new(breaker_cfg, salt),
        }
    }

    /// Is the worker considered up (heartbeats within the failure budget)?
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    pub(crate) fn set_alive(&self, v: bool) {
        self.alive.store(v, Ordering::SeqCst);
    }

    pub(crate) fn heartbeat_fails(&self) -> &AtomicU32 {
        &self.consecutive_fails
    }

    /// Is the worker draining (finishing in-flight shards, no new work)?
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Shards currently dispatched to this worker.
    pub fn inflight(&self) -> u32 {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Total dispatches ever sent to this worker.
    pub fn dispatches(&self) -> u64 {
        self.dispatches.load(Ordering::SeqCst)
    }

    /// Total shards this worker completed successfully.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::SeqCst)
    }
}

/// How a dispatch settled, for the breaker's ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Settle {
    /// The shard finished: closes the breaker, counts as completed.
    Success,
    /// The worker flaked (transport error, death mid-shard): breaker
    /// failure.
    Failure,
    /// Neither credit nor blame — the dispatch was superseded by a
    /// speculative winner, or refused for reasons that are not the
    /// worker's health (4xx rejection, cancellation).
    Neutral,
}

/// The outcome of asking for a worker to dispatch to.
pub enum Acquire {
    /// A worker was admitted; release it with [`Membership::release`].
    Ok(Arc<WorkerSlot>),
    /// No live worker exists (empty set, or every member dead).
    NoWorkers,
    /// The job was cancelled while waiting.
    Cancelled,
}

/// The live membership set plus the scheduler's wait/wake machinery.
pub struct Membership {
    slots: Mutex<Vec<Arc<WorkerSlot>>>,
    changed: Condvar,
    breaker_cfg: BreakerConfig,
}

impl Membership {
    /// A membership seeded with `addrs` (the `--workers` list; may be
    /// empty — workers can join later).
    pub fn new(addrs: &[String], breaker_cfg: BreakerConfig) -> Self {
        let m = Membership { slots: Mutex::new(Vec::new()), changed: Condvar::new(), breaker_cfg };
        for a in addrs {
            m.join(a);
        }
        m
    }

    /// Registers a worker. Returns `false` (and changes nothing) when the
    /// address is already a member.
    pub fn join(&self, addr: &str) -> bool {
        let mut slots = self.slots.lock().unwrap();
        if slots.iter().any(|s| s.addr == addr) {
            return false;
        }
        slots.push(Arc::new(WorkerSlot::new(addr.to_string(), self.breaker_cfg)));
        self.changed.notify_all();
        true
    }

    /// Marks a worker as draining: in-flight shards finish, no new
    /// dispatches. Returns `false` for unknown addresses.
    pub fn drain(&self, addr: &str) -> bool {
        let slots = self.slots.lock().unwrap();
        match slots.iter().find(|s| s.addr == addr) {
            Some(s) => {
                s.draining.store(true, Ordering::SeqCst);
                true
            }
            None => false,
        }
    }

    /// Removes a worker from the set. In-flight dispatches keep their
    /// `Arc` and settle normally; the worker just stops being a
    /// candidate. Returns `false` for unknown addresses.
    pub fn leave(&self, addr: &str) -> bool {
        let mut slots = self.slots.lock().unwrap();
        let before = slots.len();
        slots.retain(|s| s.addr != addr);
        let removed = slots.len() != before;
        if removed {
            self.changed.notify_all();
        }
        removed
    }

    /// The current member slots (order = join order).
    pub fn snapshot(&self) -> Vec<Arc<WorkerSlot>> {
        self.slots.lock().unwrap().clone()
    }

    /// Current member count.
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// True when no worker is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Members currently passing heartbeats.
    pub fn alive_count(&self) -> usize {
        self.slots.lock().unwrap().iter().filter(|s| s.is_alive()).count()
    }

    /// Wakes every parked supervisor (membership or health changed).
    pub fn notify(&self) {
        let _guard = self.slots.lock().unwrap();
        self.changed.notify_all();
    }

    /// Blocks until a worker is admitted, every member is dead/gone, or
    /// the job is cancelled. Candidates are live, non-draining members
    /// under `max_inflight`, least-loaded first, each gated by its
    /// breaker; when all candidates are quarantined or saturated the
    /// caller parks (bounded 25 ms re-check so breaker backoffs expire).
    pub fn acquire(&self, max_inflight: u32, cancel: &CancelToken) -> Acquire {
        let mut slots = self.slots.lock().unwrap();
        loop {
            if !slots.iter().any(|s| s.is_alive()) {
                return Acquire::NoWorkers;
            }
            if cancel.is_cancelled() {
                return Acquire::Cancelled;
            }
            if let Some(slot) = Self::admit_one(&slots, max_inflight, &[]) {
                return Acquire::Ok(slot);
            }
            let (guard, _) =
                self.changed.wait_timeout(slots, Duration::from_millis(25)).unwrap();
            slots = guard;
        }
    }

    /// Non-blocking acquire for speculative copies: like
    /// [`Membership::acquire`] but never waits and skips `avoid`
    /// addresses (the primary's worker). `None` when nothing is
    /// admissible right now.
    pub fn try_acquire(&self, max_inflight: u32, avoid: &[&str]) -> Option<Arc<WorkerSlot>> {
        let slots = self.slots.lock().unwrap();
        Self::admit_one(&slots, max_inflight, avoid)
    }

    fn admit_one(
        slots: &[Arc<WorkerSlot>],
        max_inflight: u32,
        avoid: &[&str],
    ) -> Option<Arc<WorkerSlot>> {
        let mut cands: Vec<&Arc<WorkerSlot>> = slots
            .iter()
            .filter(|s| {
                s.is_alive()
                    && !s.is_draining()
                    && s.inflight() < max_inflight.max(1)
                    && !avoid.contains(&s.addr.as_str())
            })
            .collect();
        // Least-loaded first; join order breaks ties (sort is stable).
        cands.sort_by_key(|s| s.inflight());
        for s in cands {
            if s.breaker.admit() {
                s.inflight.fetch_add(1, Ordering::SeqCst);
                s.dispatches.fetch_add(1, Ordering::SeqCst);
                return Some((*s).clone());
            }
        }
        None
    }

    /// Returns a worker acquired via [`Membership::acquire`] /
    /// [`Membership::try_acquire`] and settles its breaker ledger.
    pub fn release(&self, slot: &WorkerSlot, settle: Settle) {
        slot.inflight.fetch_sub(1, Ordering::SeqCst);
        match settle {
            Settle::Success => {
                slot.completed.fetch_add(1, Ordering::SeqCst);
                slot.breaker.on_success();
            }
            Settle::Failure => slot.breaker.on_failure(),
            Settle::Neutral => {}
        }
        self.notify();
    }
}

/// A point-in-time, externally-consumable view of one member (the
/// `GET /v1/members` row and the breaker-state metric source).
#[derive(Clone, Debug)]
pub struct MemberView {
    /// Dispatch address.
    pub addr: String,
    /// Heartbeats within the failure budget?
    pub alive: bool,
    /// Draining (no new dispatches)?
    pub draining: bool,
    /// Breaker state label: `closed`, `half-open`, `open`.
    pub breaker: &'static str,
    /// Breaker state as the metric gauge (0/1/2).
    pub breaker_gauge: u64,
    /// Shards currently dispatched to this worker.
    pub inflight: u32,
    /// Total dispatches ever sent.
    pub dispatches: u64,
    /// Total shards completed.
    pub completed: u64,
}

impl MemberView {
    pub(crate) fn of(slot: &WorkerSlot) -> MemberView {
        let state: BreakerState = slot.breaker.state();
        MemberView {
            addr: slot.addr.clone(),
            alive: slot.is_alive(),
            draining: slot.is_draining(),
            breaker: state.label(),
            breaker_gauge: state.gauge(),
            inflight: slot.inflight(),
            dispatches: slot.dispatches(),
            completed: slot.completed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(addrs: &[&str]) -> Membership {
        let list: Vec<String> = addrs.iter().map(|s| s.to_string()).collect();
        Membership::new(&list, BreakerConfig::default())
    }

    #[test]
    fn join_drain_leave_lifecycle() {
        let m = members(&["a:1"]);
        assert_eq!(m.len(), 1);
        assert!(m.join("b:2"));
        assert!(!m.join("b:2"), "duplicate join refused");
        assert_eq!(m.len(), 2);
        assert!(m.drain("b:2"));
        assert!(m.snapshot().iter().find(|s| s.addr == "b:2").unwrap().is_draining());
        assert!(m.leave("b:2"));
        assert!(!m.leave("b:2"), "double leave refused");
        assert!(!m.drain("b:2"), "unknown address refused");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn acquire_prefers_least_loaded_and_skips_draining() {
        let m = members(&["a:1", "b:2"]);
        let cancel = CancelToken::new();
        let first = match m.acquire(2, &cancel) {
            Acquire::Ok(s) => s,
            _ => panic!("expected a worker"),
        };
        assert_eq!(first.addr, "a:1", "tie broken by join order");
        let second = match m.acquire(2, &cancel) {
            Acquire::Ok(s) => s,
            _ => panic!("expected a worker"),
        };
        assert_eq!(second.addr, "b:2", "least-loaded wins");
        m.drain("a:1");
        m.release(&first, Settle::Success);
        let third = match m.acquire(2, &cancel) {
            Acquire::Ok(s) => s,
            _ => panic!("expected a worker"),
        };
        assert_eq!(third.addr, "b:2", "draining worker gets nothing");
    }

    #[test]
    fn acquire_reports_no_workers_and_cancellation() {
        let empty = members(&[]);
        let cancel = CancelToken::new();
        assert!(matches!(empty.acquire(2, &cancel), Acquire::NoWorkers));

        let m = members(&["a:1"]);
        m.snapshot()[0].set_alive(false);
        assert!(matches!(m.acquire(2, &cancel), Acquire::NoWorkers), "all dead");

        m.snapshot()[0].set_alive(true);
        let held = match m.acquire(1, &cancel) {
            Acquire::Ok(s) => s,
            _ => panic!("expected a worker"),
        };
        cancel.cancel();
        assert!(
            matches!(m.acquire(1, &cancel), Acquire::Cancelled),
            "saturated + cancelled unparks as Cancelled"
        );
        m.release(&held, Settle::Neutral);
    }

    #[test]
    fn try_acquire_avoids_and_never_blocks() {
        let m = members(&["a:1", "b:2"]);
        let got = m.try_acquire(1, &["a:1"]).expect("b admissible");
        assert_eq!(got.addr, "b:2");
        assert!(m.try_acquire(1, &["a:1"]).is_none(), "b saturated, a avoided");
        m.release(&got, Settle::Success);
        assert_eq!(got.completed(), 1);
    }
}
