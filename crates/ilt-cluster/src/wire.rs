//! The shard wire protocol: how a coordinator asks a worker for a subset
//! of a job's tiles and how the worker streams the results back.
//!
//! Everything rides the plain HTTP transport:
//!
//! - `POST /v1/shards?shard=<sid>&jobs=<id,id,..>&<job query>` dispatches a
//!   shard. The job query is exactly [`crate::params::JobParams::to_query`]
//!   output (the state-log persistence format), so the worker re-derives
//!   the identical batch plan via the identical validation path; the body
//!   carries the target PGM for inline sources and is empty otherwise.
//! - The `200` response body is JSON Lines: a [`shard_header_line`] first,
//!   then one [`shard_job_line`] per requested job in ascending id order.
//!   A job line is the job's WAL record (the same serialization the
//!   checkpoint log uses) with one extra top-level `"mask"` field holding
//!   the mask PGM in base64 — absent when the job produced no mask.
//! - `DELETE /v1/shards/<sid>` requests cooperative cancellation of a
//!   running shard; `404` means the shard already finished (and counts as
//!   an acknowledgement).
//!
//! Masks round-trip bit-exactly: PGM encodes the binarized mask as 0/255,
//! decode re-thresholds at 0.5, and the record's `mask_hash` is verified
//! after decode — the same witness the checkpoint restore path uses.

use ilt_field::{parse_pgm, pgm_bytes};
use ilt_runtime::{
    field_hash, json_escape, json_field_raw, json_field_str, json_field_u64, parse_wal_record,
    JobOutput,
};

use crate::transport::{base64_decode, base64_encode};

/// URL path prefix of the shard endpoints.
pub const SHARD_PATH: &str = "/v1/shards";

/// The header line opening a shard response stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardHeader {
    /// Echo of the dispatched shard id.
    pub shard: String,
    /// Number of job lines that follow.
    pub jobs: usize,
    /// The worker's configuration fingerprint for the planned case — the
    /// coordinator cross-checks it to catch version/parameter skew between
    /// replicas before trusting any mask.
    pub fingerprint: u64,
    /// How many of the jobs were restored from the worker's local
    /// checkpoint WAL instead of recomputed.
    pub restored: usize,
}

/// Formats the `jobs=` query value: ascending comma-separated ids.
pub fn encode_job_ids(ids: &[usize]) -> String {
    ids.iter().map(|id| id.to_string()).collect::<Vec<_>>().join(",")
}

/// Parses a `jobs=` query value.
///
/// # Errors
///
/// Returns a message for an empty list or a non-numeric id.
pub fn parse_job_ids(raw: &str) -> Result<Vec<usize>, String> {
    let ids: Vec<usize> = raw
        .split(',')
        .filter(|p| !p.is_empty())
        .map(|p| p.trim().parse().map_err(|_| format!("bad job id {p:?} in jobs={raw:?}")))
        .collect::<Result<_, _>>()?;
    if ids.is_empty() {
        return Err("jobs= lists no job ids".into());
    }
    Ok(ids)
}

/// Serializes the response header line.
pub fn shard_header_line(header: &ShardHeader) -> String {
    format!(
        "{{\"kind\":\"shard_header\",\"shard\":\"{}\",\"jobs\":{},\"fingerprint\":\"{:016x}\",\"restored\":{}}}",
        json_escape(&header.shard),
        header.jobs,
        header.fingerprint,
        header.restored
    )
}

/// Parses the response header line.
///
/// # Errors
///
/// Returns a message when the line is not a shard header or a field is
/// malformed.
pub fn parse_shard_header(line: &str) -> Result<ShardHeader, String> {
    if json_field_str(line, "kind")? != "shard_header" {
        return Err(format!("not a shard header: {line}"));
    }
    let fp = json_field_str(line, "fingerprint")?;
    Ok(ShardHeader {
        shard: json_field_str(line, "shard")?,
        jobs: json_field_u64(line, "jobs")? as usize,
        fingerprint: u64::from_str_radix(&fp, 16).map_err(|_| format!("bad fingerprint {fp}"))?,
        restored: json_field_u64(line, "restored")? as usize,
    })
}

/// Serializes one finished job as a response line: the WAL record with the
/// mask (when present) appended as a base64 PGM field.
pub fn shard_job_line(output: &JobOutput) -> String {
    let mut line = output.record.to_json_wal(None);
    if let Some(mask) = &output.mask {
        line.pop(); // the closing brace
        line.push_str(&format!(",\"mask\":\"{}\"}}", base64_encode(&pgm_bytes(mask, 0.0, 1.0))));
    }
    line
}

/// Parses one job line back into a [`JobOutput`], verifying the decoded
/// mask against the record's `mask_hash`.
///
/// # Errors
///
/// Returns a message for a malformed record, undecodable mask, or a mask
/// whose hash does not match the record — any of which means the shard
/// result cannot be trusted and the shard must be re-dispatched.
pub fn parse_shard_job(line: &str) -> Result<JobOutput, String> {
    let loaded = parse_wal_record(line)?;
    let record = loaded.record;
    let mask = match json_field_raw(line, "mask") {
        None => None,
        Some(_) => {
            let b64 = json_field_str(line, "mask")?;
            let bytes = base64_decode(&b64).map_err(|e| format!("bad mask base64: {e}"))?;
            let img = parse_pgm(&bytes).map_err(|e| format!("bad mask PGM: {e}"))?;
            let mask = img.threshold(0.5);
            if let Some(metrics) = &record.metrics {
                if field_hash(&mask) != metrics.mask_hash {
                    return Err(format!(
                        "mask hash mismatch for job {} (corrupt transfer)",
                        record.job_id
                    ));
                }
            }
            Some(mask)
        }
    };
    if record.status.has_mask() && mask.is_none() {
        return Err(format!("job {} reports a mask but the line carries none", record.job_id));
    }
    Ok(JobOutput { record, mask })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_field::Field2D;
    use ilt_runtime::{JobMetrics, JobRecord, JobStatus, StageTimes};

    fn output(job_id: usize, mask: Option<Field2D>) -> JobOutput {
        let metrics = mask.as_ref().map(|m| JobMetrics {
            l2_nm2: 10.0,
            pvband_nm2: 5.0,
            epe_violations: 0,
            shots: 7,
            iterations: 40,
            mask_hash: field_hash(m),
        });
        JobOutput {
            record: JobRecord {
                job_id,
                case: "wire".into(),
                tile: Some((0, 1)),
                grid: 64,
                attempts: 1,
                status: if mask.is_some() {
                    JobStatus::Done
                } else {
                    JobStatus::Failed("boom".into())
                },
                metrics,
                times: StageTimes { sim_ms: 1.0, optimize_ms: 2.0, evaluate_ms: 0.0 },
                wall_ms: 3.0,
            },
            mask,
        }
    }

    fn checker(r: usize, c: usize) -> f64 {
        if (r + c) % 2 == 0 {
            1.0
        } else {
            0.0
        }
    }

    #[test]
    fn header_round_trips() {
        let header = ShardHeader {
            shard: "7-1".into(),
            jobs: 3,
            fingerprint: 0xdead_beef_cafe_f00d,
            restored: 1,
        };
        assert_eq!(parse_shard_header(&shard_header_line(&header)).unwrap(), header);
        assert!(parse_shard_header("{\"kind\":\"run_header\"}").is_err());
    }

    #[test]
    fn job_ids_round_trip() {
        assert_eq!(encode_job_ids(&[0, 3, 5]), "0,3,5");
        assert_eq!(parse_job_ids("0,3,5").unwrap(), vec![0, 3, 5]);
        assert!(parse_job_ids("").is_err());
        assert!(parse_job_ids("1,x").is_err());
    }

    #[test]
    fn job_line_round_trips_mask_bit_exactly() {
        let mask = Field2D::from_fn(16, 16, checker);
        let sent = output(4, Some(mask.clone()));
        let got = parse_shard_job(&shard_job_line(&sent)).unwrap();
        assert_eq!(got.record, sent.record);
        let decoded = got.mask.expect("mask survives");
        assert_eq!(field_hash(&decoded), field_hash(&mask));
        assert_eq!(decoded.as_slice(), mask.as_slice());
    }

    #[test]
    fn failed_job_line_has_no_mask() {
        let sent = output(9, None);
        let line = shard_job_line(&sent);
        assert!(!line.contains("\"mask\":"), "{line}");
        let got = parse_shard_job(&line).unwrap();
        assert!(got.mask.is_none());
        assert!(matches!(got.record.status, JobStatus::Failed(_)));
    }

    #[test]
    fn corrupt_mask_is_rejected_by_hash() {
        let mask = Field2D::from_fn(16, 16, checker);
        let mut sent = output(4, Some(mask));
        // Tamper: claim a different hash than the shipped mask.
        sent.record.metrics.as_mut().unwrap().mask_hash ^= 1;
        let err = parse_shard_job(&shard_job_line(&sent)).unwrap_err();
        assert!(err.contains("hash mismatch"), "{err}");
    }

    #[test]
    fn done_record_without_mask_is_rejected() {
        let mask = Field2D::from_fn(16, 16, checker);
        let sent = output(4, Some(mask));
        let line = sent.record.to_json_wal(None); // drop the mask field
        let err = parse_shard_job(&line).unwrap_err();
        assert!(err.contains("carries none"), "{err}");
    }
}
