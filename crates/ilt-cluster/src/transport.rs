//! A minimal HTTP/1.1 request parser and response writer over `TcpStream` —
//! the shared wire transport of the job service (`ilt serve`) and the
//! cluster worker (`ilt worker`).
//!
//! Only the subset those services need: request-line + header parsing with
//! a hard size cap, `Content-Length` bodies with their own cap,
//! percent-decoded query strings, and HTTP/1.1 persistent connections —
//! [`Request::read_from_buffered`] carries pipelined bytes between requests
//! and reports whether the client permits keep-alive, while
//! [`serve_connection`] bounds each connection with a request cap and an
//! idle timeout. Robustness limits are explicit inputs ([`Limits`]) so
//! every handler path is testable without a server; socket read/write
//! timeouts are set on the stream by [`serve_connection`] (or by the caller
//! when driving the parser directly).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard caps applied while reading one request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes of request line + headers (including the blank line).
    pub max_head_bytes: usize,
    /// Maximum bytes of body (`Content-Length` beyond this is rejected
    /// before any body byte is read).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self { max_head_bytes: 8 * 1024, max_body_bytes: 8 * 1024 * 1024 }
    }
}

/// Why a request could not be read; maps 1:1 onto an HTTP status.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or encoding (400).
    BadRequest(String),
    /// Declared or actual body larger than [`Limits::max_body_bytes`] (413).
    PayloadTooLarge(usize),
    /// Head larger than [`Limits::max_head_bytes`] (431).
    HeadTooLarge,
    /// Socket error or timeout; no response can be assumed deliverable.
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method token.
    pub method: String,
    /// Percent-decoded path, query stripped.
    pub path: String,
    /// Percent-decoded query pairs, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The body, possibly empty.
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Reads and parses one request from `stream`.
    ///
    /// # Errors
    ///
    /// See [`HttpError`]; on any error the connection should be answered
    /// with the matching status (when possible) and closed.
    pub fn read_from(stream: &mut impl Read, limits: &Limits) -> Result<Request, HttpError> {
        let mut carry = Vec::new();
        Request::read_from_buffered(stream, &mut carry, limits).map(|(req, _)| req)
    }

    /// Reads one request from `stream`, consuming any bytes left in `carry`
    /// by the previous request first and leaving pipelined surplus there
    /// for the next call — the building block of a keep-alive connection
    /// loop. Also reports whether the client permits the connection to stay
    /// open (`HTTP/1.1` without `Connection: close`, or an explicit
    /// `Connection: keep-alive`).
    ///
    /// # Errors
    ///
    /// See [`HttpError`]. A clean close at a request boundary (empty buffer,
    /// zero-byte read) surfaces as [`HttpError::Io`] with
    /// [`io::ErrorKind::UnexpectedEof`]: the connection simply ended, and no
    /// response should be written.
    pub fn read_from_buffered(
        stream: &mut impl Read,
        carry: &mut Vec<u8>,
        limits: &Limits,
    ) -> Result<(Request, bool), HttpError> {
        let (head, mut tail) = read_head_buffered(stream, carry, limits)?;
        let head = std::str::from_utf8(&head)
            .map_err(|_| HttpError::BadRequest("non-utf8 request head".into()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
        {
            (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
            _ => {
                return Err(HttpError::BadRequest(format!(
                    "malformed request line: {request_line:?}"
                )))
            }
        };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::BadRequest(format!("unsupported version {version:?}")));
        }
        if !target.starts_with('/') {
            return Err(HttpError::BadRequest(format!("unsupported request target {target:?}")));
        }

        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::BadRequest(format!("malformed header: {line:?}")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let (raw_path, raw_query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        let path = percent_decode(raw_path, false)
            .map_err(|e| HttpError::BadRequest(format!("bad path encoding: {e}")))?;
        let query = parse_query(raw_query)
            .map_err(|e| HttpError::BadRequest(format!("bad query encoding: {e}")))?;

        let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
            Some((_, v)) => v
                .parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length {v:?}")))?,
            None => 0,
        };
        if content_length > limits.max_body_bytes {
            return Err(HttpError::PayloadTooLarge(content_length));
        }
        if tail.len() > content_length {
            // Bytes past this request's body are the next pipelined
            // request; they wait in the carry buffer.
            *carry = tail.split_off(content_length);
        }
        let mut body = tail;
        while body.len() < content_length {
            let mut chunk = [0u8; 8192];
            let want = (content_length - body.len()).min(chunk.len());
            let n = stream.read(&mut chunk[..want])?;
            if n == 0 {
                return Err(HttpError::BadRequest(format!(
                    "body truncated at {} of {content_length} bytes",
                    body.len()
                )));
            }
            body.extend_from_slice(&chunk[..n]);
        }

        let connection = headers
            .iter()
            .find(|(n, _)| n == "connection")
            .map(|(_, v)| v.to_ascii_lowercase());
        let keep_alive = match connection.as_deref() {
            Some(v) => {
                let tokens: Vec<&str> = v.split(',').map(str::trim).collect();
                !tokens.contains(&"close")
                    && (version == "HTTP/1.1" || tokens.contains(&"keep-alive"))
            }
            None => version == "HTTP/1.1",
        };

        Ok((
            Request {
                method: method.to_ascii_uppercase(),
                path,
                query,
                headers,
                body,
            },
            keep_alive,
        ))
    }
}

/// Reads up to and including the `\r\n\r\n` head terminator, starting from
/// whatever `carry` holds; returns the head (without the terminator) and
/// any body bytes read past it.
fn read_head_buffered(
    stream: &mut impl Read,
    carry: &mut Vec<u8>,
    limits: &Limits,
) -> Result<(Vec<u8>, Vec<u8>), HttpError> {
    let mut buf = std::mem::take(carry);
    loop {
        if let Some(end) = find_terminator(&buf) {
            let tail = buf.split_off(end + 4);
            buf.truncate(end);
            return Ok((buf, tail));
        }
        if buf.len() >= limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge);
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(if buf.is_empty() {
                // A clean close between requests: the end of a keep-alive
                // connection, not a protocol error.
                HttpError::Io(io::Error::from(io::ErrorKind::UnexpectedEof))
            } else {
                HttpError::BadRequest("connection closed mid-head".into())
            });
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_query(raw: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for pair in raw.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.push((percent_decode(k, true)?, percent_decode(v, true)?));
    }
    Ok(out)
}

/// Decodes `%XX` escapes (and `+` as space inside query components).
fn percent_decode(s: &str, plus_as_space: bool) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("truncated %-escape in {s:?}"))?;
                out.push(hex);
                i += 3;
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("non-utf8 after decoding {s:?}"))
}

/// A deterministic transport-level fault applied while *writing* a
/// response — the worker-side half of the `conn_refuse` / `read_stall` /
/// `torn_response` / `garble` chaos kinds in `FaultPlan`. The response is
/// computed normally; only its trip over the wire is damaged, so the
/// coordinator's retry/hash machinery is what gets exercised.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireFault {
    /// Write nothing at all and let the connection close (a refused or
    /// reset dispatch).
    ConnRefuse,
    /// Write the head and half the body, stall this long, then finish
    /// (a half-open, dribbling stream).
    ReadStall(Duration),
    /// Declare the full `Content-Length` but truncate the body at two
    /// thirds (a torn JSONL stream).
    TornResponse,
    /// Flip a run of bytes in the middle of the body (corruption the
    /// mask-hash verification must catch).
    Garble,
}

/// One response, written with `Content-Length` and `Connection: close`.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the always-present length/connection/type.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    content_type: &'static str,
    wire_fault: Option<WireFault>,
}

impl Response {
    /// A JSON response (the body must already be serialized JSON).
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        let mut body = body.into();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        Response {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "application/json",
            wire_fault: None,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "text/plain; charset=utf-8",
            wire_fault: None,
        }
    }

    /// A binary PGM image response.
    pub fn pgm(body: Vec<u8>) -> Response {
        Response {
            status: 200,
            headers: Vec::new(),
            body,
            content_type: "image/x-portable-graymap",
            wire_fault: None,
        }
    }

    /// A JSON Lines response (shard result streams).
    pub fn jsonl(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "application/jsonl",
            wire_fault: None,
        }
    }

    /// An error response with a JSON `{"error": ...}` body, using the
    /// workspace-shared escaping helper.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, format!("{{\"error\":\"{}\"}}", ilt_runtime::json_escape(message)))
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Arms a [`WireFault`] to be applied when this response is written
    /// (`None` clears it). Used by the worker's chaos injection.
    #[must_use]
    pub fn with_wire_fault(mut self, fault: Option<WireFault>) -> Response {
        self.wire_fault = fault;
        self
    }

    /// Serializes status line, headers, and body onto `w`, closing the
    /// connection (`Connection: close`).
    ///
    /// # Errors
    ///
    /// Propagates socket write errors (including write timeouts).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        self.write_with_connection(w, false)
    }

    /// [`Response::write_to`] with an explicit connection disposition:
    /// `keep_alive` announces `Connection: keep-alive` so the client may
    /// send another request on the same socket.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors (including write timeouts).
    pub fn write_with_connection(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        if self.wire_fault == Some(WireFault::ConnRefuse) {
            // Write nothing; the caller's connection teardown delivers the
            // refusal (the client sees EOF before any status line).
            return Ok(());
        }
        // A faulted write always announces `Connection: close`: the stream
        // is about to be damaged, so it must not be reused.
        let keep_alive = keep_alive && self.wire_fault.is_none();
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" }
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        match self.wire_fault {
            None | Some(WireFault::ConnRefuse) => w.write_all(&self.body)?,
            Some(WireFault::TornResponse) => {
                // Full content-length declared above; deliver only two
                // thirds and stop — a torn JSONL stream.
                w.write_all(&self.body[..self.body.len() * 2 / 3])?;
            }
            Some(WireFault::ReadStall(stall)) => {
                let half = self.body.len() / 2;
                w.write_all(&self.body[..half])?;
                w.flush()?;
                std::thread::sleep(stall);
                w.write_all(&self.body[half..])?;
            }
            Some(WireFault::Garble) => {
                let mut garbled = self.body.clone();
                let mid = garbled.len() / 2;
                for b in garbled.iter_mut().skip(mid).take(16) {
                    *b ^= 0xa5;
                }
                w.write_all(&garbled)?;
            }
        }
        w.flush()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        410 => "Gone",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Per-connection service options for [`serve_connection`]; both the job
/// service and the cluster worker derive one from their own configuration.
#[derive(Clone, Copy, Debug)]
pub struct ConnOptions {
    /// HTTP parsing limits (head/body size caps).
    pub limits: Limits,
    /// Socket read timeout while receiving a request.
    pub read_timeout: Duration,
    /// Socket write timeout per response.
    pub write_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before it is closed.
    pub idle_timeout: Duration,
    /// Maximum requests served per keep-alive connection (bounds how long
    /// one client can pin a handler thread).
    pub keep_alive_requests: usize,
}

impl Default for ConnOptions {
    fn default() -> Self {
        Self {
            limits: Limits::default(),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(5),
            keep_alive_requests: 32,
        }
    }
}

/// Serves one connection: a keep-alive loop bounded by the configured
/// per-connection request cap and idle timeout. Pipelined bytes carry over
/// between iterations; any protocol error answers with `Connection: close`
/// and ends the loop. `keep_open` is polled after each served request —
/// returning `false` (e.g. during a drain) downgrades the connection to
/// close after the in-flight response.
pub fn serve_connection(
    mut stream: TcpStream,
    options: &ConnOptions,
    mut route: impl FnMut(&Request) -> Response,
    keep_open: impl Fn() -> bool,
) {
    let _ = stream.set_read_timeout(Some(options.read_timeout));
    let _ = stream.set_write_timeout(Some(options.write_timeout));
    let mut carry = Vec::new();
    let mut served = 0usize;
    loop {
        // `refused` marks requests rejected before their input was fully
        // read; those sockets need draining below or the close would RST
        // the client.
        let (response, refused) =
            match Request::read_from_buffered(&mut stream, &mut carry, &options.limits) {
                Ok((request, client_keep_alive)) => {
                    let response = route(&request);
                    served += 1;
                    let keep_alive = client_keep_alive
                        && served < options.keep_alive_requests
                        && keep_open();
                    if keep_alive {
                        if response.write_with_connection(&mut stream, true).is_err() {
                            return;
                        }
                        // Between requests the (usually longer) idle
                        // timeout governs how long the socket may sit open.
                        let _ = stream.set_read_timeout(Some(options.idle_timeout));
                        continue;
                    }
                    (response, false)
                }
                Err(HttpError::BadRequest(why)) => (Response::error(400, &why), true),
                Err(HttpError::PayloadTooLarge(n)) => (
                    Response::error(
                        413,
                        &format!(
                            "body of {n} bytes exceeds the {}-byte limit",
                            options.limits.max_body_bytes
                        ),
                    ),
                    true,
                ),
                Err(HttpError::HeadTooLarge) => {
                    (Response::error(431, "request head too large"), true)
                }
                // Socket error, idle timeout, or a clean close between
                // requests: nothing trustworthy (or nothing at all) to
                // answer.
                Err(HttpError::Io(_)) => return,
            };
        let _ = response.write_to(&mut stream);
        if refused {
            // Closing with unread input in the receive buffer sends RST,
            // which can discard the error response before the client reads
            // it. Send FIN first, then sink the rest of the client's
            // request (bounded, so a hostile sender can't pin the thread).
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
            let mut sink = [0u8; 8192];
            let mut drained = 0usize;
            loop {
                match std::io::Read::read(&mut stream, &mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        drained += n;
                        if drained > options.limits.max_body_bytes {
                            break;
                        }
                    }
                }
            }
        }
        return;
    }
}

/// Standard (RFC 4648) base64 with padding; used to inline mask images in
/// JSON job views and shard result lines.
pub fn base64_encode(bytes: &[u8]) -> String {
    const ALPHABET: &[u8; 64] =
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [chunk[0], *chunk.get(1).unwrap_or(&0), *chunk.get(2).unwrap_or(&0)];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        let idx = [(n >> 18) & 63, (n >> 12) & 63, (n >> 6) & 63, n & 63];
        for (i, &x) in idx.iter().enumerate() {
            if i <= chunk.len() {
                out.push(ALPHABET[x as usize] as char);
            } else {
                out.push('=');
            }
        }
    }
    out
}

/// Inverse of [`base64_encode`]: standard RFC 4648 base64 with padding.
///
/// # Errors
///
/// Returns a message for a length that is not a multiple of four, a byte
/// outside the alphabet, or misplaced padding.
pub fn base64_decode(s: &str) -> Result<Vec<u8>, String> {
    fn sextet(c: u8) -> Result<u8, String> {
        match c {
            b'A'..=b'Z' => Ok(c - b'A'),
            b'a'..=b'z' => Ok(c - b'a' + 26),
            b'0'..=b'9' => Ok(c - b'0' + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(format!("byte {c:#04x} is not base64")),
        }
    }
    let bytes = s.as_bytes();
    if bytes.len() % 4 != 0 {
        return Err(format!("base64 length {} is not a multiple of 4", bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (c, chunk) in bytes.chunks(4).enumerate() {
        let pad = match (chunk[2], chunk[3]) {
            (b'=', b'=') => 2,
            (b'=', _) => return Err("misplaced base64 padding".into()),
            (_, b'=') => 1,
            _ => 0,
        };
        if pad > 0 && (c + 1) * 4 != bytes.len() {
            return Err("base64 padding before the final group".into());
        }
        let mut n: u32 = 0;
        for &b in &chunk[..4 - pad] {
            n = (n << 6) | u32::from(sextet(b)?);
        }
        n <<= 6 * pad;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        let mut cursor = io::Cursor::new(raw.to_vec());
        Request::read_from(&mut cursor, &Limits::default())
    }

    #[test]
    fn parses_a_get_with_query() {
        let req = parse(b"GET /v1/jobs/3?mask=base64&name=hello+w%C3%B6rld HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/jobs/3");
        assert_eq!(req.query_param("mask"), Some("base64"));
        assert_eq!(req.query_param("name"), Some("hello wörld"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b" / HTTP/1.1\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::BadRequest(_))),
                "{:?} must be a bad request",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn rejects_oversized_head_and_body() {
        let mut huge = b"GET /".to_vec();
        huge.extend(std::iter::repeat(b'a').take(10_000));
        huge.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert!(matches!(parse(&huge), Err(HttpError::HeadTooLarge)));

        let declared = b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        assert!(matches!(parse(declared), Err(HttpError::PayloadTooLarge(999999999))));
    }

    #[test]
    fn rejects_truncated_body_and_bad_length() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn response_has_length_and_close() {
        let mut out = Vec::new();
        Response::json(202, "{\"id\":1}")
            .with_header("retry-after", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"));
        assert!(text.contains("content-length: 9\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"id\":1}\n"));
    }

    #[test]
    fn pipelined_requests_share_one_carry_buffer() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /next HTTP/1.1\r\n\r\n";
        let mut cursor = io::Cursor::new(raw.to_vec());
        let mut carry = Vec::new();
        let (first, keep) =
            Request::read_from_buffered(&mut cursor, &mut carry, &Limits::default()).unwrap();
        assert_eq!(first.body, b"abc");
        assert!(keep, "1.1 without connection: close stays open");
        assert!(!carry.is_empty(), "the pipelined request waits in the carry");
        let (second, _) =
            Request::read_from_buffered(&mut cursor, &mut carry, &Limits::default()).unwrap();
        assert_eq!(second.path, "/next");
        assert!(carry.is_empty());
        // Exhausted input at a request boundary: a clean EOF, not a 400.
        match Request::read_from_buffered(&mut cursor, &mut carry, &Limits::default()) {
            Err(HttpError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected clean EOF, got {other:?}"),
        }
    }

    #[test]
    fn keep_alive_negotiation_follows_version_and_connection() {
        let cases: [(&[u8], bool); 4] = [
            (b"GET / HTTP/1.1\r\n\r\n", true),
            (b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false),
            (b"GET / HTTP/1.0\r\n\r\n", false),
            (b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true),
        ];
        for (raw, expect) in cases {
            let mut cursor = io::Cursor::new(raw.to_vec());
            let mut carry = Vec::new();
            let (_, keep) =
                Request::read_from_buffered(&mut cursor, &mut carry, &Limits::default()).unwrap();
            assert_eq!(keep, expect, "{:?}", String::from_utf8_lossy(raw));
        }
    }

    #[test]
    fn keep_alive_response_announces_it() {
        let mut out = Vec::new();
        Response::text(200, "ok").write_with_connection(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn wire_faults_damage_only_the_write() {
        let body = "abcdefghijklmnopqrstuvwxyz0123456789";
        let mut clean = Vec::new();
        Response::jsonl(200, body).write_to(&mut clean).unwrap();

        let mut refused = Vec::new();
        Response::jsonl(200, body)
            .with_wire_fault(Some(WireFault::ConnRefuse))
            .write_to(&mut refused)
            .unwrap();
        assert!(refused.is_empty(), "conn_refuse writes nothing at all");

        let mut torn = Vec::new();
        Response::jsonl(200, body)
            .with_wire_fault(Some(WireFault::TornResponse))
            .write_to(&mut torn)
            .unwrap();
        let torn_text = String::from_utf8_lossy(&torn);
        assert!(
            torn_text.contains(&format!("content-length: {}\r\n", body.len())),
            "torn response still declares the full length: {torn_text}"
        );
        assert_eq!(clean.len() - torn.len(), body.len() - body.len() * 2 / 3);

        let mut garbled = Vec::new();
        Response::jsonl(200, body)
            .with_wire_fault(Some(WireFault::Garble))
            .write_to(&mut garbled)
            .unwrap();
        assert_eq!(garbled.len(), clean.len(), "garble keeps the length");
        assert_ne!(garbled, clean, "garble flips body bytes");

        let mut stalled = Vec::new();
        Response::jsonl(200, body)
            .with_wire_fault(Some(WireFault::ReadStall(Duration::from_millis(1))))
            .write_to(&mut stalled)
            .unwrap();
        assert_eq!(stalled, clean, "read_stall delivers identical bytes, just slowly");

        // A faulted response never keeps the connection alive.
        let mut ka = Vec::new();
        Response::jsonl(200, body)
            .with_wire_fault(Some(WireFault::Garble))
            .write_with_connection(&mut ka, true)
            .unwrap();
        assert!(String::from_utf8_lossy(&ka).contains("connection: close\r\n"));
    }

    #[test]
    fn base64_matches_reference_vectors() {
        // RFC 4648 test vectors.
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn base64_decode_round_trips_and_rejects_damage() {
        for v in [&b""[..], b"f", b"fo", b"foo", b"foob", b"fooba", b"foobar"] {
            assert_eq!(base64_decode(&base64_encode(v)).unwrap(), v, "{v:?}");
        }
        // Every byte value survives the round trip.
        let all: Vec<u8> = (0u8..=255).collect();
        assert_eq!(base64_decode(&base64_encode(&all)).unwrap(), all);
        assert!(base64_decode("Zg=").is_err(), "bad length");
        assert!(base64_decode("Z!==").is_err(), "bad alphabet");
        assert!(base64_decode("Zg==Zm8=").is_err(), "padding mid-stream");
        assert!(base64_decode("=g==").is_err(), "padding in data position");
    }
}
