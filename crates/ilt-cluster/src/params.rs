//! Job parameterization shared by the coordinator, the job service, and
//! the cluster worker.
//!
//! [`JobParams`] is the single validated description of one ILT job: it is
//! decoded from a `POST /v1/jobs` submission, serialized back to the query
//! syntax for the state log ([`JobParams::to_query`]), and shipped over the
//! wire verbatim when the coordinator dispatches tile shards to workers —
//! every process re-derives identical [`BatchCase`]/[`BatchConfig`] inputs
//! via [`JobParams::plan`], which is what makes sharded output byte-equal
//! to a single-process run.

use ilt_core::{schedules, IltConfig, Stage};
use ilt_field::{parse_pgm, Field2D};
use ilt_layouts::{extended_case, iccad2013_case, via_pattern};
use ilt_optics::OpticsConfig;
use ilt_runtime::{BatchCase, BatchConfig, FaultPlan, SeamPolicy};

use crate::transport::Request;

/// Where a job's target geometry comes from.
#[derive(Clone, Debug)]
pub enum JobSource {
    /// A built-in benchmark case (`case1`..`case20`).
    Case(usize),
    /// A generated via pattern with the given seed.
    Via(u64),
    /// An inline PGM raster submitted in the request body.
    Inline(Field2D),
}

/// Per-request execution policy bounds, owned by the server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExecPolicy {
    /// Default per-attempt timeout, seconds; 0 = none.
    pub default_timeout_s: f64,
    /// Default retry budget per tile job.
    pub default_retries: u32,
    /// Hard cap on per-job worker threads a request may ask for.
    pub max_threads_per_job: usize,
    /// Accept the `inject=` fault-injection parameter (chaos testing only;
    /// keep off in production).
    pub allow_inject: bool,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        Self {
            default_timeout_s: 0.0,
            default_retries: 1,
            max_threads_per_job: 4,
            allow_inject: false,
        }
    }
}

/// A fully validated job specification, decoded from one `POST /v1/jobs`.
///
/// Defaults mirror the `ilt batch` CLI exactly, so a served job with no
/// overrides produces a mask byte-identical to the batch command for the
/// same case (which `verify_server.sh` asserts).
#[derive(Clone, Debug)]
pub struct JobParams {
    /// Target geometry.
    pub source: JobSource,
    /// Display / journal name.
    pub name: String,
    /// Rasterization grid for generated layouts.
    pub grid: usize,
    /// Physical clip width for inline targets, nm.
    pub clip_nm: f64,
    /// SOCS kernel count.
    pub kernels: usize,
    /// Tile window size.
    pub tile: usize,
    /// Tile guard band.
    pub halo: usize,
    /// Seam policy for stitched masks.
    pub seam: SeamPolicy,
    /// Schedule name (`fast`, `exact`, `via`).
    pub schedule: String,
    /// Optional per-stage iteration override.
    pub iters: Option<usize>,
    /// Coarsest admissible effective pitch, nm.
    pub max_eff_nm: f64,
    /// Worker threads inside this job's pool (clamped by [`ExecPolicy`]).
    pub threads: usize,
    /// Per-attempt timeout, seconds; 0 = none.
    pub timeout_s: f64,
    /// Retry budget per tile.
    pub retries: u32,
    /// Evaluate the stitched mask.
    pub evaluate: bool,
    /// Deterministic fault plan (empty unless the request passed `inject=`
    /// and the policy allows it).
    pub faults: FaultPlan,
}

/// Percent-encodes a query *value* for the state log: the HTTP layer hands
/// the store decoded strings, so free-text values (the job name) must be
/// re-escaped before they re-enter query syntax.
pub fn query_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Inverse of [`query_encode`]; malformed escapes pass through verbatim
/// (the log is trusted local state, not hostile input).
pub fn query_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
            if let Some(v) = hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                out.push(v);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_num<T: std::str::FromStr>(req: &Request, key: &str, default: T) -> Result<T, String> {
    match req.query_param(key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| format!("bad {key}={raw:?}")),
    }
}

impl JobParams {
    /// Decodes and validates a submission request (query parameters plus an
    /// optional inline PGM body).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid parameter; the
    /// handler maps it to `400 Bad Request`.
    pub fn from_request(req: &Request, policy: &ExecPolicy) -> Result<JobParams, String> {
        let source = match (req.query_param("case"), req.query_param("via"), req.body.is_empty()) {
            (Some(c), None, true) => {
                let id: usize = c
                    .strip_prefix("case")
                    .unwrap_or(c)
                    .parse()
                    .map_err(|_| format!("bad case={c:?}"))?;
                if !(1..=20).contains(&id) {
                    return Err(format!("case ids are 1..=10 (ICCAD) or 11..=20 (extended), got {id}"));
                }
                JobSource::Case(id)
            }
            (None, Some(v), true) => {
                let seed: u64 = v
                    .strip_prefix("via")
                    .unwrap_or(v)
                    .parse()
                    .map_err(|_| format!("bad via={v:?}"))?;
                JobSource::Via(seed)
            }
            (None, None, false) => {
                let img = parse_pgm(&req.body).map_err(|e| format!("bad PGM body: {e}"))?;
                let (rows, cols) = img.shape();
                if rows != cols || !rows.is_power_of_two() {
                    return Err(format!(
                        "inline target must be square power-of-two, got {rows}x{cols}"
                    ));
                }
                JobSource::Inline(img.threshold(0.5))
            }
            (None, None, true) => {
                return Err("submit one of ?case=N, ?via=SEED, or an inline PGM body".into())
            }
            _ => return Err("pass exactly one of ?case, ?via, or an inline PGM body".into()),
        };

        let name = match req.query_param("name") {
            Some(n) if !n.is_empty() => n.to_string(),
            _ => match &source {
                JobSource::Case(id) => format!("case{id}"),
                JobSource::Via(seed) => format!("via{seed}"),
                JobSource::Inline(_) => "inline".to_string(),
            },
        };

        let grid: usize = parse_num(req, "grid", 512)?;
        if !grid.is_power_of_two() || !(32..=4096).contains(&grid) {
            return Err(format!("grid must be a power of two in 32..=4096, got {grid}"));
        }
        let clip_nm: f64 = parse_num(req, "clip_nm", 2048.0)?;
        if !(clip_nm > 0.0) {
            return Err(format!("clip_nm must be positive, got {clip_nm}"));
        }
        let kernels: usize = parse_num(req, "kernels", 10)?;
        if !(1..=50).contains(&kernels) {
            return Err(format!("kernels must be in 1..=50, got {kernels}"));
        }
        let tile: usize = parse_num(req, "tile", 512)?;
        let halo: usize = parse_num(req, "halo", 64)?;
        let seam = match req.query_param("seam").unwrap_or("crop") {
            "crop" => SeamPolicy::Crop,
            other => match other.strip_prefix("blend:").and_then(|b| b.parse::<usize>().ok()) {
                Some(band) => SeamPolicy::Blend { band },
                None => return Err(format!("bad seam={other:?} (crop or blend:K)")),
            },
        };
        let schedule = req.query_param("schedule").unwrap_or("fast").to_string();
        if !matches!(schedule.as_str(), "fast" | "exact" | "via") {
            return Err(format!("unknown schedule {schedule:?} (fast|exact|via)"));
        }
        let iters = match req.query_param("iters") {
            None => None,
            Some(raw) => {
                let n: usize = raw.parse().map_err(|_| format!("bad iters={raw:?}"))?;
                if !(1..=10_000).contains(&n) {
                    return Err(format!("iters must be in 1..=10000, got {n}"));
                }
                Some(n)
            }
        };
        let max_eff_nm: f64 = parse_num(req, "max_eff_nm", 8.0)?;
        let threads = parse_num(req, "threads", 1usize)?.clamp(1, policy.max_threads_per_job.max(1));
        let timeout_s: f64 = parse_num(req, "timeout_s", policy.default_timeout_s)?;
        let retries: u32 = parse_num(req, "retries", policy.default_retries)?.min(10);
        let evaluate = match req.query_param("eval").unwrap_or("1") {
            "1" | "true" => true,
            "0" | "false" => false,
            other => return Err(format!("bad eval={other:?} (0 or 1)")),
        };
        let faults = match req.query_param("inject") {
            None => FaultPlan::none(),
            Some(_) if !policy.allow_inject => {
                return Err("fault injection is disabled (start the server with --allow-inject)"
                    .into())
            }
            Some(spec) => FaultPlan::parse(spec).map_err(|e| format!("bad inject: {e}"))?,
        };

        Ok(JobParams {
            source,
            name,
            grid,
            clip_nm,
            kernels,
            tile,
            halo,
            seam,
            schedule,
            iters,
            max_eff_nm,
            threads,
            timeout_s,
            retries,
            evaluate,
            faults,
        })
    }

    /// Serializes the parameters back into the query string
    /// [`JobParams::from_request`] parses — the persistence format of the
    /// state log and the dispatch format of the cluster wire protocol.
    /// Inline targets are carried separately (as a PGM file or body).
    pub fn to_query(&self) -> String {
        let mut q = String::new();
        match &self.source {
            JobSource::Case(id) => q.push_str(&format!("case={id}")),
            JobSource::Via(seed) => q.push_str(&format!("via={seed}")),
            JobSource::Inline(_) => {}
        }
        let mut push = |kv: String| {
            if !q.is_empty() {
                q.push('&');
            }
            q.push_str(&kv);
        };
        push(format!("name={}", query_encode(&self.name)));
        push(format!("grid={}", self.grid));
        push(format!("clip_nm={}", self.clip_nm));
        push(format!("kernels={}", self.kernels));
        push(format!("tile={}", self.tile));
        push(format!("halo={}", self.halo));
        match self.seam {
            SeamPolicy::Crop => push("seam=crop".into()),
            SeamPolicy::Blend { band } => push(format!("seam=blend:{band}")),
        }
        push(format!("schedule={}", self.schedule));
        if let Some(n) = self.iters {
            push(format!("iters={n}"));
        }
        push(format!("max_eff_nm={}", self.max_eff_nm));
        push(format!("threads={}", self.threads));
        push(format!("timeout_s={}", self.timeout_s));
        push(format!("retries={}", self.retries));
        push(format!("eval={}", if self.evaluate { 1 } else { 0 }));
        if !self.faults.is_empty() {
            push(format!("inject={}", self.faults));
        }
        q
    }

    /// Reconstructs parameters from a persisted query string (plus the
    /// saved target raster for inline jobs), re-using the full request
    /// validation path.
    ///
    /// # Errors
    ///
    /// Same messages as [`JobParams::from_request`].
    pub fn from_saved(
        query: &str,
        body: Vec<u8>,
        policy: &ExecPolicy,
    ) -> Result<JobParams, String> {
        let req = Request {
            method: "POST".into(),
            path: "/v1/jobs".into(),
            query: query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| {
                    let (k, v) = p.split_once('=').unwrap_or((p, ""));
                    (k.to_string(), query_decode(v))
                })
                .collect(),
            headers: Vec::new(),
            body,
        };
        // Recovery must replay faults even on a locked-down restart; the
        // original submission already passed the gate.
        let relaxed = ExecPolicy { allow_inject: true, ..*policy };
        JobParams::from_request(&req, &relaxed)
    }

    /// Materializes the batch-engine inputs. Mirrors `ilt batch` exactly:
    /// same optics template, same `IltConfig`, same schedule lookup.
    ///
    /// # Errors
    ///
    /// Currently none beyond construction; kept fallible for future
    /// validation that needs the rasterized target.
    pub fn plan(&self) -> Result<(BatchCase, BatchConfig), String> {
        let (target, nm_per_px) = match &self.source {
            JobSource::Case(id) => {
                let layout = if *id <= 10 { iccad2013_case(*id) } else { extended_case(*id) };
                (layout.rasterize(self.grid), layout.nm_per_px(self.grid))
            }
            JobSource::Via(seed) => {
                let layout = via_pattern(*seed);
                (layout.rasterize(self.grid), layout.nm_per_px(self.grid))
            }
            JobSource::Inline(img) => {
                let n = img.shape().0;
                (img.clone(), self.clip_nm / n as f64)
            }
        };
        let case = BatchCase { name: self.name.clone(), target, nm_per_px };
        let mut schedule: Vec<Stage> = match self.schedule.as_str() {
            "exact" => schedules::our_exact(),
            "via" => schedules::via_recipe(),
            _ => schedules::our_fast(),
        };
        if let Some(n) = self.iters {
            for stage in &mut schedule {
                stage.iterations = n;
            }
        }
        let config = BatchConfig {
            threads: self.threads,
            tile: self.tile,
            halo: self.halo,
            seam: self.seam,
            optics: OpticsConfig { num_kernels: self.kernels, ..OpticsConfig::default() },
            ilt: IltConfig { early_exit_window: Some(15), ..IltConfig::default() },
            schedule,
            max_eff_nm: self.max_eff_nm,
            timeout: (self.timeout_s > 0.0)
                .then(|| std::time::Duration::from_secs_f64(self.timeout_s)),
            max_retries: self.retries,
            evaluate_stitched: self.evaluate,
            faults: self.faults.clone(),
            ..BatchConfig::default()
        };
        Ok((case, config))
    }
}
