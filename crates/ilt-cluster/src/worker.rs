//! The `ilt worker` service: a replica that executes tile shards on behalf
//! of a coordinator.
//!
//! A worker is a small HTTP server over the shared [`crate::transport`]:
//!
//! - `GET /healthz` answers the coordinator's heartbeat probes.
//! - `POST /v1/shards?shard=S&jobs=..&<job query>` plans the job exactly as
//!   the coordinator (and `ilt batch`) would, runs only the listed job ids
//!   via [`ilt_runtime::run_shard`], and streams the per-tile results back
//!   as JSON Lines (see [`crate::wire`]). Execution happens on the
//!   connection's own thread, so several shards of one job (or of several
//!   jobs) run concurrently.
//! - `DELETE /v1/shards/S` cooperatively cancels a running shard: the
//!   shard's [`CancelToken`] is set and the in-flight `POST` returns with
//!   cancelled records at the next tile boundary.
//! - `POST /v1/shutdown` stops accepting new connections.
//!
//! With a state directory configured, each shard writes the standard
//! checkpoint WAL under `shard-<S>/`; a worker restarted after a crash
//! restores finished tiles from it instead of recomputing them (and wipes
//! the directory when its fingerprint does not match the new dispatch).
//! Fault injection is local by design: the coordinator strips `inject=`
//! from dispatched queries, and a worker only injects the plan given on
//! its own command line — so a crash fault kills one replica, not every
//! replica the shard is re-dispatched to. Transport faults (`conn_refuse`,
//! `read_stall`, `torn_response`, `garble`) damage the shard *response* on
//! the wire instead of the compute, keyed by this replica's per-shard
//! dispatch counter — the flaky-network regime where `/healthz` still
//! passes.

use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use ilt_runtime::{
    config_fingerprint, run_shard, CancelToken, FaultKind, FaultPlan, SimulatorCache, WAL_FILE,
};

use crate::params::{ExecPolicy, JobParams};
use crate::transport::{serve_connection, ConnOptions, Request, Response, WireFault};
use crate::wire::{parse_job_ids, shard_header_line, shard_job_line, ShardHeader};

/// Worker service configuration.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Listen address, e.g. `127.0.0.1:0`.
    pub addr: String,
    /// State directory for per-shard checkpoint WALs; `None` disables
    /// checkpointing (and local crash resume).
    pub state_dir: Option<PathBuf>,
    /// Fault plan injected into every shard this replica executes (chaos
    /// testing; empty in production).
    pub faults: FaultPlan,
    /// Execution policy bounds applied to dispatched job parameters.
    pub policy: ExecPolicy,
    /// Per-connection transport options. Shard execution happens inside
    /// the request handler, so the read timeout only governs request
    /// parsing — responses take as long as the shard takes.
    pub conn: ConnOptions,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            state_dir: None,
            faults: FaultPlan::none(),
            policy: ExecPolicy::default(),
            conn: ConnOptions::default(),
        }
    }
}

struct WorkerShared {
    config: WorkerConfig,
    cache: SimulatorCache,
    /// Cancel tokens of shards currently executing, by shard id.
    active: Mutex<HashMap<String, CancelToken>>,
    /// How often each shard id has been dispatched to this replica — the
    /// attempt counter transport faults (`conn_refuse@J:A` etc.) address.
    dispatch_counts: Mutex<HashMap<String, u32>>,
    shutdown: AtomicBool,
}

/// A bound (but not yet running) worker service.
pub struct Worker {
    listener: TcpListener,
    shared: Arc<WorkerShared>,
}

impl Worker {
    /// Binds the listen socket.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind(config: WorkerConfig) -> io::Result<Worker> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Worker {
            listener,
            shared: Arc::new(WorkerShared {
                config,
                cache: SimulatorCache::new(),
                active: Mutex::new(HashMap::new()),
                dispatch_counts: Mutex::new(HashMap::new()),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (resolves an ephemeral port request).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `POST /v1/shutdown`. One thread per connection; shard
    /// execution runs inside the handler.
    pub fn run(self) {
        let addr = self.listener.local_addr().ok();
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(&self.shared);
            let addr = addr;
            std::thread::spawn(move || {
                let options = shared.config.conn;
                let keep = {
                    let shared = Arc::clone(&shared);
                    move || !shared.shutdown.load(Ordering::SeqCst)
                };
                serve_connection(stream, &options, |req| route(&shared, addr, req), keep);
            });
        }
    }
}

/// Shard ids become directory names; confine them to a safe alphabet.
fn valid_shard_id(sid: &str) -> bool {
    !sid.is_empty()
        && sid.len() <= 64
        && sid.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'))
}

fn route(shared: &WorkerShared, addr: Option<std::net::SocketAddr>, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::text(200, "ok\n"),
        ("POST", ["v1", "shards"]) => run_dispatched_shard(shared, req),
        ("DELETE", ["v1", "shards", sid]) => {
            let active = shared.active.lock().expect("shard registry poisoned");
            match active.get(*sid) {
                Some(token) => {
                    token.cancel();
                    Response::json(202, format!("{{\"shard\":\"{sid}\",\"cancelling\":true}}"))
                }
                None => Response::error(404, &format!("no running shard {sid}")),
            }
        }
        ("POST", ["v1", "shutdown"]) => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // The accept loop only observes the flag on its next wakeup;
            // a throwaway self-connection provides it.
            if let Some(addr) = addr {
                let _ = TcpStream::connect(addr);
            }
            Response::json(200, "{\"shutdown\":true}")
        }
        _ => Response::error(404, &format!("no route for {} {}", req.method, req.path)),
    }
}

fn run_dispatched_shard(shared: &WorkerShared, req: &Request) -> Response {
    let Some(sid) = req.query_param("shard").map(str::to_string) else {
        return Response::error(400, "missing shard= id");
    };
    if !valid_shard_id(&sid) {
        return Response::error(400, &format!("bad shard id {sid:?}"));
    }
    let job_ids = match req.query_param("jobs") {
        None => return Response::error(400, "missing jobs= list"),
        Some(raw) => match parse_job_ids(raw) {
            Ok(ids) => ids,
            Err(e) => return Response::error(400, &e),
        },
    };
    // The dispatch query was validated at original submission; trust it
    // here (including a replayed inject= from a chaos submission), then
    // override with this replica's own fault plan so injected crashes stay
    // local to the replica they were aimed at.
    let relaxed = ExecPolicy { allow_inject: true, ..shared.config.policy };
    let mut params = match JobParams::from_request(req, &relaxed) {
        Ok(p) => p,
        Err(e) => return Response::error(400, &e),
    };
    if !shared.config.faults.is_empty() {
        params.faults = shared.config.faults.clone();
    }
    // Transport-fault injection (chaos testing): faults address this
    // replica's per-shard dispatch counter, so `conn_refuse@J:1` damages
    // exactly the first dispatch of J's shard *to this worker* and a
    // re-dispatch (or another replica) succeeds.
    let wire_fault = if params.faults.has_transport_faults() {
        let attempt = {
            let mut counts = shared.dispatch_counts.lock().expect("dispatch counts poisoned");
            if counts.len() > 4096 {
                counts.clear();
            }
            let n = counts.entry(sid.clone()).or_insert(0);
            *n += 1;
            *n
        };
        job_ids.iter().find_map(|&j| params.faults.transport_fault(j, attempt)).map(
            |kind| match kind {
                FaultKind::ConnRefuse => WireFault::ConnRefuse,
                FaultKind::ReadStall { ms } => {
                    WireFault::ReadStall(std::time::Duration::from_millis(ms))
                }
                FaultKind::TornResponse => WireFault::TornResponse,
                FaultKind::Garble => WireFault::Garble,
                _ => unreachable!("transport_fault only yields transport kinds"),
            },
        )
    } else {
        None
    };
    if wire_fault == Some(WireFault::ConnRefuse) {
        // Simulated connection refusal: drop the request without computing
        // (or writing a single byte — see `Response::with_wire_fault`).
        return Response::error(503, "injected conn_refuse").with_wire_fault(wire_fault);
    }
    let (case, mut config) = match params.plan() {
        Ok(planned) => planned,
        Err(e) => return Response::error(400, &e),
    };

    let token = CancelToken::new();
    config.cancel = token.clone();
    {
        let mut active = shared.active.lock().expect("shard registry poisoned");
        if active.contains_key(&sid) {
            return Response::error(409, &format!("shard {sid} is already running"));
        }
        active.insert(sid.clone(), token);
    }
    // Everything below must pass through `finish` so the registry entry is
    // removed on every exit path.
    let finish = |response: Response| -> Response {
        shared.active.lock().expect("shard registry poisoned").remove(&sid);
        response
    };

    let mut resume = false;
    if let Some(state_dir) = &shared.config.state_dir {
        let shard_dir = state_dir.join(format!("shard-{sid}"));
        resume = shard_dir.join(WAL_FILE).exists();
        config.checkpoint = Some(shard_dir);
    }
    let mut outcome = run_shard(&case, &config, &shared.cache, &job_ids, resume);
    if outcome.is_err() && resume {
        // A leftover WAL from a differently-parameterized (or corrupt)
        // earlier dispatch; wipe the shard dir and run fresh.
        if let Some(dir) = &config.checkpoint {
            let _ = std::fs::remove_dir_all(dir);
        }
        outcome = run_shard(&case, &config, &shared.cache, &job_ids, false);
    }
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => return finish(Response::error(400, &e)),
    };

    let header = ShardHeader {
        shard: sid.clone(),
        jobs: outcome.outputs.len(),
        fingerprint: config_fingerprint(std::slice::from_ref(&case), &config),
        restored: outcome.restored_jobs,
    };
    let mut body = shard_header_line(&header);
    body.push('\n');
    for output in &outcome.outputs {
        body.push_str(&shard_job_line(output));
        body.push('\n');
    }
    // Non-refusal transport faults damage the successful response on the
    // wire: the shard computed (and checkpointed) fine, the bytes did not
    // survive the network.
    finish(Response::jsonl(200, body).with_wire_fault(wire_fault))
}
