//! Lock-free counters and latency histograms shared by the job service's
//! `/metrics` endpoint and the cluster coordinator.
//!
//! Everything is atomics so the hot paths (admission, job completion, shard
//! completion) never contend with scrapes. Histogram buckets are cumulative
//! (`le` semantics) exactly as Prometheus text exposition format (version
//! 0.0.4) expects.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` (bulk events: recovery, eviction sweeps).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The fixed vocabulary of tile-failure classifications, mirroring
/// [`ilt_runtime::failure_kind`].
pub const FAILURE_KINDS: [&str; 5] = ["panic", "timeout", "numeric", "io", "other"];

/// Per-kind tile-failure counters, rendered as one labeled Prometheus
/// family (`ilt_tile_failures_total{kind="..."}`).
#[derive(Debug)]
pub struct FailureKinds {
    counts: [Counter; 5],
}

impl Default for FailureKinds {
    fn default() -> Self {
        Self { counts: std::array::from_fn(|_| Counter::default()) }
    }
}

impl FailureKinds {
    fn slot(kind: &str) -> usize {
        FAILURE_KINDS.iter().position(|&k| k == kind).unwrap_or(FAILURE_KINDS.len() - 1)
    }

    /// Counts one failed tile attempt of the given kind (an unknown kind
    /// lands in `other`).
    pub fn inc(&self, kind: &str) {
        self.counts[Self::slot(kind)].inc();
    }

    /// Current count for one kind.
    pub fn get(&self, kind: &str) -> u64 {
        self.counts[Self::slot(kind)].get()
    }

    /// Appends the family (`# HELP`/`# TYPE` plus one line per kind) to a
    /// Prometheus text exposition.
    pub fn render(&self, out: &mut String) {
        out.push_str(
            "# HELP ilt_tile_failures_total Failed tile jobs by failure classification.\n# TYPE ilt_tile_failures_total counter\n",
        );
        for (kind, counter) in FAILURE_KINDS.iter().zip(&self.counts) {
            out.push_str(&format!("ilt_tile_failures_total{{kind=\"{kind}\"}} {}\n", counter.get()));
        }
    }
}

/// Upper bounds (inclusive, milliseconds) of the latency buckets; an
/// implicit `+Inf` bucket follows.
pub const LATENCY_BUCKETS_MS: [f64; 10] =
    [1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0, 60000.0];

/// A fixed-bucket latency histogram (milliseconds).
#[derive(Debug)]
pub struct Histogram {
    /// Non-cumulative per-bucket counts; the last slot is the overflow
    /// (`+Inf`) bucket.
    counts: Vec<AtomicU64>,
    sum_ms_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: (0..=LATENCY_BUCKETS_MS.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_ms_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, ms: f64) {
        let idx = LATENCY_BUCKETS_MS
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        // Atomic f64 accumulation via compare-exchange on the bit pattern.
        let mut current = self.sum_ms_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + ms).to_bits();
            match self.sum_ms_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observations, ms.
    pub fn sum_ms(&self) -> f64 {
        f64::from_bits(self.sum_ms_bits.load(Ordering::Relaxed))
    }

    /// Appends the `_bucket`/`_sum`/`_count` series for one labeled stage
    /// to a Prometheus text exposition (`# HELP`/`# TYPE` are the caller's
    /// responsibility, so several stages can share one family).
    pub fn render(&self, name: &str, stage: &str, out: &mut String) {
        let mut cumulative = 0u64;
        for (i, bound) in LATENCY_BUCKETS_MS.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            out.push_str(&format!("{name}_bucket{{stage=\"{stage}\",le=\"{bound}\"}} {cumulative}\n"));
        }
        cumulative += self.counts[LATENCY_BUCKETS_MS.len()].load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{stage=\"{stage}\",le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!("{name}_sum{{stage=\"{stage}\"}} {}\n", self.sum_ms()));
        out.push_str(&format!("{name}_count{{stage=\"{stage}\"}} {cumulative}\n"));
    }
}

/// Live cluster-health metrics owned by the coordinator; the job service
/// appends them to its `/metrics` exposition when a cluster is configured.
#[derive(Debug, Default)]
pub struct ClusterStats {
    /// Worker replicas currently passing heartbeats (a gauge, written by
    /// the heartbeat monitor).
    pub workers_alive: AtomicU64,
    /// Shards re-dispatched to another worker after their worker died or
    /// became unreachable mid-shard.
    pub shards_redispatched: Counter,
    /// Heartbeat probes that failed (each probe, not each declared death).
    pub heartbeat_failures: Counter,
    /// End-to-end shard round-trip latency (dispatch to fully parsed
    /// response), labeled `stage="shard"`.
    pub shard_ms: Histogram,
    /// Straggler shards speculatively re-executed on a second worker.
    pub shards_speculated: Counter,
    /// Speculative copies that finished before their straggling original.
    pub speculation_wins: Counter,
    /// Workers ever registered (the initial `--workers` list plus every
    /// `POST /v1/members` join).
    pub members_joined: Counter,
    /// Workers that left the membership.
    pub members_left: Counter,
}

impl ClusterStats {
    /// Appends the cluster families to a Prometheus text exposition.
    pub fn render(&self, workers_configured: usize, out: &mut String) {
        out.push_str(&format!(
            "# HELP ilt_workers_configured Worker replicas currently registered.\n# TYPE ilt_workers_configured gauge\nilt_workers_configured {workers_configured}\n"
        ));
        out.push_str(&format!(
            "# HELP ilt_workers_alive Worker replicas currently passing heartbeats.\n# TYPE ilt_workers_alive gauge\nilt_workers_alive {}\n",
            self.workers_alive.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "# HELP ilt_shards_redispatched_total Shards re-dispatched after a worker death.\n# TYPE ilt_shards_redispatched_total counter\nilt_shards_redispatched_total {}\n",
            self.shards_redispatched.get()
        ));
        out.push_str(&format!(
            "# HELP ilt_worker_heartbeat_failures_total Failed worker heartbeat probes.\n# TYPE ilt_worker_heartbeat_failures_total counter\nilt_worker_heartbeat_failures_total {}\n",
            self.heartbeat_failures.get()
        ));
        out.push_str(&format!(
            "# HELP ilt_shards_speculated_total Straggler shards speculatively re-executed.\n# TYPE ilt_shards_speculated_total counter\nilt_shards_speculated_total {}\n",
            self.shards_speculated.get()
        ));
        out.push_str(&format!(
            "# HELP ilt_speculation_wins_total Speculative copies that beat the straggler.\n# TYPE ilt_speculation_wins_total counter\nilt_speculation_wins_total {}\n",
            self.speculation_wins.get()
        ));
        out.push_str(&format!(
            "# HELP ilt_members_joined_total Workers ever registered with the coordinator.\n# TYPE ilt_members_joined_total counter\nilt_members_joined_total {}\n",
            self.members_joined.get()
        ));
        out.push_str(&format!(
            "# HELP ilt_members_left_total Workers that left the membership.\n# TYPE ilt_members_left_total counter\nilt_members_left_total {}\n",
            self.members_left.get()
        ));
        out.push_str(
            "# HELP ilt_shard_latency_ms Shard dispatch round-trip latency, milliseconds.\n# TYPE ilt_shard_latency_ms histogram\n",
        );
        self.shard_ms.render("ilt_shard_latency_ms", "shard", out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_stats_render_is_prometheus_clean() {
        let stats = ClusterStats::default();
        stats.workers_alive.store(2, Ordering::Relaxed);
        stats.shards_redispatched.inc();
        stats.heartbeat_failures.add(3);
        stats.shard_ms.observe(42.0);
        stats.shards_speculated.inc();
        stats.speculation_wins.inc();
        stats.members_joined.add(2);
        stats.members_left.inc();
        let mut out = String::new();
        stats.render(2, &mut out);
        assert!(out.contains("ilt_workers_configured 2\n"), "{out}");
        assert!(out.contains("ilt_workers_alive 2\n"), "{out}");
        assert!(out.contains("ilt_shards_redispatched_total 1\n"));
        assert!(out.contains("ilt_worker_heartbeat_failures_total 3\n"));
        assert!(out.contains("ilt_shards_speculated_total 1\n"));
        assert!(out.contains("ilt_speculation_wins_total 1\n"));
        assert!(out.contains("ilt_members_joined_total 2\n"));
        assert!(out.contains("ilt_members_left_total 1\n"));
        assert!(out.contains("ilt_shard_latency_ms_bucket{stage=\"shard\",le=\"50\"} 1\n"));
        assert!(out.contains("ilt_shard_latency_ms_count{stage=\"shard\"} 1\n"));
        // Prometheus text format: every line is either a comment or
        // `name{labels} value`.
        for line in out.lines() {
            assert!(line.starts_with('#') || line.split_whitespace().count() == 2, "{line}");
        }
    }
}
