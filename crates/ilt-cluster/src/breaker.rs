//! Per-worker circuit breaker with decorrelated-jitter backoff.
//!
//! A [`Breaker`] quarantines a flaky-but-alive worker: consecutive shard
//! failures open it (no dispatches), a deterministic, seeded backoff decides
//! when it may admit a single half-open probe, and only a *successful shard*
//! — never a heartbeat — closes it again. That separation is the point:
//! `/healthz` proves the process is up, not that it can finish work, so
//! heartbeat success must not clear a quarantine earned by failing shards.
//!
//! Backoff follows the decorrelated-jitter rule
//! `next = min(cap, uniform(base, prev * 3))`, drawn from the in-tree
//! [`Xorshift64Star`] so chaos tests replay exactly from their seed.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use ilt_layouts::Xorshift64Star;

/// Tuning for one worker's breaker.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive shard failures that open the breaker.
    pub threshold: u32,
    /// First (and minimum) open interval.
    pub base: Duration,
    /// Ceiling on the open interval.
    pub cap: Duration,
    /// Seed for the jitter stream; mixed with the worker address so
    /// replicas sharing a config do not march in lockstep.
    pub seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            threshold: 3,
            base: Duration::from_millis(500),
            cap: Duration::from_secs(30),
            seed: 0xb7ea_4e5d_17c0_ffee,
        }
    }
}

/// Breaker state, in escalation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every dispatch admitted.
    Closed,
    /// Backoff elapsed: exactly one probe dispatch is in flight.
    HalfOpen,
    /// Quarantined: no dispatches until the backoff elapses.
    Open,
}

impl BreakerState {
    /// Prometheus gauge encoding: closed 0, half-open 1, open 2.
    pub fn gauge(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }

    /// Lower-case label for logs and the members listing.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::HalfOpen => "half-open",
            BreakerState::Open => "open",
        }
    }
}

struct Core {
    state: BreakerState,
    consecutive_fails: u32,
    backoff: Duration,
    open_until: Option<Instant>,
    probing: bool,
    rng: Xorshift64Star,
}

/// The closed → open → half-open state machine guarding one worker.
pub struct Breaker {
    cfg: BreakerConfig,
    core: Mutex<Core>,
}

impl Breaker {
    /// A closed breaker. `salt` individualizes the jitter stream per
    /// worker (the coordinator hashes the address into it).
    pub fn new(cfg: BreakerConfig, salt: u64) -> Self {
        let base = cfg.base.max(Duration::from_millis(1));
        let cfg = BreakerConfig { base, cap: cfg.cap.max(base), threshold: cfg.threshold.max(1), ..cfg };
        Breaker {
            core: Mutex::new(Core {
                state: BreakerState::Closed,
                consecutive_fails: 0,
                backoff: cfg.base,
                open_until: None,
                probing: false,
                rng: Xorshift64Star::new(cfg.seed ^ salt),
            }),
            cfg,
        }
    }

    /// May a dispatch go to this worker right now? Admitting from `Open`
    /// past the backoff deadline transitions to `HalfOpen` and claims the
    /// single probe slot; a second caller is refused until the probe
    /// settles via [`Breaker::on_success`] / [`Breaker::on_failure`].
    pub fn admit(&self) -> bool {
        let mut c = self.core.lock().unwrap();
        match c.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if c.open_until.is_some_and(|t| Instant::now() >= t) {
                    c.state = BreakerState::HalfOpen;
                    c.probing = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if c.probing {
                    false
                } else {
                    c.probing = true;
                    true
                }
            }
        }
    }

    /// A shard finished on this worker: close and reset the backoff.
    pub fn on_success(&self) {
        let mut c = self.core.lock().unwrap();
        c.state = BreakerState::Closed;
        c.consecutive_fails = 0;
        c.backoff = self.cfg.base;
        c.open_until = None;
        c.probing = false;
    }

    /// A shard failed on this worker. A half-open probe failure re-opens
    /// immediately with a grown backoff; closed failures count toward the
    /// threshold.
    pub fn on_failure(&self) {
        let mut c = self.core.lock().unwrap();
        c.probing = false;
        match c.state {
            BreakerState::HalfOpen => Self::reopen(&mut c, &self.cfg),
            BreakerState::Closed => {
                c.consecutive_fails += 1;
                if c.consecutive_fails >= self.cfg.threshold {
                    Self::reopen(&mut c, &self.cfg);
                }
            }
            // A straggling failure from a dispatch admitted before the
            // breaker opened; the quarantine already stands.
            BreakerState::Open => {}
        }
    }

    fn reopen(c: &mut Core, cfg: &BreakerConfig) {
        // Decorrelated jitter: uniform in [base, prev * 3], capped.
        let prev = c.backoff.max(cfg.base);
        let hi = prev.saturating_mul(3).min(cfg.cap).max(cfg.base);
        let span = hi.saturating_sub(cfg.base).as_nanos() as u64;
        let jitter = if span == 0 { 0 } else { c.rng.next_u64() % (span + 1) };
        c.backoff = (cfg.base + Duration::from_nanos(jitter)).min(cfg.cap);
        c.state = BreakerState::Open;
        c.consecutive_fails = 0;
        c.open_until = Some(Instant::now() + c.backoff);
    }

    /// Current state (transitions only happen inside `admit`, so an `Open`
    /// breaker past its deadline still reads `Open` until someone asks to
    /// dispatch).
    pub fn state(&self) -> BreakerState {
        self.core.lock().unwrap().state
    }

    /// The backoff interval the current/next quarantine uses.
    pub fn backoff(&self) -> Duration {
        self.core.lock().unwrap().backoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn cfg(threshold: u32, base_ms: u64, cap_ms: u64) -> BreakerConfig {
        BreakerConfig {
            threshold,
            base: Duration::from_millis(base_ms),
            cap: Duration::from_millis(cap_ms),
            seed: 7,
        }
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = Breaker::new(cfg(3, 20, 20), 1);
        assert!(b.admit());
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed, "two of three failures");
        b.on_success();
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed, "success resets the streak");
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(), "open breaker refuses dispatches");
    }

    #[test]
    fn half_open_admits_exactly_one_probe_and_success_closes() {
        let b = Breaker::new(cfg(1, 10, 10), 1);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit());
        thread::sleep(Duration::from_millis(15));
        assert!(b.admit(), "backoff elapsed: one probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.admit(), "probe slot is single-occupancy");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit() && b.admit(), "closed again: unrestricted");
    }

    #[test]
    fn failed_probe_reopens_with_grown_backoff() {
        let b = Breaker::new(cfg(1, 10, 1000), 1);
        b.on_failure();
        let first = b.backoff();
        thread::sleep(first + Duration::from_millis(5));
        assert!(b.admit());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        let second = b.backoff();
        assert!(second >= Duration::from_millis(10), "never below base");
        assert!(second <= first * 3, "decorrelated jitter is bounded by 3x prev");
        assert!(!b.admit(), "re-opened immediately");
    }

    #[test]
    fn jitter_stream_is_seed_deterministic_and_capped() {
        let run = |salt| {
            let b = Breaker::new(cfg(1, 10, 60), salt);
            let mut seq = Vec::new();
            for _ in 0..8 {
                b.on_failure();
                let d = b.backoff();
                assert!(d >= Duration::from_millis(10) && d <= Duration::from_millis(60));
                seq.push(d);
                // Force straight back to closed without waiting out the
                // backoff: on_success is the only reset path.
                b.on_success();
            }
            seq
        };
        assert_eq!(run(0xabc), run(0xabc), "same seed+salt, same backoffs");
        assert_ne!(run(0xabc), run(0xdef), "different salt decorrelates replicas");
    }

    #[test]
    fn heartbeats_cannot_clear_a_quarantine() {
        // The breaker has no API a heartbeat path could call: only
        // on_success (a finished shard) closes it. Pin that the state
        // survives arbitrary admit() polling while open.
        let b = Breaker::new(cfg(1, 200, 200), 1);
        b.on_failure();
        for _ in 0..50 {
            assert!(!b.admit());
        }
        assert_eq!(b.state(), BreakerState::Open);
    }
}
