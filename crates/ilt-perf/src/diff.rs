//! The regression gate: compare a fresh run against checked-in baselines.
//!
//! Entirely in-tree — no python, no external diff tool. A workload
//! regresses when its fresh median exceeds the baseline median by more
//! than the baseline's recorded threshold; everything else (torn files,
//! schema bumps, smoke results, missing baselines, unit changes) is a
//! typed [`PerfError`], never a silent pass.

use std::path::Path;

use crate::registry::{registry, Selection};
use crate::result::{BenchResult, PerfError};

/// One workload's baseline-vs-fresh comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    /// Workload name.
    pub workload: String,
    /// Baseline median, microseconds.
    pub baseline_us: f64,
    /// Fresh median, microseconds.
    pub fresh_us: f64,
    /// `fresh / baseline` (1.0 = unchanged, above 1 = slower).
    pub ratio: f64,
    /// Allowed fractional slowdown applied to this row.
    pub threshold: f64,
    /// True when `fresh > baseline * (1 + threshold)`.
    pub regressed: bool,
}

/// The full comparison across selected workloads.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiffReport {
    /// Per-workload rows, in fresh-file order (sorted by name).
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// Number of regressed rows.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regressed).count()
    }

    /// Human-readable table, one row per workload.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<24} {:>14} {:>14} {:>8} {:>10}  verdict\n",
            "workload", "baseline (us)", "fresh (us)", "ratio", "threshold"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<24} {:>14.1} {:>14.1} {:>7.2}x {:>9.2}x  {}\n",
                r.workload,
                r.baseline_us,
                r.fresh_us,
                r.ratio,
                1.0 + r.threshold,
                if r.regressed { "REGRESSED" } else { "ok" }
            ));
        }
        out
    }
}

/// Compares one fresh result against its baseline.
///
/// The regression threshold comes from the *baseline* file (the checked-in
/// number is the contract) unless `threshold_override` is given. The
/// boundary is exclusive: a fresh median exactly at
/// `baseline * (1 + threshold)` still passes.
///
/// # Errors
///
/// [`PerfError::SmokeResult`] if either side was recorded in smoke mode
/// (labelled with the offending side's path via `baseline_path` /
/// `fresh_path`), [`PerfError::UnitsMismatch`] when the two measure
/// different units.
pub fn diff_result(
    baseline: &BenchResult,
    fresh: &BenchResult,
    baseline_path: &Path,
    fresh_path: &Path,
    threshold_override: Option<f64>,
) -> Result<DiffRow, PerfError> {
    if baseline.smoke {
        return Err(PerfError::SmokeResult { path: baseline_path.to_path_buf() });
    }
    if fresh.smoke {
        return Err(PerfError::SmokeResult { path: fresh_path.to_path_buf() });
    }
    if baseline.units != fresh.units {
        return Err(PerfError::UnitsMismatch {
            workload: fresh.workload.clone(),
            baseline: baseline.units.clone(),
            fresh: fresh.units.clone(),
        });
    }
    let threshold = threshold_override.unwrap_or(baseline.threshold);
    let limit = baseline.median_us * (1.0 + threshold);
    let ratio = if baseline.median_us > 0.0 {
        fresh.median_us / baseline.median_us
    } else {
        f64::INFINITY
    };
    Ok(DiffRow {
        workload: fresh.workload.clone(),
        baseline_us: baseline.median_us,
        fresh_us: fresh.median_us,
        ratio,
        threshold,
        regressed: fresh.median_us > limit,
    })
}

/// Diffs every `BENCH_*.json` under `fresh_dir` (filtered by `selection`)
/// against its namesake in `baseline_dir`.
///
/// Tag filtering consults the registry; a fresh result whose workload has
/// left the registry still diffs by name. A selected fresh result without
/// a baseline is a [`PerfError::MissingBaseline`] — new workloads must
/// check in a number before they can ride the gate.
///
/// # Errors
///
/// Any load error from either side, plus everything [`diff_result`]
/// raises. An empty selection (no fresh results matched) errors too: a
/// gate that checked nothing must not look green.
pub fn diff_dirs(
    baseline_dir: &Path,
    fresh_dir: &Path,
    selection: &Selection,
    threshold_override: Option<f64>,
) -> Result<DiffReport, PerfError> {
    let reg = registry();
    let mut names: Vec<String> = std::fs::read_dir(fresh_dir)
        .map_err(|source| PerfError::Io { path: fresh_dir.to_path_buf(), source })?
        .filter_map(|entry| {
            let file = entry.ok()?.file_name().into_string().ok()?;
            let workload = file.strip_prefix("BENCH_")?.strip_suffix(".json")?.to_string();
            Some(workload)
        })
        .filter(|name| {
            let tags = reg.iter().find(|w| w.name == name).map(|w| w.tags).unwrap_or(&[]);
            selection.matches_parts(name, tags)
        })
        .collect();
    names.sort_unstable();
    if names.is_empty() {
        return Err(PerfError::Malformed {
            path: fresh_dir.to_path_buf(),
            detail: "no fresh BENCH_*.json results match the selection".into(),
        });
    }
    let mut rows = Vec::with_capacity(names.len());
    for name in names {
        let fresh_path = fresh_dir.join(BenchResult::file_name(&name));
        let fresh = BenchResult::load(&fresh_path)?;
        let baseline_path = baseline_dir.join(BenchResult::file_name(&name));
        if !baseline_path.exists() {
            return Err(PerfError::MissingBaseline { workload: name, path: baseline_path });
        }
        let baseline = BenchResult::load(&baseline_path)?;
        rows.push(diff_result(&baseline, &fresh, &baseline_path, &fresh_path, threshold_override)?);
    }
    Ok(DiffReport { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(median: f64, threshold: f64) -> BenchResult {
        BenchResult {
            workload: "w".into(),
            units: "us_per_op".into(),
            threshold,
            reps: 5,
            median_us: median,
            mad_us: 1.0,
            smoke: false,
            git_rev: "deadbeef".into(),
            threads: 4,
            simd: "scalar".into(),
            extra: vec![],
        }
    }

    fn row(baseline: &BenchResult, fresh: &BenchResult) -> DiffRow {
        diff_result(baseline, fresh, Path::new("b.json"), Path::new("f.json"), None)
            .expect("comparable results")
    }

    #[test]
    fn threshold_boundary_is_exclusive() {
        let baseline = result(100.0, 0.5);
        // Exactly at the limit: passes.
        assert!(!row(&baseline, &result(150.0, 0.5)).regressed);
        // A hair past: regresses.
        assert!(row(&baseline, &result(150.0 + 1e-9, 0.5)).regressed);
        // Well under: passes, ratio below 1.
        let fast = row(&baseline, &result(50.0, 0.5));
        assert!(!fast.regressed);
        assert!(fast.ratio < 1.0);
    }

    #[test]
    fn threshold_comes_from_the_baseline_unless_overridden() {
        let baseline = result(100.0, 0.1);
        let fresh = result(120.0, 9.9); // fresh file's threshold is ignored
        assert!(row(&baseline, &fresh).regressed);
        let relaxed =
            diff_result(&baseline, &fresh, Path::new("b"), Path::new("f"), Some(0.5)).unwrap();
        assert!(!relaxed.regressed);
    }

    #[test]
    fn smoke_results_are_refused_on_either_side() {
        let mut smoke = result(100.0, 0.5);
        smoke.smoke = true;
        let full = result(100.0, 0.5);
        assert!(matches!(
            diff_result(&smoke, &full, Path::new("b"), Path::new("f"), None),
            Err(PerfError::SmokeResult { .. })
        ));
        assert!(matches!(
            diff_result(&full, &smoke, Path::new("b"), Path::new("f"), None),
            Err(PerfError::SmokeResult { .. })
        ));
    }

    #[test]
    fn units_mismatch_is_an_error() {
        let baseline = result(100.0, 0.5);
        let mut fresh = result(100.0, 0.5);
        fresh.units = "jobs_per_s".into();
        assert!(matches!(
            diff_result(&baseline, &fresh, Path::new("b"), Path::new("f"), None),
            Err(PerfError::UnitsMismatch { .. })
        ));
    }

    #[test]
    fn dir_diff_surfaces_missing_baselines_and_torn_files() {
        let dir = std::env::temp_dir().join(format!("ilt_perf_diff_{}", std::process::id()));
        let baselines = dir.join("baselines");
        let fresh = dir.join("fresh");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&baselines).unwrap();
        std::fs::create_dir_all(&fresh).unwrap();

        // Fresh result with no baseline: MissingBaseline.
        result(100.0, 0.5).write(&fresh).unwrap();
        assert!(matches!(
            diff_dirs(&baselines, &fresh, &Selection::all(), None),
            Err(PerfError::MissingBaseline { .. })
        ));

        // Torn baseline: Malformed, not a pass.
        let json = result(100.0, 0.5).to_json();
        std::fs::write(baselines.join("BENCH_w.json"), &json[..json.len() / 3]).unwrap();
        assert!(matches!(
            diff_dirs(&baselines, &fresh, &Selection::all(), None),
            Err(PerfError::Malformed { .. })
        ));

        // Intact baseline: one clean row.
        result(100.0, 0.5).write(&baselines).unwrap();
        let report = diff_dirs(&baselines, &fresh, &Selection::all(), None).unwrap();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.regressions(), 0);
        assert!(report.render().contains("ok"));

        // Empty selection must not look green.
        let none = Selection { tags: vec![], names: vec!["nomatch_*".into()] };
        assert!(diff_dirs(&baselines, &fresh, &none, None).is_err());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
