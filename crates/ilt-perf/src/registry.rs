//! The workload registry: every benchmark the barometer knows, as data.
//!
//! A [`Workload`] is one named, tagged measurement with its own regression
//! threshold; [`registry`] returns the full list and [`select`] filters it
//! by tag and name glob — the shapes `ilt bench run --tag fft` and
//! `ilt bench run --name 'sim_*'` need.

use crate::measure::{MeasureConfig, Sample};
use crate::result::PerfError;
use crate::workloads;

/// One benchmark in the registry.
pub struct Workload {
    /// Unique registry name; also names the baseline file
    /// (`BENCH_<name>.json`).
    pub name: &'static str,
    /// Family tags for `--tag` selection (`fft`, `simulator`, …).
    pub tags: &'static [&'static str],
    /// What one operation is; diff refuses to compare mismatched units.
    pub units: &'static str,
    /// Allowed fractional slowdown vs. the checked-in baseline before
    /// `diff` reports a regression (0.5 = fail past 1.5x). Noisier
    /// workloads (socket round trips, thread pools) get wider thresholds.
    pub threshold: f64,
    /// One-line description for `ilt bench list`.
    pub notes: &'static str,
    /// Runs the workload: builds fixtures (sized down in smoke mode),
    /// measures the hot operation, self-checks where a reference path
    /// exists, and returns the sample.
    pub run: fn(&MeasureConfig) -> Result<Sample, PerfError>,
}

/// Every workload the barometer ships, covering each layer of the stack.
pub fn registry() -> Vec<Workload> {
    vec![
        Workload {
            name: "fft_dense_inverse",
            tags: &["fft"],
            units: "us_per_op",
            threshold: 0.5,
            notes: "dense pad-then-invert of a PxP kernel spectrum at N=1024 (the slow reference path)",
            run: workloads::fft::dense_inverse,
        },
        Workload {
            name: "fft_pruned_inverse",
            tags: &["fft"],
            units: "us_per_op",
            threshold: 0.5,
            notes: "pruned padded inverse (inverse_padded_with) at N=1024, P=25; carries the injected-delay hook",
            run: workloads::fft::pruned_inverse,
        },
        Workload {
            name: "fft_real_forward",
            tags: &["fft"],
            units: "us_per_op",
            threshold: 0.5,
            notes: "Hermitian real-input forward (forward_real_with) at N=1024",
            run: workloads::fft::real_forward,
        },
        Workload {
            name: "fft_pruned_forward",
            tags: &["fft"],
            units: "us_per_op",
            threshold: 0.5,
            notes: "pruned real forward (forward_real_cropped_with) at N=1024, P=25 — crop fused into the column pass",
            run: workloads::fft::pruned_forward,
        },
        Workload {
            name: "fft_batch_forward",
            tags: &["fft"],
            units: "us_per_op",
            // Allocates its full batch of output spectra per op, so page
            // faults dominate the dispersion; gets the wider threshold the
            // other allocation-heavy workloads use.
            threshold: 0.8,
            notes: "batched real forward (forward_real_batch_with): 4 images at N=1024 through one plan and scratch arena",
            run: workloads::fft::batch_forward,
        },
        Workload {
            name: "fft_batch_inverse",
            tags: &["fft"],
            units: "us_per_op",
            threshold: 0.5,
            notes: "batched pruned inverse (inverse_padded_batch_with): 4 spectra at N=1024, P=25 sharing one twist cache",
            run: workloads::fft::batch_inverse,
        },
        Workload {
            name: "sim_aerial",
            tags: &["simulator"],
            units: "us_per_op",
            threshold: 0.5,
            notes: "one aerial image (SOCS sum over 10 kernels) of ICCAD case 1 at grid 512",
            run: workloads::simulator::aerial,
        },
        Workload {
            name: "sim_vjp",
            tags: &["simulator"],
            units: "us_per_op",
            threshold: 0.5,
            notes: "one aerial vector-Jacobian product (the backward hot path) at grid 512",
            run: workloads::simulator::vjp,
        },
        Workload {
            name: "autodiff_backward",
            tags: &["autodiff"],
            units: "us_per_op",
            threshold: 0.5,
            notes: "reverse sweep of the full ILT pipeline graph (pool-sigmoid-Hopkins-resist-loss) at grid 256",
            run: workloads::autodiff::backward,
        },
        Workload {
            name: "runtime_tile_pipeline",
            tags: &["runtime"],
            units: "us_per_op",
            threshold: 0.8,
            notes: "tiled batch end-to-end via run_batch: 256 px via clip, 9 tiles, 2 worker threads",
            run: workloads::runtime::tile_pipeline,
        },
        Workload {
            name: "server_jobs",
            tags: &["server"],
            units: "us_per_op",
            threshold: 1.0,
            notes: "loopback HTTP: submit+poll 3 jobs on one keep-alive connection with a cancellation mixed in",
            run: workloads::server::jobs,
        },
        Workload {
            name: "server_fairness",
            tags: &["server"],
            units: "us_per_op",
            threshold: 1.0,
            notes: "multi-tenant admission: 3 clients at 3 priority classes submit interleaved and poll to done through the weighted class queues",
            run: workloads::server::fairness,
        },
        Workload {
            name: "cluster_shard",
            tags: &["cluster"],
            units: "us_per_op",
            threshold: 1.0,
            notes: "coordinator shard dispatch + reassembly of a 9-tile job across 2 loopback workers",
            run: workloads::cluster::shard_roundtrip,
        },
        Workload {
            name: "cluster_speculation",
            tags: &["cluster"],
            units: "us_per_op",
            threshold: 1.0,
            notes: "straggler speculation: one of 2 replicas stalls every shard on the wire; detection + re-execution race, first result wins",
            run: workloads::cluster::speculation_race,
        },
    ]
}

/// Matches `name` against a glob with `*` wildcards (no other metachars —
/// registry names are flat identifiers).
pub fn glob_match(pattern: &str, name: &str) -> bool {
    fn rec(p: &[u8], n: &[u8]) -> bool {
        match (p.first(), n.first()) {
            (None, None) => true,
            (Some(b'*'), _) => rec(&p[1..], n) || (!n.is_empty() && rec(p, &n[1..])),
            (Some(pc), Some(nc)) if pc == nc => rec(&p[1..], &n[1..]),
            _ => false,
        }
    }
    rec(pattern.as_bytes(), name.as_bytes())
}

/// A tag/name filter over the registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Selection {
    /// Keep workloads carrying any of these tags (empty = all tags).
    pub tags: Vec<String>,
    /// Keep workloads whose name matches any of these globs (empty = all).
    pub names: Vec<String>,
}

impl Selection {
    /// The match-everything selection.
    pub fn all() -> Selection {
        Selection::default()
    }

    /// True when the selection has no constraints.
    pub fn is_all(&self) -> bool {
        self.tags.is_empty() && self.names.is_empty()
    }

    /// Does `w` pass both filters?
    pub fn matches(&self, w: &Workload) -> bool {
        self.matches_parts(w.name, w.tags)
    }

    /// [`Selection::matches`] on raw name/tags (for results whose workload
    /// is no longer in the registry).
    pub fn matches_parts(&self, name: &str, tags: &[&str]) -> bool {
        let tag_ok = self.tags.is_empty() || tags.iter().any(|t| self.tags.iter().any(|q| q == t));
        let name_ok =
            self.names.is_empty() || self.names.iter().any(|g| glob_match(g, name));
        tag_ok && name_ok
    }
}

/// Filters the full registry through `selection`.
pub fn select(selection: &Selection) -> Vec<Workload> {
    registry().into_iter().filter(|w| selection.matches(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_cover_every_layer() {
        let all = registry();
        let mut names: Vec<_> = all.iter().map(|w| w.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate workload names");
        for family in ["fft", "simulator", "autodiff", "runtime", "server", "cluster"] {
            assert!(
                all.iter().any(|w| w.tags.contains(&family)),
                "no workload tagged {family}"
            );
        }
    }

    #[test]
    fn glob_matching() {
        assert!(glob_match("fft_*", "fft_pruned_inverse"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("sim_aerial", "sim_aerial"));
        assert!(glob_match("*_inverse", "fft_dense_inverse"));
        assert!(!glob_match("fft_*", "sim_aerial"));
        assert!(!glob_match("fft", "fft_real_forward"));
        assert!(!glob_match("", "x"));
        assert!(glob_match("**", "x"));
    }

    #[test]
    fn selection_filters_by_tag_and_name() {
        let fft = select(&Selection { tags: vec!["fft".into()], names: vec![] });
        assert_eq!(fft.len(), 6);
        let one = select(&Selection { tags: vec![], names: vec!["sim_*".into()] });
        assert_eq!(one.len(), 2);
        let both = select(&Selection {
            tags: vec!["fft".into()],
            names: vec!["*_forward".into()],
        });
        let names: Vec<_> = both.iter().map(|w| w.name).collect();
        assert_eq!(names, ["fft_real_forward", "fft_pruned_forward", "fft_batch_forward"]);
        assert_eq!(select(&Selection::all()).len(), registry().len());
    }
}
