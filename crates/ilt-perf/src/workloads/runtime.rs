//! Runtime workload: the tiled batch pipeline end-to-end — tiling, the
//! worker pool, the shared simulator cache, and halo-crop stitching.

use ilt_core::{schedules, IltConfig, Stage};
use ilt_layouts::via_pattern;
use ilt_optics::OpticsConfig;
use ilt_runtime::{planned_job_list, run_batch, BatchCase, BatchConfig, SeamPolicy, SimulatorCache};

use crate::measure::{measure, MeasureConfig, Sample};
use crate::result::PerfError;

const NAME: &str = "runtime_tile_pipeline";

/// One full `run_batch` of a via clip split into overlapping tiles on a
/// multi-threaded pool. The simulator cache is shared across reps (as it
/// is across jobs in production), so reps time the steady-state pipeline,
/// not kernel construction.
pub fn tile_pipeline(cfg: &MeasureConfig) -> Result<Sample, PerfError> {
    let (grid, tile, halo, threads, iters) =
        if cfg.smoke { (64, 64, 16, 1, 1) } else { (256, 128, 32, 2, 3) };
    let layout = via_pattern(7);
    let case = BatchCase {
        name: "bench_via7".into(),
        target: layout.rasterize(grid),
        nm_per_px: layout.nm_per_px(grid),
    };
    let config = BatchConfig {
        threads,
        tile,
        halo,
        seam: SeamPolicy::Crop,
        optics: OpticsConfig { num_kernels: 3, ..OpticsConfig::default() },
        ilt: IltConfig::default(),
        schedule: vec![Stage::low_res(2, iters)],
        max_eff_nm: 8.0,
        evaluate_stitched: false,
        ..BatchConfig::default()
    };
    let cases = std::slice::from_ref(&case);
    let tiles = planned_job_list(cases, &config)
        .map_err(|e| PerfError::workload(NAME, e))?
        .len();

    let cache = SimulatorCache::new();
    let mut failure: Option<String> = None;
    let sample = measure(cfg, || {
        if failure.is_some() {
            return;
        }
        match run_batch(cases, &config, &cache) {
            Ok(outcome) if outcome.report.failed_jobs() > 0 => {
                failure = Some(format!("{} job(s) failed", outcome.report.failed_jobs()));
            }
            Ok(_) => {}
            Err(e) => failure = Some(e),
        }
    });
    if let Some(detail) = failure {
        return Err(PerfError::workload(NAME, detail));
    }
    // The schedule must have survived clamping, or we timed a no-op.
    let clamped = schedules::clamp_scales(
        &schedules::clamp_effective_pitch(&config.schedule, case.nm_per_px, config.max_eff_nm),
        tile.min(grid),
        32,
    );
    if clamped.is_empty() {
        return Err(PerfError::workload(NAME, "schedule clamped to nothing"));
    }
    Ok(sample
        .with_extra("grid", grid as f64)
        .with_extra("tiles", tiles as f64)
        .with_extra("threads", threads as f64))
}
