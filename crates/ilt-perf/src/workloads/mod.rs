//! The workload families, one module per performance-critical layer.
//!
//! Every function here has the same shape: build fixtures (sized down in
//! smoke mode), call [`crate::measure::measure`] around the hot operation,
//! self-check against a reference path where one exists, and return the
//! [`crate::measure::Sample`] with descriptive extras attached.

pub mod autodiff;
pub mod cluster;
pub mod fft;
pub mod runtime;
pub mod server;
pub mod simulator;

use ilt_layouts::Xorshift64Star;

/// Deterministic pseudo-random reals in `[-1, 1)` — fixtures must be
/// identical on every machine and every run.
pub(crate) fn noise(rng: &mut Xorshift64Star) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}
