//! Autodiff workload: the reverse sweep through the full ILT forward
//! pipeline graph — smoothing pool, sigmoid binarization, Hopkins imaging,
//! sigmoid resist, and the L2 loss — the per-iteration gradient cost.

use std::hint::black_box;
use std::sync::Arc;

use ilt_autodiff::Graph;
use ilt_field::Field2D;
use ilt_layouts::iccad2013_case;
use ilt_optics::{LithoSimulator, OpticsConfig};

use crate::measure::{measure, MeasureConfig, Sample};
use crate::result::PerfError;

/// One backward sweep over the pipeline graph. The graph is built once in
/// setup; `Graph::backward` is pure per call, so reps time exactly the
/// reverse traversal (the thing each gradient iteration pays).
pub fn backward(cfg: &MeasureConfig) -> Result<Sample, PerfError> {
    let (grid, kernels) = if cfg.smoke { (32, 3) } else { (256, 6) };
    let layout = iccad2013_case(1);
    let target = layout.rasterize(grid);
    let optics = OpticsConfig {
        grid,
        nm_per_px: layout.nm_per_px(grid),
        num_kernels: kernels,
        ..OpticsConfig::default()
    };
    let sim =
        Arc::new(LithoSimulator::new(optics).map_err(|e| PerfError::workload("autodiff_backward", e))?);

    // A smooth, non-binary initial mask so every node sees generic values.
    let mask = Field2D::from_fn(grid, grid, |r, c| {
        0.5 + 0.35 * ((r as f64 * 0.7).sin() * (c as f64 * 0.45 + 0.2).cos())
    });

    let mut g = Graph::new(sim);
    let m_raw = g.leaf(mask);
    let smoothed = g.avg_pool_same(m_raw, 3);
    let m = g.sigmoid(smoothed, 4.0, 0.5);
    let i_out = g.hopkins(m, false);
    let z_out = g.resist_sigmoid(i_out, 50.0, 1.0, 0.225);
    let t = g.leaf(target);
    let loss = g.sq_diff_sum(z_out, t);

    let sample = measure(cfg, || {
        let grads = g.backward(loss);
        black_box(grads.wrt(m_raw).is_some());
    });
    Ok(sample
        .with_extra("grid", grid as f64)
        .with_extra("kernels", kernels as f64)
        .with_extra("nodes", g.len() as f64))
}
