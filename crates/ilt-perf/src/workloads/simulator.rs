//! Simulator workloads: the SOCS aerial image and its vector-Jacobian
//! product — the forward and backward halves of every ILT iteration.

use std::hint::black_box;
use std::sync::Arc;

use ilt_field::Field2D;
use ilt_layouts::iccad2013_case;
use ilt_optics::{LithoSimulator, OpticsConfig};

use crate::measure::{measure, MeasureConfig, Sample};
use crate::result::PerfError;

/// Simulator fixture: ICCAD case 1 at the serving grid (512 px, 10
/// kernels) in full mode, a 64 px clip with 3 kernels in smoke mode.
fn fixture(cfg: &MeasureConfig, workload: &str) -> Result<(Arc<LithoSimulator>, Field2D), PerfError> {
    let (grid, kernels) = if cfg.smoke { (64, 3) } else { (512, 10) };
    let layout = iccad2013_case(1);
    let target = layout.rasterize(grid);
    let optics = OpticsConfig {
        grid,
        nm_per_px: layout.nm_per_px(grid),
        num_kernels: kernels,
        ..OpticsConfig::default()
    };
    let sim = LithoSimulator::new(optics).map_err(|e| PerfError::workload(workload, e))?;
    Ok((Arc::new(sim), target))
}

/// One aerial image: `num_kernels` pruned inverse transforms plus the
/// coherent sum — the cost of every forward simulation.
pub fn aerial(cfg: &MeasureConfig) -> Result<Sample, PerfError> {
    let (sim, mask) = fixture(cfg, "sim_aerial")?;
    let sample = measure(cfg, || {
        black_box(sim.aerial(&mask, false));
    });
    let c = sim.config();
    Ok(sample
        .with_extra("grid", c.grid as f64)
        .with_extra("kernels", c.num_kernels as f64))
}

/// One aerial vector-Jacobian product against a cached forward pass — the
/// backward hot path every gradient iteration runs.
pub fn vjp(cfg: &MeasureConfig) -> Result<Sample, PerfError> {
    let (sim, mask) = fixture(cfg, "sim_vjp")?;
    let (aerial, cache) = sim.aerial_with_cache(&mask, false);
    // An upstream gradient with structure (target minus intensity), so the
    // VJP sees realistic data rather than a constant field.
    let (rows, cols) = aerial.shape();
    let grad = Field2D::from_fn(rows, cols, |r, c| {
        mask.get(r, c).unwrap_or(0.0) - aerial.get(r, c).unwrap_or(0.0)
    });
    let sample = measure(cfg, || {
        black_box(sim.aerial_vjp(&cache, &grad));
    });
    let c = sim.config();
    Ok(sample
        .with_extra("grid", c.grid as f64)
        .with_extra("kernels", c.num_kernels as f64))
}
