//! Server workload: loopback HTTP throughput over one keep-alive
//! connection — submit, poll-to-done, and a cancellation mixed in, the
//! request mix a production client actually produces.
//!
//! Drives the same `ilt_server::harness` client the integration suites
//! use (promoted out of `tests/util` precisely so this workload would not
//! duplicate it).

use std::net::SocketAddr;

use ilt_server::harness::{self, Conn};
use ilt_server::ServerConfig;

use crate::measure::{measure, MeasureConfig, Sample};
use crate::result::PerfError;

const NAME: &str = "server_jobs";

use harness::job_id;

/// One rep: submit `jobs` fast jobs on a single persistent connection,
/// poll each to `done` on that same connection, then submit one more and
/// cancel it. Exercises admission, the worker pool, keep-alive framing,
/// progress polling, and the cancellation path together.
fn rep(addr: SocketAddr, jobs: usize, pgm: &[u8]) -> Result<(), String> {
    let mut conn = Conn::open(addr);
    let mut ids = Vec::with_capacity(jobs);
    for _ in 0..jobs {
        let reply = conn
            .request("POST", &format!("/v1/jobs?{}", harness::FAST_JOB), pgm)
            .map_err(|e| format!("submit: {e}"))?;
        if reply.status != 202 {
            return Err(format!("submit answered {}: {}", reply.status, reply.text()));
        }
        ids.push(job_id(&reply)?);
    }
    for id in ids {
        loop {
            let reply = conn
                .request("GET", &format!("/v1/jobs/{id}"), b"")
                .map_err(|e| format!("poll: {e}"))?;
            if reply.status != 200 {
                return Err(format!("poll answered {}: {}", reply.status, reply.text()));
            }
            let text = reply.text();
            if text.contains("\"state\":\"done\"") {
                break;
            }
            if text.contains("\"state\":\"failed\"") || text.contains("\"state\":\"cancelled\"") {
                return Err(format!("job {id} terminal without done: {text}"));
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    // Cancellation mixed into the steady flow: submit and delete. The job
    // may already be running — either a 202 (cancelled) or a 409 (raced to
    // terminal) is a correct server answer; anything else is a bug.
    let reply = conn
        .request("POST", &format!("/v1/jobs?{}", harness::FAST_JOB), pgm)
        .map_err(|e| format!("cancel submit: {e}"))?;
    if reply.status != 202 {
        return Err(format!("cancel submit answered {}", reply.status));
    }
    let id = job_id(&reply)?;
    let reply = conn
        .request("DELETE", &format!("/v1/jobs/{id}"), b"")
        .map_err(|e| format!("cancel: {e}"))?;
    if reply.status != 202 && reply.status != 409 {
        return Err(format!("cancel answered {}: {}", reply.status, reply.text()));
    }
    Ok(())
}

/// The server throughput/latency workload. One op = one [`rep`].
pub fn jobs(cfg: &MeasureConfig) -> Result<Sample, PerfError> {
    let jobs_per_rep = if cfg.smoke { 1 } else { 3 };
    let workers = 2;
    let (addr, handle) = harness::start(ServerConfig {
        workers,
        queue_cap: 64,
        // Polling drives many requests down one connection; the cap is a
        // production guard, not something this workload measures.
        keep_alive_requests: 100_000,
        ..ServerConfig::default()
    });
    let pgm = harness::tiny_pgm();

    let mut failure: Option<String> = None;
    let sample = measure(cfg, || {
        if failure.is_some() {
            return;
        }
        if let Err(e) = rep(addr, jobs_per_rep, &pgm) {
            failure = Some(e);
        }
    });
    harness::shutdown(addr, handle);
    if let Some(detail) = failure {
        return Err(PerfError::workload(NAME, detail));
    }
    Ok(sample
        .with_extra("jobs_per_op", jobs_per_rep as f64)
        .with_extra("workers", workers as f64))
}

const FAIRNESS_NAME: &str = "server_fairness";

/// The tenants the fairness workload interleaves: one client per priority
/// class, so every rep exercises the weighted class-queue dequeue.
const TENANTS: [(&str, &str); 3] = [("alice", "high"), ("bob", "normal"), ("carol", "low")];

/// One rep: each tenant submits `jobs` jobs (interleaved across clients so
/// the class queues are genuinely mixed), then every job is polled to
/// `done`. Measures the multi-tenant admission path end to end: header
/// parsing, per-client accounting, and the weighted round-robin pop.
fn fairness_rep(addr: SocketAddr, jobs: usize, pgm: &[u8]) -> Result<(), String> {
    let mut conn = Conn::open(addr);
    let mut ids = Vec::with_capacity(jobs * TENANTS.len());
    for _ in 0..jobs {
        for (client, class) in TENANTS {
            let headers = [("x-ilt-client", client), ("x-ilt-priority", class)];
            let reply = conn
                .request_with_headers(
                    "POST",
                    &format!("/v1/jobs?{}", harness::FAST_JOB),
                    &headers,
                    pgm,
                )
                .map_err(|e| format!("submit as {client}: {e}"))?;
            if reply.status != 202 {
                return Err(format!("submit as {client} answered {}: {}", reply.status, reply.text()));
            }
            ids.push(job_id(&reply)?);
        }
    }
    for id in ids {
        loop {
            let reply = conn
                .request("GET", &format!("/v1/jobs/{id}"), b"")
                .map_err(|e| format!("poll: {e}"))?;
            if reply.status != 200 {
                return Err(format!("poll answered {}: {}", reply.status, reply.text()));
            }
            let text = reply.text();
            if text.contains("\"state\":\"done\"") {
                break;
            }
            if text.contains("\"state\":\"failed\"") || text.contains("\"state\":\"cancelled\"") {
                return Err(format!("job {id} terminal without done: {text}"));
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    Ok(())
}

/// The multi-tenant fairness workload. One op = one [`fairness_rep`].
pub fn fairness(cfg: &MeasureConfig) -> Result<Sample, PerfError> {
    let jobs_per_client = if cfg.smoke { 1 } else { 2 };
    let workers = 2;
    let (addr, handle) = harness::start(ServerConfig {
        workers,
        queue_cap: 64,
        keep_alive_requests: 100_000,
        // Wide enough that the workload never trips a 429 (quota behavior
        // is pinned by the fairness test suite, not measured here).
        quota_inflight: 32,
        quota_queued: 16,
        ..ServerConfig::default()
    });
    let pgm = harness::tiny_pgm();

    let mut failure: Option<String> = None;
    let sample = measure(cfg, || {
        if failure.is_some() {
            return;
        }
        if let Err(e) = fairness_rep(addr, jobs_per_client, &pgm) {
            failure = Some(e);
        }
    });
    harness::shutdown(addr, handle);
    if let Some(detail) = failure {
        return Err(PerfError::workload(FAIRNESS_NAME, detail));
    }
    Ok(sample
        .with_extra("jobs_per_op", (jobs_per_client * TENANTS.len()) as f64)
        .with_extra("workers", workers as f64))
}
