//! Cluster workloads: coordinator shard dispatch and reassembly across
//! in-process loopback worker replicas — the wire protocol, base64 mask
//! transfer, hash verification, and `assemble_batch` stitching, without
//! the ILT costs dominating (tiny tiles, few iterations) — plus the
//! straggler-speculation race against a stalling replica.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use ilt_cluster::{ClusterConfig, Coordinator, ExecPolicy, JobParams, Worker, WorkerConfig};
use ilt_runtime::{assemble_batch, planned_job_list, FaultPlan, SimulatorCache};

use crate::measure::{measure, MeasureConfig, Sample};
use crate::result::PerfError;

const NAME: &str = "cluster_shard";
const SPEC_NAME: &str = "cluster_speculation";

/// Binds one worker replica on an ephemeral loopback port and serves it
/// from a background thread until [`shutdown`] is posted to its address.
fn spawn_worker(
    faults: FaultPlan,
) -> Result<(String, std::thread::JoinHandle<()>), PerfError> {
    let worker = Worker::bind(WorkerConfig {
        addr: "127.0.0.1:0".into(),
        faults,
        ..WorkerConfig::default()
    })
    .map_err(|e| PerfError::workload(NAME, format!("bind worker: {e}")))?;
    let addr = worker
        .local_addr()
        .map_err(|e| PerfError::workload(NAME, format!("worker addr: {e}")))?
        .to_string();
    let handle = std::thread::spawn(move || worker.run());
    Ok((addr, handle))
}

fn shutdown(addr: &str) {
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let _ = stream.write_all(
            format!(
                "POST /v1/shutdown HTTP/1.1\r\nhost: {addr}\r\ncontent-length: 0\r\nconnection: close\r\n\r\n"
            )
            .as_bytes(),
        );
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    }
}

/// One op = dispatch a multi-tile job's shards across the replicas, stream
/// the journal records and masks back, and reassemble the stitched batch.
/// Workers keep their simulator caches warm across reps, as a long-lived
/// replica would.
pub fn shard_roundtrip(cfg: &MeasureConfig) -> Result<Sample, PerfError> {
    // 128 px via clip in 64 px tiles with an 8 px halo: 9 tiles across 2
    // replicas. Smoke: one tile, one replica.
    let (query, replicas) = if cfg.smoke {
        ("via=7&grid=64&kernels=3&tile=64&halo=8&iters=1&threads=1&eval=0", 1)
    } else {
        ("via=7&grid=128&kernels=3&tile=64&halo=8&iters=2&threads=1&eval=0", 2)
    };
    let params = JobParams::from_saved(query, Vec::new(), &ExecPolicy::default())
        .map_err(|e| PerfError::workload(NAME, e))?;
    let (case, config) = params.plan().map_err(|e| PerfError::workload(NAME, e))?;
    let cases = std::slice::from_ref(&case);
    let plan = planned_job_list(cases, &config).map_err(|e| PerfError::workload(NAME, e))?;

    let workers: Vec<(String, std::thread::JoinHandle<()>)> =
        (0..replicas).map(|_| spawn_worker(FaultPlan::none())).collect::<Result<_, _>>()?;
    let coordinator = Coordinator::new(ClusterConfig {
        workers: workers.iter().map(|(addr, _)| addr.clone()).collect(),
        ..ClusterConfig::default()
    })
    .map_err(|e| PerfError::workload(NAME, e))?;

    let cache = SimulatorCache::new();
    let mut job_id = 0usize;
    let mut failure: Option<String> = None;
    let sample = measure(cfg, || {
        if failure.is_some() {
            return;
        }
        job_id += 1;
        let run = coordinator
            .run_job(job_id, query, &[], &plan, &config.cancel, &config.progress)
            .and_then(|outputs| assemble_batch(cases, &config, outputs, &cache, 0.0));
        match run {
            Ok(outcome) if outcome.cases[0].failed_tiles > 0 => {
                failure = Some(format!("{} shard tile(s) failed", outcome.cases[0].failed_tiles));
            }
            Ok(_) => {}
            Err(e) => failure = Some(e),
        }
    });
    for (addr, handle) in workers {
        shutdown(&addr);
        let _ = handle.join();
    }
    if let Some(detail) = failure {
        return Err(PerfError::workload(NAME, detail));
    }
    Ok(sample
        .with_extra("tiles", plan.len() as f64)
        .with_extra("replicas", replicas as f64))
}

/// One op = a full job where one of the two replicas stalls every shard
/// response on the wire (computes fine, network is molasses): the
/// coordinator must detect the stragglers against the healthy replica's
/// latency median, re-execute them speculatively, and take the first
/// result — so the op cost measures detection latency plus the race, not
/// the stall. Extras record how many shards were speculated and won.
pub fn speculation_race(cfg: &MeasureConfig) -> Result<Sample, PerfError> {
    // 9 tiles in 4 shards across 2 replicas; the stall dwarfs an honest
    // shard (tens of ms) so every stalled dispatch is a clear straggler.
    let (query, stall_ms) = if cfg.smoke {
        ("via=7&grid=128&kernels=3&tile=64&halo=8&iters=1&threads=1&eval=0", 150u64)
    } else {
        ("via=7&grid=128&kernels=3&tile=64&halo=8&iters=2&threads=1&eval=0", 400)
    };
    let params = JobParams::from_saved(query, Vec::new(), &ExecPolicy::default())
        .map_err(|e| PerfError::workload(SPEC_NAME, e))?;
    let (case, config) = params.plan().map_err(|e| PerfError::workload(SPEC_NAME, e))?;
    let cases = std::slice::from_ref(&case);
    let plan = planned_job_list(cases, &config).map_err(|e| PerfError::workload(SPEC_NAME, e))?;

    let stall = (0..plan.len())
        .map(|j| format!("read_stall@{j}={stall_ms}"))
        .collect::<Vec<_>>()
        .join(",");
    let slow = spawn_worker(FaultPlan::parse(&stall).map_err(|e| PerfError::workload(SPEC_NAME, e))?)?;
    let fast = spawn_worker(FaultPlan::none())?;
    let coordinator = Coordinator::new(ClusterConfig {
        workers: vec![slow.0.clone(), fast.0.clone()],
        speculate_factor: 1.5,
        speculate_min_samples: 1,
        // Cut superseded losers quickly; they are mid-stall anyway.
        cancel_grace: Duration::from_millis(100),
        ..ClusterConfig::default()
    })
    .map_err(|e| PerfError::workload(SPEC_NAME, e))?;

    let cache = SimulatorCache::new();
    let mut job_id = 0usize;
    let mut failure: Option<String> = None;
    let sample = measure(cfg, || {
        if failure.is_some() {
            return;
        }
        job_id += 1;
        let run = coordinator
            .run_job(job_id, query, &[], &plan, &config.cancel, &config.progress)
            .and_then(|outputs| assemble_batch(cases, &config, outputs, &cache, 0.0));
        match run {
            Ok(outcome) if outcome.cases[0].failed_tiles > 0 => {
                failure = Some(format!("{} shard tile(s) failed", outcome.cases[0].failed_tiles));
            }
            Ok(_) => {}
            Err(e) => failure = Some(e),
        }
    });
    let speculated = coordinator.stats().shards_speculated.get() as f64;
    let wins = coordinator.stats().speculation_wins.get() as f64;
    for (addr, handle) in [slow, fast] {
        shutdown(&addr);
        let _ = handle.join();
    }
    if let Some(detail) = failure {
        return Err(PerfError::workload(SPEC_NAME, detail));
    }
    Ok(sample
        .with_extra("tiles", plan.len() as f64)
        .with_extra("stall_ms", stall_ms as f64)
        .with_extra("speculated", speculated)
        .with_extra("speculation_wins", wins))
}
