//! FFT workloads: the per-iteration spectral hot paths of the simulator.
//!
//! Three variants — the dense pad-then-invert reference, the pruned padded
//! inverse that replaced it, and the Hermitian real-input forward. The
//! fast paths cross-check against their references once per run, so a
//! kernel change that breaks numerics fails the bench before it can post
//! a "speedup". This module also hosts [`run_v1`], the deprecated
//! `ilt bench-fft` alias that still emits the `ilt-bench-fft/v1` schema.

use ilt_fft::{pad_centered_into, Complex64, Fft2d, Fft2dScratch};
use ilt_layouts::Xorshift64Star;

use crate::measure::{injected_delay, measure, MeasureConfig, Sample};
use crate::result::PerfError;

use super::noise;

/// Grid and kernel-support sizes: the full-chip serving grid in full mode,
/// a tiny transform in smoke mode.
fn sizes(cfg: &MeasureConfig) -> (usize, usize) {
    if cfg.smoke {
        (64, 5)
    } else {
        (1024, 25)
    }
}

/// A deterministic `p x p` kernel spectrum.
fn random_spec(p: usize) -> Vec<Complex64> {
    let mut rng = Xorshift64Star::new(0x5EED_F00D);
    (0..p * p).map(|_| Complex64::new(noise(&mut rng), noise(&mut rng))).collect()
}

/// A deterministic real mask image of side `n`.
fn random_image(n: usize) -> Vec<f64> {
    let mut rng = Xorshift64Star::new(0xCAFE_D00D);
    (0..n * n).map(|_| noise(&mut rng)).collect()
}

/// Fails unless `got` matches `want` to 1e-12 relative to the largest
/// reference magnitude (floored at 1, so small-amplitude outputs are held
/// to 1e-12 absolute). Unnormalized forward spectra grow like O(N), so a
/// purely absolute bound would get tighter than f64 rounding at large N.
fn check_agreement(
    got: &[Complex64],
    want: &[Complex64],
    workload: &str,
    want_name: &str,
    n: usize,
) -> Result<(), PerfError> {
    let scale = want.iter().map(|z| z.abs()).fold(1.0, f64::max);
    let worst = got.iter().zip(want).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
    if worst > 1e-12 * scale {
        return Err(PerfError::workload(
            workload,
            format!("diverged from {want_name} at N={n}: |diff| {worst:e} vs scale {scale:e}"),
        ));
    }
    Ok(())
}

/// Dense pad + inverse of a `P x P` kernel spectrum: the per-kernel cost
/// of every simulator iteration before the pruned path existed. Kept as a
/// workload so the pruned path's advantage stays an *observed* number.
pub fn dense_inverse(cfg: &MeasureConfig) -> Result<Sample, PerfError> {
    let (n, p) = sizes(cfg);
    let fft = Fft2d::new(n, n);
    let mut scratch = Fft2dScratch::new();
    let spec = random_spec(p);
    let mut buf = vec![Complex64::ZERO; n * n];
    let sample = measure(cfg, || {
        pad_centered_into(&spec, p, &mut buf, n);
        fft.inverse_with(&mut buf, &mut scratch);
    });
    Ok(sample.with_extra("n", n as f64).with_extra("p", p as f64))
}

/// The pruned padded inverse ([`Fft2d::inverse_padded_with`]) — the path
/// every simulator iteration actually runs. Cross-checked against the
/// dense reference; carries the `ILT_BENCH_DELAY_US` injection hook the
/// verify scripts use to prove the diff gate trips.
pub fn pruned_inverse(cfg: &MeasureConfig) -> Result<Sample, PerfError> {
    let (n, p) = sizes(cfg);
    let fft = Fft2d::new(n, n);
    let mut scratch = Fft2dScratch::new();
    let spec = random_spec(p);

    let mut reference = vec![Complex64::ZERO; n * n];
    pad_centered_into(&spec, p, &mut reference, n);
    fft.inverse_with(&mut reference, &mut scratch);

    let mut buf = vec![Complex64::ZERO; n * n];
    let sample = measure(cfg, || {
        fft.inverse_padded_with(&spec, p, &mut buf, &mut scratch);
        injected_delay();
    });
    check_agreement(&buf, &reference, "fft_pruned_inverse", "dense inverse", n)?;
    Ok(sample.with_extra("n", n as f64).with_extra("p", p as f64))
}

/// The Hermitian real-input forward ([`Fft2d::forward_real_with`]) that
/// opens every iteration, cross-checked against the complex forward.
pub fn real_forward(cfg: &MeasureConfig) -> Result<Sample, PerfError> {
    let (n, _) = sizes(cfg);
    let fft = Fft2d::new(n, n);
    let mut scratch = Fft2dScratch::new();
    let img = random_image(n);

    let mut reference = vec![Complex64::ZERO; n * n];
    for (z, &x) in reference.iter_mut().zip(&img) {
        *z = Complex64::from_real(x);
    }
    fft.forward_with(&mut reference, &mut scratch);

    let mut out = vec![Complex64::ZERO; n * n];
    let sample = measure(cfg, || {
        fft.forward_real_with(&img, &mut out, &mut scratch);
    });
    check_agreement(&out, &reference, "fft_real_forward", "complex forward", n)?;
    Ok(sample.with_extra("n", n as f64))
}

/// The deprecated `ilt bench-fft` flow: dense vs pruned inverse and
/// complex vs real forward at N in {256, 512, 1024, 2048}, cross-checked,
/// printed as a table, and written in the **v1** schema
/// (`ilt-bench-fft/v1`) for consumers that still parse it. New tooling
/// should run the registry (`ilt bench run --tag fft`) instead; this alias
/// is kept for one release.
pub fn run_v1(reps: usize, p: usize, path: &str) -> Result<(), PerfError> {
    if p == 0 {
        return Err(PerfError::workload("bench-fft", "--p must be at least 1"));
    }
    let cfg = MeasureConfig { smoke: false, reps: reps.max(1) };
    let sizes = [256usize, 512, 1024, 2048];
    let spec = random_spec(p);

    println!("bench-fft: P = {p}, median of {} rep(s) per path", cfg.reps);
    println!(
        "{:>6} {:>16} {:>16} {:>9} {:>16} {:>16} {:>9}",
        "N", "dense inv (us)", "pruned inv (us)", "speedup", "cplx fwd (us)", "real fwd (us)", "speedup"
    );

    let mut rows = Vec::new();
    for n in sizes {
        if p > n {
            return Err(PerfError::workload(
                "bench-fft",
                format!("--p {p} exceeds benchmark size {n}"),
            ));
        }
        let fft = Fft2d::new(n, n);
        let mut scratch = Fft2dScratch::new();
        let img = random_image(n);
        let mut buf = vec![Complex64::ZERO; n * n];

        let dense_inv = measure(&cfg, || {
            pad_centered_into(&spec, p, &mut buf, n);
            fft.inverse_with(&mut buf, &mut scratch);
        })
        .median_us;
        let dense_out = buf.clone();
        let pruned_inv = measure(&cfg, || {
            fft.inverse_padded_with(&spec, p, &mut buf, &mut scratch);
        })
        .median_us;
        check_agreement(&buf, &dense_out, "bench-fft", "dense inverse", n)?;

        let fwd_complex = measure(&cfg, || {
            for (z, &x) in buf.iter_mut().zip(&img) {
                *z = Complex64::from_real(x);
            }
            fft.forward_with(&mut buf, &mut scratch);
        })
        .median_us;
        let complex_out = buf.clone();
        let mut real_out = vec![Complex64::ZERO; n * n];
        let fwd_real = measure(&cfg, || {
            fft.forward_real_with(&img, &mut real_out, &mut scratch);
        })
        .median_us;
        check_agreement(&real_out, &complex_out, "bench-fft", "complex forward", n)?;

        let inv_speedup = dense_inv / pruned_inv;
        let fwd_speedup = fwd_complex / fwd_real;
        println!(
            "{n:>6} {dense_inv:>16.1} {pruned_inv:>16.1} {inv_speedup:>8.2}x {fwd_complex:>16.1} {fwd_real:>16.1} {fwd_speedup:>8.2}x"
        );
        rows.push(format!(
            "    {{\"n\": {n}, \"dense_pad_inverse_us\": {dense_inv:.3}, \
             \"pruned_inverse_us\": {pruned_inv:.3}, \"pruned_speedup\": {inv_speedup:.3}, \
             \"forward_complex_us\": {fwd_complex:.3}, \"forward_real_us\": {fwd_real:.3}, \
             \"real_speedup\": {fwd_speedup:.3}}}"
        ));
    }

    let json = format!(
        "{{\n  \"schema\": \"ilt-bench-fft/v1\",\n  \"p\": {p},\n  \"reps\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        cfg.reps,
        rows.join(",\n")
    );
    std::fs::write(path, json)
        .map_err(|source| PerfError::Io { path: path.into(), source })?;
    println!("wrote {path}");
    Ok(())
}
