//! FFT workloads: the per-iteration spectral hot paths of the simulator.
//!
//! Six variants — the dense pad-then-invert reference, the pruned padded
//! inverse that replaced it, the Hermitian real-input forward, the pruned
//! real forward (crop fused into the column pass), and the batched
//! forward/inverse used by the SOCS kernel sum. The fast paths cross-check
//! against their references once per run, so a kernel change that breaks
//! numerics fails the bench before it can post a "speedup".

use ilt_fft::{crop_centered, pad_centered_into, Complex64, Fft2d, Fft2dScratch};
use ilt_layouts::Xorshift64Star;

use crate::measure::{injected_delay, measure, MeasureConfig, Sample};
use crate::result::PerfError;

use super::noise;

/// Grid and kernel-support sizes: the full-chip serving grid in full mode,
/// a tiny transform in smoke mode.
fn sizes(cfg: &MeasureConfig) -> (usize, usize) {
    if cfg.smoke {
        (64, 5)
    } else {
        (1024, 25)
    }
}

/// A deterministic `p x p` kernel spectrum.
fn random_spec(p: usize) -> Vec<Complex64> {
    random_spec_seeded(p, 0x5EED_F00D)
}

/// A deterministic `p x p` kernel spectrum with an explicit seed, so the
/// batch workloads can build several distinct spectra.
fn random_spec_seeded(p: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = Xorshift64Star::new(seed);
    (0..p * p).map(|_| Complex64::new(noise(&mut rng), noise(&mut rng))).collect()
}

/// How many transforms the batch workloads run per operation: enough to
/// amortize twiddle/scratch sharing, small enough to keep full-mode runs
/// in the tens of milliseconds.
fn batch_len(cfg: &MeasureConfig) -> usize {
    if cfg.smoke {
        2
    } else {
        4
    }
}

/// A deterministic real mask image of side `n`.
fn random_image(n: usize) -> Vec<f64> {
    let mut rng = Xorshift64Star::new(0xCAFE_D00D);
    (0..n * n).map(|_| noise(&mut rng)).collect()
}

/// Fails unless `got` matches `want` to 1e-12 relative to the largest
/// reference magnitude (floored at 1, so small-amplitude outputs are held
/// to 1e-12 absolute). Unnormalized forward spectra grow like O(N), so a
/// purely absolute bound would get tighter than f64 rounding at large N.
fn check_agreement(
    got: &[Complex64],
    want: &[Complex64],
    workload: &str,
    want_name: &str,
    n: usize,
) -> Result<(), PerfError> {
    let scale = want.iter().map(|z| z.abs()).fold(1.0, f64::max);
    let worst = got.iter().zip(want).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
    if worst > 1e-12 * scale {
        return Err(PerfError::workload(
            workload,
            format!("diverged from {want_name} at N={n}: |diff| {worst:e} vs scale {scale:e}"),
        ));
    }
    Ok(())
}

/// Dense pad + inverse of a `P x P` kernel spectrum: the per-kernel cost
/// of every simulator iteration before the pruned path existed. Kept as a
/// workload so the pruned path's advantage stays an *observed* number.
pub fn dense_inverse(cfg: &MeasureConfig) -> Result<Sample, PerfError> {
    let (n, p) = sizes(cfg);
    let fft = Fft2d::new(n, n);
    let mut scratch = Fft2dScratch::new();
    let spec = random_spec(p);
    let mut buf = vec![Complex64::ZERO; n * n];
    let sample = measure(cfg, || {
        pad_centered_into(&spec, p, &mut buf, n);
        fft.inverse_with(&mut buf, &mut scratch);
    });
    Ok(sample.with_extra("n", n as f64).with_extra("p", p as f64))
}

/// The pruned padded inverse ([`Fft2d::inverse_padded_with`]) — the path
/// every simulator iteration actually runs. Cross-checked against the
/// dense reference; carries the `ILT_BENCH_DELAY_US` injection hook the
/// verify scripts use to prove the diff gate trips.
pub fn pruned_inverse(cfg: &MeasureConfig) -> Result<Sample, PerfError> {
    let (n, p) = sizes(cfg);
    let fft = Fft2d::new(n, n);
    let mut scratch = Fft2dScratch::new();
    let spec = random_spec(p);

    let mut reference = vec![Complex64::ZERO; n * n];
    pad_centered_into(&spec, p, &mut reference, n);
    fft.inverse_with(&mut reference, &mut scratch);

    let mut buf = vec![Complex64::ZERO; n * n];
    let sample = measure(cfg, || {
        fft.inverse_padded_with(&spec, p, &mut buf, &mut scratch);
        injected_delay();
    });
    check_agreement(&buf, &reference, "fft_pruned_inverse", "dense inverse", n)?;
    Ok(sample.with_extra("n", n as f64).with_extra("p", p as f64))
}

/// The Hermitian real-input forward ([`Fft2d::forward_real_with`]) that
/// opens every iteration, cross-checked against the complex forward.
pub fn real_forward(cfg: &MeasureConfig) -> Result<Sample, PerfError> {
    let (n, _) = sizes(cfg);
    let fft = Fft2d::new(n, n);
    let mut scratch = Fft2dScratch::new();
    let img = random_image(n);

    let mut reference = vec![Complex64::ZERO; n * n];
    for (z, &x) in reference.iter_mut().zip(&img) {
        *z = Complex64::from_real(x);
    }
    fft.forward_with(&mut reference, &mut scratch);

    let mut out = vec![Complex64::ZERO; n * n];
    let sample = measure(cfg, || {
        fft.forward_real_with(&img, &mut out, &mut scratch);
    });
    check_agreement(&out, &reference, "fft_real_forward", "complex forward", n)?;
    Ok(sample.with_extra("n", n as f64))
}

/// The pruned real forward ([`Fft2d::forward_real_cropped_with`]): crop to
/// the `P x P` kernel support fused into the column pass, so only the
/// retained band of rows is ever column-transformed. Cross-checked against
/// the dense complex forward followed by a centered crop.
pub fn pruned_forward(cfg: &MeasureConfig) -> Result<Sample, PerfError> {
    let (n, p) = sizes(cfg);
    let fft = Fft2d::new(n, n);
    let mut scratch = Fft2dScratch::new();
    let img = random_image(n);

    let mut dense = vec![Complex64::ZERO; n * n];
    for (z, &x) in dense.iter_mut().zip(&img) {
        *z = Complex64::from_real(x);
    }
    fft.forward_with(&mut dense, &mut scratch);
    let reference = crop_centered(&dense, n, p);

    let mut out = vec![Complex64::ZERO; p * p];
    let sample = measure(cfg, || {
        fft.forward_real_cropped_with(&img, p, &mut out, &mut scratch);
    });
    check_agreement(&out, &reference, "fft_pruned_forward", "dense forward + crop", n)?;
    Ok(sample.with_extra("n", n as f64).with_extra("p", p as f64))
}

/// The batched real forward ([`Fft2d::forward_real_batch_with`]): several
/// mask images through one plan and one scratch arena, the shape the tile
/// worker pool runs. Cross-checked against per-image forwards.
pub fn batch_forward(cfg: &MeasureConfig) -> Result<Sample, PerfError> {
    let (n, _) = sizes(cfg);
    let k = batch_len(cfg);
    let fft = Fft2d::new(n, n);
    let mut scratch = Fft2dScratch::new();
    let imgs: Vec<Vec<f64>> = (0..k)
        .map(|i| {
            let mut rng = Xorshift64Star::new(0xCAFE_D00D ^ (i as u64 + 1));
            (0..n * n).map(|_| noise(&mut rng)).collect()
        })
        .collect();
    let img_refs: Vec<&[f64]> = imgs.iter().map(|v| v.as_slice()).collect();

    let mut reference = Vec::with_capacity(k);
    for img in &imgs {
        let mut out = vec![Complex64::ZERO; n * n];
        fft.forward_real_with(img, &mut out, &mut scratch);
        reference.push(out);
    }

    let mut batch_out = Vec::new();
    let sample = measure(cfg, || {
        batch_out = fft.forward_real_batch_with(&img_refs, &mut scratch);
    });
    for (got, want) in batch_out.iter().zip(&reference) {
        check_agreement(got, want, "fft_batch_forward", "per-image real forward", n)?;
    }
    Ok(sample.with_extra("n", n as f64).with_extra("batch", k as f64))
}

/// The batched pruned inverse ([`Fft2d::inverse_padded_batch_with`]): the
/// SOCS kernel sum's shape — every kernel spectrum through one shared
/// twist cache and scratch arena, results streamed to a callback.
/// Cross-checked against sequential pruned inverses.
pub fn batch_inverse(cfg: &MeasureConfig) -> Result<Sample, PerfError> {
    let (n, p) = sizes(cfg);
    let k = batch_len(cfg);
    let fft = Fft2d::new(n, n);
    let mut scratch = Fft2dScratch::new();
    let specs: Vec<Vec<Complex64>> =
        (0..k).map(|i| random_spec_seeded(p, 0x5EED_F00D ^ (i as u64 + 1))).collect();
    let spec_refs: Vec<&[Complex64]> = specs.iter().map(|v| v.as_slice()).collect();

    let mut reference = vec![Complex64::ZERO; k * n * n];
    for (i, spec) in specs.iter().enumerate() {
        let mut buf = vec![Complex64::ZERO; n * n];
        fft.inverse_padded_with(spec, p, &mut buf, &mut scratch);
        reference[i * n * n..(i + 1) * n * n].copy_from_slice(&buf);
    }

    let mut got = vec![Complex64::ZERO; k * n * n];
    let sample = measure(cfg, || {
        fft.inverse_padded_batch_with(
            &spec_refs,
            p,
            |i, z| got[i * n * n..(i + 1) * n * n].copy_from_slice(z),
            &mut scratch,
        );
    });
    check_agreement(&got, &reference, "fft_batch_inverse", "sequential pruned inverse", n)?;
    Ok(sample
        .with_extra("n", n as f64)
        .with_extra("p", p as f64)
        .with_extra("batch", k as f64))
}
