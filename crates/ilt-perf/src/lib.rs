//! # ilt-perf — the performance barometer for the ILT stack
//!
//! Rebar-style perf coverage (`BurntSushi/rebar`, METHODOLOGY.md): many
//! small, easy-to-add workloads spanning **every** performance-critical
//! layer, because speeding up one path routinely slows another. The crate
//! is hermetic and std-only — it runs on the same disconnected machines as
//! tier-1 and needs no Criterion, no python, no registry crates.
//!
//! Three pieces:
//!
//! - **Registry** ([`registry`]): a flat list of [`Workload`]s — name,
//!   tags, units, regression threshold, and a run function. Six families
//!   ship in-tree: FFT variants, simulator aerial/vjp, autodiff backward,
//!   the tiled runtime pipeline, HTTP server throughput (keep-alive +
//!   cancellation mixed in, over the shared `ilt_server::harness`
//!   loopback client), and cluster shard dispatch/assembly.
//! - **Measurement engine** ([`measure`]): one untimed warmup, then
//!   median-of-N wall times with MAD dispersion, stamped with the
//!   environment (git revision, hardware thread count) so a checked-in
//!   number can be traced to the machine that produced it.
//! - **Schema + diff** ([`result`], [`diff`]): every run writes one
//!   `BENCH_<workload>.json` in the `ilt-bench/v2` schema; [`diff`]
//!   compares a fresh run against checked-in baselines entirely in-tree
//!   and reports a regression when a fresh median exceeds the baseline by
//!   more than the workload's threshold.
//!
//! The CLI front end is `ilt bench list|run|diff`; `verify_perf.sh` and
//! `verify_bench.sh` wire it into the standing regression gate.
//!
//! ## Adding a workload (~20 lines)
//!
//! Write a `fn my_workload(cfg: &MeasureConfig) -> Result<Sample, PerfError>`
//! in the right `workloads` family module that builds its fixture (sized
//! down when `cfg.smoke` is set), calls [`measure::measure`] around the
//! hot operation, and returns the sample with any extra scalars attached.
//! Then append one [`Workload`] literal to [`registry::registry`] and
//! check in a baseline with `ilt bench run --name my_workload --out .`.
//! The smoke test in `tests/smoke.rs` picks it up automatically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod measure;
pub mod registry;
pub mod result;
pub mod workloads;

pub use diff::{diff_dirs, diff_result, DiffReport, DiffRow};
pub use measure::{env_stamp, injected_delay, measure, EnvStamp, MeasureConfig, Sample};
pub use registry::{glob_match, registry, select, Selection, Workload};
pub use result::{BenchResult, PerfError, SCHEMA_V2};
