//! The measurement engine: warmup, median-of-N, MAD dispersion, and the
//! environment stamp that ties a number to the machine that produced it.

use std::time::{Duration, Instant};

/// How a workload should be measured.
#[derive(Clone, Debug, PartialEq)]
pub struct MeasureConfig {
    /// Smoke mode: one rep on tiny fixtures. Exercises every setup and hot
    /// path in milliseconds so tier-1 tests can run the whole registry
    /// in-process; the resulting numbers are stamped `smoke` and refused
    /// by the diff gate.
    pub smoke: bool,
    /// Timed repetitions per workload in full mode (smoke forces 1).
    pub reps: usize,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig { smoke: false, reps: 5 }
    }
}

impl MeasureConfig {
    /// Repetitions actually timed: 1 in smoke mode, else `reps` (min 1).
    pub fn effective_reps(&self) -> usize {
        if self.smoke {
            1
        } else {
            self.reps.max(1)
        }
    }
}

/// One measured workload: median wall time over the reps, with the median
/// absolute deviation as the dispersion estimate (robust to the one-off
/// stalls shared machines produce), plus workload-specific scalars.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Median wall time per operation, microseconds.
    pub median_us: f64,
    /// Median absolute deviation of the rep times, microseconds.
    pub mad_us: f64,
    /// Number of timed reps behind the median.
    pub reps: usize,
    /// Workload-specific scalars (grid sizes, tile counts, speedups…)
    /// carried verbatim into the result JSON's `extra` object.
    pub extra: Vec<(String, f64)>,
}

impl Sample {
    /// Attaches one extra scalar (builder-style).
    pub fn with_extra(mut self, key: &str, value: f64) -> Sample {
        self.extra.push((key.to_string(), value));
        self
    }
}

/// Times `op`: one untimed warmup (faults in buffers, fills plan and
/// simulator caches), then [`MeasureConfig::effective_reps`] timed runs.
pub fn measure(cfg: &MeasureConfig, mut op: impl FnMut()) -> Sample {
    op(); // warmup
    let reps = cfg.effective_reps();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            op();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let median = times[times.len() / 2];
    let mut dev: Vec<f64> = times.iter().map(|t| (t - median).abs()).collect();
    dev.sort_by(f64::total_cmp);
    let mad = dev[dev.len() / 2];
    Sample { median_us: median, mad_us: mad, reps, extra: Vec::new() }
}

/// Where a measurement was taken: enough provenance to judge whether a
/// checked-in baseline is comparable to a fresh run.
#[derive(Clone, Debug, PartialEq)]
pub struct EnvStamp {
    /// Short git revision of the working tree, or `unknown` outside a
    /// repository.
    pub git_rev: String,
    /// Hardware threads available to the process.
    pub threads: usize,
    /// Active FFT kernel (`avx2`, `sse2`, or `scalar`), as detected at
    /// runtime — records whether a number was produced with SIMD
    /// butterflies or the forced-scalar fallback.
    pub simd: String,
}

/// Stamps the current environment. Never fails: a missing `git` binary or
/// a non-repository directory degrades to `unknown`.
pub fn env_stamp() -> EnvStamp {
    let git_rev = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let threads = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let simd = ilt_fft::active_kernel().to_string();
    EnvStamp { git_rev, threads, simd }
}

/// Chaos hook for the regression gate itself: sleeps for
/// `ILT_BENCH_DELAY_US` microseconds when that variable is set. Exactly
/// one workload (`fft_pruned_inverse`) calls this per rep, so the verify
/// scripts can prove end-to-end that an injected slowdown makes
/// `ilt bench diff` exit non-zero. Unset (the normal case) it is free.
pub fn injected_delay() {
    if let Ok(v) = std::env::var("ILT_BENCH_DELAY_US") {
        if let Ok(us) = v.trim().parse::<u64>() {
            if us > 0 {
                std::thread::sleep(Duration::from_micros(us));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_are_robust_to_one_outlier() {
        // Five reps where one is wildly slow: the median must not move.
        let mut times = vec![10.0, 11.0, 10.5, 500.0, 10.2];
        times.sort_by(f64::total_cmp);
        assert_eq!(times[times.len() / 2], 10.5);
    }

    #[test]
    fn smoke_forces_one_rep() {
        let cfg = MeasureConfig { smoke: true, reps: 9 };
        assert_eq!(cfg.effective_reps(), 1);
        let mut calls = 0;
        let s = measure(&cfg, || calls += 1);
        assert_eq!(calls, 2, "warmup + 1 timed rep");
        assert_eq!(s.reps, 1);
        assert_eq!(s.mad_us, 0.0);
    }

    #[test]
    fn env_stamp_never_fails() {
        let env = env_stamp();
        assert!(env.threads >= 1);
        assert!(!env.git_rev.is_empty());
        assert!(
            ["avx2", "sse2", "scalar"].contains(&env.simd.as_str()),
            "unexpected kernel stamp {:?}",
            env.simd
        );
    }
}
