//! The `ilt-bench/v2` result schema: one JSON document per workload,
//! hand-rolled both ways (hermetic — no serde), with typed load errors so
//! the diff gate can tell a torn baseline from a schema bump from a
//! genuine regression.

use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::measure::{EnvStamp, MeasureConfig, Sample};
use crate::registry::Workload;

/// Schema identifier written to and required from every v2 result file.
pub const SCHEMA_V2: &str = "ilt-bench/v2";

/// Everything `ilt bench diff` can get wrong while loading or comparing
/// results, as a typed error (not a silent pass, not a panic).
#[derive(Debug)]
pub enum PerfError {
    /// A result file could not be read or written.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A result file exists but is not a well-formed v2 document (torn
    /// write, truncation, hand-edit gone wrong…).
    Malformed {
        /// The file involved.
        path: PathBuf,
        /// What the parser objected to.
        detail: String,
    },
    /// A result file declares a schema other than [`SCHEMA_V2`].
    SchemaMismatch {
        /// The file involved.
        path: PathBuf,
        /// The schema string the file declares.
        found: String,
    },
    /// A result recorded in smoke mode reached the diff gate; smoke
    /// numbers come from tiny fixtures and must never gate anything.
    SmokeResult {
        /// The file involved.
        path: PathBuf,
    },
    /// A fresh result has no checked-in baseline to compare against.
    MissingBaseline {
        /// The workload lacking a baseline.
        workload: String,
        /// Where the baseline was expected.
        path: PathBuf,
    },
    /// Baseline and fresh results measure different units — the numbers
    /// are not comparable.
    UnitsMismatch {
        /// The workload involved.
        workload: String,
        /// Units recorded in the baseline.
        baseline: String,
        /// Units recorded in the fresh result.
        fresh: String,
    },
    /// A workload's own setup or self-check failed (e.g. a fast path
    /// diverged from its reference output).
    Workload {
        /// The workload that failed.
        workload: String,
        /// What went wrong.
        detail: String,
    },
}

impl PerfError {
    /// Shorthand for a [`PerfError::Workload`].
    pub fn workload(name: &str, detail: impl Into<String>) -> PerfError {
        PerfError::Workload { workload: name.to_string(), detail: detail.into() }
    }
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            PerfError::Malformed { path, detail } => {
                write!(f, "{}: malformed bench result: {detail}", path.display())
            }
            PerfError::SchemaMismatch { path, found } => write!(
                f,
                "{}: schema {found:?} is not {SCHEMA_V2:?} — regenerate with `ilt bench run`",
                path.display()
            ),
            PerfError::SmokeResult { path } => write!(
                f,
                "{}: recorded in smoke mode; smoke numbers never gate — rerun without --smoke",
                path.display()
            ),
            PerfError::MissingBaseline { workload, path } => write!(
                f,
                "{workload}: no baseline at {} — check one in with `ilt bench run --name {workload} --out <baseline dir>`",
                path.display()
            ),
            PerfError::UnitsMismatch { workload, baseline, fresh } => write!(
                f,
                "{workload}: baseline measures {baseline:?} but fresh run measures {fresh:?}"
            ),
            PerfError::Workload { workload, detail } => {
                write!(f, "workload {workload}: {detail}")
            }
        }
    }
}

impl Error for PerfError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PerfError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One workload's measurement in the `ilt-bench/v2` schema.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResult {
    /// Registry name of the workload.
    pub workload: String,
    /// What one operation is (informational; must match to diff).
    pub units: String,
    /// Allowed fractional slowdown vs. this result when it serves as the
    /// baseline (0.5 = fail past 1.5x).
    pub threshold: f64,
    /// Timed reps behind the median.
    pub reps: usize,
    /// Median wall time per operation, microseconds.
    pub median_us: f64,
    /// Median absolute deviation of the rep times, microseconds.
    pub mad_us: f64,
    /// True when measured in smoke mode (tiny fixtures, 1 rep).
    pub smoke: bool,
    /// Git revision of the tree that produced the number.
    pub git_rev: String,
    /// Hardware threads on the measuring machine.
    pub threads: usize,
    /// FFT kernel active during the measurement (`avx2`, `sse2`,
    /// `scalar`); `unknown` when loading results written before the stamp
    /// existed.
    pub simd: String,
    /// Workload-specific scalars (grid sizes, tile counts, speedups…).
    pub extra: Vec<(String, f64)>,
}

impl BenchResult {
    /// Assembles a result from a workload's sample and the environment.
    pub fn new(w: &Workload, sample: &Sample, cfg: &MeasureConfig, env: &EnvStamp) -> BenchResult {
        BenchResult {
            workload: w.name.to_string(),
            units: w.units.to_string(),
            threshold: w.threshold,
            reps: sample.reps,
            median_us: sample.median_us,
            mad_us: sample.mad_us,
            smoke: cfg.smoke,
            git_rev: env.git_rev.clone(),
            threads: env.threads,
            simd: env.simd.clone(),
            extra: sample.extra.clone(),
        }
    }

    /// Canonical file name for a workload's result: `BENCH_<name>.json`.
    pub fn file_name(workload: &str) -> String {
        format!("BENCH_{workload}.json")
    }

    /// Serializes to the v2 JSON document (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut extra = String::new();
        for (i, (k, v)) in self.extra.iter().enumerate() {
            if i > 0 {
                extra.push_str(", ");
            }
            extra.push_str(&format!("\"{}\": {}", json_escape(k), json_num(*v)));
        }
        format!(
            "{{\n  \"schema\": \"{SCHEMA_V2}\",\n  \"workload\": \"{}\",\n  \"units\": \"{}\",\n  \
             \"threshold\": {},\n  \"reps\": {},\n  \"median_us\": {},\n  \"mad_us\": {},\n  \
             \"smoke\": {},\n  \"git_rev\": \"{}\",\n  \"threads\": {},\n  \"simd\": \"{}\",\n  \
             \"extra\": {{{extra}}}\n}}\n",
            json_escape(&self.workload),
            json_escape(&self.units),
            json_num(self.threshold),
            self.reps,
            json_num(self.median_us),
            json_num(self.mad_us),
            self.smoke,
            json_escape(&self.git_rev),
            self.threads,
            json_escape(&self.simd),
        )
    }

    /// Parses a v2 JSON document. `path` is only used to label errors.
    pub fn from_json(text: &str, path: &Path) -> Result<BenchResult, PerfError> {
        let doc = JsonDoc::parse(text).map_err(|detail| PerfError::Malformed {
            path: path.to_path_buf(),
            detail,
        })?;
        let field = |key: &str| {
            doc.get(key).ok_or_else(|| PerfError::Malformed {
                path: path.to_path_buf(),
                detail: format!("missing field {key:?}"),
            })
        };
        let str_field = |key: &str| {
            field(key).and_then(|v| {
                v.as_str().ok_or_else(|| PerfError::Malformed {
                    path: path.to_path_buf(),
                    detail: format!("field {key:?} is not a string"),
                })
            })
        };
        let num_field = |key: &str| {
            field(key).and_then(|v| {
                v.as_num().ok_or_else(|| PerfError::Malformed {
                    path: path.to_path_buf(),
                    detail: format!("field {key:?} is not a number"),
                })
            })
        };
        let schema = str_field("schema")?;
        if schema != SCHEMA_V2 {
            return Err(PerfError::SchemaMismatch { path: path.to_path_buf(), found: schema });
        }
        let smoke = match field("smoke")? {
            JsonValue::Bool(b) => *b,
            _ => {
                return Err(PerfError::Malformed {
                    path: path.to_path_buf(),
                    detail: "field \"smoke\" is not a boolean".into(),
                })
            }
        };
        let extra = match field("extra")? {
            JsonValue::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_num().map(|n| (k.clone(), n)).ok_or_else(|| PerfError::Malformed {
                        path: path.to_path_buf(),
                        detail: format!("extra field {k:?} is not a number"),
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => {
                return Err(PerfError::Malformed {
                    path: path.to_path_buf(),
                    detail: "field \"extra\" is not an object".into(),
                })
            }
        };
        // Optional: results written before the kernel stamp existed load
        // as "unknown" rather than failing the whole diff.
        let simd = match doc.get("simd") {
            Some(v) => v.as_str().ok_or_else(|| PerfError::Malformed {
                path: path.to_path_buf(),
                detail: "field \"simd\" is not a string".into(),
            })?,
            None => "unknown".to_string(),
        };
        Ok(BenchResult {
            workload: str_field("workload")?,
            units: str_field("units")?,
            threshold: num_field("threshold")?,
            reps: num_field("reps")? as usize,
            median_us: num_field("median_us")?,
            mad_us: num_field("mad_us")?,
            smoke,
            git_rev: str_field("git_rev")?,
            threads: num_field("threads")? as usize,
            simd,
            extra,
        })
    }

    /// Loads `BENCH_<workload>.json` content from `path`.
    pub fn load(path: &Path) -> Result<BenchResult, PerfError> {
        let text = std::fs::read_to_string(path)
            .map_err(|source| PerfError::Io { path: path.to_path_buf(), source })?;
        BenchResult::from_json(&text, path)
    }

    /// Writes this result to `dir/BENCH_<workload>.json`.
    pub fn write(&self, dir: &Path) -> Result<PathBuf, PerfError> {
        let path = dir.join(BenchResult::file_name(&self.workload));
        std::fs::write(&path, self.to_json())
            .map_err(|source| PerfError::Io { path: path.clone(), source })?;
        Ok(path)
    }
}

/// Formats a float without trailing noise: integers stay integral, the
/// rest keep three decimals (microsecond resolution is below timer noise).
fn json_num(v: f64) -> String {
    if !v.is_finite() {
        return "0".into(); // defensively mapped, like the journal does
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value — just the shapes the v2 schema uses.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Str(String),
    Num(f64),
    Bool(bool),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn as_str(&self) -> Option<String> {
        match self {
            JsonValue::Str(s) => Some(s.clone()),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A whitespace-tolerant recursive-descent parser for one JSON object.
/// Small by design: strings, numbers, booleans, and nested objects cover
/// the whole v2 schema; anything else is a malformed document.
struct JsonDoc {
    fields: Vec<(String, JsonValue)>,
}

impl JsonDoc {
    fn parse(text: &str) -> Result<JsonDoc, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        match value {
            JsonValue::Object(fields) => Ok(JsonDoc { fields }),
            _ => Err("top level is not an object".into()),
        }
    }

    fn get(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of document".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? != b {
            return Err(format!("expected {:?} at byte {}", b as char, self.pos));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b't' | b'f' => self.boolean(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other as char, self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            let key = match self.peek()? {
                b'"' => self.string()?,
                _ => return Err(format!("expected a key string at byte {}", self.pos)),
            };
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn boolean(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(JsonValue::Bool(true))
        } else if self.bytes[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(JsonValue::Bool(false))
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        raw.parse::<f64>().map(JsonValue::Num).map_err(|_| format!("bad number {raw:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> BenchResult {
        BenchResult {
            workload: "fft_pruned_inverse".into(),
            units: "us_per_op".into(),
            threshold: 0.5,
            reps: 5,
            median_us: 11430.926,
            mad_us: 52.0,
            smoke: false,
            git_rev: "abc123def456".into(),
            threads: 8,
            simd: "avx2".into(),
            extra: vec![("n".into(), 1024.0), ("p".into(), 25.0)],
        }
    }

    #[test]
    fn missing_simd_field_defaults_to_unknown() {
        // A result written before the kernel stamp existed still loads.
        let mut r = sample_result();
        r.simd = "unknown".into();
        let json = r.to_json().replace("  \"simd\": \"unknown\",\n", "");
        assert!(!json.contains("simd"));
        let back = BenchResult::from_json(&json, Path::new("old.json")).expect("parse");
        assert_eq!(back, r);
    }

    #[test]
    fn v2_round_trips() {
        let r = sample_result();
        let json = r.to_json();
        let back = BenchResult::from_json(&json, Path::new("x.json")).expect("parse");
        assert_eq!(back, r);
    }

    #[test]
    fn torn_document_is_a_typed_malformed_error() {
        let r = sample_result();
        let json = r.to_json();
        let torn = &json[..json.len() / 2];
        match BenchResult::from_json(torn, Path::new("torn.json")) {
            Err(PerfError::Malformed { .. }) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn v1_schema_is_surfaced_not_silently_passed() {
        let v1 = r#"{"schema": "ilt-bench-fft/v1", "p": 25, "reps": 5, "extra": {}}"#;
        match BenchResult::from_json(v1, Path::new("BENCH_fft.json")) {
            Err(PerfError::SchemaMismatch { found, .. }) => {
                assert_eq!(found, "ilt-bench-fft/v1");
            }
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
    }

    #[test]
    fn garbage_and_non_objects_are_malformed() {
        for bad in ["", "[1,2]", "nonsense", "{\"a\": }", "{\"a\": 1} trailing"] {
            assert!(
                matches!(
                    BenchResult::from_json(bad, Path::new("bad.json")),
                    Err(PerfError::Malformed { .. })
                ),
                "{bad:?} should be malformed"
            );
        }
    }
}
