//! Tier-1 smoke leg for the performance barometer: every registry
//! workload's setup path must compile and run on a plain `cargo test -q`.
//!
//! Runs the full registry in smoke mode (1 rep, tiny fixtures) in-process,
//! then round-trips each result through the on-disk v2 schema. A workload
//! whose fixtures break, whose self-check diverges, or whose JSON stops
//! parsing fails here — long before a nightly `ilt bench run` would see it.

use std::path::Path;

use ilt_perf::{registry, BenchResult, EnvStamp, MeasureConfig, PerfError, Selection, SCHEMA_V2};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ilt_perf_smoke_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn every_workload_runs_in_smoke_mode_and_round_trips() {
    let cfg = MeasureConfig { smoke: true, reps: 1 };
    let env = EnvStamp { git_rev: "smoketest".into(), threads: 1, simd: "scalar".into() };
    let dir = temp_dir("all");
    let workloads = registry();
    assert!(workloads.len() >= 6, "registry shrank below six workloads");

    for w in &workloads {
        let sample = (w.run)(&cfg).unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
        assert!(sample.median_us >= 0.0, "{}: negative median", w.name);
        assert_eq!(sample.reps, 1, "{}: smoke mode must run one rep", w.name);

        let result = BenchResult::new(w, &sample, &cfg, &env);
        assert!(result.to_json().contains(SCHEMA_V2), "{}: wrong schema stamp", w.name);
        assert!(result.smoke, "{}: smoke run must be stamped smoke", w.name);
        let path = result.write(&dir).unwrap_or_else(|e| panic!("{}: write: {e}", w.name));
        let back = BenchResult::load(&path).unwrap_or_else(|e| panic!("{}: load: {e}", w.name));
        assert_eq!(back.workload, w.name);
        assert_eq!(back.units, w.units);
        assert!((back.median_us - sample.median_us).abs() < 1e-3, "{}: median drifted", w.name);
        assert!(back.smoke, "{}: smoke flag lost in round trip", w.name);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn smoke_results_never_gate() {
    // The FFT workload is the cheapest; one smoke result on both sides of a
    // diff must be refused, whatever the numbers say.
    let cfg = MeasureConfig { smoke: true, reps: 1 };
    let env = EnvStamp { git_rev: "smoketest".into(), threads: 1, simd: "scalar".into() };
    let w = registry().into_iter().find(|w| w.name == "fft_pruned_inverse").expect("workload");
    let sample = (w.run)(&cfg).expect("smoke run");
    let result = BenchResult::new(&w, &sample, &cfg, &env);

    let dir = temp_dir("gate");
    result.write(&dir).expect("write");
    let err = ilt_perf::diff_dirs(&dir, &dir, &Selection::all(), None)
        .expect_err("smoke results must be refused");
    assert!(matches!(err, PerfError::SmokeResult { .. }), "got {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn selection_filters_reach_every_family() {
    for tag in ["fft", "simulator", "autodiff", "runtime", "server", "cluster"] {
        let selection = Selection { tags: vec![tag.into()], names: Vec::new() };
        let picked = ilt_perf::select(&selection);
        assert!(!picked.is_empty(), "tag {tag} selects nothing");
        assert!(
            picked.iter().all(|w| w.tags.contains(&tag)),
            "tag {tag} selected a foreign workload"
        );
    }
    let missing = ilt_perf::select(&Selection {
        tags: Vec::new(),
        names: vec!["no_such_workload_*".into()],
    });
    assert!(missing.is_empty(), "bogus glob matched something");
}

#[test]
fn injected_delay_hook_slows_the_pruned_inverse() {
    // The end-to-end gate proof relies on this hook; pin its contract here
    // so a refactor cannot silently drop it. 20ms against a sub-10ms smoke
    // op is unmissable even on a noisy machine.
    let cfg = MeasureConfig { smoke: true, reps: 1 };
    let w = registry().into_iter().find(|w| w.name == "fft_pruned_inverse").expect("workload");
    let quiet = (w.run)(&cfg).expect("baseline run").median_us;
    std::env::set_var("ILT_BENCH_DELAY_US", "20000");
    let slowed = (w.run)(&cfg).expect("delayed run").median_us;
    std::env::remove_var("ILT_BENCH_DELAY_US");
    assert!(
        slowed > quiet + 10_000.0,
        "delay hook had no effect: quiet {quiet} us, slowed {slowed} us"
    );
}

#[test]
fn baseline_dir_without_file_is_a_hard_error() {
    let cfg = MeasureConfig { smoke: false, reps: 1 };
    let env = EnvStamp { git_rev: "smoketest".into(), threads: 1, simd: "scalar".into() };
    // A real (non-smoke) result diffed against an empty baseline dir: the
    // gate must demand a checked-in number, not skip the workload.
    let w = registry().into_iter().find(|w| w.name == "fft_pruned_inverse").expect("workload");
    let mut cfg_smoke_fixtures = cfg;
    cfg_smoke_fixtures.smoke = false;
    // Full fixtures are too slow for tier-1; fabricate the result instead.
    let sample = ilt_perf::Sample {
        median_us: 123.0,
        mad_us: 1.0,
        reps: 1,
        extra: Vec::new(),
    };
    let result = BenchResult::new(&w, &sample, &cfg_smoke_fixtures, &env);
    let fresh = temp_dir("fresh");
    let baselines = temp_dir("baselines");
    result.write(&fresh).expect("write");
    let err = ilt_perf::diff_dirs(&baselines, &fresh, &Selection::all(), None)
        .expect_err("missing baseline must error");
    assert!(matches!(err, PerfError::MissingBaseline { .. }), "got {err}");
    assert!(!Path::new(&baselines).join("BENCH_fft_pruned_inverse.json").exists());
    let _ = std::fs::remove_dir_all(&fresh);
    let _ = std::fs::remove_dir_all(&baselines);
}
