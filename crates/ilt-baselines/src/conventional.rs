//! Conventional single-level pixel ILT.
//!
//! This is "ILT without downsampling" from Table I of the paper, and the
//! legacy configuration (`T_R = 0`, no smoothing) whose SRAF-starved
//! behaviour motivates Section III-C. Implemented as a thin preset over the
//! same [`MultiLevelIlt`] engine so every difference in results is
//! attributable to the paper's three ideas rather than implementation
//! drift.

use std::sync::Arc;

use ilt_core::{BinaryFunction, IltConfig, IltResult, MultiLevelIlt, OptimizeRegion, Stage};
use ilt_field::Field2D;
use ilt_optics::LithoSimulator;

/// Conventional full-resolution pixel ILT baseline.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use ilt_baselines::ConventionalIlt;
/// use ilt_field::Field2D;
/// use ilt_optics::{LithoSimulator, OpticsConfig};
///
/// # fn main() -> Result<(), String> {
/// let cfg = OpticsConfig { grid: 64, nm_per_px: 8.0, num_kernels: 3, ..OpticsConfig::default() };
/// let sim = Arc::new(LithoSimulator::new(cfg)?);
/// let target = Field2D::from_fn(64, 64, |r, c| {
///     if (24..40).contains(&r) && (16..48).contains(&c) { 1.0 } else { 0.0 }
/// });
/// let result = ConventionalIlt::new(sim).run(&target, 5);
/// assert_eq!(result.mask.shape(), (64, 64));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ConventionalIlt {
    engine: MultiLevelIlt,
}

impl ConventionalIlt {
    /// Creates the baseline with the legacy configuration: sigmoid
    /// `T_R = 0` for optimization *and* output, no smoothing pool, no
    /// post-processing, full-resolution only.
    pub fn new(sim: Arc<LithoSimulator>) -> Self {
        Self::with_region(sim, OptimizeRegion::option2_default())
    }

    /// Same, but with an explicit writable-region policy (for like-for-like
    /// table comparisons).
    pub fn with_region(sim: Arc<LithoSimulator>, region: OptimizeRegion) -> Self {
        let cfg = IltConfig {
            binary: BinaryFunction::legacy_sigmoid(),
            output_binary: BinaryFunction::legacy_sigmoid(),
            smoothing: None,
            region,
            postprocess: None,
            ..IltConfig::default()
        };
        ConventionalIlt { engine: MultiLevelIlt::new(sim, cfg) }
    }

    /// Access to the underlying engine (e.g. to inspect the configuration).
    pub fn engine(&self) -> &MultiLevelIlt {
        &self.engine
    }

    /// Runs `iterations` of full-resolution pixel ILT.
    ///
    /// # Panics
    ///
    /// Panics if the target does not match the simulator grid.
    pub fn run(&self, target: &Field2D, iterations: usize) -> IltResult {
        self.engine.run(target, &[Stage::low_res(1, iterations)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_optics::{OpticsConfig, SourceSpec};

    fn sim() -> Arc<LithoSimulator> {
        let cfg = OpticsConfig {
            grid: 64,
            nm_per_px: 8.0,
            num_kernels: 4,
            source: SourceSpec::Annular { sigma_in: 0.5, sigma_out: 0.9 },
            defocus_nm: 60.0,
            ..OpticsConfig::default()
        };
        Arc::new(LithoSimulator::new(cfg).expect("valid config"))
    }

    fn target() -> Field2D {
        Field2D::from_fn(64, 64, |r, c| {
            if (24..40).contains(&r) && (14..50).contains(&c) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn loss_decreases() {
        let result = ConventionalIlt::new(sim()).run(&target(), 8);
        let first = result.loss_history.first().unwrap().loss;
        let best = result.loss_history.iter().map(|r| r.loss).fold(f64::INFINITY, f64::min);
        assert!(best < first, "baseline must converge: {best} vs {first}");
    }

    #[test]
    fn runs_at_full_resolution_only() {
        let result = ConventionalIlt::new(sim()).run(&target(), 3);
        assert!(result.loss_history.iter().all(|r| r.scale == 1));
        assert_eq!(result.final_scale, 1);
    }

    #[test]
    fn uses_legacy_binary_function() {
        let baseline = ConventionalIlt::new(sim());
        assert_eq!(baseline.engine().config().binary, BinaryFunction::legacy_sigmoid());
        assert!(baseline.engine().config().smoothing.is_none());
    }
}
