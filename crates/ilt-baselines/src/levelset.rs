//! Level-set ILT, standing in for GLS-ILT [6].
//!
//! The mask is represented implicitly as the sub-zero set of a level-set
//! function `phi` (negative inside). Each iteration:
//!
//! 1. builds the transmission `M = sigma(-phi / eps)` (a smeared Heaviside),
//! 2. evaluates the same Eq. 5 loss as the pixel methods through the
//!    shared lithography engine and autodiff tape,
//! 3. descends `phi` along `dL/dphi = -(1/eps) sigma' (dL/dM)`,
//! 4. periodically **redistances** `phi` back to a signed distance function
//!    (chamfer transform), the step that keeps level-set masks smooth and
//!    hole-free — and also what prevents SRAFs from nucleating far from
//!    existing contours, the behaviour the paper contrasts against.

use std::sync::Arc;

use ilt_autodiff::Graph;
use ilt_core::{LossRecord, OptimizeRegion};
use ilt_field::{avg_pool_down, Field2D};
use ilt_optics::{LithoSimulator, ProcessCondition};

/// Configuration of the level-set baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct LevelSetConfig {
    /// Gradient step on `phi`.
    pub learning_rate: f64,
    /// Heaviside smearing width in pixels.
    pub epsilon: f64,
    /// Redistance `phi` every this many iterations.
    pub redistance_every: usize,
    /// Writable-region policy (GLS-ILT uses the Option-2 corridor).
    pub region: OptimizeRegion,
    /// Optimization scale factor (1 = full resolution, the GLS-ILT
    /// setting; larger values accelerate tests).
    pub scale: usize,
}

impl Default for LevelSetConfig {
    fn default() -> Self {
        LevelSetConfig {
            learning_rate: 2.0,
            epsilon: 1.5,
            redistance_every: 10,
            region: OptimizeRegion::option2_default(),
            scale: 1,
        }
    }
}

/// Result of a level-set run.
#[derive(Clone, Debug)]
pub struct LevelSetResult {
    /// Final binary mask at full resolution.
    pub mask: Field2D,
    /// Final level-set function (at the optimization scale).
    pub phi: Field2D,
    /// Loss trace.
    pub loss_history: Vec<LossRecord>,
}

/// The level-set ILT baseline.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use ilt_baselines::{LevelSetConfig, LevelSetIlt};
/// use ilt_field::Field2D;
/// use ilt_optics::{LithoSimulator, OpticsConfig};
///
/// # fn main() -> Result<(), String> {
/// let cfg = OpticsConfig { grid: 64, nm_per_px: 8.0, num_kernels: 3, ..OpticsConfig::default() };
/// let sim = Arc::new(LithoSimulator::new(cfg)?);
/// let target = Field2D::from_fn(64, 64, |r, c| {
///     if (24..40).contains(&r) && (16..48).contains(&c) { 1.0 } else { 0.0 }
/// });
/// let ls = LevelSetIlt::new(sim, LevelSetConfig { scale: 2, ..LevelSetConfig::default() });
/// let result = ls.run(&target, 4);
/// assert_eq!(result.mask.shape(), (64, 64));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LevelSetIlt {
    sim: Arc<LithoSimulator>,
    cfg: LevelSetConfig,
}

impl LevelSetIlt {
    /// Creates the baseline.
    pub fn new(sim: Arc<LithoSimulator>, cfg: LevelSetConfig) -> Self {
        LevelSetIlt { sim, cfg }
    }

    /// Runs `iterations` of level-set evolution on `target`.
    ///
    /// # Panics
    ///
    /// Panics if the target does not match the simulator grid or the scale
    /// is invalid.
    pub fn run(&self, target: &Field2D, iterations: usize) -> LevelSetResult {
        let n = self.sim.config().grid;
        assert_eq!(target.shape(), (n, n), "target must match simulator grid {n}");
        let s = self.cfg.scale;
        assert!(s >= 1 && s.is_power_of_two(), "bad scale {s}");
        let nm = self.sim.config().nm_per_px;

        let target_s = if s > 1 { avg_pool_down(target, s).threshold(0.5) } else { target.clone() };
        let region_s = self.cfg.region.region_mask_at_scale(target, nm, s);
        let mut phi = signed_distance(&target_s);
        let alpha = self.sim.config().resist_steepness;
        let i_th = self.sim.config().resist_threshold;

        let mut history = Vec::new();
        for iteration in 0..iterations {
            // M = sigma(-phi / eps): 1 inside (phi < 0), 0 outside.
            let mask_field = phi.map(|p| 1.0 / (1.0 + (p / self.cfg.epsilon).exp()));

            let mut g = Graph::new(self.sim.clone());
            let m = g.leaf(mask_field.clone());
            let outer = ProcessCondition::outer();
            let inner = ProcessCondition::inner();
            let i_out = g.hopkins(m, outer.defocus);
            let z_out = g.resist_sigmoid(i_out, alpha, outer.dose, i_th);
            let i_in = g.hopkins(m, inner.defocus);
            let z_in = g.resist_sigmoid(i_in, alpha, inner.dose, i_th);
            let t = g.leaf(target_s.clone());
            let l_l2 = g.sq_diff_sum(z_out, t);
            let l_pvb = g.sq_diff_sum(z_in, z_out);
            let loss = g.add(l_l2, l_pvb);
            history.push(LossRecord { stage: 0, iteration, scale: s, loss: g.scalar(loss) });

            let grads = g.backward(loss);
            let dl_dm = grads.wrt(m).expect("mask drives the loss");
            // dM/dphi = -(1/eps) sigma (1 - sigma).
            let eps = self.cfg.epsilon;
            let dl_dphi = dl_dm.zip_map(&mask_field, |gm, mv| -gm * mv * (1.0 - mv) / eps);
            let step = dl_dphi.hadamard(&region_s).scale(self.cfg.learning_rate);
            phi -= &step;

            if (iteration + 1) % self.cfg.redistance_every == 0 {
                phi = signed_distance(&phi.map(|p| if p < 0.0 { 1.0 } else { 0.0 }));
            }
        }

        let mask_s = phi.map(|p| if p < 0.0 { 1.0 } else { 0.0 });
        // Outside the writable region the mask is forced opaque.
        let mask_s = mask_s.hadamard(&region_s);
        let mask = if s > 1 { ilt_field::upsample_nearest(&mask_s, s) } else { mask_s };
        LevelSetResult { mask, phi, loss_history: history }
    }
}

/// Signed chamfer distance to the mask boundary: negative inside, positive
/// outside, approximately Euclidean (3-4 chamfer weights).
///
/// # Examples
///
/// ```
/// use ilt_baselines::signed_distance;
/// use ilt_field::Field2D;
///
/// let mut mask = Field2D::zeros(9, 9);
/// for r in 3..6 { for c in 3..6 { mask[(r, c)] = 1.0; } }
/// let phi = signed_distance(&mask);
/// assert!(phi[(4, 4)] < 0.0);  // inside
/// assert!(phi[(0, 0)] > 0.0);  // outside
/// ```
pub fn signed_distance(mask: &Field2D) -> Field2D {
    let dist_to_fg = chamfer(mask, true); // zero on foreground pixels
    let dist_to_bg = chamfer(mask, false); // zero on background pixels
    // Interior: -distance to the boundary; exterior: +distance.
    dist_to_fg.zip_map(&dist_to_bg, |to_fg, to_bg| to_fg - to_bg)
}

/// Chamfer distance (3-4 weights, normalized by 3) to the set where
/// `mask >= 0.5` (if `to_foreground`) or `< 0.5` (otherwise).
fn chamfer(mask: &Field2D, to_foreground: bool) -> Field2D {
    let (rows, cols) = mask.shape();
    let big = (rows + cols) as f64 * 4.0;
    let mut d = Field2D::from_fn(rows, cols, |r, c| {
        let fg = mask[(r, c)] >= 0.5;
        if fg == to_foreground {
            0.0
        } else {
            big
        }
    });
    // Forward pass.
    for r in 0..rows {
        for c in 0..cols {
            let mut best = d[(r, c)];
            if r > 0 {
                best = best.min(d[(r - 1, c)] + 1.0);
                if c > 0 {
                    best = best.min(d[(r - 1, c - 1)] + 4.0 / 3.0);
                }
                if c + 1 < cols {
                    best = best.min(d[(r - 1, c + 1)] + 4.0 / 3.0);
                }
            }
            if c > 0 {
                best = best.min(d[(r, c - 1)] + 1.0);
            }
            d[(r, c)] = best;
        }
    }
    // Backward pass.
    for r in (0..rows).rev() {
        for c in (0..cols).rev() {
            let mut best = d[(r, c)];
            if r + 1 < rows {
                best = best.min(d[(r + 1, c)] + 1.0);
                if c > 0 {
                    best = best.min(d[(r + 1, c - 1)] + 4.0 / 3.0);
                }
                if c + 1 < cols {
                    best = best.min(d[(r + 1, c + 1)] + 4.0 / 3.0);
                }
            }
            if c + 1 < cols {
                best = best.min(d[(r, c + 1)] + 1.0);
            }
            d[(r, c)] = best;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_optics::{OpticsConfig, SourceSpec};

    fn sim() -> Arc<LithoSimulator> {
        let cfg = OpticsConfig {
            grid: 64,
            nm_per_px: 8.0,
            num_kernels: 4,
            source: SourceSpec::Annular { sigma_in: 0.5, sigma_out: 0.9 },
            defocus_nm: 60.0,
            ..OpticsConfig::default()
        };
        Arc::new(LithoSimulator::new(cfg).expect("valid config"))
    }

    fn target() -> Field2D {
        Field2D::from_fn(64, 64, |r, c| {
            if (24..40).contains(&r) && (14..50).contains(&c) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn signed_distance_properties() {
        let t = target();
        let phi = signed_distance(&t);
        // Negative exactly on the foreground.
        for r in 0..64 {
            for c in 0..64 {
                if t[(r, c)] >= 0.5 {
                    assert!(phi[(r, c)] < 0.0, "({r},{c})");
                } else {
                    assert!(phi[(r, c)] > 0.0, "({r},{c})");
                }
            }
        }
        // Distance grows monotonically away from the boundary on a ray.
        assert!(phi[(0, 30)] > phi[(20, 30)]);
        assert!(phi[(32, 30)] < phi[(25, 30)]);
    }

    #[test]
    fn signed_distance_is_approximately_euclidean() {
        let mut mask = Field2D::zeros(32, 32);
        mask[(16, 16)] = 1.0;
        let phi = signed_distance(&mask);
        // Straight-line distance is exact under chamfer weights.
        assert!((phi[(16, 26)] - 10.0).abs() < 0.5);
        // Diagonal distance within 6% (3-4 chamfer error bound).
        let diag = phi[(24, 24)];
        let want = (2.0f64).sqrt() * 8.0;
        assert!((diag - want).abs() / want < 0.06, "{diag} vs {want}");
    }

    #[test]
    fn loss_decreases() {
        let ls = LevelSetIlt::new(
            sim(),
            LevelSetConfig { scale: 2, ..LevelSetConfig::default() },
        );
        let result = ls.run(&target(), 8);
        let first = result.loss_history.first().unwrap().loss;
        let best = result.loss_history.iter().map(|r| r.loss).fold(f64::INFINITY, f64::min);
        assert!(best < first, "level set must converge: {best} vs {first}");
    }

    #[test]
    fn final_mask_is_binary_and_covers_target_core() {
        let ls = LevelSetIlt::new(
            sim(),
            LevelSetConfig { scale: 2, ..LevelSetConfig::default() },
        );
        let result = ls.run(&target(), 6);
        for &v in result.mask.as_slice() {
            assert!(v == 0.0 || v == 1.0);
        }
        // The mask keeps the central body of the target feature.
        assert_eq!(result.mask[(32, 32)], 1.0);
    }

    #[test]
    fn redistancing_keeps_phi_bounded() {
        let ls = LevelSetIlt::new(
            sim(),
            LevelSetConfig { scale: 2, redistance_every: 2, ..LevelSetConfig::default() },
        );
        let result = ls.run(&target(), 7);
        let bound = 2.0 * 64.0;
        assert!(result.phi.min() > -bound && result.phi.max() < bound);
    }
}
