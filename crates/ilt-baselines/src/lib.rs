//! Non-neural baselines for the multi-level ILT evaluation.
//!
//! The paper compares against four published systems; the two neural ones
//! (Neural-ILT [4], DevelSet [5]) are represented in the bench harness by
//! their published numbers, while the optimization-based behaviours are
//! reproduced here from scratch so that like-for-like comparisons run under
//! one lithography engine:
//!
//! * [`ConventionalIlt`] — single-level pixel ILT with the legacy
//!   `T_R = 0` sigmoid (Table I's "w/o downsampling" row, Fig. 4(a)),
//! * [`LevelSetIlt`] — a GLS-ILT-style level-set optimizer [6],
//! * [`EdgeOpc`] — iterative edge-based model OPC (the intro's contrast).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use ilt_baselines::ConventionalIlt;
//! use ilt_field::Field2D;
//! use ilt_optics::{LithoSimulator, OpticsConfig};
//!
//! # fn main() -> Result<(), String> {
//! let cfg = OpticsConfig { grid: 64, nm_per_px: 8.0, num_kernels: 3, ..OpticsConfig::default() };
//! let sim = Arc::new(LithoSimulator::new(cfg)?);
//! let target = Field2D::from_fn(64, 64, |r, c| {
//!     if (28..36).contains(&r) && (16..48).contains(&c) { 1.0 } else { 0.0 }
//! });
//! let result = ConventionalIlt::new(sim).run(&target, 3);
//! assert!(!result.loss_history.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod conventional;
mod levelset;
mod opc;

pub use conventional::ConventionalIlt;
pub use levelset::{signed_distance, LevelSetConfig, LevelSetIlt, LevelSetResult};
pub use opc::{EdgeOpc, EdgeOpcConfig, OpcResult};
