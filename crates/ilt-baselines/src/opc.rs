//! Iterative edge-based model OPC.
//!
//! The paper's introduction contrasts ILT against model-based OPC ([1] vs
//! [2]): OPC keeps the mask rectilinear and only bites or extends edge
//! segments, so it is fast and trivially manufacturable but far less
//! flexible than pixel ILT (no SRAFs, no curvilinear assists). This
//! implementation closes the classic loop: simulate, measure signed edge
//! displacement at EPE sites, and move each mask edge segment against its
//! error with a damping factor.

use std::sync::Arc;

use ilt_core::LossRecord;
use ilt_field::Field2D;
use ilt_metrics::{EdgeOrientation, EpeChecker};
use ilt_optics::{LithoSimulator, ProcessCondition};

/// Configuration of the OPC baseline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeOpcConfig {
    /// Fraction of the measured error corrected per iteration (damping).
    pub gain: f64,
    /// Maximum cumulative edge movement in pixels.
    pub max_bias_px: usize,
    /// Half-length (pixels) of the edge strip moved around each site.
    pub strip_half_len: usize,
    /// EPE measurement settings (spacing controls correction granularity).
    pub checker: EpeChecker,
}

impl EdgeOpcConfig {
    /// Reasonable defaults for a given pixel pitch.
    pub fn for_pixel_pitch(nm_per_px: f64) -> Self {
        EdgeOpcConfig {
            gain: 0.6,
            max_bias_px: 24,
            strip_half_len: (20.0 / nm_per_px).ceil() as usize,
            checker: EpeChecker { nm_per_px, ..EpeChecker::default() },
        }
    }
}

/// Result of an OPC run.
#[derive(Clone, Debug)]
pub struct OpcResult {
    /// Final corrected mask (rectilinear, no SRAFs).
    pub mask: Field2D,
    /// Squared-L2 print error per iteration (nominal corner, in pixels).
    pub loss_history: Vec<LossRecord>,
}

/// Edge-based model OPC.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use ilt_baselines::{EdgeOpc, EdgeOpcConfig};
/// use ilt_field::Field2D;
/// use ilt_optics::{LithoSimulator, OpticsConfig};
///
/// # fn main() -> Result<(), String> {
/// let cfg = OpticsConfig { grid: 64, nm_per_px: 8.0, num_kernels: 3, ..OpticsConfig::default() };
/// let sim = Arc::new(LithoSimulator::new(cfg)?);
/// let target = Field2D::from_fn(64, 64, |r, c| {
///     if (24..40).contains(&r) && (16..48).contains(&c) { 1.0 } else { 0.0 }
/// });
/// let opc = EdgeOpc::new(sim, EdgeOpcConfig::for_pixel_pitch(8.0));
/// let result = opc.run(&target, 4);
/// assert_eq!(result.mask.shape(), (64, 64));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EdgeOpc {
    sim: Arc<LithoSimulator>,
    cfg: EdgeOpcConfig,
}

impl EdgeOpc {
    /// Creates the baseline.
    pub fn new(sim: Arc<LithoSimulator>, cfg: EdgeOpcConfig) -> Self {
        EdgeOpc { sim, cfg }
    }

    /// Runs `iterations` of correct-and-resimulate on `target`.
    ///
    /// # Panics
    ///
    /// Panics if the target does not match the simulator grid.
    pub fn run(&self, target: &Field2D, iterations: usize) -> OpcResult {
        let n = self.sim.config().grid;
        assert_eq!(target.shape(), (n, n), "target must match simulator grid {n}");
        let mut mask = target.clone();
        let mut history = Vec::new();

        for iteration in 0..iterations {
            let printed = self.sim.print(&mask, ProcessCondition::nominal());
            history.push(LossRecord {
                stage: 0,
                iteration,
                scale: 1,
                loss: printed.sq_l2_dist(target),
            });
            let epe = self.cfg.checker.check(target, &printed);
            let mut next = mask.clone();
            for site in &epe.sites {
                // Signed error: positive means printed past the target edge,
                // so bite the mask inward; negative means recede, so extend.
                let move_px =
                    (site.displacement_nm / self.cfg.checker.nm_per_px * self.cfg.gain).round();
                if move_px == 0.0 {
                    continue;
                }
                self.move_edge(&mut next, target, site.row, site.col, site.orientation, site.outward, move_px as isize);
            }
            mask = next;
        }
        OpcResult { mask, loss_history: history }
    }

    /// Moves the mask edge near one site by `amount` pixels (negative =
    /// extend outward, positive = bite inward).
    #[allow(clippy::too_many_arguments)]
    fn move_edge(
        &self,
        mask: &mut Field2D,
        target: &Field2D,
        row: usize,
        col: usize,
        orientation: EdgeOrientation,
        outward: (i8, i8),
        amount: isize,
    ) {
        let (rows, cols) = mask.shape();
        let half = self.cfg.strip_half_len as isize;
        let max_bias = self.cfg.max_bias_px as isize;
        // Tangential direction along the edge.
        let (tr, tc): (isize, isize) = match orientation {
            EdgeOrientation::Horizontal => (0, 1),
            EdgeOrientation::Vertical => (1, 0),
        };
        let (nr, nc) = (outward.0 as isize, outward.1 as isize);
        let depth = amount.unsigned_abs().min(max_bias as usize) as isize;
        for along in -half..=half {
            let er = row as isize + along * tr;
            let ec = col as isize + along * tc;
            // Only touch strips that are genuinely on this target edge.
            let on_target = |r: isize, c: isize| {
                r >= 0 && c >= 0 && (r as usize) < rows && (c as usize) < cols
                    && target[(r as usize, c as usize)] >= 0.5
            };
            if !on_target(er, ec) || on_target(er + nr, ec + nc) {
                continue;
            }
            for d in 0..depth {
                if amount > 0 {
                    // Bite inward: clear pixels just inside the edge.
                    let (r, c) = (er - d * nr, ec - d * nc);
                    if r >= 0 && c >= 0 && (r as usize) < rows && (c as usize) < cols {
                        mask[(r as usize, c as usize)] = 0.0;
                    }
                } else {
                    // Extend outward: set pixels just outside the edge.
                    let (r, c) = (er + (d + 1) * nr, ec + (d + 1) * nc);
                    if r >= 0 && c >= 0 && (r as usize) < rows && (c as usize) < cols {
                        mask[(r as usize, c as usize)] = 1.0;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ilt_optics::{OpticsConfig, SourceSpec};

    fn sim() -> Arc<LithoSimulator> {
        let cfg = OpticsConfig {
            grid: 64,
            nm_per_px: 8.0,
            num_kernels: 4,
            source: SourceSpec::Annular { sigma_in: 0.5, sigma_out: 0.9 },
            defocus_nm: 60.0,
            ..OpticsConfig::default()
        };
        Arc::new(LithoSimulator::new(cfg).expect("valid config"))
    }

    fn target() -> Field2D {
        Field2D::from_fn(64, 64, |r, c| {
            if (26..38).contains(&r) && (14..50).contains(&c) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn opc_reduces_print_error() {
        let t = target();
        let s = sim();
        let opc = EdgeOpc::new(s.clone(), EdgeOpcConfig::for_pixel_pitch(8.0));
        let result = opc.run(&t, 6);
        let initial = result.loss_history.first().unwrap().loss;
        let final_print = s.print(&result.mask, ProcessCondition::nominal());
        let final_err = final_print.sq_l2_dist(&t);
        assert!(
            final_err < initial,
            "OPC must reduce print error: {final_err} vs {initial}"
        );
    }

    #[test]
    fn mask_stays_binary() {
        let opc = EdgeOpc::new(sim(), EdgeOpcConfig::for_pixel_pitch(8.0));
        let result = opc.run(&target(), 3);
        for &v in result.mask.as_slice() {
            assert!(v == 0.0 || v == 1.0);
        }
    }

    #[test]
    fn opc_produces_no_srafs() {
        // OPC only edits near target edges: no disconnected assists far away.
        let t = target();
        let opc = EdgeOpc::new(sim(), EdgeOpcConfig::for_pixel_pitch(8.0));
        let result = opc.run(&t, 5);
        let far = ilt_geom::dilate(&t, 8);
        for r in 0..64 {
            for c in 0..64 {
                if far[(r, c)] < 0.5 {
                    assert_eq!(result.mask[(r, c)], 0.0, "unexpected assist at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn zero_iterations_returns_target() {
        let t = target();
        let opc = EdgeOpc::new(sim(), EdgeOpcConfig::for_pixel_pitch(8.0));
        let result = opc.run(&t, 0);
        assert_eq!(result.mask, t);
        assert!(result.loss_history.is_empty());
    }
}
