//! Binary-mask geometry for inverse lithography.
//!
//! Three geometric services back the multi-level ILT flow:
//!
//! * **Components** ([`label_components`]) — SRAF census and shape statistics,
//! * **Fracturing** ([`fracture`], [`shot_count`]) — Definition 4's mask
//!   fracturing shot count, via exact horizontal-slab decomposition,
//! * **Post-processing** ([`simplify_mask`]) — Section III-D's "eliminate too
//!   small shapes and replace medium-sized irregular SRAFs with rectangles",
//!   plus square-element [`erode`]/[`dilate`] morphology.
//!
//! # Example
//!
//! ```
//! use ilt_geom::{rasterize_rects, shot_count, Rect};
//!
//! let mask = rasterize_rects(&[Rect::new(0, 0, 8, 8), Rect::new(10, 10, 12, 20)], 32, 32);
//! assert_eq!(shot_count(&mask), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod components;
mod fracture;
mod postprocess;
mod rect;

pub use components::{component_count, label_components, Component};
pub use fracture::{fracture, shot_count};
pub use postprocess::{dilate, erode, simplify_mask, SimplifyConfig, SimplifyReport};
pub use rect::{rasterize_rects, Rect};
