//! Rectangle fracturing of binary masks — the **#shots** metric.
//!
//! Definition 4 of the paper: "mask fracturing shot count is the number of
//! rectangles used to replicate the optimized curvilinear mask shapes". Mask
//! writers expose rectangular (variable-shaped-beam) shots, so a curvy ILT
//! mask must be decomposed into axis-aligned rectangles; fewer rectangles
//! means a cheaper, more manufacturable mask.
//!
//! We implement the standard horizontal-slab decomposition: scan rows, split
//! each row into maximal runs of foreground pixels, and merge a run with the
//! rectangle above it when both column extents match exactly. This is the
//! same scheme used by the Neural-ILT evaluation flow the paper compares
//! against, and it is exact (the returned rectangles tile the mask).

use ilt_field::Field2D;

use crate::rect::Rect;

/// Decomposes a binary mask (foreground `>= 0.5`) into non-overlapping
/// axis-aligned rectangles using horizontal-slab merging.
///
/// The rectangles tile the foreground exactly: they are disjoint and their
/// union is the set of foreground pixels.
///
/// # Examples
///
/// ```
/// use ilt_field::Field2D;
/// use ilt_geom::fracture;
///
/// // A plus sign fractures into 3 slabs.
/// let mut f = Field2D::zeros(3, 3);
/// for i in 0..3 { f[(1, i)] = 1.0; f[(i, 1)] = 1.0; }
/// assert_eq!(fracture(&f).len(), 3);
/// ```
pub fn fracture(mask: &Field2D) -> Vec<Rect> {
    let (rows, cols) = mask.shape();
    let src = mask.as_slice();

    let mut finished: Vec<Rect> = Vec::new();
    // Open rectangles from the previous row, sorted by start column.
    let mut open: Vec<Rect> = Vec::new();

    for r in 0..rows {
        let row = &src[r * cols..(r + 1) * cols];
        // Extract runs of this row.
        let mut runs: Vec<(usize, usize)> = Vec::new();
        let mut c = 0;
        while c < cols {
            if row[c] >= 0.5 {
                let start = c;
                while c < cols && row[c] >= 0.5 {
                    c += 1;
                }
                runs.push((start, c));
            } else {
                c += 1;
            }
        }

        // Merge runs with open rectangles whose column span matches exactly.
        let mut next_open: Vec<Rect> = Vec::with_capacity(runs.len());
        let mut oi = 0;
        for &(c0, c1) in &runs {
            // Advance past open rects strictly left of this run.
            while oi < open.len() && open[oi].c0 < c0 {
                finished.push(open[oi]);
                oi += 1;
            }
            if oi < open.len() && open[oi].c0 == c0 && open[oi].c1 == c1 {
                // Extend downward.
                let mut ext = open[oi];
                ext.r1 = r + 1;
                next_open.push(ext);
                oi += 1;
            } else {
                next_open.push(Rect::new(r, c0, r + 1, c1));
            }
        }
        // Any remaining open rects end here.
        finished.extend_from_slice(&open[oi..]);
        open = next_open;
    }
    finished.extend_from_slice(&open);
    finished
}

/// Number of rectangles produced by [`fracture`] — the paper's "#shots".
///
/// # Examples
///
/// ```
/// use ilt_field::Field2D;
/// use ilt_geom::shot_count;
///
/// assert_eq!(shot_count(&Field2D::filled(16, 16, 1.0)), 1);
/// assert_eq!(shot_count(&Field2D::zeros(16, 16)), 0);
/// ```
pub fn shot_count(mask: &Field2D) -> usize {
    fracture(mask).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::rasterize_rects;

    fn reassemble(rects: &[Rect], rows: usize, cols: usize) -> Field2D {
        rasterize_rects(rects, rows, cols)
    }

    fn total_area(rects: &[Rect]) -> usize {
        rects.iter().map(Rect::area).sum()
    }

    #[test]
    fn single_rect_is_one_shot() {
        let f = rasterize_rects(&[Rect::new(2, 3, 7, 9)], 16, 16);
        let rects = fracture(&f);
        assert_eq!(rects, vec![Rect::new(2, 3, 7, 9)]);
    }

    #[test]
    fn disjoint_rects_counted_separately() {
        let input = [Rect::new(0, 0, 2, 2), Rect::new(4, 4, 8, 8), Rect::new(0, 6, 1, 8)];
        let f = rasterize_rects(&input, 10, 10);
        assert_eq!(shot_count(&f), 3);
    }

    #[test]
    fn plus_sign_is_three_slabs() {
        let mut f = Field2D::zeros(5, 5);
        for i in 0..5 {
            f[(2, i)] = 1.0;
            f[(i, 2)] = 1.0;
        }
        let rects = fracture(&f);
        assert_eq!(rects.len(), 3);
        assert_eq!(total_area(&rects), f.count_on());
        assert_eq!(reassemble(&rects, 5, 5), f);
    }

    #[test]
    fn staircase_fracture_is_exact_tiling() {
        // A 4-step staircase: each step widens by one pixel.
        let mut f = Field2D::zeros(4, 5);
        for r in 0..4 {
            for c in 0..=r {
                f[(r, c)] = 1.0;
            }
        }
        let rects = fracture(&f);
        assert_eq!(rects.len(), 4);
        assert_eq!(total_area(&rects), f.count_on());
        assert_eq!(reassemble(&rects, 4, 5), f);
        // Rectangles are pairwise disjoint.
        for i in 0..rects.len() {
            for j in i + 1..rects.len() {
                assert!(!rects[i].intersects(&rects[j]), "{:?} vs {:?}", rects[i], rects[j]);
            }
        }
    }

    #[test]
    fn vertical_bar_merges_fully() {
        let f = rasterize_rects(&[Rect::new(0, 3, 10, 5)], 10, 10);
        assert_eq!(shot_count(&f), 1);
    }

    #[test]
    fn checkerboard_is_per_pixel() {
        let f = Field2D::from_fn(4, 4, |r, c| ((r + c) % 2) as f64);
        assert_eq!(shot_count(&f), 8);
    }

    #[test]
    fn complex_mask_roundtrips() {
        // An irregular blob: verify the tiling property (disjoint + covering).
        let f = Field2D::from_fn(16, 16, |r, c| {
            let x = c as f64 - 7.5;
            let y = r as f64 - 7.5;
            if x * x + y * y < 36.0 {
                1.0
            } else {
                0.0
            }
        });
        let rects = fracture(&f);
        assert_eq!(total_area(&rects), f.count_on());
        assert_eq!(reassemble(&rects, 16, 16), f);
        for i in 0..rects.len() {
            for j in i + 1..rects.len() {
                assert!(!rects[i].intersects(&rects[j]));
            }
        }
    }

    #[test]
    fn runs_that_shift_do_not_merge() {
        // Two rows with runs of equal width but offset by one: 2 shots.
        let mut f = Field2D::zeros(2, 5);
        for c in 0..3 {
            f[(0, c)] = 1.0;
            f[(1, c + 1)] = 1.0;
        }
        assert_eq!(shot_count(&f), 2);
    }
}
