//! Connected-component labelling of binary masks.
//!
//! Components are the unit of the paper's shape-level reasoning: SRAFs are
//! the non-target components of an optimized mask, the Section III-D
//! post-processing removes/rectangularizes small components, and mask
//! complexity correlates with the component census.

use ilt_field::Field2D;

use crate::rect::Rect;

/// Statistics of one 4-connected component of a binary mask.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Component {
    /// Label index (0-based, in discovery order).
    pub label: usize,
    /// Number of pixels in the component.
    pub area: usize,
    /// Tight bounding box.
    pub bbox: Rect,
    /// All pixels `(row, col)` of the component, in scan order.
    pub pixels: Vec<(usize, usize)>,
}

impl Component {
    /// Ratio of component area to bounding-box area, in `(0, 1]`.
    ///
    /// Perfect rectangles have solidity 1; ragged or L-shaped SRAFs score
    /// lower. Used by the post-processing rectangularization rule.
    pub fn solidity(&self) -> f64 {
        self.area as f64 / self.bbox.area().max(1) as f64
    }
}

/// Labels all 4-connected components of `mask` (a pixel is foreground when
/// `>= 0.5`).
///
/// Returns components in scan order of their first pixel.
///
/// # Examples
///
/// ```
/// use ilt_field::Field2D;
/// use ilt_geom::label_components;
///
/// let mut f = Field2D::zeros(4, 4);
/// f[(0, 0)] = 1.0;
/// f[(0, 1)] = 1.0;
/// f[(3, 3)] = 1.0; // diagonal from nothing: its own component
/// let comps = label_components(&f);
/// assert_eq!(comps.len(), 2);
/// assert_eq!(comps[0].area, 2);
/// ```
pub fn label_components(mask: &Field2D) -> Vec<Component> {
    let (rows, cols) = mask.shape();
    let src = mask.as_slice();
    let mut visited = vec![false; rows * cols];
    let mut comps = Vec::new();
    let mut stack = Vec::new();

    for start in 0..rows * cols {
        if visited[start] || src[start] < 0.5 {
            continue;
        }
        let label = comps.len();
        let mut pixels = Vec::new();
        let mut bbox = Rect::new(start / cols, start % cols, start / cols, start % cols);
        bbox.r1 = bbox.r0; // start with an empty bbox at the seed
        bbox.c1 = bbox.c0;

        visited[start] = true;
        stack.push(start);
        while let Some(idx) = stack.pop() {
            let (r, c) = (idx / cols, idx % cols);
            pixels.push((r, c));
            bbox = bbox.union_bbox(&Rect::new(r, c, r + 1, c + 1));
            if r > 0 && !visited[idx - cols] && src[idx - cols] >= 0.5 {
                visited[idx - cols] = true;
                stack.push(idx - cols);
            }
            if r + 1 < rows && !visited[idx + cols] && src[idx + cols] >= 0.5 {
                visited[idx + cols] = true;
                stack.push(idx + cols);
            }
            if c > 0 && !visited[idx - 1] && src[idx - 1] >= 0.5 {
                visited[idx - 1] = true;
                stack.push(idx - 1);
            }
            if c + 1 < cols && !visited[idx + 1] && src[idx + 1] >= 0.5 {
                visited[idx + 1] = true;
                stack.push(idx + 1);
            }
        }
        pixels.sort_unstable();
        comps.push(Component { label, area: pixels.len(), bbox, pixels });
    }
    comps
}

/// Number of 4-connected components (cheaper than [`label_components`] when
/// only the count is needed — no pixel lists are materialized).
pub fn component_count(mask: &Field2D) -> usize {
    let (rows, cols) = mask.shape();
    let src = mask.as_slice();
    let mut visited = vec![false; rows * cols];
    let mut stack = Vec::new();
    let mut count = 0;
    for start in 0..rows * cols {
        if visited[start] || src[start] < 0.5 {
            continue;
        }
        count += 1;
        visited[start] = true;
        stack.push(start);
        while let Some(idx) = stack.pop() {
            let (r, c) = (idx / cols, idx % cols);
            if r > 0 && !visited[idx - cols] && src[idx - cols] >= 0.5 {
                visited[idx - cols] = true;
                stack.push(idx - cols);
            }
            if r + 1 < rows && !visited[idx + cols] && src[idx + cols] >= 0.5 {
                visited[idx + cols] = true;
                stack.push(idx + cols);
            }
            if c > 0 && !visited[idx - 1] && src[idx - 1] >= 0.5 {
                visited[idx - 1] = true;
                stack.push(idx - 1);
            }
            if c + 1 < cols && !visited[idx + 1] && src[idx + 1] >= 0.5 {
                visited[idx + 1] = true;
                stack.push(idx + 1);
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::rasterize_rects;

    #[test]
    fn empty_mask_has_no_components() {
        assert!(label_components(&Field2D::zeros(8, 8)).is_empty());
        assert_eq!(component_count(&Field2D::zeros(8, 8)), 0);
    }

    #[test]
    fn full_mask_is_one_component() {
        let f = Field2D::filled(5, 7, 1.0);
        let comps = label_components(&f);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].area, 35);
        assert_eq!(comps[0].bbox, Rect::new(0, 0, 5, 7));
        assert_eq!(comps[0].solidity(), 1.0);
    }

    #[test]
    fn diagonal_pixels_are_separate_under_4_connectivity() {
        let mut f = Field2D::zeros(3, 3);
        f[(0, 0)] = 1.0;
        f[(1, 1)] = 1.0;
        f[(2, 2)] = 1.0;
        assert_eq!(component_count(&f), 3);
    }

    #[test]
    fn l_shape_solidity() {
        // 3x3 L: 5 pixels in a 3x3 bbox.
        let mut f = Field2D::zeros(5, 5);
        for r in 0..3 {
            f[(r, 0)] = 1.0;
        }
        f[(2, 1)] = 1.0;
        f[(2, 2)] = 1.0;
        let comps = label_components(&f);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].area, 5);
        assert!((comps[0].solidity() - 5.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn two_rects_two_components() {
        let f = rasterize_rects(&[Rect::new(0, 0, 2, 2), Rect::new(4, 4, 6, 6)], 8, 8);
        let comps = label_components(&f);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].bbox, Rect::new(0, 0, 2, 2));
        assert_eq!(comps[1].bbox, Rect::new(4, 4, 6, 6));
        assert_eq!(component_count(&f), 2);
    }

    #[test]
    fn touching_rects_merge() {
        let f = rasterize_rects(&[Rect::new(0, 0, 2, 2), Rect::new(0, 2, 2, 4)], 4, 4);
        assert_eq!(component_count(&f), 1);
    }

    #[test]
    fn pixels_are_sorted_and_complete() {
        let f = rasterize_rects(&[Rect::new(1, 1, 3, 3)], 4, 4);
        let comps = label_components(&f);
        assert_eq!(
            comps[0].pixels,
            vec![(1, 1), (1, 2), (2, 1), (2, 2)]
        );
    }
}
