//! Mask shape simplification — the paper's optional post-processing.
//!
//! Section III-D: "For the optional post-processing, we eliminate too small
//! shapes and replace medium-sized irregular SRAFs with rectangles to
//! further simplify the mask pattern." Both rules act on connected
//! components of the binarized mask; main features (components overlapping
//! the target) are never touched.

use ilt_field::Field2D;

use crate::components::label_components;

/// Configuration for [`simplify_mask`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimplifyConfig {
    /// Components with fewer pixels than this are deleted.
    pub min_area: usize,
    /// Non-main components with area in `[min_area, rect_max_area]` and
    /// solidity below [`SimplifyConfig::min_solidity`] are replaced by their
    /// bounding rectangle.
    pub rect_max_area: usize,
    /// Solidity threshold below which a medium SRAF counts as "irregular".
    pub min_solidity: f64,
}

impl Default for SimplifyConfig {
    /// Defaults tuned for 1 nm/pixel masks: drop sub-25 nm² specks,
    /// rectangularize ragged SRAFs up to 2500 nm².
    fn default() -> Self {
        SimplifyConfig { min_area: 25, rect_max_area: 2500, min_solidity: 0.85 }
    }
}

/// Report of what [`simplify_mask`] changed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimplifyReport {
    /// Number of components deleted for being too small.
    pub removed: usize,
    /// Number of components replaced by their bounding rectangle.
    pub rectangularized: usize,
    /// Number of components left untouched.
    pub kept: usize,
}

/// Applies the paper's post-processing to a binarized mask.
///
/// `target` marks the main features: any mask component whose bounding box
/// intersects a target foreground pixel is a main feature and is preserved
/// verbatim. The remaining components (SRAFs) are deleted when smaller than
/// `cfg.min_area`, and replaced by their bounding rectangle when
/// medium-sized and irregular.
///
/// Returns the simplified mask and a change report.
///
/// # Panics
///
/// Panics if `mask` and `target` have different shapes.
///
/// # Examples
///
/// ```
/// use ilt_field::Field2D;
/// use ilt_geom::{simplify_mask, SimplifyConfig};
///
/// let target = Field2D::zeros(8, 8);
/// let mut mask = Field2D::zeros(8, 8);
/// mask[(4, 4)] = 1.0; // a 1-pixel speck
/// let (clean, report) = simplify_mask(&mask, &target, SimplifyConfig {
///     min_area: 4, ..SimplifyConfig::default()
/// });
/// assert_eq!(clean.count_on(), 0);
/// assert_eq!(report.removed, 1);
/// ```
pub fn simplify_mask(
    mask: &Field2D,
    target: &Field2D,
    cfg: SimplifyConfig,
) -> (Field2D, SimplifyReport) {
    assert_eq!(mask.shape(), target.shape(), "mask/target shape mismatch");
    let mut out = mask.clone();
    let mut report = SimplifyReport::default();

    for comp in label_components(mask) {
        let is_main = comp
            .pixels
            .iter()
            .any(|&(r, c)| target[(r, c)] >= 0.5);
        if is_main {
            report.kept += 1;
            continue;
        }
        if comp.area < cfg.min_area {
            for &(r, c) in &comp.pixels {
                out[(r, c)] = 0.0;
            }
            report.removed += 1;
        } else if comp.area <= cfg.rect_max_area && comp.solidity() < cfg.min_solidity {
            for &(r, c) in &comp.pixels {
                out[(r, c)] = 0.0;
            }
            comp.bbox.fill(&mut out, 1.0);
            report.rectangularized += 1;
        } else {
            report.kept += 1;
        }
    }
    (out, report)
}

/// Morphological erosion of a binary mask with a `(2r+1)^2` square
/// structuring element.
///
/// A pixel survives only if its entire neighborhood is foreground.
pub fn erode(mask: &Field2D, radius: usize) -> Field2D {
    morph(mask, radius, true)
}

/// Morphological dilation with a `(2r+1)^2` square structuring element.
pub fn dilate(mask: &Field2D, radius: usize) -> Field2D {
    morph(mask, radius, false)
}

fn morph(mask: &Field2D, radius: usize, erode: bool) -> Field2D {
    if radius == 0 {
        return mask.threshold(0.5);
    }
    let (rows, cols) = mask.shape();
    let r = radius as isize;
    // Separable: horizontal pass then vertical pass (min/max filters).
    // Out-of-bounds pixels are background for both operations, so border
    // pixels erode away and dilation clamps at the frame.
    let pick = |acc: bool, v: bool| if erode { acc && v } else { acc || v };
    let src = mask.as_slice();

    let mut horiz = vec![false; rows * cols];
    for row in 0..rows {
        for col in 0..cols {
            let mut acc = erode;
            for d in -r..=r {
                let cc = col as isize + d;
                let v = cc >= 0
                    && cc < cols as isize
                    && src[row * cols + cc as usize] >= 0.5;
                acc = pick(acc, v);
            }
            horiz[row * cols + col] = acc;
        }
    }
    Field2D::from_fn(rows, cols, |row, col| {
        let mut acc = erode;
        for d in -r..=r {
            let rr = row as isize + d;
            let v = rr >= 0 && rr < rows as isize && horiz[rr as usize * cols + col];
            acc = pick(acc, v);
        }
        if acc {
            1.0
        } else {
            0.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::{rasterize_rects, Rect};

    fn square_target() -> Field2D {
        rasterize_rects(&[Rect::new(8, 8, 16, 16)], 24, 24)
    }

    #[test]
    fn main_features_are_never_touched() {
        let target = square_target();
        let mask = target.clone();
        let (out, report) = simplify_mask(&mask, &target, SimplifyConfig::default());
        assert_eq!(out, mask);
        assert_eq!(report.kept, 1);
        assert_eq!(report.removed, 0);
    }

    #[test]
    fn small_srafs_are_removed() {
        let target = square_target();
        let mut mask = target.clone();
        mask[(2, 2)] = 1.0;
        mask[(2, 3)] = 1.0;
        let cfg = SimplifyConfig { min_area: 5, ..SimplifyConfig::default() };
        let (out, report) = simplify_mask(&mask, &target, cfg);
        assert_eq!(out, target);
        assert_eq!(report.removed, 1);
        assert_eq!(report.kept, 1);
    }

    #[test]
    fn irregular_medium_srafs_become_rectangles() {
        let target = square_target();
        let mut mask = target.clone();
        // An L-shaped SRAF far from the target: 12 px in a 4x4 bbox => solidity 0.75.
        for r in 0..4 {
            mask[(r, 20)] = 1.0;
            mask[(r, 21)] = 1.0;
        }
        mask[(3, 22)] = 1.0;
        mask[(3, 23)] = 1.0;
        mask[(2, 22)] = 1.0;
        mask[(2, 23)] = 1.0;
        let cfg = SimplifyConfig { min_area: 4, rect_max_area: 100, min_solidity: 0.9 };
        let (out, report) = simplify_mask(&mask, &target, cfg);
        assert_eq!(report.rectangularized, 1);
        // The SRAF's bbox is now solid.
        for r in 0..4 {
            for c in 20..24 {
                assert_eq!(out[(r, c)], 1.0, "({r},{c})");
            }
        }
    }

    #[test]
    fn regular_srafs_are_kept_as_is() {
        let target = square_target();
        let mut mask = target.clone();
        Rect::new(0, 0, 2, 6).fill(&mut mask, 1.0); // a clean rectangle SRAF
        let cfg = SimplifyConfig { min_area: 4, rect_max_area: 100, min_solidity: 0.9 };
        let (out, report) = simplify_mask(&mask, &target, cfg);
        assert_eq!(out, mask);
        assert_eq!(report.kept, 2);
    }

    #[test]
    fn erode_dilate_basics() {
        let f = rasterize_rects(&[Rect::new(4, 4, 9, 9)], 16, 16);
        let e = erode(&f, 1);
        assert_eq!(e.count_on(), 9); // 5x5 -> 3x3
        let d = dilate(&f, 1);
        assert_eq!(d.count_on(), 49); // 5x5 -> 7x7
        // Opening a large rect is identity.
        assert_eq!(dilate(&erode(&f, 1), 1), f);
    }

    #[test]
    fn erode_removes_thin_lines() {
        let f = rasterize_rects(&[Rect::new(4, 0, 5, 16)], 16, 16); // 1-px line
        assert_eq!(erode(&f, 1).count_on(), 0);
    }

    #[test]
    fn dilation_clamps_at_borders() {
        let f = rasterize_rects(&[Rect::new(0, 0, 1, 1)], 4, 4);
        let d = dilate(&f, 1);
        assert_eq!(d.count_on(), 4); // 2x2 survives in-bounds
    }
}
