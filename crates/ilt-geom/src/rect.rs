//! Axis-aligned rectangles in pixel coordinates.

use ilt_field::Field2D;

/// A half-open axis-aligned rectangle `[r0, r1) x [c0, c1)` in pixel
/// coordinates (row, column).
///
/// # Examples
///
/// ```
/// use ilt_geom::Rect;
///
/// let r = Rect::new(1, 2, 4, 6);
/// assert_eq!(r.height(), 3);
/// assert_eq!(r.width(), 4);
/// assert_eq!(r.area(), 12);
/// assert!(r.contains(3, 5));
/// assert!(!r.contains(4, 5));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rect {
    /// First row (inclusive).
    pub r0: usize,
    /// First column (inclusive).
    pub c0: usize,
    /// Last row (exclusive).
    pub r1: usize,
    /// Last column (exclusive).
    pub c1: usize,
}

impl Rect {
    /// Creates a rectangle from inclusive start and exclusive end corners.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is inverted (`r1 < r0` or `c1 < c0`).
    pub fn new(r0: usize, c0: usize, r1: usize, c1: usize) -> Self {
        assert!(r1 >= r0 && c1 >= c0, "inverted rectangle ({r0},{c0})..({r1},{c1})");
        Rect { r0, c0, r1, c1 }
    }

    /// Height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.r1 - self.r0
    }

    /// Width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.c1 - self.c0
    }

    /// Area in pixels.
    #[inline]
    pub fn area(&self) -> usize {
        self.height() * self.width()
    }

    /// Returns `true` for a zero-area rectangle.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.area() == 0
    }

    /// Returns `true` if pixel `(r, c)` lies inside.
    #[inline]
    pub fn contains(&self, r: usize, c: usize) -> bool {
        r >= self.r0 && r < self.r1 && c >= self.c0 && c < self.c1
    }

    /// Returns `true` if the two rectangles share any pixel.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.r0 < other.r1 && other.r0 < self.r1 && self.c0 < other.c1 && other.c0 < self.c1
    }

    /// Smallest rectangle covering both.
    pub fn union_bbox(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            r0: self.r0.min(other.r0),
            c0: self.c0.min(other.c0),
            r1: self.r1.max(other.r1),
            c1: self.c1.max(other.c1),
        }
    }

    /// Expands by `margin` pixels on every side, clamped to `rows x cols`.
    pub fn expand_clamped(&self, margin: usize, rows: usize, cols: usize) -> Rect {
        Rect {
            r0: self.r0.saturating_sub(margin),
            c0: self.c0.saturating_sub(margin),
            r1: (self.r1 + margin).min(rows),
            c1: (self.c1 + margin).min(cols),
        }
    }

    /// Fills this rectangle with `value` in a field, clamped to its bounds.
    pub fn fill(&self, field: &mut Field2D, value: f64) {
        let r1 = self.r1.min(field.rows());
        let c1 = self.c1.min(field.cols());
        for r in self.r0..r1 {
            for c in self.c0..c1 {
                field[(r, c)] = value;
            }
        }
    }
}

/// Rasterizes a list of rectangles into a binary field (union of rects = 1).
///
/// # Examples
///
/// ```
/// use ilt_geom::{rasterize_rects, Rect};
///
/// let img = rasterize_rects(&[Rect::new(0, 0, 2, 2)], 4, 4);
/// assert_eq!(img.count_on(), 4);
/// ```
pub fn rasterize_rects(rects: &[Rect], rows: usize, cols: usize) -> Field2D {
    let mut f = Field2D::zeros(rows, cols);
    for r in rects {
        r.fill(&mut f, 1.0);
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_basics() {
        let r = Rect::new(0, 0, 2, 3);
        assert_eq!(r.area(), 6);
        assert!(!r.is_empty());
        assert!(Rect::new(1, 1, 1, 5).is_empty());
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(0, 0, 4, 4);
        assert!(a.intersects(&Rect::new(3, 3, 6, 6)));
        assert!(!a.intersects(&Rect::new(4, 0, 6, 4))); // touching edges don't overlap
        assert!(!a.intersects(&Rect::new(10, 10, 12, 12)));
    }

    #[test]
    fn union_bbox_covers_both() {
        let a = Rect::new(1, 1, 2, 2);
        let b = Rect::new(5, 0, 6, 8);
        let u = a.union_bbox(&b);
        assert_eq!(u, Rect::new(1, 0, 6, 8));
        assert_eq!(a.union_bbox(&Rect::new(3, 3, 3, 3)), a);
    }

    #[test]
    fn expand_clamps_at_borders() {
        let r = Rect::new(1, 1, 3, 3).expand_clamped(2, 4, 4);
        assert_eq!(r, Rect::new(0, 0, 4, 4));
    }

    #[test]
    fn rasterize_overlapping_rects() {
        let img = rasterize_rects(
            &[Rect::new(0, 0, 2, 2), Rect::new(1, 1, 3, 3)],
            4,
            4,
        );
        assert_eq!(img.count_on(), 7); // 4 + 4 - 1 overlap
        assert_eq!(img[(1, 1)], 1.0);
        assert_eq!(img[(3, 3)], 0.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_rect_panics() {
        let _ = Rect::new(2, 0, 1, 5);
    }
}
