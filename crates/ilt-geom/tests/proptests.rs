// Gated behind `slow-tests`: proptest comes from the registry, which the
// hermetic tier-1 build never touches. To run these, restore the `proptest`
// dev-dependency in Cargo.toml and pass `--features slow-tests`.
#![cfg(feature = "slow-tests")]

//! Property-based tests: fracturing must always produce an exact disjoint
//! tiling, and component labelling must partition the foreground.

use ilt_field::Field2D;
use ilt_geom::{
    component_count, dilate, erode, fracture, label_components, rasterize_rects, Rect,
};
use proptest::prelude::*;

fn random_mask(rows: usize, cols: usize) -> impl Strategy<Value = Field2D> {
    proptest::collection::vec(prop::bool::weighted(0.4), rows * cols).prop_map(move |bits| {
        Field2D::from_vec(
            rows,
            cols,
            bits.into_iter().map(|b| if b { 1.0 } else { 0.0 }).collect(),
        )
    })
}

fn random_rects(max: usize) -> impl Strategy<Value = Vec<Rect>> {
    proptest::collection::vec((0usize..12, 0usize..12, 1usize..6, 1usize..6), 0..max)
        .prop_map(|v| {
            v.into_iter()
                .map(|(r0, c0, h, w)| Rect::new(r0, c0, (r0 + h).min(16), (c0 + w).min(16)))
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fracture rectangles are disjoint and cover the mask exactly.
    #[test]
    fn fracture_is_exact_tiling(mask in random_mask(12, 12)) {
        let rects = fracture(&mask);
        let area: usize = rects.iter().map(Rect::area).sum();
        prop_assert_eq!(area, mask.count_on());
        prop_assert_eq!(rasterize_rects(&rects, 12, 12), mask);
        for i in 0..rects.len() {
            for j in i + 1..rects.len() {
                prop_assert!(!rects[i].intersects(&rects[j]));
            }
        }
    }

    /// Component areas sum to the foreground area, and every component's
    /// bounding box is tight.
    #[test]
    fn components_partition_foreground(mask in random_mask(10, 10)) {
        let comps = label_components(&mask);
        let total: usize = comps.iter().map(|c| c.area).sum();
        prop_assert_eq!(total, mask.count_on());
        prop_assert_eq!(comps.len(), component_count(&mask));
        for comp in &comps {
            let mut rmin = usize::MAX;
            let mut rmax = 0;
            let mut cmin = usize::MAX;
            let mut cmax = 0;
            for &(r, c) in &comp.pixels {
                rmin = rmin.min(r);
                rmax = rmax.max(r);
                cmin = cmin.min(c);
                cmax = cmax.max(c);
            }
            prop_assert_eq!(comp.bbox, Rect::new(rmin, cmin, rmax + 1, cmax + 1));
            prop_assert!(comp.solidity() > 0.0 && comp.solidity() <= 1.0);
        }
    }

    /// Rasterizing rectangles then fracturing never produces more shots than
    /// input rectangles would suggest per row-slab bound, and reproduces the mask.
    #[test]
    fn fracture_of_rect_unions(rects in random_rects(6)) {
        let mask = rasterize_rects(&rects, 16, 16);
        let shots = fracture(&mask);
        prop_assert_eq!(rasterize_rects(&shots, 16, 16), mask);
    }

    /// Erosion shrinks, dilation grows, and both are monotone.
    #[test]
    fn morphology_monotone(mask in random_mask(10, 10), radius in 0usize..3) {
        let e = erode(&mask, radius);
        let d = dilate(&mask, radius);
        for i in 0..100 {
            let m = mask.as_slice()[i] >= 0.5;
            let ev = e.as_slice()[i] >= 0.5;
            let dv = d.as_slice()[i] >= 0.5;
            prop_assert!(!ev || m, "erosion must be a subset");
            prop_assert!(!m || dv, "dilation must be a superset");
        }
    }

    /// Duality: erode(mask) == !dilate(!mask) away from the border.
    #[test]
    fn erosion_dilation_duality(mask in random_mask(10, 10)) {
        let e = erode(&mask, 1);
        let inv = mask.map(|x| 1.0 - x);
        let d = dilate(&inv, 1);
        for r in 1..9 {
            for c in 1..9 {
                prop_assert_eq!(e[(r, c)] >= 0.5, d[(r, c)] < 0.5, "({}, {})", r, c);
            }
        }
    }
}
