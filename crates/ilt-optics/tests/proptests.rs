// Gated behind `slow-tests`: proptest comes from the registry, which the
// hermetic tier-1 build never touches. To run these, restore the `proptest`
// dev-dependency in Cargo.toml and pass `--features slow-tests`.
#![cfg(feature = "slow-tests")]

//! Property-based invariants of the lithography engine on random
//! rectangle masks: physical sanity (non-negativity, bounds, monotone
//! dose), multi-resolution consistency (Eq. 7 exactness), and adjoint
//! correctness of the Hopkins VJP.

use ilt_field::Field2D;
use ilt_optics::{LithoSimulator, OpticsConfig, SourceSpec};
use proptest::prelude::*;

fn sim() -> std::sync::Arc<LithoSimulator> {
    // The simulator holds per-size FFT caches behind `Mutex`-guarded caches, so it
    // is deliberately not `Sync`; cache one instance per test thread.
    thread_local! {
        static SIM: std::sync::Arc<LithoSimulator> = std::sync::Arc::new({
            let cfg = OpticsConfig {
                grid: 64,
                nm_per_px: 8.0,
                num_kernels: 4,
                source: SourceSpec::Annular { sigma_in: 0.5, sigma_out: 0.9 },
                defocus_nm: 60.0,
                ..OpticsConfig::default()
            };
            LithoSimulator::new(cfg).expect("valid config")
        });
    }
    SIM.with(std::sync::Arc::clone)
}

fn random_rect_mask() -> impl Strategy<Value = Field2D> {
    proptest::collection::vec((0usize..48, 0usize..48, 4usize..24, 4usize..24), 1..5).prop_map(
        |rects| {
            let mut f = Field2D::zeros(64, 64);
            for (r0, c0, h, w) in rects {
                for r in r0..(r0 + h).min(64) {
                    for c in c0..(c0 + w).min(64) {
                        f[(r, c)] = 1.0;
                    }
                }
            }
            f
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Aerial intensity is non-negative, finite, and bounded by the open
    /// frame (transmission <= 1 everywhere implies I <= ~1 plus ringing).
    #[test]
    fn intensity_is_physical(mask in random_rect_mask(), defocus in any::<bool>()) {
        let i = sim().aerial(&mask, defocus);
        prop_assert!(i.min() >= 0.0);
        prop_assert!(i.max() <= 1.5, "intensity {} beyond plausible ringing", i.max());
        prop_assert!(i.as_slice().iter().all(|v| v.is_finite()));
    }

    /// An empty mask produces exactly zero intensity.
    #[test]
    fn dark_field_is_dark(defocus in any::<bool>()) {
        let i = sim().aerial(&Field2D::zeros(64, 64), defocus);
        prop_assert!(i.max() < 1e-12);
    }

    /// Dose monotonicity: higher dose prints a superset of pixels.
    #[test]
    fn dose_monotonicity(mask in random_rect_mask()) {
        let i = sim().aerial(&mask, false);
        let lo = sim().resist_hard(&i, 0.95);
        let hi = sim().resist_hard(&i, 1.05);
        for (a, b) in lo.as_slice().iter().zip(hi.as_slice()) {
            prop_assert!(b >= a);
        }
    }

    /// Process corners are ordered by area for any mask: inner (defocus,
    /// -2% dose) prints no more than outer (+2% dose) on average.
    #[test]
    fn corner_area_ordering(mask in random_rect_mask()) {
        let corners = sim().print_corners(&mask);
        // Inner can locally exceed nominal through defocus ringing, but the
        // dose-only pair is strictly ordered.
        prop_assert!(corners.nominal.count_on() <= corners.outer.count_on());
    }

    /// Eq. 7 subsampling equals the full simulation at the sample points.
    #[test]
    fn eq7_exact_subsampling(mask in random_rect_mask()) {
        let full = sim().aerial(&mask, false);
        let sub = sim().aerial_subsampled(&mask, 2, false);
        for r in 0..32 {
            for c in 0..32 {
                prop_assert!((full[(r * 2, c * 2)] - sub[(r, c)]).abs() < 1e-9);
            }
        }
    }

    /// The VJP is the true adjoint: <J v, w> == <v, J^T w> tested through
    /// directional derivatives (Jv via forward differencing).
    #[test]
    fn vjp_is_adjoint(mask in random_rect_mask(), seed in any::<u32>()) {
        let m0 = mask.map(|v| 0.2 + 0.6 * v); // interior point, not binary
        let (_, cache) = sim().aerial_with_cache(&m0, false);

        // Random direction v and weight w.
        let mut state = seed as u64 | 1;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let v = Field2D::from_fn(64, 64, |_, _| rnd());
        let w = Field2D::from_fn(64, 64, |_, _| rnd());

        // <J v, w> by central differences along v.
        let eps = 1e-5;
        let mp = m0.zip_map(&v, |m, d| m + eps * d);
        let mm = m0.zip_map(&v, |m, d| m - eps * d);
        let ip = sim().aerial(&mp, false);
        let im = sim().aerial(&mm, false);
        let jv_dot_w: f64 = ip
            .zip_map(&im, |a, b| (a - b) / (2.0 * eps))
            .hadamard(&w)
            .sum();

        // <v, J^T w> via the VJP.
        let jt_w = sim().aerial_vjp(&cache, &w);
        let v_dot_jtw = v.hadamard(&jt_w).sum();

        let scale = jv_dot_w.abs().max(v_dot_jtw.abs()).max(1.0);
        prop_assert!(
            (jv_dot_w - v_dot_jtw).abs() < 1e-4 * scale,
            "adjoint identity violated: {jv_dot_w} vs {v_dot_jtw}"
        );
    }

    /// Linearity of the underlying amplitude model: scaling the mask by c
    /// scales intensity by c^2.
    #[test]
    fn intensity_is_quadratic_in_mask(mask in random_rect_mask(), c in 0.1f64..2.0) {
        let i1 = sim().aerial(&mask, false);
        let i2 = sim().aerial(&mask.scale(c), false);
        for (a, b) in i1.as_slice().iter().zip(i2.as_slice()) {
            prop_assert!((b - c * c * a).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    /// Shift covariance: translating the mask translates the aerial image
    /// (circularly), because the imaging system is space-invariant.
    #[test]
    fn shift_covariance(mask in random_rect_mask(), dr in 0usize..8, dc in 0usize..8) {
        let shifted = Field2D::from_fn(64, 64, |r, c| {
            mask[((r + 64 - dr) % 64, (c + 64 - dc) % 64)]
        });
        let i0 = sim().aerial(&mask, false);
        let i1 = sim().aerial(&shifted, false);
        for r in 0..64 {
            for c in 0..64 {
                let want = i0[((r + 64 - dr) % 64, (c + 64 - dc) % 64)];
                prop_assert!((i1[(r, c)] - want).abs() < 1e-9);
            }
        }
    }
}
