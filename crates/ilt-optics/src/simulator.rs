//! The forward lithography engine (Eqs. 1, 3, 7, 8 and 9 of the paper).
//!
//! One [`LithoSimulator`] owns a nominal and a defocused [`KernelSet`] and
//! computes aerial images at **any** power-of-two resolution with the same
//! `P x P` kernel block:
//!
//! * full resolution (Eq. 3): `I = sum_k w_k |F_N^-1(pad(H_k . crop(F_N M)))|^2`,
//! * reduced output (Eq. 7): inverse transforms at `N/s` with a `1/s^2`
//!   amplitude bridge — exact subsampling for band-limited spectra,
//! * reduced everything (Eq. 8): the low-resolution ILT path, where the
//!   already-downsampled mask is transformed at `N/s` directly.
//!
//! The engine also exposes the *adjoint* of the aerial-image map
//! ([`LithoSimulator::aerial_vjp`]), which is the gradient kernel every ILT
//! iteration needs — this replaces PyTorch autograd in the original
//! implementation.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use ilt_fft::{with_thread_scratch, Complex64, Fft2d, Fft2dScratch};
use ilt_field::Field2D;

use crate::config::OpticsConfig;
use crate::kernels::KernelSet;

/// A process-window corner: focus state plus dose factor.
///
/// Dose multiplies the aerial intensity (`I_dose = dose * I`), the standard
/// exposure-latitude model; defocus swaps in the defocused kernel set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProcessCondition {
    /// Use the defocused kernel set.
    pub defocus: bool,
    /// Dose factor (1.0 = nominal; the contest corners are 0.98 / 1.02).
    pub dose: f64,
}

impl ProcessCondition {
    /// Nominal focus, nominal dose — the `Z_norm` condition (Definition 1).
    pub const fn nominal() -> Self {
        ProcessCondition { defocus: false, dose: 1.0 }
    }

    /// Defocus and -2% dose — the `Z_in` corner (Definition 2).
    pub const fn inner() -> Self {
        ProcessCondition { defocus: true, dose: 0.98 }
    }

    /// Nominal focus and +2% dose — the `Z_out` corner (Definition 2).
    pub const fn outer() -> Self {
        ProcessCondition { defocus: false, dose: 1.02 }
    }
}

impl Default for ProcessCondition {
    fn default() -> Self {
        Self::nominal()
    }
}

/// Wafer prints at the three process corners.
#[derive(Clone, Debug)]
pub struct CornerPrints {
    /// Print under [`ProcessCondition::nominal`].
    pub nominal: Field2D,
    /// Print under [`ProcessCondition::inner`].
    pub inner: Field2D,
    /// Print under [`ProcessCondition::outer`].
    pub outer: Field2D,
}

/// Saved forward state allowing a cheap adjoint pass.
///
/// Holds only the `N_k` cropped per-kernel spectra (`P^2` complex values
/// each), not the full-size convolution fields, so caching a 2048-pixel
/// forward pass costs kilobytes instead of gigabytes.
pub struct AerialCache {
    m: usize,
    defocus: bool,
    /// `S_k = H_k . crop(F(M))`, one `P^2` block per kernel.
    spectra: Vec<Vec<Complex64>>,
}

impl fmt::Debug for AerialCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AerialCache")
            .field("m", &self.m)
            .field("defocus", &self.defocus)
            .field("kernels", &self.spectra.len())
            .finish()
    }
}

impl AerialCache {
    /// Resolution of the cached forward pass.
    pub fn size(&self) -> usize {
        self.m
    }
}

/// The forward lithography simulator.
///
/// # Examples
///
/// ```
/// use ilt_field::Field2D;
/// use ilt_optics::{LithoSimulator, OpticsConfig, ProcessCondition};
///
/// # fn main() -> Result<(), String> {
/// let cfg = OpticsConfig { grid: 128, nm_per_px: 4.0, num_kernels: 4, ..OpticsConfig::default() };
/// let sim = LithoSimulator::new(cfg)?;
/// let mask = Field2D::from_fn(128, 128, |r, c| {
///     if (40..88).contains(&r) && (40..88).contains(&c) { 1.0 } else { 0.0 }
/// });
/// let wafer = sim.print(&mask, ProcessCondition::nominal());
/// assert!(wafer.count_on() > 0);
/// # Ok(())
/// # }
/// ```
pub struct LithoSimulator {
    cfg: OpticsConfig,
    nominal: KernelSet,
    defocused: KernelSet,
    /// Per-resolution FFT engines, built lazily. A `Mutex` (held only for
    /// the map lookup, never across a transform) keeps the simulator
    /// `Send + Sync`, so one instance — and its expensive TCC build — can be
    /// shared by every worker thread of the batch runtime.
    ffts: Mutex<HashMap<usize, Arc<Fft2d>>>,
}

impl fmt::Debug for LithoSimulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LithoSimulator")
            .field("grid", &self.cfg.grid)
            .field("kernels", &self.nominal.num_kernels())
            .field("p", &self.nominal.p())
            .finish()
    }
}

impl LithoSimulator {
    /// Builds the simulator: validates the configuration and derives both
    /// focus-condition kernel sets (the expensive, once-per-config step).
    ///
    /// # Errors
    ///
    /// Returns the validation message for an inconsistent configuration.
    pub fn new(cfg: OpticsConfig) -> Result<Self, String> {
        cfg.validate()?;
        let (nominal, defocused) = KernelSet::focus_pair(&cfg);
        Ok(LithoSimulator { cfg, nominal, defocused, ffts: Mutex::new(HashMap::new()) })
    }

    /// Builds a simulator from pre-computed kernel sets (for tests and for
    /// replaying externally calibrated kernels).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid or the kernel
    /// supports disagree with it.
    pub fn with_kernels(
        cfg: OpticsConfig,
        nominal: KernelSet,
        defocused: KernelSet,
    ) -> Result<Self, String> {
        cfg.validate()?;
        if nominal.p() != cfg.kernel_size() || defocused.p() != cfg.kernel_size() {
            return Err(format!(
                "kernel support {} does not match configured size {}",
                nominal.p(),
                cfg.kernel_size()
            ));
        }
        Ok(LithoSimulator { cfg, nominal, defocused, ffts: Mutex::new(HashMap::new()) })
    }

    /// The configuration this simulator was built from.
    pub fn config(&self) -> &OpticsConfig {
        &self.cfg
    }

    /// The kernel set for a focus state.
    pub fn kernels(&self, defocus: bool) -> &KernelSet {
        if defocus {
            &self.defocused
        } else {
            &self.nominal
        }
    }

    fn fft(&self, m: usize) -> Arc<Fft2d> {
        self.ffts
            .lock()
            .expect("fft cache lock poisoned")
            .entry(m)
            .or_insert_with(|| Arc::new(Fft2d::new(m, m)))
            .clone()
    }

    fn check_mask(&self, mask: &Field2D) -> usize {
        let (rows, cols) = mask.shape();
        assert_eq!(rows, cols, "mask must be square, got {rows}x{cols}");
        assert!(rows.is_power_of_two(), "mask size {rows} must be a power of two");
        assert!(
            rows >= self.nominal.p(),
            "mask size {rows} smaller than kernel support {}",
            self.nominal.p()
        );
        rows
    }

    /// Aerial image of `mask` at the mask's own resolution.
    ///
    /// At full grid size this is Eq. 3; at a reduced size it is Eq. 8 (the
    /// caller supplies the already-downsampled mask `M_s`). The two share
    /// one code path because the kernel block is resolution-invariant.
    ///
    /// # Panics
    ///
    /// Panics if the mask is not square/power-of-two or smaller than `P`.
    pub fn aerial(&self, mask: &Field2D, defocus: bool) -> Field2D {
        self.aerial_with_cache(mask, defocus).0
    }

    /// Like [`LithoSimulator::aerial`], returning the adjoint cache as well.
    ///
    /// The hot path: one **pruned** real-input forward FFT of the mask
    /// ([`Fft2d::forward_real_cropped_with`] — only the retained `P x P`
    /// band is ever computed) plus one batch of pruned padded inverses over
    /// the kernels ([`Fft2d::inverse_padded_batch_with`]), all running on
    /// the calling thread's reusable FFT workspace so batch workers never
    /// allocate scratch in the per-kernel loop.
    pub fn aerial_with_cache(&self, mask: &Field2D, defocus: bool) -> (Field2D, AerialCache) {
        with_thread_scratch(|scratch| self.aerial_with_cache_scratch(mask, defocus, scratch))
    }

    fn aerial_with_cache_scratch(
        &self,
        mask: &Field2D,
        defocus: bool,
        scratch: &mut Fft2dScratch,
    ) -> (Field2D, AerialCache) {
        let m = self.check_mask(mask);
        let kernels = self.kernels(defocus);
        let p = kernels.p();
        let fft = self.fft(m);

        let mut low = vec![Complex64::ZERO; p * p];
        fft.forward_real_cropped_with(mask.as_slice(), p, &mut low, scratch);
        let (intensity, cached) = self.aerial_from_low(&fft, kernels, &low, m, scratch);
        (
            Field2D::from_vec(m, m, intensity),
            AerialCache { m, defocus, spectra: cached },
        )
    }

    /// Shared tail of every aerial evaluation: weight the cropped mask
    /// spectrum by each kernel, invert the whole batch through one warm
    /// workspace, and accumulate `sum_k w_k |z_k|^2`.
    fn aerial_from_low(
        &self,
        fft: &Fft2d,
        kernels: &KernelSet,
        low: &[Complex64],
        m: usize,
        scratch: &mut Fft2dScratch,
    ) -> (Vec<f64>, Vec<Vec<Complex64>>) {
        let p = kernels.p();
        let cached: Vec<Vec<Complex64>> = (0..kernels.num_kernels())
            .map(|k| {
                kernels.spectrum(k).iter().zip(low).map(|(&h, &f)| h * f).collect()
            })
            .collect();
        let refs: Vec<&[Complex64]> = cached.iter().map(|v| v.as_slice()).collect();
        let weights = kernels.weights();
        let mut intensity = vec![0.0; m * m];
        fft.inverse_padded_batch_with(
            &refs,
            p,
            |k, z| {
                let w = weights[k];
                for (acc, zv) in intensity.iter_mut().zip(z) {
                    *acc += w * zv.norm_sqr();
                }
            },
            scratch,
        );
        (intensity, cached)
    }

    /// Focused and defocused aerial images sharing a single pruned forward
    /// transform of the mask (both kernel sets use the same `P`).
    ///
    /// This is the shape [`LithoSimulator::print_corners`] needs: the mask
    /// spectrum is computed once instead of once per focus condition.
    ///
    /// # Panics
    ///
    /// Panics if the mask is not square/power-of-two or smaller than `P`.
    pub fn aerial_pair(&self, mask: &Field2D) -> (Field2D, Field2D) {
        with_thread_scratch(|scratch| {
            let m = self.check_mask(mask);
            let p = self.nominal.p();
            let fft = self.fft(m);
            let mut low = vec![Complex64::ZERO; p * p];
            fft.forward_real_cropped_with(mask.as_slice(), p, &mut low, scratch);
            let (focused, _) = self.aerial_from_low(&fft, &self.nominal, &low, m, scratch);
            let (defocused, _) = self.aerial_from_low(&fft, &self.defocused, &low, m, scratch);
            (
                Field2D::from_vec(m, m, focused),
                Field2D::from_vec(m, m, defocused),
            )
        })
    }

    /// Vector–Jacobian product of the aerial-image map: given
    /// `g = dL/dI`, returns `dL/dM` at the cached resolution.
    ///
    /// Derivation: with `z_k = C_k M` (linear), `I = sum_k w_k |z_k|^2`, so
    /// `dL/dM = sum_k 2 w_k Re[C_k^H (g . z_k)]`, and `C_k^H` has the same
    /// crop/pad structure with `conj(H_k)`.
    ///
    /// # Panics
    ///
    /// Panics if `grad` is not the cache's resolution.
    pub fn aerial_vjp(&self, cache: &AerialCache, grad: &Field2D) -> Field2D {
        with_thread_scratch(|scratch| self.aerial_vjp_scratch(cache, grad, scratch))
    }

    fn aerial_vjp_scratch(
        &self,
        cache: &AerialCache,
        grad: &Field2D,
        scratch: &mut Fft2dScratch,
    ) -> Field2D {
        let m = cache.m;
        assert_eq!(grad.shape(), (m, m), "gradient must match cached resolution {m}");
        let kernels = self.kernels(cache.defocus);
        let p = kernels.p();
        let fft = self.fft(m);

        let g = grad.as_slice();
        let mut acc = vec![Complex64::ZERO; p * p];
        let mut buf = vec![Complex64::ZERO; m * m];
        let mut cropped = vec![Complex64::ZERO; p * p];
        for (k, sk) in cache.spectra.iter().enumerate() {
            let w = kernels.weights()[k];
            let hk = kernels.spectrum(k);
            // Recompute z_k from the tiny cached spectrum (pruned inverse).
            fft.inverse_padded_with(sk, p, &mut buf, scratch);
            // u = g .* z_k, then back through the adjoint convolution. The
            // input is a full-band complex product, so the real row packing
            // does not apply — but the adjoint immediately crops to P x P,
            // so the pruned forward skips every discarded frequency.
            for (z, &gi) in buf.iter_mut().zip(g) {
                *z = z.scale(gi);
            }
            fft.forward_cropped_with(&buf, p, &mut cropped, scratch);
            let scale = 2.0 * w;
            for ((a, &h), &c) in acc.iter_mut().zip(hk).zip(&cropped) {
                *a += (h.conj() * c).scale(scale);
            }
        }
        fft.inverse_padded_with(&acc, p, &mut buf, scratch);
        Field2D::from_vec(m, m, buf.iter().map(|z| z.re).collect())
    }

    /// Eq. 7: aerial image of a **full-resolution** mask, evaluated only at
    /// every `s`-th pixel, via `N/s`-point inverse transforms.
    ///
    /// Exact (not approximate) because the kernel spectra vanish outside the
    /// retained band. Used by the forward-simulation timing study; the
    /// low-resolution ILT path uses Eq. 8 via [`LithoSimulator::aerial`].
    ///
    /// # Panics
    ///
    /// Panics if `s` does not divide the mask size or `N/s < P`.
    pub fn aerial_subsampled(&self, mask: &Field2D, s: usize, defocus: bool) -> Field2D {
        let n = self.check_mask(mask);
        assert!(s > 0 && n % s == 0, "scale {s} must divide mask size {n}");
        let m = n / s;
        let kernels = self.kernels(defocus);
        let p = kernels.p();
        assert!(m >= p, "reduced size {m} smaller than kernel support {p}");
        assert!(m.is_power_of_two(), "reduced size {m} must be a power of two");

        let fft_n = self.fft(n);
        let fft_m = self.fft(m);
        with_thread_scratch(|scratch| {
            let mut low = vec![Complex64::ZERO; p * p];
            fft_n.forward_real_cropped_with(mask.as_slice(), p, &mut low, scratch);
            let bridge = 1.0 / (s * s) as f64; // normalization change N -> N/s
            for z in &mut low {
                *z = z.scale(bridge);
            }
            let (intensity, _) = self.aerial_from_low(&fft_m, kernels, &low, m, scratch);
            Field2D::from_vec(m, m, intensity)
        })
    }

    /// Constant-threshold resist (Eq. 1) with dose: `Z = [dose * I >= I_th]`.
    pub fn resist_hard(&self, intensity: &Field2D, dose: f64) -> Field2D {
        let th = self.cfg.resist_threshold / dose;
        intensity.threshold(th)
    }

    /// Sigmoid resist (Eq. 9) with dose:
    /// `Z = 1 / (1 + exp(-alpha (dose * I - I_th)))`.
    pub fn resist_sigmoid(&self, intensity: &Field2D, dose: f64) -> Field2D {
        let alpha = self.cfg.resist_steepness;
        let th = self.cfg.resist_threshold;
        intensity.map(|i| 1.0 / (1.0 + (-alpha * (dose * i - th)).exp()))
    }

    /// Full print: aerial image + hard resist under `cond`.
    pub fn print(&self, mask: &Field2D, cond: ProcessCondition) -> Field2D {
        let intensity = self.aerial(mask, cond.defocus);
        self.resist_hard(&intensity, cond.dose)
    }

    /// Prints at the three process corners (Definitions 1 and 2).
    pub fn print_corners(&self, mask: &Field2D) -> CornerPrints {
        // Nominal and outer share the focused aerial image; inner needs the
        // defocused one. One mask transform, two kernel sweeps, three prints.
        let (focused, defocused) = self.aerial_pair(mask);
        CornerPrints {
            nominal: self.resist_hard(&focused, ProcessCondition::nominal().dose),
            inner: self.resist_hard(&defocused, ProcessCondition::inner().dose),
            outer: self.resist_hard(&focused, ProcessCondition::outer().dose),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceSpec;

    fn sim(grid: usize) -> LithoSimulator {
        // 4 nm pixels keep the clip physically meaningful at small grids
        // (grid 128 -> a 512 nm clip) so the pupil is actually resolved.
        let cfg = OpticsConfig {
            grid,
            nm_per_px: 4.0,
            num_kernels: 6,
            source: SourceSpec::Annular { sigma_in: 0.5, sigma_out: 0.9 },
            defocus_nm: 60.0,
            ..OpticsConfig::default()
        };
        LithoSimulator::new(cfg).expect("valid config")
    }

    fn square_mask(n: usize, lo: usize, hi: usize) -> Field2D {
        Field2D::from_fn(n, n, |r, c| {
            if (lo..hi).contains(&r) && (lo..hi).contains(&c) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn open_frame_intensity_is_one() {
        let sim = sim(64);
        let i = sim.aerial(&Field2D::filled(64, 64, 1.0), false);
        for &v in i.as_slice() {
            assert!((v - 1.0).abs() < 1e-9, "open frame intensity {v}");
        }
    }

    #[test]
    fn dark_frame_intensity_is_zero() {
        let sim = sim(64);
        let i = sim.aerial(&Field2D::zeros(64, 64), false);
        assert!(i.max() < 1e-12);
    }

    #[test]
    fn intensity_is_nonnegative_and_finite() {
        let sim = sim(64);
        let mask = square_mask(64, 20, 44);
        let i = sim.aerial(&mask, true);
        assert!(i.min() >= 0.0);
        assert!(i.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn large_feature_prints_small_feature_fades() {
        let sim = sim(128);
        // 240 nm square (60 px at 4 nm): clears the threshold in its center.
        let big = square_mask(128, 34, 94);
        let z = sim.print(&big, ProcessCondition::nominal());
        assert_eq!(z[(64, 64)], 1.0, "large feature center must print");
        // 24 nm square: below the ~36 nm half-pitch resolution, must fade.
        let tiny = square_mask(128, 61, 67);
        let zt = sim.print(&tiny, ProcessCondition::nominal());
        assert_eq!(zt.count_on(), 0, "sub-resolution speck must not print");
    }

    #[test]
    fn dose_ordering_monotone() {
        // Higher dose can only grow the printed area (for positive masks).
        let sim = sim(128);
        let mask = square_mask(128, 40, 88);
        let i = sim.aerial(&mask, false);
        let lo = sim.resist_hard(&i, 0.98);
        let hi = sim.resist_hard(&i, 1.02);
        for (a, b) in lo.as_slice().iter().zip(hi.as_slice()) {
            assert!(b >= a, "dose monotonicity violated");
        }
        assert!(hi.count_on() > lo.count_on());
    }

    #[test]
    fn corners_generate_nonzero_pvband() {
        let sim = sim(128);
        let mask = square_mask(128, 40, 88);
        let corners = sim.print_corners(&mask);
        let pvb = corners.inner.xor_count(&corners.outer);
        assert!(pvb > 0, "process corners must differ");
        // The nominal print sits between the corners in area.
        let (ai, an, ao) = (
            corners.inner.count_on(),
            corners.nominal.count_on(),
            corners.outer.count_on(),
        );
        assert!(ai <= an && an <= ao, "corner areas not ordered: {ai} {an} {ao}");
    }

    #[test]
    fn eq8_low_res_approximates_pooled_full_res() {
        // The paper's central approximation: simulate the avg-pooled mask at
        // N/s and compare against the avg-pooled full-resolution image.
        let sim = sim(128);
        let mask = square_mask(128, 32, 96);
        let full = sim.aerial(&mask, false);
        let pooled_full = ilt_field::avg_pool_down(&full, 4);
        let mask_s = ilt_field::avg_pool_down(&mask, 4);
        let low = sim.aerial(&mask_s, false);
        // Relative RMS error between the two must be small.
        let err = (low.sq_l2_dist(&pooled_full) / pooled_full.as_slice().len() as f64).sqrt();
        assert!(err < 0.05, "Eq. 8 approximation error too large: {err}");
    }

    #[test]
    fn eq7_subsampling_is_exact() {
        // Eq. 7 must match the full-resolution image sampled every s pixels
        // to machine precision (the kernels are band-limited).
        let sim = sim(128);
        let mask = square_mask(128, 30, 90);
        let full = sim.aerial(&mask, false);
        for s in [2usize, 4] {
            let sub = sim.aerial_subsampled(&mask, s, false);
            let m = 128 / s;
            for r in 0..m {
                for c in 0..m {
                    let want = full[(r * s, c * s)];
                    let got = sub[(r, c)];
                    assert!(
                        (want - got).abs() < 1e-10,
                        "s={s} ({r},{c}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn vjp_matches_finite_differences() {
        let sim = sim(32);
        let mask = Field2D::from_fn(32, 32, |r, c| {
            0.5 + 0.4 * ((r as f64 * 0.5).sin() * (c as f64 * 0.3).cos())
        });
        // Loss L = sum(I .* W) for a fixed weight field W.
        let wfield = Field2D::from_fn(32, 32, |r, c| ((r + 2 * c) % 5) as f64 / 5.0 - 0.4);
        let (_, cache) = sim.aerial_with_cache(&mask, false);
        let grad = sim.aerial_vjp(&cache, &wfield);

        let eps = 1e-5;
        for &(r, c) in &[(0usize, 0usize), (5, 7), (16, 16), (31, 2), (12, 25)] {
            let mut mp = mask.clone();
            mp[(r, c)] += eps;
            let mut mm = mask.clone();
            mm[(r, c)] -= eps;
            let lp = sim.aerial(&mp, false).hadamard(&wfield).sum();
            let lm = sim.aerial(&mm, false).hadamard(&wfield).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (grad[(r, c)] - fd).abs() < 1e-5 * fd.abs().max(1.0),
                "({r},{c}): vjp {} vs fd {fd}",
                grad[(r, c)]
            );
        }
    }

    #[test]
    fn vjp_defocus_uses_defocused_kernels() {
        let sim = sim(32);
        let mask = Field2D::from_fn(32, 32, |r, c| ((r * c) % 7) as f64 / 7.0);
        let g = Field2D::filled(32, 32, 1.0);
        let (_, cache_f) = sim.aerial_with_cache(&mask, false);
        let (_, cache_d) = sim.aerial_with_cache(&mask, true);
        let gf = sim.aerial_vjp(&cache_f, &g);
        let gd = sim.aerial_vjp(&cache_d, &g);
        assert!(gf.sq_l2_dist(&gd) > 1e-12, "focus state must affect the gradient");
    }

    #[test]
    fn sigmoid_resist_brackets_hard_resist() {
        let sim = sim(64);
        let mask = square_mask(64, 16, 48);
        let i = sim.aerial(&mask, false);
        let soft = sim.resist_sigmoid(&i, 1.0);
        let hard = sim.resist_hard(&i, 1.0);
        assert!(soft.min() >= 0.0 && soft.max() <= 1.0);
        // Soft and hard agree where intensity is far from threshold.
        for (idx, (&s, &h)) in soft.as_slice().iter().zip(hard.as_slice()).enumerate() {
            let iv = i.as_slice()[idx];
            if (iv - sim.config().resist_threshold).abs() > 0.1 {
                assert!((s - h).abs() < 0.01, "idx {idx}: sigmoid {s} vs hard {h} at I={iv}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_mask_panics() {
        let sim = sim(64);
        let _ = sim.aerial(&Field2D::zeros(48, 48), false);
    }

    #[test]
    fn with_kernels_rejects_mismatched_support() {
        let cfg64 = OpticsConfig { grid: 64, num_kernels: 4, ..OpticsConfig::default() };
        let cfg128 = OpticsConfig { grid: 128, num_kernels: 4, ..OpticsConfig::default() };
        let (n, d) = KernelSet::focus_pair(&cfg64);
        assert!(LithoSimulator::with_kernels(cfg128, n, d).is_err());
    }
}
