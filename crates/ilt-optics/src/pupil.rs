//! The projection-lens pupil function, with defocus aberration.
//!
//! The pupil is evaluated at absolute spatial frequencies (1/nm). An ideal
//! lens transmits frequencies up to `NA / lambda`; defocus adds the paraxial
//! quadratic phase `exp(-i pi lambda z f^2)`, which is what separates the
//! nominal and "inner" (defocused) process corners of the PVBand metric.

use ilt_fft::Complex64;

use crate::zernike::Wavefront;

/// Pupil function of a (possibly defocused and aberrated) diffraction-
/// limited lens.
///
/// # Examples
///
/// ```
/// use ilt_optics::Pupil;
///
/// let p = Pupil::new(1.35, 193.0, 0.0);
/// assert_eq!(p.eval(0.0, 0.0).re, 1.0);          // DC passes
/// assert_eq!(p.eval(0.01, 0.0).re, 0.0);         // beyond cutoff blocked
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Pupil {
    na: f64,
    wavelength_nm: f64,
    defocus_nm: f64,
    cutoff: f64,
    wavefront: Wavefront,
}

impl Pupil {
    /// Creates a pupil with the given numerical aperture, wavelength (nm)
    /// and defocus distance (nm; 0 for nominal focus).
    ///
    /// # Panics
    ///
    /// Panics if `na` or `wavelength_nm` is not positive.
    pub fn new(na: f64, wavelength_nm: f64, defocus_nm: f64) -> Self {
        assert!(na > 0.0 && wavelength_nm > 0.0, "NA and wavelength must be positive");
        Pupil {
            na,
            wavelength_nm,
            defocus_nm,
            cutoff: na / wavelength_nm,
            wavefront: Wavefront::new(),
        }
    }

    /// Adds Zernike wavefront error on top of the paraxial defocus.
    ///
    /// # Examples
    ///
    /// ```
    /// use ilt_optics::{Pupil, Wavefront, ZernikeTerm};
    ///
    /// let aberrated = Pupil::new(1.35, 193.0, 0.0)
    ///     .with_wavefront(Wavefront::new().with(ZernikeTerm::ComaX, 0.05));
    /// // Coma breaks the pupil's left-right symmetry.
    /// let left = aberrated.eval(-0.004, 0.0);
    /// let right = aberrated.eval(0.004, 0.0);
    /// assert!((left - right).abs() > 1e-3);
    /// ```
    #[must_use]
    pub fn with_wavefront(mut self, wavefront: Wavefront) -> Self {
        self.wavefront = wavefront;
        self
    }

    /// The Zernike wavefront riding on this pupil.
    pub fn wavefront(&self) -> &Wavefront {
        &self.wavefront
    }

    /// Cutoff frequency `NA / lambda` in 1/nm.
    #[inline]
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Defocus distance in nm.
    #[inline]
    pub fn defocus_nm(&self) -> f64 {
        self.defocus_nm
    }

    /// Evaluates the pupil at spatial frequency `(fx, fy)` in 1/nm.
    ///
    /// Returns 0 outside the cutoff; inside, a unit-magnitude value carrying
    /// the defocus phase `-pi lambda z (fx^2 + fy^2)` plus any Zernike
    /// wavefront error.
    #[inline]
    pub fn eval(&self, fx: f64, fy: f64) -> Complex64 {
        let f2 = fx * fx + fy * fy;
        if f2 > self.cutoff * self.cutoff {
            return Complex64::ZERO;
        }
        let mut value = if self.defocus_nm == 0.0 {
            Complex64::ONE
        } else {
            let phase = -std::f64::consts::PI * self.wavelength_nm * self.defocus_nm * f2;
            Complex64::from_polar_angle(phase)
        };
        if !self.wavefront.is_empty() {
            let rho = (f2.sqrt() / self.cutoff).min(1.0);
            let theta = fy.atan2(fx);
            value *= self.wavefront.phase_factor(rho, theta);
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cutoff_is_sharp() {
        let p = Pupil::new(1.35, 193.0, 0.0);
        let c = p.cutoff();
        assert_eq!(p.eval(c * 0.999, 0.0), Complex64::ONE);
        assert_eq!(p.eval(c * 1.001, 0.0), Complex64::ZERO);
        // Rotationally symmetric.
        let d = c * 0.7 / 2f64.sqrt();
        assert_eq!(p.eval(d, d), p.eval(c * 0.7, 0.0));
    }

    #[test]
    fn focused_pupil_is_real() {
        let p = Pupil::new(1.0, 193.0, 0.0);
        let v = p.eval(0.003, 0.001);
        assert_eq!(v.im, 0.0);
        assert_eq!(v.re, 1.0);
    }

    #[test]
    fn defocus_is_pure_phase_inside_cutoff() {
        let p = Pupil::new(1.35, 193.0, 80.0);
        let v = p.eval(0.004, 0.002);
        assert!((v.abs() - 1.0).abs() < 1e-12);
        assert!(v.im != 0.0, "defocus must introduce phase");
    }

    #[test]
    fn defocus_phase_is_quadratic_in_frequency() {
        let p = Pupil::new(1.35, 193.0, 50.0);
        let phase_at = |f: f64| p.eval(f, 0.0).im.atan2(p.eval(f, 0.0).re);
        let p1 = phase_at(0.002);
        let p2 = phase_at(0.004);
        assert!((p2 - 4.0 * p1).abs() < 1e-9, "{p2} vs {}", 4.0 * p1);
    }

    #[test]
    fn zero_defocus_at_dc_regardless() {
        let p = Pupil::new(1.35, 193.0, 100.0);
        assert_eq!(p.eval(0.0, 0.0), Complex64::ONE);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_na_panics() {
        let _ = Pupil::new(0.0, 193.0, 0.0);
    }

    #[test]
    fn wavefront_composes_with_defocus() {
        use crate::zernike::{Wavefront, ZernikeTerm};
        let base = Pupil::new(1.35, 193.0, 40.0);
        let aberrated = base
            .clone()
            .with_wavefront(Wavefront::new().with(ZernikeTerm::Spherical, 0.05));
        let f = 0.004;
        let a = base.eval(f, 0.0);
        let b = aberrated.eval(f, 0.0);
        assert!((a.abs() - 1.0).abs() < 1e-12 && (b.abs() - 1.0).abs() < 1e-12);
        assert!((a - b).abs() > 1e-3, "spherical must change the phase");
        // Outside the cutoff both vanish.
        assert_eq!(aberrated.eval(0.01, 0.0), Complex64::ZERO);
    }

    #[test]
    fn empty_wavefront_is_free() {
        use crate::zernike::Wavefront;
        let base = Pupil::new(1.35, 193.0, 25.0);
        let same = base.clone().with_wavefront(Wavefront::new());
        for (fx, fy) in [(0.0, 0.0), (0.003, -0.002), (0.005, 0.004)] {
            assert_eq!(base.eval(fx, fy), same.eval(fx, fy));
        }
    }
}
