//! SOCS optical kernels: the truncated eigen-expansion of the TCC.
//!
//! The "sum of coherent systems" decomposition writes the partially coherent
//! Hopkins image as `I = sum_k w_k |h_k (x) M|^2` (Eq. 2); each kernel
//! spectrum `H_k` is a TCC eigenvector and each weight `w_k` its eigenvalue.
//! The ICCAD 2013 contest ships these kernels as data; since that data is
//! proprietary we derive them from first principles (annular source +
//! defocused pupil -> TCC -> subspace iteration), which exercises the same
//! downstream code paths.
//!
//! Kernel spectra live on the `P x P` **signed-frequency grid** (unshifted
//! layout, DC at `[0,0]`), directly multipliable against
//! [`ilt_fft::crop_centered`] output.

use ilt_fft::{Complex64, Fft2d};
use ilt_field::Field2D;

use crate::config::OpticsConfig;
use crate::eig::top_eigenpairs;
use crate::pupil::Pupil;
use crate::tcc::Tcc;

/// Number of extra subspace-iteration directions beyond `N_k`.
const EIG_OVERSAMPLE: usize = 8;
/// Subspace iteration budget; generous because kernels are built once.
const EIG_MAX_ITERS: usize = 120;
/// Relative Ritz-value convergence tolerance.
const EIG_TOL: f64 = 1e-10;

/// A weighted set of SOCS kernels for one focus condition.
///
/// # Examples
///
/// ```
/// use ilt_optics::{KernelSet, OpticsConfig};
///
/// let cfg = OpticsConfig { grid: 256, num_kernels: 6, ..OpticsConfig::default() };
/// let kernels = KernelSet::from_config(&cfg, 0.0);
/// assert_eq!(kernels.num_kernels(), 6);
/// // The leading kernel dominates.
/// assert!(kernels.weights()[0] >= kernels.weights()[5]);
/// ```
#[derive(Clone, Debug)]
pub struct KernelSet {
    p: usize,
    weights: Vec<f64>,
    /// Unit-norm kernel spectra, `p*p` each, signed-frequency layout.
    spectra: Vec<Vec<Complex64>>,
    /// Fraction of TCC energy (trace) captured by the kept kernels.
    captured_energy: f64,
}

impl KernelSet {
    /// Builds the kernel set for `cfg` at the given defocus (nm; 0 for the
    /// nominal condition), normalized so the **nominal** open-frame aerial
    /// intensity equals 1.
    ///
    /// Note: for a consistent dose scale across process corners, defocused
    /// sets should be normalized with the nominal constant — use
    /// [`KernelSet::focus_pair`] which handles this.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`OpticsConfig::validate`]).
    pub fn from_config(cfg: &OpticsConfig, defocus_nm: f64) -> Self {
        let mut set = Self::raw_from_config(cfg, defocus_nm);
        let c = set.open_frame_intensity();
        assert!(c > 0.0, "degenerate kernel set: zero open-frame intensity");
        for w in &mut set.weights {
            *w /= c;
        }
        set
    }

    /// Builds the `(nominal, defocused)` kernel pair for the process-window
    /// corners, both normalized by the nominal open-frame intensity so dose
    /// factors are directly comparable between corners.
    pub fn focus_pair(cfg: &OpticsConfig) -> (KernelSet, KernelSet) {
        let mut nominal = Self::raw_from_config(cfg, 0.0);
        let mut defocus = Self::raw_from_config(cfg, cfg.defocus_nm);
        let c = nominal.open_frame_intensity();
        assert!(c > 0.0, "degenerate kernel set: zero open-frame intensity");
        for w in &mut nominal.weights {
            *w /= c;
        }
        for w in &mut defocus.weights {
            *w /= c;
        }
        (nominal, defocus)
    }

    fn raw_from_config(cfg: &OpticsConfig, defocus_nm: f64) -> Self {
        cfg.validate().unwrap_or_else(|e| panic!("invalid optics config: {e}"));
        let p = cfg.kernel_size();
        let pupil = Pupil::new(cfg.na, cfg.wavelength_nm, defocus_nm)
            .with_wavefront(cfg.wavefront.clone());
        // Sample the source densely enough that each annulus ring has
        // multiple points, but keep the TCC build cheap.
        let src_pts = cfg.source.sample(15);
        let tcc = Tcc::build(&pupil, &src_pts, p, cfg.freq_step());
        let pairs = top_eigenpairs(
            &tcc,
            cfg.num_kernels.min(tcc.p() * tcc.p()),
            EIG_OVERSAMPLE,
            EIG_MAX_ITERS,
            EIG_TOL,
            0xD1CE,
        );
        let trace = tcc.trace();
        let captured: f64 = pairs.iter().map(|e| e.value.max(0.0)).sum();
        KernelSet {
            p,
            weights: pairs.iter().map(|e| e.value.max(0.0)).collect(),
            spectra: pairs.into_iter().map(|e| e.vector).collect(),
            captured_energy: if trace > 0.0 { captured / trace } else { 1.0 },
        }
    }

    /// Kernel frequency support `P` (odd).
    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of kernels `N_k`.
    #[inline]
    pub fn num_kernels(&self) -> usize {
        self.spectra.len()
    }

    /// Kernel weights `w_k` (descending).
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Spectrum of kernel `k` on the `P x P` signed-frequency grid.
    ///
    /// # Panics
    ///
    /// Panics if `k >= num_kernels()`.
    #[inline]
    pub fn spectrum(&self, k: usize) -> &[Complex64] {
        &self.spectra[k]
    }

    /// Fraction of the TCC trace captured by the kept kernels, in `[0, 1]`.
    #[inline]
    pub fn captured_energy(&self) -> f64 {
        self.captured_energy
    }

    /// Aerial intensity of a fully open mask: `sum_k w_k |H_k(0)|^2`.
    pub fn open_frame_intensity(&self) -> f64 {
        self.weights
            .iter()
            .zip(&self.spectra)
            .map(|(&w, spec)| w * spec[0].norm_sqr())
            .sum()
    }

    /// Spatial magnitude of kernel `k`, rendered on a `size x size` grid
    /// (power of two, `>= P`), fftshifted so the kernel is centered.
    ///
    /// Intended for inspection/visualization; simulation always stays in the
    /// frequency domain.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two or is smaller than `P`.
    pub fn spatial_magnitude(&self, k: usize, size: usize) -> Field2D {
        assert!(size.is_power_of_two() && size >= self.p);
        // `Fft2d::new` shares plans through the global planner cache, and
        // the pruned padded inverse skips the zero part of the spectrum.
        let mut buf = vec![Complex64::ZERO; size * size];
        Fft2d::new(size, size).inverse_padded(&self.spectra[k], self.p, &mut buf);
        let shifted = ilt_fft::fftshift(&buf, size);
        Field2D::from_vec(size, size, shifted.iter().map(|z| z.abs()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceSpec;

    fn tiny_cfg() -> OpticsConfig {
        OpticsConfig {
            grid: 128,
            nm_per_px: 4.0,
            num_kernels: 5,
            source: SourceSpec::Annular { sigma_in: 0.5, sigma_out: 0.9 },
            ..OpticsConfig::default()
        }
    }

    #[test]
    fn weights_are_descending_and_nonnegative() {
        let ks = KernelSet::from_config(&tiny_cfg(), 0.0);
        for w in ks.weights().windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(ks.weights().iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn open_frame_intensity_is_one_after_normalization() {
        let ks = KernelSet::from_config(&tiny_cfg(), 0.0);
        assert!((ks.open_frame_intensity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn captured_energy_is_high_for_enough_kernels() {
        let cfg = OpticsConfig { num_kernels: 12, ..tiny_cfg() };
        let ks = KernelSet::from_config(&cfg, 0.0);
        assert!(
            ks.captured_energy() > 0.85,
            "12 kernels should capture most energy, got {}",
            ks.captured_energy()
        );
        // More kernels capture more energy.
        let small = KernelSet::from_config(&OpticsConfig { num_kernels: 3, ..tiny_cfg() }, 0.0);
        assert!(ks.captured_energy() > small.captured_energy());
    }

    #[test]
    fn spectra_are_unit_norm_and_band_limited() {
        let cfg = tiny_cfg();
        let ks = KernelSet::from_config(&cfg, 0.0);
        let p = ks.p();
        // Partially coherent kernels extend to (1 + sigma_max) * cutoff:
        // T(f, f) = sum_s J(s) |P(s + f)|^2 is nonzero out to that band.
        let band = (1.0 + cfg.source.max_sigma()) * cfg.cutoff();
        let step = cfg.freq_step();
        for k in 0..ks.num_kernels() {
            let spec = ks.spectrum(k);
            let norm: f64 = spec.iter().map(|z| z.norm_sqr()).sum();
            assert!((norm - 1.0).abs() < 1e-8, "kernel {k} norm {norm}");
            for (a, z) in spec.iter().enumerate() {
                let fy = ilt_fft::signed_freq(a / p, p) as f64 * step;
                let fx = ilt_fft::signed_freq(a % p, p) as f64 * step;
                // The source is discretized, so allow a one-bin guard ring.
                if (fx * fx + fy * fy).sqrt() > band + step {
                    assert!(z.abs() < 1e-7, "kernel {k} leaks outside the TCC band at bin {a}");
                }
            }
        }
    }

    #[test]
    fn focus_pair_shares_normalization() {
        let cfg = OpticsConfig { defocus_nm: 60.0, ..tiny_cfg() };
        let (nom, defoc) = KernelSet::focus_pair(&cfg);
        assert!((nom.open_frame_intensity() - 1.0).abs() < 1e-9);
        // Defocus preserves the open frame to good approximation (pure
        // phase aberration), so the shared constant keeps it near 1.
        assert!(
            (defoc.open_frame_intensity() - 1.0).abs() < 0.1,
            "defocused open frame {}",
            defoc.open_frame_intensity()
        );
    }

    #[test]
    fn defocus_changes_kernels() {
        let cfg = OpticsConfig { defocus_nm: 80.0, ..tiny_cfg() };
        let (nom, defoc) = KernelSet::focus_pair(&cfg);
        // The dominant kernel spectra must differ measurably.
        let d: f64 = nom
            .spectrum(0)
            .iter()
            .zip(defoc.spectrum(0))
            .map(|(&a, &b)| (a - b).norm_sqr())
            .sum();
        assert!(d > 1e-4, "defocus had no effect on kernel 0 (d = {d})");
    }

    #[test]
    fn spatial_kernel_is_centered_and_localized() {
        let ks = KernelSet::from_config(&tiny_cfg(), 0.0);
        let img = ks.spatial_magnitude(0, 128);
        // Peak within a few pixels of the center.
        let mut best = (0usize, 0usize);
        let mut best_v = f64::NEG_INFINITY;
        for r in 0..128 {
            for c in 0..128 {
                if img[(r, c)] > best_v {
                    best_v = img[(r, c)];
                    best = (r, c);
                }
            }
        }
        assert!(
            best.0.abs_diff(64) <= 2 && best.1.abs_diff(64) <= 2,
            "kernel peak at {best:?}"
        );
        // Energy concentrates near the center: central quarter holds most.
        let total: f64 = img.as_slice().iter().map(|v| v * v).sum();
        let central: f64 = (32..96)
            .flat_map(|r| (32..96).map(move |c| (r, c)))
            .map(|(r, c)| img[(r, c)] * img[(r, c)])
            .sum();
        assert!(central / total > 0.5, "kernel energy too spread: {}", central / total);
    }
}
