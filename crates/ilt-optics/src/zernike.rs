//! Zernike pupil aberrations.
//!
//! The paper's process window only needs defocus, but a production litho
//! model exposes general wavefront error. This module implements the
//! low-order Zernike polynomials (Noll indexing) on the unit pupil disc,
//! letting [`crate::Pupil`] carry arbitrary aberration cocktails —
//! astigmatism, coma and spherical are the terms scanner matching actually
//! fights. Coefficients are in waves (multiples of the wavelength), the
//! lithography convention.

use ilt_fft::Complex64;

/// A low-order Zernike term (Noll index), evaluated on the unit disc.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ZernikeTerm {
    /// Z1 — piston (constant phase; harmless but included for completeness).
    Piston,
    /// Z2 — x tilt (pattern shift).
    TiltX,
    /// Z3 — y tilt.
    TiltY,
    /// Z4 — defocus, `sqrt(3) (2 rho^2 - 1)`.
    Defocus,
    /// Z5 — oblique astigmatism, `sqrt(6) rho^2 sin 2theta`.
    Astig45,
    /// Z6 — vertical astigmatism, `sqrt(6) rho^2 cos 2theta`.
    Astig0,
    /// Z7 — vertical coma, `sqrt(8) (3 rho^3 - 2 rho) sin theta`.
    ComaY,
    /// Z8 — horizontal coma, `sqrt(8) (3 rho^3 - 2 rho) cos theta`.
    ComaX,
    /// Z9 — primary spherical, `sqrt(5) (6 rho^4 - 6 rho^2 + 1)`.
    Spherical,
}

impl ZernikeTerm {
    /// Evaluates the (Noll-normalized) polynomial at polar pupil
    /// coordinates `(rho, theta)`, `rho` in `[0, 1]`.
    pub fn eval(&self, rho: f64, theta: f64) -> f64 {
        let r2 = rho * rho;
        match self {
            ZernikeTerm::Piston => 1.0,
            ZernikeTerm::TiltX => 2.0 * rho * theta.cos(),
            ZernikeTerm::TiltY => 2.0 * rho * theta.sin(),
            ZernikeTerm::Defocus => 3f64.sqrt() * (2.0 * r2 - 1.0),
            ZernikeTerm::Astig45 => 6f64.sqrt() * r2 * (2.0 * theta).sin(),
            ZernikeTerm::Astig0 => 6f64.sqrt() * r2 * (2.0 * theta).cos(),
            ZernikeTerm::ComaY => 8f64.sqrt() * (3.0 * r2 - 2.0) * rho * theta.sin(),
            ZernikeTerm::ComaX => 8f64.sqrt() * (3.0 * r2 - 2.0) * rho * theta.cos(),
            ZernikeTerm::Spherical => 5f64.sqrt() * (6.0 * r2 * r2 - 6.0 * r2 + 1.0),
        }
    }
}

/// A wavefront: a weighted sum of Zernike terms, coefficients in waves.
///
/// # Examples
///
/// ```
/// use ilt_optics::{Wavefront, ZernikeTerm};
///
/// let wf = Wavefront::new()
///     .with(ZernikeTerm::Astig0, 0.05)
///     .with(ZernikeTerm::ComaX, 0.02);
/// assert_eq!(wf.terms().len(), 2);
/// // RMS wavefront error in waves (Noll terms are orthonormal):
/// assert!((wf.rms_waves() - (0.05f64.powi(2) + 0.02f64.powi(2)).sqrt()).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Wavefront {
    terms: Vec<(ZernikeTerm, f64)>,
}

impl Wavefront {
    /// An unaberrated wavefront.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or accumulates onto) a term, in waves.
    #[must_use]
    pub fn with(mut self, term: ZernikeTerm, waves: f64) -> Self {
        if let Some(entry) = self.terms.iter_mut().find(|(t, _)| *t == term) {
            entry.1 += waves;
        } else {
            self.terms.push((term, waves));
        }
        self
    }

    /// The terms and their coefficients.
    pub fn terms(&self) -> &[(ZernikeTerm, f64)] {
        &self.terms
    }

    /// Returns `true` for a perfect (empty) wavefront.
    pub fn is_empty(&self) -> bool {
        self.terms.iter().all(|(_, w)| *w == 0.0)
    }

    /// RMS wavefront error in waves. Noll-normalized terms are orthonormal
    /// over the disc, so the RMS is the coefficient-vector norm (piston
    /// excluded, as it does not distort the image).
    pub fn rms_waves(&self) -> f64 {
        self.terms
            .iter()
            .filter(|(t, _)| *t != ZernikeTerm::Piston)
            .map(|(_, w)| w * w)
            .sum::<f64>()
            .sqrt()
    }

    /// Total wavefront error at pupil coordinates, in waves.
    pub fn opd_waves(&self, rho: f64, theta: f64) -> f64 {
        self.terms.iter().map(|(t, w)| w * t.eval(rho, theta)).sum()
    }

    /// Complex pupil factor `exp(2 pi i W(rho, theta))` at the given pupil
    /// position.
    pub fn phase_factor(&self, rho: f64, theta: f64) -> Complex64 {
        if self.terms.is_empty() {
            return Complex64::ONE;
        }
        Complex64::from_polar_angle(std::f64::consts::TAU * self.opd_waves(rho, theta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically integrates `f` over the unit disc.
    fn disc_integral(f: impl Fn(f64, f64) -> f64) -> f64 {
        let n = 200;
        let mut acc = 0.0;
        for i in 0..n {
            let rho = (i as f64 + 0.5) / n as f64;
            for j in 0..n {
                let theta = std::f64::consts::TAU * (j as f64 + 0.5) / n as f64;
                acc += f(rho, theta) * rho;
            }
        }
        acc * (1.0 / n as f64) * (std::f64::consts::TAU / n as f64)
    }

    #[test]
    fn noll_terms_are_orthonormal() {
        use ZernikeTerm::*;
        let terms = [Piston, TiltX, TiltY, Defocus, Astig45, Astig0, ComaY, ComaX, Spherical];
        let area = std::f64::consts::PI;
        for (i, a) in terms.iter().enumerate() {
            for (j, b) in terms.iter().enumerate() {
                let inner =
                    disc_integral(|r, t| a.eval(r, t) * b.eval(r, t)) / area;
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (inner - want).abs() < 2e-2,
                    "<{a:?}, {b:?}> = {inner} (want {want})"
                );
            }
        }
    }

    #[test]
    fn defocus_term_matches_paraxial_phase_shape() {
        // Z4 is quadratic in rho (up to the constant): its rho^2 content
        // matches the paraxial defocus profile used by `Pupil`.
        let z4 = ZernikeTerm::Defocus;
        let at = |r: f64| z4.eval(r, 0.3);
        let quad = |r: f64| 2.0 * 3f64.sqrt() * r * r - 3f64.sqrt();
        for r in [0.0, 0.3, 0.7, 1.0] {
            assert!((at(r) - quad(r)).abs() < 1e-12);
        }
    }

    #[test]
    fn wavefront_accumulates_coefficients() {
        let wf = Wavefront::new()
            .with(ZernikeTerm::ComaX, 0.02)
            .with(ZernikeTerm::ComaX, 0.03);
        assert_eq!(wf.terms().len(), 1);
        assert!((wf.terms()[0].1 - 0.05).abs() < 1e-15);
    }

    #[test]
    fn phase_factor_is_unit_magnitude() {
        let wf = Wavefront::new()
            .with(ZernikeTerm::Astig0, 0.08)
            .with(ZernikeTerm::Spherical, 0.03);
        for (r, t) in [(0.0, 0.0), (0.5, 1.0), (1.0, 2.5)] {
            let z = wf.phase_factor(r, t);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
        assert_eq!(Wavefront::new().phase_factor(0.7, 0.2), Complex64::ONE);
    }

    #[test]
    fn rms_excludes_piston() {
        let wf = Wavefront::new()
            .with(ZernikeTerm::Piston, 10.0)
            .with(ZernikeTerm::Defocus, 0.1);
        assert!((wf.rms_waves() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn coma_is_odd_astig_is_even() {
        let coma = ZernikeTerm::ComaX;
        let astig = ZernikeTerm::Astig0;
        // Coma flips sign under 180-degree rotation; astigmatism does not.
        let r = 0.8;
        let t = 0.7;
        assert!((coma.eval(r, t) + coma.eval(r, t + std::f64::consts::PI)).abs() < 1e-12);
        assert!((astig.eval(r, t) - astig.eval(r, t + std::f64::consts::PI)).abs() < 1e-12);
    }
}
