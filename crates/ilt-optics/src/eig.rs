//! Hermitian eigensolvers for the SOCS decomposition.
//!
//! Two pieces:
//!
//! * a classic cyclic **Jacobi** solver for small dense real-symmetric
//!   matrices (the Rayleigh–Ritz projections, at most `2k x 2k`), and
//! * blocked **subspace iteration** with Rayleigh–Ritz extraction for the
//!   leading eigenpairs of a large Hermitian operator given only by its
//!   matvec ([`HermitianOp`]), which is how the `P^2 x P^2` TCC is
//!   decomposed without ever being materialized.
//!
//! Complex Hermitian Ritz blocks are handled through the standard real
//! embedding `X + iY -> [[X, -Y], [Y, X]]`, whose spectrum duplicates each
//! complex eigenvalue; duplicates are collapsed by complex Gram–Schmidt.

use ilt_fft::Complex64;

/// A Hermitian linear operator exposed through its matrix–vector product.
pub trait HermitianOp {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;
    /// Computes `out = A v`.
    ///
    /// Implementations may assume `v.len() == out.len() == self.dim()`.
    fn apply(&self, v: &[Complex64], out: &mut [Complex64]);
}

/// One eigenpair of a Hermitian operator.
#[derive(Clone, Debug)]
pub struct EigPair {
    /// Eigenvalue (real for Hermitian operators).
    pub value: f64,
    /// Unit-norm eigenvector.
    pub vector: Vec<Complex64>,
}

/// Eigendecomposition of a small dense real-symmetric matrix by cyclic
/// Jacobi rotations.
///
/// `a` is row-major `n x n`; returns `(values, vectors)` with `vectors`
/// column-major (`vectors[j * n + i]` is component `i` of eigenvector `j`),
/// sorted by descending eigenvalue.
///
/// # Panics
///
/// Panics if `a.len() != n * n`.
pub fn sym_eig_jacobi(a: &[f64], n: usize) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(a.len(), n * n, "matrix must be n*n");
    let mut m = a.to_vec();
    // v starts as identity; accumulates rotations column-wise
    // (v[i * n + j] = component i of eigenvector j while iterating).
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    for _sweep in 0..64 {
        let mut off = 0.0;
        for p in 0..n {
            for q in p + 1..n {
                off += m[p * n + q] * m[p * n + q];
            }
        }
        if off < 1e-24 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-18 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for i in 0..n {
                    let aip = m[i * n + p];
                    let aiq = m[i * n + q];
                    m[i * n + p] = c * aip - s * aiq;
                    m[i * n + q] = s * aip + c * aiq;
                }
                for j in 0..n {
                    let apj = m[p * n + j];
                    let aqj = m[q * n + j];
                    m[p * n + j] = c * apj - s * aqj;
                    m[q * n + j] = s * apj + c * aqj;
                }
                for i in 0..n {
                    let vip = v[i * n + p];
                    let viq = v[i * n + q];
                    v[i * n + p] = c * vip - s * viq;
                    v[i * n + q] = s * vip + c * viq;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[j * n + j].partial_cmp(&m[i * n + i]).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&i| m[i * n + i]).collect();
    let mut vectors = vec![0.0; n * n];
    for (col, &src) in order.iter().enumerate() {
        for i in 0..n {
            vectors[col * n + i] = v[i * n + src];
        }
    }
    (values, vectors)
}

/// Computes the `k` leading eigenpairs of a Hermitian PSD operator by
/// blocked subspace iteration with Rayleigh–Ritz extraction.
///
/// `oversample` extra directions improve convergence of the trailing kept
/// eigenpairs; iteration stops when every kept Ritz value is stable to
/// relative `tol` or after `max_iters` block multiplications.
///
/// Results are sorted by descending eigenvalue; eigenvectors are unit norm
/// and mutually orthogonal.
///
/// # Panics
///
/// Panics if `k == 0` or `k > op.dim()`.
pub fn top_eigenpairs(
    op: &impl HermitianOp,
    k: usize,
    oversample: usize,
    max_iters: usize,
    tol: f64,
    seed: u64,
) -> Vec<EigPair> {
    let n = op.dim();
    assert!(k > 0 && k <= n, "need 0 < k <= dim (k = {k}, dim = {n})");
    let b = (k + oversample).min(n);

    // Deterministic pseudo-random start block.
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut rand_unit = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    let mut q: Vec<Vec<Complex64>> = (0..b)
        .map(|_| (0..n).map(|_| Complex64::new(rand_unit(), rand_unit())).collect())
        .collect();
    orthonormalize(&mut q);

    let mut prev_ritz: Vec<f64> = vec![f64::INFINITY; k];
    let mut ritz_values: Vec<f64> = vec![0.0; b];

    for iter in 0..max_iters {
        // Z = A Q
        let mut z: Vec<Vec<Complex64>> = q
            .iter()
            .map(|col| {
                let mut out = vec![Complex64::ZERO; n];
                op.apply(col, &mut out);
                out
            })
            .collect();

        // Rayleigh–Ritz on the block: S = Q^H Z (Hermitian b x b).
        let mut s = vec![Complex64::ZERO; b * b];
        for i in 0..b {
            for j in 0..b {
                s[i * b + j] = dot(&q[i], &z[j]);
            }
        }
        let (vals, vecs) = hermitian_small_eig(&s, b);
        ritz_values.copy_from_slice(&vals);

        // Rotate the multiplied block by the Ritz vectors, so the columns of
        // Z approximate eigenvector directions, then re-orthonormalize for
        // the next power step.
        let mut rotated: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; n]; b];
        for (col, rot) in rotated.iter_mut().enumerate() {
            for (src, zc) in z.iter().enumerate() {
                let coef = vecs[col * b + src];
                if coef == Complex64::ZERO {
                    continue;
                }
                for (r, &zv) in rot.iter_mut().zip(zc) {
                    *r += zv * coef;
                }
            }
        }
        z = rotated;
        orthonormalize(&mut z);
        q = z;

        let converged = ritz_values[..k]
            .iter()
            .zip(&prev_ritz)
            .all(|(&now, &before)| (now - before).abs() <= tol * now.abs().max(1e-30));
        prev_ritz.copy_from_slice(&ritz_values[..k]);
        if converged && iter >= 2 {
            break;
        }
    }

    // Final Ritz extraction on the converged subspace.
    let mut z: Vec<Vec<Complex64>> = q
        .iter()
        .map(|col| {
            let mut out = vec![Complex64::ZERO; n];
            op.apply(col, &mut out);
            out
        })
        .collect();
    let mut s = vec![Complex64::ZERO; b * b];
    for i in 0..b {
        for j in 0..b {
            s[i * b + j] = dot(&q[i], &z[j]);
        }
    }
    let (vals, vecs) = hermitian_small_eig(&s, b);
    let mut pairs = Vec::with_capacity(k);
    for col in 0..k {
        let mut vector = vec![Complex64::ZERO; n];
        for (src, qc) in q.iter().enumerate() {
            let coef = vecs[col * b + src];
            for (v, &qv) in vector.iter_mut().zip(qc) {
                *v += qv * coef;
            }
        }
        normalize(&mut vector);
        pairs.push(EigPair { value: vals[col], vector });
    }
    drop(z.drain(..));
    pairs
}

/// Hermitian inner product `<a, b> = a^H b`.
fn dot(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    a.iter().zip(b).map(|(&x, &y)| x.conj() * y).sum()
}

fn normalize(v: &mut [Complex64]) {
    let norm = dot(v, v).re.sqrt();
    if norm > 0.0 {
        let inv = 1.0 / norm;
        for x in v.iter_mut() {
            *x = x.scale(inv);
        }
    }
}

/// Modified Gram–Schmidt with one re-orthogonalization pass. Columns that
/// collapse (linearly dependent) are replaced by deterministic fresh
/// directions and re-processed.
fn orthonormalize(cols: &mut [Vec<Complex64>]) {
    let n = cols.first().map_or(0, Vec::len);
    for i in 0..cols.len() {
        for _attempt in 0..3 {
            for _pass in 0..2 {
                for j in 0..i {
                    let (left, right) = cols.split_at_mut(i);
                    let proj = dot(&left[j], &right[0]);
                    for (x, &b) in right[0].iter_mut().zip(&left[j]) {
                        *x -= b * proj;
                    }
                }
            }
            let norm = dot(&cols[i], &cols[i]).re.sqrt();
            if norm > 1e-12 {
                let inv = 1.0 / norm;
                for x in cols[i].iter_mut() {
                    *x = x.scale(inv);
                }
                break;
            }
            // Degenerate column: reseed deterministically from its index.
            for (t, x) in cols[i].iter_mut().enumerate() {
                let h = ((t as u64 + 1).wrapping_mul(i as u64 + 7)).wrapping_mul(0x2545F4914F6CDD1D);
                *x = Complex64::new(((h >> 16) % 1000) as f64 / 500.0 - 1.0, ((h >> 40) % 1000) as f64 / 500.0 - 1.0);
            }
            let _ = n;
        }
    }
}

/// Eigendecomposition of a small dense complex Hermitian matrix via the real
/// symmetric embedding. Returns `(values, vectors)` with column-major complex
/// eigenvectors sorted by descending eigenvalue.
fn hermitian_small_eig(s: &[Complex64], b: usize) -> (Vec<f64>, Vec<Complex64>) {
    // Embed X + iY as [[X, -Y], [Y, X]] (2b x 2b real symmetric).
    let m = 2 * b;
    let mut real = vec![0.0; m * m];
    for i in 0..b {
        for j in 0..b {
            let z = s[i * b + j];
            real[i * m + j] = z.re;
            real[(i + b) * m + (j + b)] = z.re;
            real[i * m + (j + b)] = -z.im;
            real[(i + b) * m + j] = z.im;
        }
    }
    let (vals, vecs) = sym_eig_jacobi(&real, m);

    // Each complex eigenpair appears twice; collapse duplicates by
    // Gram–Schmidt in complex space.
    let mut out_vals = Vec::with_capacity(b);
    let mut out_vecs: Vec<Vec<Complex64>> = Vec::with_capacity(b);
    for col in 0..m {
        if out_vals.len() == b {
            break;
        }
        let mut cv: Vec<Complex64> = (0..b)
            .map(|i| Complex64::new(vecs[col * m + i], vecs[col * m + (i + b)]))
            .collect();
        for prev in &out_vecs {
            let proj = dot(prev, &cv);
            for (x, &p) in cv.iter_mut().zip(prev) {
                *x -= p * proj;
            }
        }
        let norm = dot(&cv, &cv).re.sqrt();
        if norm < 1e-8 {
            continue; // duplicate of an already-kept eigenvector
        }
        let inv = 1.0 / norm;
        for x in cv.iter_mut() {
            *x = x.scale(inv);
        }
        out_vals.push(vals[col]);
        out_vecs.push(cv);
    }
    debug_assert_eq!(out_vals.len(), b, "embedding must yield b distinct eigenpairs");

    let mut flat = vec![Complex64::ZERO; b * b];
    for (col, cv) in out_vecs.iter().enumerate() {
        flat[col * b..(col + 1) * b].copy_from_slice(cv);
    }
    (out_vals, flat)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct DenseH {
        n: usize,
        m: Vec<Complex64>,
    }

    impl HermitianOp for DenseH {
        fn dim(&self) -> usize {
            self.n
        }
        fn apply(&self, v: &[Complex64], out: &mut [Complex64]) {
            for i in 0..self.n {
                let mut acc = Complex64::ZERO;
                for j in 0..self.n {
                    acc += self.m[i * self.n + j] * v[j];
                }
                out[i] = acc;
            }
        }
    }

    /// Builds A = U diag(vals) U^H for a deterministic unitary-ish U.
    fn with_spectrum(vals: &[f64]) -> DenseH {
        let n = vals.len();
        let mut cols: Vec<Vec<Complex64>> = (0..n)
            .map(|j| {
                (0..n)
                    .map(|i| {
                        let t = (i * n + j) as f64;
                        Complex64::new((t * 0.7).sin() + 0.1, (t * 1.3).cos())
                    })
                    .collect()
            })
            .collect();
        orthonormalize(&mut cols);
        let mut m = vec![Complex64::ZERO; n * n];
        for (j, col) in cols.iter().enumerate() {
            for a in 0..n {
                for b in 0..n {
                    m[a * n + b] += col[a] * col[b].conj() * vals[j];
                }
            }
        }
        DenseH { n, m }
    }

    #[test]
    fn jacobi_diagonalizes_known_matrix() {
        // [[2, 1], [1, 2]] has eigenvalues 3, 1.
        let (vals, vecs) = sym_eig_jacobi(&[2.0, 1.0, 1.0, 2.0], 2);
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
        // First eigenvector ~ (1,1)/sqrt(2)
        assert!((vecs[0].abs() - vecs[1].abs()).abs() < 1e-10);
    }

    #[test]
    fn jacobi_reconstructs_matrix() {
        let n = 6;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let v = ((i * 31 + j * 17) % 13) as f64 - 6.0;
                a[i * n + j] += v;
                a[j * n + i] += v;
            }
        }
        let (vals, vecs) = sym_eig_jacobi(&a, n);
        // A = V diag V^T
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += vecs[k * n + i] * vals[k] * vecs[k * n + j];
                }
                assert!((acc - a[i * n + j]).abs() < 1e-8, "({i},{j})");
            }
        }
        // Eigenvalues sorted descending.
        for w in vals.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn subspace_iteration_finds_leading_pairs() {
        let spectrum = [10.0, 6.0, 3.0, 1.0, 0.5, 0.1, 0.05, 0.01];
        let op = with_spectrum(&spectrum);
        let pairs = top_eigenpairs(&op, 4, 3, 200, 1e-12, 42);
        for (pair, &want) in pairs.iter().zip(&spectrum) {
            assert!((pair.value - want).abs() < 1e-6, "{} vs {want}", pair.value);
            // Residual || A v - lambda v ||.
            let mut av = vec![Complex64::ZERO; op.dim()];
            op.apply(&pair.vector, &mut av);
            let res: f64 = av
                .iter()
                .zip(&pair.vector)
                .map(|(&a, &v)| (a - v.scale(pair.value)).norm_sqr())
                .sum::<f64>()
                .sqrt();
            assert!(res < 1e-5, "residual {res}");
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let op = with_spectrum(&[5.0, 4.0, 3.0, 2.0, 1.0, 0.5]);
        let pairs = top_eigenpairs(&op, 4, 2, 200, 1e-12, 7);
        for i in 0..pairs.len() {
            for j in 0..pairs.len() {
                let d = dot(&pairs[i].vector, &pairs[j].vector);
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((d.re - want).abs() < 1e-6 && d.im.abs() < 1e-6, "({i},{j}): {d}");
            }
        }
    }

    #[test]
    fn handles_degenerate_eigenvalues() {
        let op = with_spectrum(&[4.0, 4.0, 2.0, 1.0, 0.2]);
        let pairs = top_eigenpairs(&op, 3, 2, 300, 1e-12, 3);
        assert!((pairs[0].value - 4.0).abs() < 1e-6);
        assert!((pairs[1].value - 4.0).abs() < 1e-6);
        assert!((pairs[2].value - 2.0).abs() < 1e-6);
        let d = dot(&pairs[0].vector, &pairs[1].vector);
        assert!(d.abs() < 1e-5, "degenerate eigenvectors must stay orthogonal");
    }

    #[test]
    fn rank_deficient_operator() {
        let op = with_spectrum(&[3.0, 0.0, 0.0, 0.0]);
        let pairs = top_eigenpairs(&op, 2, 1, 100, 1e-10, 11);
        assert!((pairs[0].value - 3.0).abs() < 1e-7);
        assert!(pairs[1].value.abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "0 < k <= dim")]
    fn k_zero_panics() {
        let op = with_spectrum(&[1.0, 0.5]);
        let _ = top_eigenpairs(&op, 0, 0, 10, 1e-8, 1);
    }
}
