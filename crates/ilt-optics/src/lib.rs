//! From-scratch partially coherent lithography simulation.
//!
//! This crate rebuilds the optical substrate that the DAC 2023 multi-level
//! ILT paper takes from the ICCAD 2013 contest: a Hopkins imaging model with
//! `N_k` SOCS kernels of frequency support `P x P`, evaluated on `N x N`
//! grids via FFT (Eq. 3), with the multi-resolution variants of Eqs. 7/8.
//!
//! Pipeline: [`SourceSpec`] (illumination) + [`Pupil`] (lens, defocus)
//! -> [`Tcc`] (Hopkins transmission cross coefficients)
//! -> [`KernelSet`] (leading eigenpairs via [`top_eigenpairs`])
//! -> [`LithoSimulator`] (aerial images, resist models, process corners,
//! and the adjoint/VJP used by ILT gradients).
//!
//! # Example
//!
//! ```
//! use ilt_field::Field2D;
//! use ilt_optics::{LithoSimulator, OpticsConfig, ProcessCondition};
//!
//! # fn main() -> Result<(), String> {
//! // A 512 nm clip on a 128-pixel grid (4 nm pixels).
//! let cfg = OpticsConfig { grid: 128, nm_per_px: 4.0, num_kernels: 4, ..OpticsConfig::default() };
//! let sim = LithoSimulator::new(cfg)?;
//! let mask = Field2D::from_fn(128, 128, |r, c| {
//!     if (44..84).contains(&r) && (44..84).contains(&c) { 1.0 } else { 0.0 }
//! });
//! let corners = sim.print_corners(&mask);
//! let pvband = corners.inner.xor_count(&corners.outer);
//! assert!(pvband > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod eig;
mod kernels;
mod process_window;
mod pupil;
mod simulator;
mod source;
mod tcc;
mod zernike;

pub use config::OpticsConfig;
pub use eig::{sym_eig_jacobi, top_eigenpairs, EigPair, HermitianOp};
pub use kernels::KernelSet;
pub use process_window::{sweep_process_window, ProcessWindow, ProcessWindowSpec};
pub use pupil::Pupil;
pub use simulator::{AerialCache, CornerPrints, LithoSimulator, ProcessCondition};
pub use source::{SourcePoint, SourceSpec};
pub use tcc::Tcc;
pub use zernike::{Wavefront, ZernikeTerm};
