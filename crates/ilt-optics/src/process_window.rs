//! Process-window analysis.
//!
//! PVBand (Definition 2 of the paper) samples exactly two process corners.
//! Mask-optimization lineage going back to MOSAIC [1] evaluates the full
//! **process window**: the set of (defocus, dose) conditions under which
//! the mask still prints acceptably. This module sweeps a defocus x dose
//! grid, building one kernel set per defocus level, and reports the
//! pass/fail map plus the usable dose latitude at each focus.

use ilt_field::Field2D;

use crate::config::OpticsConfig;
use crate::kernels::KernelSet;
use crate::simulator::LithoSimulator;

/// The sweep grid and acceptance criterion.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcessWindowSpec {
    /// Defocus levels to evaluate, in nm (0 = nominal focus).
    pub defocus_nm: Vec<f64>,
    /// Dose factors to evaluate (1.0 = nominal).
    pub dose: Vec<f64>,
    /// A condition passes when the printed/target XOR area is at most this
    /// fraction of the target area.
    pub max_error_fraction: f64,
}

impl Default for ProcessWindowSpec {
    /// A 5x5 window around the paper's corners: defocus up to 80 nm, dose
    /// +-4%, 15% acceptable edge erosion.
    fn default() -> Self {
        ProcessWindowSpec {
            defocus_nm: vec![0.0, 20.0, 40.0, 60.0, 80.0],
            dose: vec![0.96, 0.98, 1.0, 1.02, 1.04],
            max_error_fraction: 0.15,
        }
    }
}

/// Result of a process-window sweep.
#[derive(Clone, Debug)]
pub struct ProcessWindow {
    /// Defocus levels evaluated (rows of [`ProcessWindow::passes`]).
    pub defocus_nm: Vec<f64>,
    /// Dose factors evaluated (columns).
    pub dose: Vec<f64>,
    /// `passes[fi][di]`: did condition (defocus `fi`, dose `di`) print
    /// within tolerance?
    pub passes: Vec<Vec<bool>>,
    /// `error[fi][di]`: XOR-area fraction at each condition.
    pub error: Vec<Vec<f64>>,
}

impl ProcessWindow {
    /// Number of passing conditions.
    pub fn pass_count(&self) -> usize {
        self.passes.iter().flatten().filter(|&&p| p).count()
    }

    /// Fraction of the swept grid that passes, in `[0, 1]`.
    pub fn yield_fraction(&self) -> f64 {
        let total = self.passes.iter().map(Vec::len).sum::<usize>();
        if total == 0 {
            0.0
        } else {
            self.pass_count() as f64 / total as f64
        }
    }

    /// Dose latitude at focus level `fi`: the largest contiguous passing
    /// dose range, as (min dose, max dose), if any dose passes.
    pub fn dose_latitude(&self, fi: usize) -> Option<(f64, f64)> {
        let row = &self.passes[fi];
        let mut best: Option<(usize, usize)> = None;
        let mut start = None;
        for (i, &pass) in row.iter().enumerate() {
            match (pass, start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    if best.is_none_or(|(bs, be)| i - s > be - bs) {
                        best = Some((s, i));
                    }
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            let i = row.len();
            if best.is_none_or(|(bs, be)| i - s > be - bs) {
                best = Some((s, i));
            }
        }
        best.map(|(s, e)| (self.dose[s], self.dose[e - 1]))
    }
}

/// Sweeps the process window of `mask` against `target`.
///
/// Builds one kernel set per defocus level (the expensive part — reuse the
/// result when comparing masks under the same optics).
///
/// # Panics
///
/// Panics if the spec is empty, the config is invalid, or mask/target
/// shapes disagree with the config grid.
pub fn sweep_process_window(
    cfg: &OpticsConfig,
    mask: &Field2D,
    target: &Field2D,
    spec: &ProcessWindowSpec,
) -> ProcessWindow {
    assert!(
        !spec.defocus_nm.is_empty() && !spec.dose.is_empty(),
        "process-window spec must sweep at least one condition"
    );
    assert_eq!(mask.shape(), target.shape(), "mask/target shape mismatch");
    let target_area = target.count_on().max(1) as f64;

    let mut passes = Vec::with_capacity(spec.defocus_nm.len());
    let mut error = Vec::with_capacity(spec.defocus_nm.len());
    for &defocus in &spec.defocus_nm {
        // A simulator whose *nominal* set is at this defocus level; the
        // unused defocused set reuses the same kernels to avoid a second
        // eigendecomposition.
        let kernels = KernelSet::from_config(cfg, defocus);
        let sim = LithoSimulator::with_kernels(cfg.clone(), kernels.clone(), kernels)
            .expect("consistent kernels");
        let intensity = sim.aerial(mask, false);
        let mut row_pass = Vec::with_capacity(spec.dose.len());
        let mut row_err = Vec::with_capacity(spec.dose.len());
        for &dose in &spec.dose {
            let printed = sim.resist_hard(&intensity, dose);
            let err = printed.xor_count(target) as f64 / target_area;
            row_pass.push(err <= spec.max_error_fraction);
            row_err.push(err);
        }
        passes.push(row_pass);
        error.push(row_err);
    }
    ProcessWindow { defocus_nm: spec.defocus_nm.clone(), dose: spec.dose.clone(), passes, error }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceSpec;

    fn cfg() -> OpticsConfig {
        OpticsConfig {
            grid: 64,
            nm_per_px: 8.0,
            num_kernels: 4,
            source: SourceSpec::Annular { sigma_in: 0.5, sigma_out: 0.9 },
            ..OpticsConfig::default()
        }
    }

    fn big_square() -> Field2D {
        Field2D::from_fn(64, 64, |r, c| {
            if (16..48).contains(&r) && (16..48).contains(&c) {
                1.0
            } else {
                0.0
            }
        })
    }

    fn small_spec() -> ProcessWindowSpec {
        ProcessWindowSpec {
            defocus_nm: vec![0.0, 60.0],
            dose: vec![0.96, 1.0, 1.04],
            max_error_fraction: 0.25,
        }
    }

    #[test]
    fn large_feature_passes_at_nominal() {
        let t = big_square();
        let pw = sweep_process_window(&cfg(), &t, &t, &small_spec());
        assert!(pw.passes[0][1], "nominal condition must pass: {:?}", pw.error);
        assert!(pw.pass_count() >= 1);
        assert!(pw.yield_fraction() > 0.0);
    }

    #[test]
    fn empty_mask_fails_everywhere() {
        let t = big_square();
        let empty = Field2D::zeros(64, 64);
        let pw = sweep_process_window(&cfg(), &empty, &t, &small_spec());
        assert_eq!(pw.pass_count(), 0);
        assert_eq!(pw.yield_fraction(), 0.0);
        assert!(pw.dose_latitude(0).is_none());
    }

    #[test]
    fn error_grows_with_defocus() {
        let t = big_square();
        let spec = ProcessWindowSpec {
            defocus_nm: vec![0.0, 120.0],
            dose: vec![1.0],
            max_error_fraction: 1.0,
        };
        let pw = sweep_process_window(&cfg(), &t, &t, &spec);
        assert!(
            pw.error[1][0] >= pw.error[0][0],
            "more defocus cannot reduce error: {:?}",
            pw.error
        );
    }

    #[test]
    fn dose_latitude_finds_contiguous_range() {
        let pw = ProcessWindow {
            defocus_nm: vec![0.0],
            dose: vec![0.94, 0.96, 0.98, 1.0, 1.02],
            passes: vec![vec![false, true, true, true, false]],
            error: vec![vec![1.0, 0.1, 0.05, 0.1, 1.0]],
        };
        assert_eq!(pw.dose_latitude(0), Some((0.96, 1.0)));
        assert!((pw.yield_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn dose_latitude_picks_longest_run() {
        let pw = ProcessWindow {
            defocus_nm: vec![0.0],
            dose: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            passes: vec![vec![true, false, true, true, true, false]],
            error: vec![vec![0.0; 6]],
        };
        assert_eq!(pw.dose_latitude(0), Some((3.0, 5.0)));
    }

    #[test]
    #[should_panic(expected = "at least one condition")]
    fn empty_spec_panics() {
        let t = big_square();
        let spec = ProcessWindowSpec {
            defocus_nm: vec![],
            dose: vec![1.0],
            max_error_fraction: 0.1,
        };
        let _ = sweep_process_window(&cfg(), &t, &t, &spec);
    }
}
