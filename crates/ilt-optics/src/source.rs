//! Illumination source shapes (Köhler illumination pupil fills).
//!
//! A partially coherent source is discretized into point sources; each point
//! contributes a shifted copy of the pupil to the Hopkins transmission cross
//! coefficients. Coordinates are in sigma units (fraction of the pupil
//! cutoff `NA / lambda`).

/// Illumination pupil-fill shape.
///
/// # Examples
///
/// ```
/// use ilt_optics::SourceSpec;
///
/// let annular = SourceSpec::Annular { sigma_in: 0.6, sigma_out: 0.9 };
/// let pts = annular.sample(21);
/// assert!(!pts.is_empty());
/// // Total weight is normalized to 1.
/// let w: f64 = pts.iter().map(|p| p.weight).sum();
/// assert!((w - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SourceSpec {
    /// Fully coherent on-axis point source.
    Coherent,
    /// Circular (conventional) fill of radius `sigma`.
    Circular {
        /// Outer radius in sigma units, in `(0, 1]`.
        sigma: f64,
    },
    /// Annular fill between two radii — the workhorse of M1/via layers.
    Annular {
        /// Inner radius in sigma units.
        sigma_in: f64,
        /// Outer radius in sigma units, `> sigma_in`.
        sigma_out: f64,
    },
    /// Four-pole (quasar) fill: quadrants of an annulus centered on the
    /// diagonals, with `opening` half-angle in radians.
    Quasar {
        /// Inner radius in sigma units.
        sigma_in: f64,
        /// Outer radius in sigma units.
        sigma_out: f64,
        /// Pole half-opening angle in radians, in `(0, pi/4]`.
        opening: f64,
    },
}

/// One discretized source point in sigma coordinates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SourcePoint {
    /// X coordinate in sigma units.
    pub sx: f64,
    /// Y coordinate in sigma units.
    pub sy: f64,
    /// Normalized intensity weight; weights over a source sum to 1.
    pub weight: f64,
}

impl SourceSpec {
    /// Checks parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            SourceSpec::Coherent => Ok(()),
            SourceSpec::Circular { sigma } => {
                if sigma > 0.0 && sigma <= 1.0 {
                    Ok(())
                } else {
                    Err(format!("circular sigma {sigma} must be in (0, 1]"))
                }
            }
            SourceSpec::Annular { sigma_in, sigma_out } => {
                if sigma_in >= 0.0 && sigma_out > sigma_in && sigma_out <= 1.0 {
                    Ok(())
                } else {
                    Err(format!("invalid annulus [{sigma_in}, {sigma_out}]"))
                }
            }
            SourceSpec::Quasar { sigma_in, sigma_out, opening } => {
                if sigma_in >= 0.0
                    && sigma_out > sigma_in
                    && sigma_out <= 1.0
                    && opening > 0.0
                    && opening <= std::f64::consts::FRAC_PI_4 + 1e-12
                {
                    Ok(())
                } else {
                    Err("invalid quasar parameters".into())
                }
            }
        }
    }

    /// Discretizes the source onto a `grid x grid` raster over
    /// `[-1, 1] x [-1, 1]` sigma space, returning the points whose centers
    /// fall inside the fill, with weights normalized to sum to 1.
    ///
    /// `grid` should be odd so an on-axis sample exists; even values are
    /// bumped up by one.
    ///
    /// # Panics
    ///
    /// Panics if the source parameters are invalid (see
    /// [`SourceSpec::validate`]).
    pub fn sample(&self, grid: usize) -> Vec<SourcePoint> {
        self.validate().unwrap_or_else(|e| panic!("invalid source: {e}"));
        if let SourceSpec::Coherent = self {
            return vec![SourcePoint { sx: 0.0, sy: 0.0, weight: 1.0 }];
        }
        let grid = if grid % 2 == 0 { grid + 1 } else { grid };
        let half = (grid / 2) as isize;
        let step = 1.0 / half as f64;
        let mut pts = Vec::new();
        for iy in -half..=half {
            for ix in -half..=half {
                let (sx, sy) = (ix as f64 * step, iy as f64 * step);
                if self.contains(sx, sy) {
                    pts.push(SourcePoint { sx, sy, weight: 1.0 });
                }
            }
        }
        assert!(
            !pts.is_empty(),
            "source discretization produced no points; increase the sample grid"
        );
        let inv = 1.0 / pts.len() as f64;
        for p in &mut pts {
            p.weight = inv;
        }
        pts
    }

    /// Largest source radius in sigma units (0 for a coherent source).
    ///
    /// The TCC band extends to `(1 + max_sigma) * NA / lambda`, so this
    /// drives the derived kernel support.
    pub fn max_sigma(&self) -> f64 {
        match *self {
            SourceSpec::Coherent => 0.0,
            SourceSpec::Circular { sigma } => sigma,
            SourceSpec::Annular { sigma_out, .. } => sigma_out,
            SourceSpec::Quasar { sigma_out, .. } => sigma_out,
        }
    }

    /// Returns `true` if sigma-space point `(sx, sy)` lies in the fill.
    pub fn contains(&self, sx: f64, sy: f64) -> bool {
        let r = (sx * sx + sy * sy).sqrt();
        match *self {
            SourceSpec::Coherent => r < 1e-12,
            SourceSpec::Circular { sigma } => r <= sigma,
            SourceSpec::Annular { sigma_in, sigma_out } => r >= sigma_in && r <= sigma_out,
            SourceSpec::Quasar { sigma_in, sigma_out, opening } => {
                if r < sigma_in || r > sigma_out {
                    return false;
                }
                let theta = sy.atan2(sx);
                // Poles on the diagonals at +-45, +-135 degrees.
                [1.0f64, 3.0, -1.0, -3.0].iter().any(|&q| {
                    let center = q * std::f64::consts::FRAC_PI_4;
                    let mut d = (theta - center).abs();
                    if d > std::f64::consts::PI {
                        d = std::f64::consts::TAU - d;
                    }
                    d <= opening
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coherent_is_a_single_axial_point() {
        let pts = SourceSpec::Coherent.sample(11);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].sx, 0.0);
        assert_eq!(pts[0].weight, 1.0);
    }

    #[test]
    fn circular_includes_origin_annular_excludes_it() {
        let circ = SourceSpec::Circular { sigma: 0.5 }.sample(21);
        assert!(circ.iter().any(|p| p.sx == 0.0 && p.sy == 0.0));
        let ann = SourceSpec::Annular { sigma_in: 0.4, sigma_out: 0.9 }.sample(21);
        assert!(!ann.iter().any(|p| p.sx == 0.0 && p.sy == 0.0));
    }

    #[test]
    fn weights_normalize_to_one() {
        for spec in [
            SourceSpec::Circular { sigma: 0.8 },
            SourceSpec::Annular { sigma_in: 0.55, sigma_out: 0.95 },
            SourceSpec::Quasar { sigma_in: 0.6, sigma_out: 0.9, opening: 0.5 },
        ] {
            let pts = spec.sample(25);
            let total: f64 = pts.iter().map(|p| p.weight).sum();
            assert!((total - 1.0).abs() < 1e-12, "{spec:?}");
        }
    }

    #[test]
    fn annular_radii_respected() {
        let pts = SourceSpec::Annular { sigma_in: 0.6, sigma_out: 0.9 }.sample(41);
        for p in &pts {
            let r = (p.sx * p.sx + p.sy * p.sy).sqrt();
            assert!((0.6..=0.9).contains(&r), "r = {r}");
        }
    }

    #[test]
    fn quasar_has_four_fold_symmetry() {
        let spec = SourceSpec::Quasar { sigma_in: 0.5, sigma_out: 0.9, opening: 0.4 };
        let pts = spec.sample(41);
        assert!(!pts.is_empty());
        for p in &pts {
            // Every point's 90-degree rotation is also in the fill.
            assert!(spec.contains(-p.sy, p.sx), "{p:?}");
        }
        // Points near the axes are excluded.
        assert!(!spec.contains(0.7, 0.0));
        assert!(!spec.contains(0.0, 0.7));
    }

    #[test]
    fn even_grid_is_bumped_to_odd() {
        let a = SourceSpec::Circular { sigma: 0.9 }.sample(20);
        let b = SourceSpec::Circular { sigma: 0.9 }.sample(21);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn validation_errors() {
        assert!(SourceSpec::Circular { sigma: 0.0 }.validate().is_err());
        assert!(SourceSpec::Annular { sigma_in: 0.9, sigma_out: 0.6 }.validate().is_err());
        assert!(SourceSpec::Annular { sigma_in: 0.5, sigma_out: 1.2 }.validate().is_err());
        assert!(SourceSpec::Quasar { sigma_in: 0.5, sigma_out: 0.9, opening: 2.0 }
            .validate()
            .is_err());
    }
}
