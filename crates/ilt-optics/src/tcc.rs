//! Hopkins transmission cross coefficients (TCC).
//!
//! For Köhler illumination with source intensity `J` and pupil `P`, the TCC
//! is `T(f1, f2) = sum_s J(s) P(s + f1) conj(P(s + f2))` — a Hermitian
//! positive-semidefinite operator on the band-limited frequency grid. Its
//! leading eigenpairs are the SOCS kernels of Eq. 2/3 in the paper.
//!
//! The matrix is never materialized in the hot path: `T = A^H W A` with one
//! row of `A` per source point, so a matvec costs `O(n_src * P^2)` instead
//! of `O(P^4)`. A dense materialization is provided for tests.

use ilt_fft::{signed_freq, Complex64};

use crate::eig::HermitianOp;
use crate::pupil::Pupil;
use crate::source::SourcePoint;

/// The TCC operator in factored form.
///
/// # Examples
///
/// ```
/// use ilt_optics::{Pupil, SourceSpec, Tcc};
///
/// let pupil = Pupil::new(1.35, 193.0, 0.0);
/// let pts = SourceSpec::Circular { sigma: 0.5 }.sample(9);
/// let tcc = Tcc::build(&pupil, &pts, 9, 1.0 / 256.0);
/// assert_eq!(tcc.p(), 9);
/// assert!(tcc.trace() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct Tcc {
    p: usize,
    /// `rows[s][a] = P(f_s + f_a)` — the pupil shifted by source point `s`,
    /// sampled on the `p x p` signed-frequency grid (bin `a`).
    rows: Vec<Vec<Complex64>>,
    weights: Vec<f64>,
}

impl Tcc {
    /// Builds the factored TCC for `pupil` under the discretized `source`.
    ///
    /// `p` is the frequency-domain kernel support (odd) and `freq_step` the
    /// grid's frequency spacing in 1/nm; source points are given in sigma
    /// units and mapped to absolute frequency via the pupil cutoff.
    ///
    /// # Panics
    ///
    /// Panics if `p` is even or `source` is empty.
    pub fn build(pupil: &Pupil, source: &[SourcePoint], p: usize, freq_step: f64) -> Self {
        assert!(p % 2 == 1, "kernel support must be odd");
        assert!(!source.is_empty(), "source must contain at least one point");
        let cutoff = pupil.cutoff();
        let n = p * p;
        let mut rows = Vec::with_capacity(source.len());
        let mut weights = Vec::with_capacity(source.len());
        for sp in source {
            let (sx, sy) = (sp.sx * cutoff, sp.sy * cutoff);
            let mut row = Vec::with_capacity(n);
            for a in 0..n {
                let fy = signed_freq(a / p, p) as f64 * freq_step;
                let fx = signed_freq(a % p, p) as f64 * freq_step;
                row.push(pupil.eval(sx + fx, sy + fy));
            }
            rows.push(row);
            weights.push(sp.weight);
        }
        Tcc { p, rows, weights }
    }

    /// Kernel support `P`.
    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Trace of the TCC (sum of all eigenvalues). Used to report how much
    /// optical energy the truncated SOCS expansion captures.
    pub fn trace(&self) -> f64 {
        self.rows
            .iter()
            .zip(&self.weights)
            .map(|(row, &w)| w * row.iter().map(|z| z.norm_sqr()).sum::<f64>())
            .sum()
    }

    /// Materializes the dense `(P^2) x (P^2)` Hermitian matrix. Test-only
    /// scale: O(P^4) memory.
    pub fn dense(&self) -> Vec<Complex64> {
        let n = self.p * self.p;
        let mut m = vec![Complex64::ZERO; n * n];
        for (row, &w) in self.rows.iter().zip(&self.weights) {
            for a in 0..n {
                if row[a] == Complex64::ZERO {
                    continue;
                }
                let wa = row[a].scale(w);
                for b in 0..n {
                    m[a * n + b] += wa * row[b].conj();
                }
            }
        }
        m
    }
}

impl HermitianOp for Tcc {
    fn dim(&self) -> usize {
        self.p * self.p
    }

    /// `out = T v = sum_s w_s a_s (a_s^H v)`.
    fn apply(&self, v: &[Complex64], out: &mut [Complex64]) {
        out.fill(Complex64::ZERO);
        for (row, &w) in self.rows.iter().zip(&self.weights) {
            let mut dot = Complex64::ZERO;
            for (a, &x) in row.iter().zip(v) {
                dot += a.conj() * x;
            }
            let dot = dot.scale(w);
            for (o, &a) in out.iter_mut().zip(row) {
                *o += a * dot;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceSpec;

    fn small_tcc(defocus: f64) -> Tcc {
        let pupil = Pupil::new(1.35, 193.0, defocus);
        let pts = SourceSpec::Annular { sigma_in: 0.5, sigma_out: 0.9 }.sample(9);
        Tcc::build(&pupil, &pts, 7, 1.0 / 512.0)
    }

    #[test]
    fn dense_matches_operator_apply() {
        let tcc = small_tcc(40.0);
        let n = tcc.dim();
        let dense = tcc.dense();
        let v: Vec<Complex64> =
            (0..n).map(|i| Complex64::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos())).collect();
        let mut fast = vec![Complex64::ZERO; n];
        tcc.apply(&v, &mut fast);
        for a in 0..n {
            let mut slow = Complex64::ZERO;
            for b in 0..n {
                slow += dense[a * n + b] * v[b];
            }
            assert!((fast[a] - slow).abs() < 1e-10);
        }
    }

    #[test]
    fn dense_is_hermitian() {
        let tcc = small_tcc(40.0);
        let n = tcc.dim();
        let dense = tcc.dense();
        for a in 0..n {
            for b in 0..n {
                assert!((dense[a * n + b] - dense[b * n + a].conj()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn operator_is_positive_semidefinite() {
        let tcc = small_tcc(0.0);
        let n = tcc.dim();
        for seed in 0..5u64 {
            let v: Vec<Complex64> = (0..n)
                .map(|i| {
                    let x = (i as u64).wrapping_mul(seed.wrapping_add(1)).wrapping_mul(2654435761);
                    Complex64::new((x % 100) as f64 / 50.0 - 1.0, ((x / 100) % 100) as f64 / 50.0 - 1.0)
                })
                .collect();
            let mut tv = vec![Complex64::ZERO; n];
            tcc.apply(&v, &mut tv);
            let quad: f64 = v.iter().zip(&tv).map(|(a, b)| (a.conj() * *b).re).sum();
            assert!(quad >= -1e-10, "v^H T v = {quad}");
        }
    }

    #[test]
    fn trace_equals_dense_trace() {
        let tcc = small_tcc(25.0);
        let n = tcc.dim();
        let dense = tcc.dense();
        let dense_trace: f64 = (0..n).map(|a| dense[a * n + a].re).sum();
        assert!((tcc.trace() - dense_trace).abs() < 1e-10);
    }

    #[test]
    fn focused_tcc_is_real_symmetric() {
        let tcc = small_tcc(0.0);
        let n = tcc.dim();
        let dense = tcc.dense();
        for z in &dense {
            assert!(z.im.abs() < 1e-14, "focused TCC must be real");
        }
        for a in 0..n {
            for b in 0..n {
                assert!((dense[a * n + b].re - dense[b * n + a].re).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn coherent_source_gives_rank_one_tcc() {
        let pupil = Pupil::new(1.35, 193.0, 0.0);
        let pts = SourceSpec::Coherent.sample(1);
        let tcc = Tcc::build(&pupil, &pts, 5, 1.0 / 512.0);
        // Rank-1: T = a a^H, so T^2 = (a^H a) T.
        let n = tcc.dim();
        let dense = tcc.dense();
        let norm = tcc.trace();
        for a in 0..n {
            for b in 0..n {
                let mut t2 = Complex64::ZERO;
                for c in 0..n {
                    t2 += dense[a * n + c] * dense[c * n + b];
                }
                assert!((t2 - dense[a * n + b].scale(norm)).abs() < 1e-10);
            }
        }
    }
}
