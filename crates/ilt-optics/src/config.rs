//! Optical configuration of the lithography system.

use crate::source::SourceSpec;
use crate::zernike::Wavefront;

/// Full description of the imaging system and simulation grid.
///
/// The defaults reproduce the ICCAD 2013 contest regime targeted by the
/// paper: a 193 nm immersion scanner (NA 1.35) with annular illumination,
/// simulated on a 1 nm/pixel grid with `N_k = 24` SOCS kernels and a
/// constant-threshold resist at `I_th = 0.225`.
///
/// # Examples
///
/// ```
/// use ilt_optics::OpticsConfig;
///
/// let cfg = OpticsConfig { grid: 512, ..OpticsConfig::default() };
/// assert!(cfg.kernel_size() % 2 == 1);
/// assert!(cfg.kernel_size() <= 512);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct OpticsConfig {
    /// Simulation grid size `N` (pixels per side, power of two).
    pub grid: usize,
    /// Physical pixel pitch in nanometres.
    pub nm_per_px: f64,
    /// Numerical aperture of the projection lens.
    pub na: f64,
    /// Exposure wavelength in nanometres.
    pub wavelength_nm: f64,
    /// Illumination shape.
    pub source: SourceSpec,
    /// Defocus distance (nm) used by the "inner" process corner.
    pub defocus_nm: f64,
    /// Number of SOCS kernels `N_k` kept from the TCC eigendecomposition.
    pub num_kernels: usize,
    /// Frequency-domain kernel support `P` (odd). `None` derives the
    /// smallest odd size covering the pupil cutoff on this grid.
    pub kernel_size: Option<usize>,
    /// Resist threshold `I_th` (Eq. 1), in units of the open-frame intensity.
    pub resist_threshold: f64,
    /// Resist sigmoid steepness `alpha` (Eq. 9).
    pub resist_steepness: f64,
    /// Zernike wavefront error applied to **both** focus conditions
    /// (scanner aberration fingerprint); defocus is added on top for the
    /// inner corner.
    pub wavefront: Wavefront,
}

impl Default for OpticsConfig {
    fn default() -> Self {
        OpticsConfig {
            grid: 2048,
            nm_per_px: 1.0,
            na: 1.35,
            wavelength_nm: 193.0,
            source: SourceSpec::Annular { sigma_in: 0.6, sigma_out: 0.9 },
            defocus_nm: 60.0,
            num_kernels: 24,
            kernel_size: None,
            resist_threshold: 0.225,
            resist_steepness: 50.0,
            wavefront: Wavefront::new(),
        }
    }
}

impl OpticsConfig {
    /// Spatial-frequency step of the simulation grid, `1 / (N * nm_per_px)`
    /// in 1/nm.
    ///
    /// This step is invariant under the paper's low-resolution reduction
    /// (`N/s` samples at `s * nm_per_px` pitch), which is exactly why the
    /// same `P x P` kernel block serves every resolution level (Eq. 8).
    pub fn freq_step(&self) -> f64 {
        1.0 / (self.grid as f64 * self.nm_per_px)
    }

    /// Coherent pupil cutoff frequency `NA / lambda` in 1/nm.
    pub fn cutoff(&self) -> f64 {
        self.na / self.wavelength_nm
    }

    /// Effective frequency-domain kernel support `P` (odd).
    ///
    /// Either the explicit [`OpticsConfig::kernel_size`], or the smallest odd
    /// size whose band `[-(P-1)/2, (P-1)/2] * freq_step` covers the full TCC
    /// support `(1 + sigma_max) * NA / lambda` (partially coherent imaging
    /// spreads kernel spectra beyond the coherent cutoff), clamped to the
    /// grid size.
    pub fn kernel_size(&self) -> usize {
        if let Some(p) = self.kernel_size {
            assert!(p % 2 == 1, "kernel size must be odd, got {p}");
            return p.min(self.grid);
        }
        let band = (1.0 + self.source.max_sigma()) * self.cutoff();
        let half_bins = (band / self.freq_step()).ceil() as usize;
        (2 * half_bins + 1).min(self.grid_odd_cap())
    }

    fn grid_odd_cap(&self) -> usize {
        // Largest odd size not exceeding the grid.
        if self.grid % 2 == 0 {
            self.grid - 1
        } else {
            self.grid
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.grid.is_power_of_two() {
            return Err(format!("grid {} must be a power of two", self.grid));
        }
        if self.nm_per_px <= 0.0 {
            return Err("pixel pitch must be positive".into());
        }
        if self.na <= 0.0 || self.wavelength_nm <= 0.0 {
            return Err("NA and wavelength must be positive".into());
        }
        if self.num_kernels == 0 {
            return Err("at least one SOCS kernel is required".into());
        }
        if self.kernel_size() > self.grid {
            return Err(format!(
                "kernel size {} exceeds grid {}",
                self.kernel_size(),
                self.grid
            ));
        }
        if !(0.0..1.0).contains(&self.resist_threshold) {
            return Err("resist threshold must lie in (0, 1)".into());
        }
        self.source.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_regime() {
        let cfg = OpticsConfig::default();
        assert_eq!(cfg.grid, 2048);
        assert_eq!(cfg.num_kernels, 24);
        assert!((cfg.resist_threshold - 0.225).abs() < 1e-12);
        cfg.validate().unwrap();
        // On the paper's grid the derived kernel support covers the full
        // partially coherent band (1 + 0.9) * 1.35/193 ~ 0.0133 /nm at a
        // step of 1/2048 /nm -> 28 bins -> P = 57. (The contest's P = 35 is
        // a truncation of the same band and can be requested explicitly.)
        let p = cfg.kernel_size();
        assert!(p % 2 == 1 && (53..=61).contains(&p), "p = {p}");
    }

    #[test]
    fn explicit_kernel_size_wins() {
        let cfg = OpticsConfig { kernel_size: Some(35), ..OpticsConfig::default() };
        assert_eq!(cfg.kernel_size(), 35);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_size_panics() {
        let cfg = OpticsConfig { kernel_size: Some(34), ..OpticsConfig::default() };
        let _ = cfg.kernel_size();
    }

    #[test]
    fn kernel_size_scales_with_grid() {
        // Halving the grid halves the number of bins under the cutoff.
        let big = OpticsConfig { grid: 2048, ..OpticsConfig::default() };
        let small = OpticsConfig { grid: 512, ..OpticsConfig::default() };
        assert!(small.kernel_size() < big.kernel_size());
        small.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = OpticsConfig { grid: 100, ..OpticsConfig::default() };
        assert!(cfg.validate().is_err());
        cfg.grid = 256;
        cfg.num_kernels = 0;
        assert!(cfg.validate().is_err());
        cfg.num_kernels = 8;
        cfg.resist_threshold = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn freq_step_invariant_under_reduction() {
        let full = OpticsConfig { grid: 1024, nm_per_px: 1.0, ..OpticsConfig::default() };
        let reduced = OpticsConfig { grid: 256, nm_per_px: 4.0, ..OpticsConfig::default() };
        assert!((full.freq_step() - reduced.freq_step()).abs() < 1e-15);
    }
}
