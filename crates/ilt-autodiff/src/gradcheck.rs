//! Finite-difference gradient checking utilities.
//!
//! Every adjoint rule in this workspace — the graph ops here, the Hopkins
//! VJP in `ilt-optics`, the hand-fused update steps in `ilt-core` — is
//! validated against central finite differences. These helpers make those
//! checks one-liners in downstream test suites.

use ilt_field::Field2D;

/// Central finite-difference gradient of scalar function `f` at `x`.
///
/// Evaluates `f` twice per pixel, so keep the field small in tests.
///
/// # Examples
///
/// ```
/// use ilt_autodiff::finite_diff;
/// use ilt_field::Field2D;
///
/// let x = Field2D::filled(2, 2, 3.0);
/// let grad = finite_diff(&x, 1e-6, |v| v.as_slice().iter().map(|a| a * a).sum());
/// // d/dx sum(x^2) = 2x
/// assert!((grad[(0, 0)] - 6.0).abs() < 1e-5);
/// ```
pub fn finite_diff(x: &Field2D, eps: f64, mut f: impl FnMut(&Field2D) -> f64) -> Field2D {
    let (rows, cols) = x.shape();
    Field2D::from_fn(rows, cols, |r, c| {
        let mut xp = x.clone();
        xp[(r, c)] += eps;
        let mut xm = x.clone();
        xm[(r, c)] -= eps;
        (f(&xp) - f(&xm)) / (2.0 * eps)
    })
}

/// Central finite-difference gradient probed only at the given pixels —
/// cheap enough for full-pipeline checks on larger fields.
pub fn finite_diff_at(
    x: &Field2D,
    eps: f64,
    pixels: &[(usize, usize)],
    mut f: impl FnMut(&Field2D) -> f64,
) -> Vec<f64> {
    pixels
        .iter()
        .map(|&(r, c)| {
            let mut xp = x.clone();
            xp[(r, c)] += eps;
            let mut xm = x.clone();
            xm[(r, c)] -= eps;
            (f(&xp) - f(&xm)) / (2.0 * eps)
        })
        .collect()
}

/// Asserts that `analytic` matches `numeric` to relative tolerance `tol`
/// (absolute for magnitudes below 1).
///
/// # Panics
///
/// Panics with the offending pixel index on mismatch.
pub fn assert_gradients_close(analytic: &Field2D, numeric: &Field2D, tol: f64) {
    assert_eq!(analytic.shape(), numeric.shape(), "gradient shape mismatch");
    for (i, (&a, &n)) in analytic.as_slice().iter().zip(numeric.as_slice()).enumerate() {
        assert!(
            (a - n).abs() <= tol * n.abs().max(1.0),
            "gradient mismatch at pixel {i}: analytic {a} vs numeric {n}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_diff_of_linear_function_is_exact() {
        let x = Field2D::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let w = Field2D::from_fn(3, 3, |r, c| (r as f64) - (c as f64) * 0.5);
        let g = finite_diff(&x, 1e-5, |v| v.hadamard(&w).sum());
        assert_gradients_close(&g, &w, 1e-9);
    }

    #[test]
    fn finite_diff_at_matches_dense() {
        let x = Field2D::from_fn(4, 4, |r, c| ((r + c) as f64 * 0.37).sin());
        let f = |v: &Field2D| v.as_slice().iter().map(|a| a * a * a).sum::<f64>();
        let dense = finite_diff(&x, 1e-6, f);
        let sparse = finite_diff_at(&x, 1e-6, &[(0, 0), (2, 3)], f);
        assert!((sparse[0] - dense[(0, 0)]).abs() < 1e-10);
        assert!((sparse[1] - dense[(2, 3)]).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn mismatch_is_reported() {
        let a = Field2D::filled(2, 2, 1.0);
        let b = Field2D::filled(2, 2, 2.0);
        assert_gradients_close(&a, &b, 1e-3);
    }
}
