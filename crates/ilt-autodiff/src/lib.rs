//! Reverse-mode automatic differentiation for multi-level ILT.
//!
//! The original DAC 2023 implementation rides on PyTorch autograd; this
//! crate is the from-scratch replacement. It is deliberately *not* a general
//! autodiff system: the operator set is exactly the one Algorithm 1 of the
//! paper touches — Hopkins imaging (through the `ilt-optics` adjoint),
//! sigmoid/cosine binarization, the logistic resist, the three pooling /
//! resampling operators, and squared-L2 losses. Each adjoint is hand-derived
//! and checked against central finite differences.
//!
//! # Example: one differentiable ILT step
//!
//! ```
//! use std::sync::Arc;
//! use ilt_autodiff::Graph;
//! use ilt_field::Field2D;
//! use ilt_optics::{LithoSimulator, OpticsConfig};
//!
//! # fn main() -> Result<(), String> {
//! let cfg = OpticsConfig { grid: 64, nm_per_px: 8.0, num_kernels: 3, ..OpticsConfig::default() };
//! let sim = Arc::new(LithoSimulator::new(cfg)?);
//! let target = Field2D::from_fn(64, 64, |r, c| {
//!     if (24..40).contains(&r) && (16..48).contains(&c) { 1.0 } else { 0.0 }
//! });
//!
//! let mut g = Graph::new(sim.clone());
//! let m_raw = g.leaf(target.clone());          // M' initialized to the target
//! let m = g.sigmoid(m_raw, 4.0, 0.5);          // Eq. 11 with the improved T_R
//! let i = g.hopkins(m, false);                 // aerial image
//! let z = g.resist_sigmoid(i, 50.0, 1.0, 0.225); // Eq. 9
//! let t = g.leaf(target);
//! let loss = g.sq_diff_sum(z, t);              // L_l2 of Eq. 5
//! let grads = g.backward(loss);
//! assert!(grads.wrt(m_raw).is_some());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod gradcheck;
mod graph;

pub use gradcheck::{assert_gradients_close, finite_diff, finite_diff_at};
pub use graph::{Gradients, Graph, Var};
