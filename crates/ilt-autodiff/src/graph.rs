//! The differentiable computation graph.
//!
//! A [`Graph`] records every operation applied to [`Var`] handles during the
//! forward pass; [`Graph::backward`] then walks the tape in reverse,
//! accumulating vector–Jacobian products. The operator set is exactly what
//! Algorithm 1 of the paper needs — nothing more — which keeps each adjoint
//! rule small, hand-derivable and testable against finite differences.

use std::fmt;
use std::sync::Arc;

use ilt_field::{avg_pool_down, avg_pool_same, upsample_nearest, Field2D};
use ilt_optics::{AerialCache, LithoSimulator};

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(usize);

enum Op {
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f64),
    /// Eq. 11: `y = 1 / (1 + exp(-beta (x - t_r)))`; only `beta` is
    /// needed by the adjoint (`dy/dx = beta y (1 - y)`).
    Sigmoid { x: Var, beta: f64 },
    /// Eq. 10: `y = (1 + cos x) / 2`.
    Cosine { x: Var },
    /// Eq. 9 with dose: the adjoint needs only `alpha * dose`
    /// (`dy/dx = alpha dose y (1 - y)`).
    ResistSigmoid { x: Var, alpha: f64, dose: f64 },
    AvgPoolDown { x: Var, s: usize },
    AvgPoolSame { x: Var, n: usize },
    UpsampleNearest { x: Var, s: usize },
    /// Hopkins aerial image (Eq. 3/8) with the adjoint cache kept for
    /// backward.
    Hopkins { x: Var, cache: AerialCache },
    /// Scalar `sum((a - b)^2)`, stored as a 1x1 field.
    SqDiffSum { a: Var, b: Var },
    /// Scalar `sum(x .* w)` against a constant weight field.
    WeightedSum { x: Var, weights: Field2D },
}

struct Node {
    value: Field2D,
    op: Op,
}

/// A reverse-mode tape over [`Field2D`] values.
///
/// # Examples
///
/// ```
/// use ilt_autodiff::Graph;
/// use ilt_field::Field2D;
///
/// let mut g = Graph::without_simulator();
/// let x = g.leaf(Field2D::filled(2, 2, 0.3));
/// let y = g.sigmoid(x, 4.0, 0.5);          // the paper's binary function
/// let target = g.leaf(Field2D::filled(2, 2, 1.0));
/// let loss = g.sq_diff_sum(y, target);
/// let grads = g.backward(loss);
/// assert!(grads.wrt(x).is_some());
/// ```
pub struct Graph {
    nodes: Vec<Node>,
    sim: Option<Arc<LithoSimulator>>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.nodes.len())
            .field("has_simulator", &self.sim.is_some())
            .finish()
    }
}

impl Graph {
    /// Creates a graph able to record Hopkins imaging nodes through `sim`.
    pub fn new(sim: Arc<LithoSimulator>) -> Self {
        Graph { nodes: Vec::new(), sim: Some(sim) }
    }

    /// Creates a graph without lithography support (pure field math).
    ///
    /// [`Graph::hopkins`] panics on such a graph.
    pub fn without_simulator() -> Self {
        Graph { nodes: Vec::new(), sim: None }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no node has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Field2D, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Records an input (leaf) value.
    pub fn leaf(&mut self, value: Field2D) -> Var {
        self.push(value, Op::Leaf)
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Field2D {
        &self.nodes[v.0].value
    }

    /// The forward value of a scalar (1x1) node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not 1x1.
    pub fn scalar(&self, v: Var) -> f64 {
        let f = self.value(v);
        assert_eq!(f.shape(), (1, 1), "node is not a scalar");
        f[(0, 0)]
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a) + self.value(b);
        self.push(value, Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a) - self.value(b);
        self.push(value, Op::Sub(a, b))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).hadamard(self.value(b));
        self.push(value, Op::Mul(a, b))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, x: Var, c: f64) -> Var {
        let value = self.value(x).scale(c);
        self.push(value, Op::Scale(x, c))
    }

    /// The mask binary function of Eq. 11:
    /// `y = 1 / (1 + exp(-beta (x - t_r)))`.
    pub fn sigmoid(&mut self, x: Var, beta: f64, t_r: f64) -> Var {
        let value = self.value(x).map(|v| 1.0 / (1.0 + (-beta * (v - t_r)).exp()));
        self.push(value, Op::Sigmoid { x, beta })
    }

    /// The cosine binary function of Eq. 10: `y = (1 + cos x) / 2`.
    pub fn cosine_binary(&mut self, x: Var) -> Var {
        let value = self.value(x).map(|v| 0.5 * (1.0 + v.cos()));
        self.push(value, Op::Cosine { x })
    }

    /// The sigmoid resist model of Eq. 9 under a dose factor:
    /// `y = 1 / (1 + exp(-alpha (dose x - i_th)))`.
    pub fn resist_sigmoid(&mut self, x: Var, alpha: f64, dose: f64, i_th: f64) -> Var {
        let value = self.value(x).map(|v| 1.0 / (1.0 + (-alpha * (dose * v - i_th)).exp()));
        self.push(value, Op::ResistSigmoid { x, alpha, dose })
    }

    /// Downsampling average pool (Algorithm 1 lines 2/9).
    ///
    /// # Panics
    ///
    /// Panics if `s` does not divide the field dimensions.
    pub fn avg_pool_down(&mut self, x: Var, s: usize) -> Var {
        let value = avg_pool_down(self.value(x), s);
        self.push(value, Op::AvgPoolDown { x, s })
    }

    /// Same-size smoothing pool (Algorithm 1 line 11).
    ///
    /// # Panics
    ///
    /// Panics if `n` is even.
    pub fn avg_pool_same(&mut self, x: Var, n: usize) -> Var {
        let value = avg_pool_same(self.value(x), n);
        self.push(value, Op::AvgPoolSame { x, n })
    }

    /// Nearest-neighbor upsample (Algorithm 1 line 7).
    pub fn upsample_nearest(&mut self, x: Var, s: usize) -> Var {
        let value = upsample_nearest(self.value(x), s);
        self.push(value, Op::UpsampleNearest { x, s })
    }

    /// Hopkins aerial image of a mask node (Eq. 3 at full size, Eq. 8 at a
    /// reduced size), differentiable through the simulator's adjoint.
    ///
    /// # Panics
    ///
    /// Panics if the graph was created without a simulator, or if the mask
    /// shape is rejected by the simulator.
    pub fn hopkins(&mut self, x: Var, defocus: bool) -> Var {
        let sim = self
            .sim
            .clone()
            .expect("graph was created without a lithography simulator");
        let (value, cache) = sim.aerial_with_cache(self.value(x), defocus);
        self.push(value, Op::Hopkins { x, cache })
    }

    /// Scalar loss `sum((a - b)^2)` — both `L_l2` and `L_pvb` of Eq. 5.
    pub fn sq_diff_sum(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sq_l2_dist(self.value(b));
        self.push(Field2D::from_vec(1, 1, vec![value]), Op::SqDiffSum { a, b })
    }

    /// Scalar probe `sum(x .* w)` against a constant weight field (used by
    /// gradient checking and diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `weights` has a different shape than `x`.
    pub fn weighted_sum(&mut self, x: Var, weights: Field2D) -> Var {
        let value = self.value(x).hadamard(&weights).sum();
        self.push(Field2D::from_vec(1, 1, vec![value]), Op::WeightedSum { x, weights })
    }

    /// Reverse pass from a scalar loss node: returns gradients of the loss
    /// with respect to every node (leaves included).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar (1x1) node.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward must start from a scalar node"
        );
        let mut grads: Vec<Option<Field2D>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Field2D::filled(1, 1, 1.0));

        for idx in (0..self.nodes.len()).rev() {
            let Some(gout) = grads[idx].take() else { continue };
            // Re-install: callers may query gradients of interior nodes too.
            let gref = grads[idx].insert(gout);
            let gout = gref.clone();
            match &self.nodes[idx].op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, gout.clone());
                    accumulate(&mut grads, *b, gout);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, gout.clone());
                    accumulate(&mut grads, *b, -&gout);
                }
                Op::Mul(a, b) => {
                    let ga = gout.hadamard(self.value(*b));
                    let gb = gout.hadamard(self.value(*a));
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Scale(x, c) => accumulate(&mut grads, *x, gout.scale(*c)),
                Op::Sigmoid { x, beta } => {
                    let y = &self.nodes[idx].value;
                    let gx = gout.zip_map(y, |g, yv| g * beta * yv * (1.0 - yv));
                    accumulate(&mut grads, *x, gx);
                }
                Op::Cosine { x } => {
                    let gx = gout.zip_map(self.value(*x), |g, xv| -0.5 * xv.sin() * g);
                    accumulate(&mut grads, *x, gx);
                }
                Op::ResistSigmoid { x, alpha, dose } => {
                    let y = &self.nodes[idx].value;
                    let k = alpha * dose;
                    let gx = gout.zip_map(y, |g, yv| g * k * yv * (1.0 - yv));
                    accumulate(&mut grads, *x, gx);
                }
                Op::AvgPoolDown { x, s } => {
                    // Each input pixel contributed 1/s^2 to one output pixel.
                    let spread = upsample_nearest(&gout, *s).scale(1.0 / (s * s) as f64);
                    accumulate(&mut grads, *x, spread);
                }
                Op::AvgPoolSame { x, n } => {
                    // The centered same-size mean filter is self-adjoint.
                    accumulate(&mut grads, *x, avg_pool_same(&gout, *n));
                }
                Op::UpsampleNearest { x, s } => {
                    // Adjoint of replication is the block sum.
                    let summed = avg_pool_down(&gout, *s).scale((s * s) as f64);
                    accumulate(&mut grads, *x, summed);
                }
                Op::Hopkins { x, cache } => {
                    let sim = self.sim.as_ref().expect("hopkins node requires simulator");
                    accumulate(&mut grads, *x, sim.aerial_vjp(cache, &gout));
                }
                Op::SqDiffSum { a, b } => {
                    let g = gout[(0, 0)];
                    let diff = self.value(*a) - self.value(*b);
                    accumulate(&mut grads, *a, diff.scale(2.0 * g));
                    accumulate(&mut grads, *b, diff.scale(-2.0 * g));
                }
                Op::WeightedSum { x, weights } => {
                    accumulate(&mut grads, *x, weights.scale(gout[(0, 0)]));
                }
            }
        }
        Gradients { grads }
    }
}

fn accumulate(grads: &mut [Option<Field2D>], v: Var, g: Field2D) {
    match &mut grads[v.0] {
        Some(existing) => *existing += &g,
        slot @ None => *slot = Some(g),
    }
}

/// Gradients produced by [`Graph::backward`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Field2D>>,
}

impl Gradients {
    /// Gradient of the loss with respect to node `v`, if `v` influenced the
    /// loss.
    pub fn wrt(&self, v: Var) -> Option<&Field2D> {
        self.grads.get(v.0).and_then(Option::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference gradient of `f` at `x`, probed elementwise.
    fn finite_diff(
        x: &Field2D,
        eps: f64,
        mut f: impl FnMut(&Field2D) -> f64,
    ) -> Field2D {
        let (rows, cols) = x.shape();
        Field2D::from_fn(rows, cols, |r, c| {
            let mut xp = x.clone();
            xp[(r, c)] += eps;
            let mut xm = x.clone();
            xm[(r, c)] -= eps;
            (f(&xp) - f(&xm)) / (2.0 * eps)
        })
    }

    fn assert_grad_close(analytic: &Field2D, numeric: &Field2D, tol: f64) {
        assert_eq!(analytic.shape(), numeric.shape());
        for (i, (&a, &n)) in analytic
            .as_slice()
            .iter()
            .zip(numeric.as_slice())
            .enumerate()
        {
            assert!(
                (a - n).abs() <= tol * n.abs().max(1.0),
                "pixel {i}: analytic {a} vs numeric {n}"
            );
        }
    }

    fn test_input(rows: usize, cols: usize) -> Field2D {
        Field2D::from_fn(rows, cols, |r, c| {
            0.5 + 0.4 * ((r as f64 * 0.9).sin() * (c as f64 * 0.55 + 0.3).cos())
        })
    }

    #[test]
    fn sigmoid_gradient_matches_fd() {
        let x0 = test_input(4, 4);
        let target = Field2D::filled(4, 4, 1.0);
        let mut g = Graph::without_simulator();
        let x = g.leaf(x0.clone());
        let t = g.leaf(target.clone());
        let y = g.sigmoid(x, 4.0, 0.5);
        let loss = g.sq_diff_sum(y, t);
        let grads = g.backward(loss);

        let numeric = finite_diff(&x0, 1e-6, |xv| {
            let mut g2 = Graph::without_simulator();
            let x2 = g2.leaf(xv.clone());
            let t2 = g2.leaf(target.clone());
            let y2 = g2.sigmoid(x2, 4.0, 0.5);
            let l2 = g2.sq_diff_sum(y2, t2);
            g2.scalar(l2)
        });
        assert_grad_close(grads.wrt(x).unwrap(), &numeric, 1e-6);
    }

    #[test]
    fn cosine_binary_gradient_matches_fd() {
        let x0 = test_input(3, 5);
        let w = Field2D::from_fn(3, 5, |r, c| (r as f64 - c as f64) * 0.3);
        let mut g = Graph::without_simulator();
        let x = g.leaf(x0.clone());
        let y = g.cosine_binary(x);
        let loss = g.weighted_sum(y, w.clone());
        let grads = g.backward(loss);

        let numeric = finite_diff(&x0, 1e-6, |xv| {
            let mut g2 = Graph::without_simulator();
            let x2 = g2.leaf(xv.clone());
            let y2 = g2.cosine_binary(x2);
            let l2 = g2.weighted_sum(y2, w.clone());
            g2.scalar(l2)
        });
        assert_grad_close(grads.wrt(x).unwrap(), &numeric, 1e-6);
    }

    #[test]
    fn pooling_gradients_match_fd() {
        let x0 = test_input(8, 8);
        let w = Field2D::from_fn(4, 4, |r, c| ((r * 3 + c) % 5) as f64 - 2.0);
        let mut g = Graph::without_simulator();
        let x = g.leaf(x0.clone());
        let y = g.avg_pool_down(x, 2);
        let loss = g.weighted_sum(y, w.clone());
        let grads = g.backward(loss);
        let numeric = finite_diff(&x0, 1e-6, |xv| {
            avg_pool_down(xv, 2).hadamard(&w).sum()
        });
        assert_grad_close(grads.wrt(x).unwrap(), &numeric, 1e-6);
    }

    #[test]
    fn smoothing_pool_gradient_matches_fd() {
        let x0 = test_input(6, 6);
        let w = Field2D::from_fn(6, 6, |r, c| ((r + 2 * c) % 7) as f64 * 0.2 - 0.5);
        let mut g = Graph::without_simulator();
        let x = g.leaf(x0.clone());
        let y = g.avg_pool_same(x, 3);
        let loss = g.weighted_sum(y, w.clone());
        let grads = g.backward(loss);
        let numeric = finite_diff(&x0, 1e-6, |xv| avg_pool_same(xv, 3).hadamard(&w).sum());
        assert_grad_close(grads.wrt(x).unwrap(), &numeric, 1e-6);
    }

    #[test]
    fn upsample_gradient_matches_fd() {
        let x0 = test_input(3, 3);
        let w = Field2D::from_fn(6, 6, |r, c| (r as f64 * 0.1) - (c as f64 * 0.07));
        let mut g = Graph::without_simulator();
        let x = g.leaf(x0.clone());
        let y = g.upsample_nearest(x, 2);
        let loss = g.weighted_sum(y, w.clone());
        let grads = g.backward(loss);
        let numeric = finite_diff(&x0, 1e-6, |xv| upsample_nearest(xv, 2).hadamard(&w).sum());
        assert_grad_close(grads.wrt(x).unwrap(), &numeric, 1e-6);
    }

    #[test]
    fn arithmetic_chain_gradient_matches_fd() {
        // loss = sum(((a + 2b) .* a - b)^2-ish chain)
        let a0 = test_input(4, 4);
        let b0 = test_input(4, 4).map(|v| 1.2 - v);
        let run = |av: &Field2D, bv: &Field2D| -> (f64, Option<(Field2D, Field2D)>) {
            let mut g = Graph::without_simulator();
            let a = g.leaf(av.clone());
            let b = g.leaf(bv.clone());
            let b2 = g.scale(b, 2.0);
            let s = g.add(a, b2);
            let p = g.mul(s, a);
            let d = g.sub(p, b);
            let zero = g.leaf(Field2D::zeros(4, 4));
            let loss = g.sq_diff_sum(d, zero);
            let grads = g.backward(loss);
            (
                g.scalar(loss),
                Some((grads.wrt(a).unwrap().clone(), grads.wrt(b).unwrap().clone())),
            )
        };
        let (_, got) = run(&a0, &b0);
        let (ga, gb) = got.unwrap();
        let na = finite_diff(&a0, 1e-6, |av| run(av, &b0).0);
        let nb = finite_diff(&b0, 1e-6, |bv| run(&a0, bv).0);
        assert_grad_close(&ga, &na, 1e-5);
        assert_grad_close(&gb, &nb, 1e-5);
    }

    #[test]
    fn resist_sigmoid_gradient_matches_fd() {
        let x0 = test_input(4, 4).scale(0.5);
        let w = Field2D::filled(4, 4, 1.0);
        let mut g = Graph::without_simulator();
        let x = g.leaf(x0.clone());
        let y = g.resist_sigmoid(x, 25.0, 1.02, 0.225);
        let loss = g.weighted_sum(y, w.clone());
        let grads = g.backward(loss);
        let numeric = finite_diff(&x0, 1e-6, |xv| {
            xv.map(|v| 1.0 / (1.0 + (-25.0 * (1.02 * v - 0.225)).exp())).sum()
        });
        assert_grad_close(grads.wrt(x).unwrap(), &numeric, 1e-5);
    }

    #[test]
    fn fan_out_accumulates_gradients() {
        // x used twice: loss = sum((x + x)^2) => grad = 8x.
        let x0 = test_input(3, 3);
        let mut g = Graph::without_simulator();
        let x = g.leaf(x0.clone());
        let s = g.add(x, x);
        let zero = g.leaf(Field2D::zeros(3, 3));
        let loss = g.sq_diff_sum(s, zero);
        let grads = g.backward(loss);
        let want = x0.scale(8.0);
        assert_grad_close(grads.wrt(x).unwrap(), &want, 1e-12);
    }

    #[test]
    fn unused_leaf_has_no_gradient() {
        let mut g = Graph::without_simulator();
        let x = g.leaf(Field2D::filled(2, 2, 1.0));
        let unused = g.leaf(Field2D::filled(2, 2, 5.0));
        let zero = g.leaf(Field2D::zeros(2, 2));
        let loss = g.sq_diff_sum(x, zero);
        let grads = g.backward(loss);
        assert!(grads.wrt(unused).is_none());
        assert!(grads.wrt(x).is_some());
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_from_non_scalar_panics() {
        let mut g = Graph::without_simulator();
        let x = g.leaf(Field2D::filled(2, 2, 1.0));
        let _ = g.backward(x);
    }

    #[test]
    #[should_panic(expected = "without a lithography simulator")]
    fn hopkins_without_simulator_panics() {
        let mut g = Graph::without_simulator();
        let x = g.leaf(Field2D::filled(32, 32, 1.0));
        let _ = g.hopkins(x, false);
    }
}
