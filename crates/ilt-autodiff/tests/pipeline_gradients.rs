// Gated behind `slow-tests`: proptest comes from the registry, which the
// hermetic tier-1 build never touches. To run these, restore the `proptest`
// dev-dependency in Cargo.toml and pass `--features slow-tests`.
#![cfg(feature = "slow-tests")]

//! End-to-end gradient checks through the full ILT forward pipeline,
//! including the Hopkins imaging node, plus property-based checks of the
//! linear-operator adjoints.

use std::sync::Arc;

use ilt_autodiff::{assert_gradients_close, finite_diff, finite_diff_at, Graph};
use ilt_field::{avg_pool_down, avg_pool_same, upsample_nearest, Field2D};
use ilt_optics::{LithoSimulator, OpticsConfig, SourceSpec};
use proptest::prelude::*;

fn test_sim(grid: usize) -> Arc<LithoSimulator> {
    let cfg = OpticsConfig {
        grid,
        nm_per_px: 8.0,
        num_kernels: 4,
        source: SourceSpec::Annular { sigma_in: 0.5, sigma_out: 0.9 },
        defocus_nm: 60.0,
        ..OpticsConfig::default()
    };
    Arc::new(LithoSimulator::new(cfg).expect("valid config"))
}

fn wavy(n: usize) -> Field2D {
    Field2D::from_fn(n, n, |r, c| {
        0.5 + 0.35 * ((r as f64 * 0.7).sin() * (c as f64 * 0.45 + 0.2).cos())
    })
}

/// The full low-resolution ILT forward pass (Algorithm 1, flag = 0):
/// smoothing pool -> sigmoid binarization -> Hopkins -> sigmoid resist ->
/// Eq. 5 loss, differentiated end to end and checked by finite differences.
#[test]
fn low_res_pipeline_gradient_matches_fd() {
    let sim = test_sim(32);
    let m0 = wavy(32);
    let target = Field2D::from_fn(32, 32, |r, c| {
        if (10..22).contains(&r) && (8..26).contains(&c) {
            1.0
        } else {
            0.0
        }
    });

    let eval = |mv: &Field2D| -> f64 {
        let mut g = Graph::new(sim.clone());
        let m_raw = g.leaf(mv.clone());
        let smoothed = g.avg_pool_same(m_raw, 3);
        let m = g.sigmoid(smoothed, 4.0, 0.5);
        let i_out = g.hopkins(m, false);
        let z_out = g.resist_sigmoid(i_out, 50.0, 1.02, 0.225);
        let i_in = g.hopkins(m, true);
        let z_in = g.resist_sigmoid(i_in, 50.0, 0.98, 0.225);
        let t = g.leaf(target.clone());
        let l2 = g.sq_diff_sum(z_out, t);
        let pvb = g.sq_diff_sum(z_in, z_out);
        let loss = g.add(l2, pvb);
        g.scalar(loss)
    };

    let mut g = Graph::new(sim.clone());
    let m_raw = g.leaf(m0.clone());
    let smoothed = g.avg_pool_same(m_raw, 3);
    let m = g.sigmoid(smoothed, 4.0, 0.5);
    let i_out = g.hopkins(m, false);
    let z_out = g.resist_sigmoid(i_out, 50.0, 1.02, 0.225);
    let i_in = g.hopkins(m, true);
    let z_in = g.resist_sigmoid(i_in, 50.0, 0.98, 0.225);
    let t = g.leaf(target.clone());
    let l2 = g.sq_diff_sum(z_out, t);
    let pvb = g.sq_diff_sum(z_in, z_out);
    let loss = g.add(l2, pvb);
    let grads = g.backward(loss);
    let analytic = grads.wrt(m_raw).expect("mask gradient");

    let probes = [(0usize, 0usize), (5, 9), (16, 16), (31, 31), (12, 20), (25, 3)];
    let numeric = finite_diff_at(&m0, 1e-5, &probes, eval);
    for (&(r, c), &n) in probes.iter().zip(&numeric) {
        let a = analytic[(r, c)];
        assert!(
            (a - n).abs() <= 2e-4 * n.abs().max(1.0),
            "({r},{c}): analytic {a} vs numeric {n}"
        );
    }
}

/// The high-resolution ILT forward pass (Algorithm 1, flag = 1): sigmoid ->
/// upsample -> Hopkins at full size -> resist -> pooled loss.
#[test]
fn high_res_pipeline_gradient_matches_fd() {
    let sim = test_sim(32);
    let s = 2usize;
    let m0 = wavy(16);
    let target_s = Field2D::from_fn(16, 16, |r, c| {
        if (5..11).contains(&r) && (4..13).contains(&c) {
            1.0
        } else {
            0.0
        }
    });

    let eval = |mv: &Field2D| -> f64 {
        let mut g = Graph::new(sim.clone());
        let m_raw = g.leaf(mv.clone());
        let m_s = g.sigmoid(m_raw, 4.0, 0.5);
        let m_full = g.upsample_nearest(m_s, s);
        let i = g.hopkins(m_full, false);
        let z = g.resist_sigmoid(i, 50.0, 1.0, 0.225);
        let z_s = g.avg_pool_down(z, s);
        let t = g.leaf(target_s.clone());
        let loss = g.sq_diff_sum(z_s, t);
        g.scalar(loss)
    };

    let mut g = Graph::new(sim.clone());
    let m_raw = g.leaf(m0.clone());
    let m_s = g.sigmoid(m_raw, 4.0, 0.5);
    let m_full = g.upsample_nearest(m_s, s);
    let i = g.hopkins(m_full, false);
    let z = g.resist_sigmoid(i, 50.0, 1.0, 0.225);
    let z_s = g.avg_pool_down(z, s);
    let t = g.leaf(target_s.clone());
    let loss = g.sq_diff_sum(z_s, t);
    let grads = g.backward(loss);
    let analytic = grads.wrt(m_raw).expect("mask gradient");

    let probes = [(0usize, 0usize), (7, 7), (15, 15), (3, 12), (10, 5)];
    let numeric = finite_diff_at(&m0, 1e-5, &probes, eval);
    for (&(r, c), &n) in probes.iter().zip(&numeric) {
        let a = analytic[(r, c)];
        assert!(
            (a - n).abs() <= 2e-4 * n.abs().max(1.0),
            "({r},{c}): analytic {a} vs numeric {n}"
        );
    }
}

/// Gradients are themselves linear in the upstream seed for linear ops.
#[test]
fn linear_ops_have_linear_adjoints() {
    let x0 = wavy(8);
    let w1 = Field2D::from_fn(4, 4, |r, c| (r + c) as f64 * 0.25);
    let w2 = Field2D::from_fn(4, 4, |r, c| (r as f64) - (c as f64));

    let grad_for = |w: &Field2D| -> Field2D {
        let mut g = Graph::without_simulator();
        let x = g.leaf(x0.clone());
        let y = g.avg_pool_down(x, 2);
        let loss = g.weighted_sum(y, w.clone());
        let grads = g.backward(loss);
        grads.wrt(x).unwrap().clone()
    };
    let ga = grad_for(&w1);
    let gb = grad_for(&w2);
    let combined = grad_for(&(&w1 + &w2));
    assert_gradients_close(&combined, &(&ga + &gb), 1e-10);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Adjoint identity <A x, y> == <x, A^T y> for the pooling trio.
    #[test]
    fn pooling_adjoint_identity(
        xs in proptest::collection::vec(-2.0f64..2.0, 64),
        ys in proptest::collection::vec(-2.0f64..2.0, 16),
    ) {
        let x = Field2D::from_vec(8, 8, xs);
        let y = Field2D::from_vec(4, 4, ys);
        // A = avg_pool_down(s=2); A^T = upsample / s^2.
        let ax = avg_pool_down(&x, 2);
        let aty = upsample_nearest(&y, 2).scale(0.25);
        let lhs = ax.hadamard(&y).sum();
        let rhs = x.hadamard(&aty).sum();
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    /// The same-size mean filter is self-adjoint.
    #[test]
    fn smoothing_self_adjoint(
        xs in proptest::collection::vec(-2.0f64..2.0, 36),
        ys in proptest::collection::vec(-2.0f64..2.0, 36),
    ) {
        let x = Field2D::from_vec(6, 6, xs);
        let y = Field2D::from_vec(6, 6, ys);
        let lhs = avg_pool_same(&x, 3).hadamard(&y).sum();
        let rhs = x.hadamard(&avg_pool_same(&y, 3)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    /// Graph sigmoid gradient equals the closed form everywhere.
    #[test]
    fn sigmoid_gradient_closed_form(
        xs in proptest::collection::vec(-3.0f64..3.0, 16),
        beta in 0.5f64..8.0,
        t_r in -0.5f64..1.0,
    ) {
        let x0 = Field2D::from_vec(4, 4, xs);
        let mut g = Graph::without_simulator();
        let x = g.leaf(x0.clone());
        let y = g.sigmoid(x, beta, t_r);
        let loss = g.weighted_sum(y, Field2D::filled(4, 4, 1.0));
        let grads = g.backward(loss);
        let got = grads.wrt(x).unwrap();
        for (i, &xv) in x0.as_slice().iter().enumerate() {
            let s = 1.0 / (1.0 + (-beta * (xv - t_r)).exp());
            let want = beta * s * (1.0 - s);
            prop_assert!((got.as_slice()[i] - want).abs() < 1e-10);
        }
    }
}

/// A fully dense finite-difference check of a small mixed graph.
#[test]
fn dense_fd_check_mixed_graph() {
    let x0 = wavy(6);
    let eval = |xv: &Field2D| -> f64 {
        let mut g = Graph::without_simulator();
        let x = g.leaf(xv.clone());
        let s = g.avg_pool_same(x, 3);
        let y = g.sigmoid(s, 6.0, 0.4);
        let z = g.mul(y, x);
        let t = g.leaf(Field2D::filled(6, 6, 0.25));
        let loss = g.sq_diff_sum(z, t);
        g.scalar(loss)
    };
    let mut g = Graph::without_simulator();
    let x = g.leaf(x0.clone());
    let s = g.avg_pool_same(x, 3);
    let y = g.sigmoid(s, 6.0, 0.4);
    let z = g.mul(y, x);
    let t = g.leaf(Field2D::filled(6, 6, 0.25));
    let loss = g.sq_diff_sum(z, t);
    let grads = g.backward(loss);
    let numeric = finite_diff(&x0, 1e-6, eval);
    assert_gradients_close(grads.wrt(x).unwrap(), &numeric, 1e-5);
}
