//! Bench harness for the multi-level ILT reproduction.
//!
//! Two consumers:
//!
//! * the `tables` binary (`cargo run -p ilt-bench-harness --release --bin
//!   tables -- --table 2`) regenerates every table and figure of the paper,
//! * the Criterion benches (`cargo bench`) measure the micro-level claims
//!   (Eq. 3 vs Eq. 7 vs Eq. 8 forward simulation, per-iteration costs).
//!
//! [`published`] holds the paper-reported numbers printed as reference
//! rows; [`harness`] holds the shared method runners.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub mod published;
