//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p ilt-bench-harness --release --bin tables -- --table 1
//! cargo run -p ilt-bench-harness --release --bin tables -- --table 2 --cases 1,4,10
//! cargo run -p ilt-bench-harness --release --bin tables -- --figure 4
//! cargo run -p ilt-bench-harness --release --bin tables -- --timing --reps 50
//! cargo run -p ilt-bench-harness --release --bin tables -- --all
//! ```
//!
//! Options: `--grid N` (default 512), `--kernels K` (default 10),
//! `--cases a,b,c` (default all ten), `--reps R` (timing repetitions),
//! `--out DIR` (figure output directory, default `bench-out`).

use std::error::Error;
use std::path::PathBuf;
use std::sync::Arc;

use ilt_bench_harness::harness::{evaluate, HarnessOptions, MeasuredRow, Method};
use ilt_bench_harness::published;
use ilt_core::{
    schedules, BinaryFunction, IltConfig, MultiLevelIlt, OptimizeRegion, Smoothing, Stage,
};
use ilt_field::{write_csv, write_pgm, Field2D};
use ilt_geom::{component_count, shot_count};
use ilt_layouts::{extended_case, iccad2013_case, via_pattern, Layout};
use ilt_metrics::{pvband, squared_l2, TurnaroundTimer};
use ilt_optics::LithoSimulator;

struct Args {
    table: Option<usize>,
    figure: Option<usize>,
    timing: bool,
    ablation: bool,
    all: bool,
    reps: usize,
    out: PathBuf,
    opts: HarnessOptions,
}

fn parse_args() -> Result<Args, Box<dyn Error>> {
    let mut args = Args {
        table: None,
        figure: None,
        timing: false,
        ablation: false,
        all: false,
        reps: 50,
        out: PathBuf::from("bench-out"),
        opts: HarnessOptions::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--table" => args.table = Some(value()?.parse()?),
            "--figure" => args.figure = Some(value()?.parse()?),
            "--timing" => args.timing = true,
            "--ablation" => args.ablation = true,
            "--all" => args.all = true,
            "--reps" => args.reps = value()?.parse()?,
            "--grid" => args.opts.grid = value()?.parse()?,
            "--kernels" => args.opts.num_kernels = value()?.parse()?,
            "--max-eff-nm" => args.opts.max_eff_nm = value()?.parse()?,
            "--cases" => {
                args.opts.cases = value()?
                    .split(',')
                    .map(str::parse)
                    .collect::<Result<Vec<usize>, _>>()?
            }
            "--out" => args.out = PathBuf::from(value()?),
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    Ok(args)
}

fn main() -> Result<(), Box<dyn Error>> {
    let args = parse_args()?;
    std::fs::create_dir_all(&args.out)?;
    println!(
        "# multi-level ILT bench harness (grid {}, {} kernels, eff pitch <= {} nm)",
        args.opts.grid, args.opts.num_kernels, args.opts.max_eff_nm
    );

    let run_all = args.all;
    if args.table == Some(1) || run_all {
        table1(&args)?;
    }
    if args.table == Some(2) || run_all {
        table2(&args)?;
    }
    if args.table == Some(3) || run_all {
        table3(&args)?;
    }
    if args.table == Some(4) || run_all {
        table4(&args)?;
    }
    if args.figure == Some(1) || run_all {
        figure1(&args)?;
    }
    if args.figure == Some(4) || run_all {
        figure4(&args)?;
    }
    if args.figure == Some(5) || run_all {
        figure5(&args)?;
    }
    if args.figure == Some(6) || run_all {
        figure6(&args)?;
    }
    if args.figure == Some(7) || run_all {
        figure7(&args)?;
    }
    if args.figure == Some(8) || run_all {
        figure8(&args)?;
    }
    if args.timing || run_all {
        timing(&args)?;
    }
    if args.ablation || run_all {
        ablation(&args)?;
    }
    if args.table.is_none()
        && args.figure.is_none()
        && !args.timing
        && !args.ablation
        && !run_all
    {
        eprintln!("nothing selected; pass --table N, --figure N, --timing, --ablation or --all");
    }
    Ok(())
}

/// Design-choice ablations beyond the paper's own figures: smoothing
/// placement (paper text vs Algorithm 1 listing), binary-function family,
/// output threshold, and learning rate.
fn ablation(args: &Args) -> Result<(), Box<dyn Error>> {
    use ilt_core::SmoothingPlacement;
    println!("\n### Ablations — design choices called out in DESIGN.md\n");
    let case = iccad2013_case(1);
    let target = case.rasterize(args.opts.grid);
    let sim = simulator_for(args, &case);
    let schedule = args.opts.clamp(&schedules::our_exact(), &sim);

    let run = |label: &str, cfg: IltConfig| {
        let timer = TurnaroundTimer::start();
        let result = MultiLevelIlt::new(sim.clone(), cfg).run(&target, &schedule);
        let report = evaluate(&sim, &target, &result.mask, timer.elapsed());
        println!("  {label:<34} {report}");
    };

    println!("-- smoothing placement (paper text smooths before binarizing; the Algorithm 1 listing smooths after) --");
    for (label, placement) in [
        ("smooth-before-binarize (default)", SmoothingPlacement::BeforeBinarize),
        ("smooth-after-binarize (listing)", SmoothingPlacement::AfterBinarize),
    ] {
        run(
            label,
            IltConfig {
                smoothing: Some(Smoothing { kernel: 3, placement }),
                ..IltConfig::default()
            },
        );
    }
    run("no smoothing", IltConfig { smoothing: None, ..IltConfig::default() });

    println!("-- smoothing kernel size --");
    for kernel in [3usize, 5] {
        run(
            &format!("kernel {kernel}x{kernel}"),
            IltConfig {
                smoothing: Some(Smoothing { kernel, ..Smoothing::default() }),
                ..IltConfig::default()
            },
        );
    }

    println!("-- binary function family --");
    run("sigmoid T_R=0.5/0.4 (paper)", IltConfig::default());
    run(
        "sigmoid T_R=0 (legacy)",
        IltConfig {
            binary: BinaryFunction::legacy_sigmoid(),
            output_binary: BinaryFunction::legacy_sigmoid(),
            ..IltConfig::default()
        },
    );
    run(
        "cosine ([11], lr-sensitive)",
        IltConfig {
            binary: BinaryFunction::Cosine,
            output_binary: BinaryFunction::Cosine,
            learning_rate: 0.1,
            ..IltConfig::default()
        },
    );

    println!("-- output threshold T_R (optimization fixed at 0.5) --");
    for t_r in [0.5, 0.4, 0.3] {
        run(
            &format!("output T_R = {t_r}"),
            IltConfig {
                output_binary: BinaryFunction::Sigmoid { beta: 4.0, t_r },
                ..IltConfig::default()
            },
        );
    }

    println!("-- learning rate --");
    for lr in [0.5, 1.0, 2.0] {
        run(
            &format!("lr = {lr}"),
            IltConfig { learning_rate: lr, ..IltConfig::default() },
        );
    }

    println!("-- update rule (the paper uses SGD; A2-ILT uses Adam) --");
    run("sgd (paper)", IltConfig::default());
    run(
        "momentum 0.9",
        IltConfig {
            update_rule: ilt_core::UpdateRule::Momentum { beta: 0.9 },
            learning_rate: 0.3,
            ..IltConfig::default()
        },
    );
    run(
        "adam (lr 0.1)",
        IltConfig {
            update_rule: ilt_core::UpdateRule::adam_default(),
            learning_rate: 0.1,
            ..IltConfig::default()
        },
    );

    println!("-- loss regularizers (extensions; paper = both off) --");
    run("eq5 only (paper)", IltConfig::default());
    run(
        "curvature 0.1",
        IltConfig {
            loss_weights: ilt_core::LossWeights { curvature: 0.1, ..Default::default() },
            ..IltConfig::default()
        },
    );
    run(
        "gray 0.05",
        IltConfig {
            loss_weights: ilt_core::LossWeights { gray: 0.05, ..Default::default() },
            ..IltConfig::default()
        },
    );
    Ok(())
}

fn simulator_for(args: &Args, layout: &Layout) -> Arc<LithoSimulator> {
    args.opts.simulator(layout)
}

/// Table I — downsampling ablation on case 1: low-res vs high-res vs no
/// downsampling, 100 iterations each, lr = 1.
fn table1(args: &Args) -> Result<(), Box<dyn Error>> {
    let case = iccad2013_case(1);
    let target = case.rasterize(args.opts.grid);
    let sim = simulator_for(args, &case);
    let _nm = sim.config().nm_per_px;
    // The paper's s = 4 at 1 nm/px; at reduced grids use the clamped scale.
    let low = args.opts.clamp(&[Stage::low_res(4, 100)], &sim)[0];
    let high = args.opts.clamp(&[Stage::high_res(4, 100)], &sim)[0];
    let s = low.scale;

    println!("\n### Table I — downsampling ablation on case1 (100 iters, lr = 1, s = {s})\n");
    println!("| variant | L2 (nm^2) | PVB (nm^2) | #shots | TAT (s) |");
    println!("|---------|-----------|------------|--------|---------|");

    let mut tats = Vec::new();
    for (label, stage, smoothing) in [
        ("low-res ILT", low, Some(Smoothing::default())),
        ("high-res ILT", high, None),
        ("ILT w/o downsampling", Stage::low_res(1, 100), None),
    ] {
        let cfg = IltConfig { smoothing, ..IltConfig::default() };
        let timer = TurnaroundTimer::start();
        let result = MultiLevelIlt::new(sim.clone(), cfg).run(&target, &[stage]);
        let tat = timer.elapsed();
        let report = evaluate(&sim, &target, &result.mask, tat);
        println!(
            "| {label} | {:.0} | {:.0} | {} | {:.2} |",
            report.l2_nm2, report.pvband_nm2, report.shots, report.tat_seconds
        );
        tats.push(tat.as_secs_f64());
    }
    println!(
        "\nlow-res speedup over high-res: {:.1}x (paper: ~18x at s = 4 on a 2048 grid)",
        tats[1] / tats[0]
    );
    println!(
        "low-res speedup over no-downsampling: {:.1}x",
        tats[2] / tats[0]
    );
    Ok(())
}

fn run_suite(
    args: &Args,
    first_id: usize,
    methods: &[Method],
    region: OptimizeRegion,
) -> Vec<Vec<MeasuredRow>> {
    let ids = args.opts.case_ids(first_id);
    let mut per_method: Vec<Vec<MeasuredRow>> = vec![Vec::new(); methods.len()];
    for &id in &ids {
        let case = if id <= 10 { iccad2013_case(id) } else { extended_case(id) };
        let target = case.rasterize(args.opts.grid);
        let sim = simulator_for(args, &case);
        for (mi, m) in methods.iter().enumerate() {
            let report = m.run(&args.opts, &sim, &target, region);
            println!("  case{id} {}: {report}", m.label());
            per_method[mi].push(MeasuredRow { case: id, report });
        }
    }
    per_method
}

/// Table II — ICCAD 2013 cases under the Option-1 region.
fn table2(args: &Args) -> Result<(), Box<dyn Error>> {
    println!("\n### Table II — ICCAD 2013 M1 cases, Option-1 region\n");
    let methods = [Method::Conventional, Method::OurFast, Method::OurExact];
    let rows = run_suite(args, 1, &methods, OptimizeRegion::option1_default());
    ilt_bench_harness::harness::print_table(
        "Table II (measured)",
        &methods,
        &rows,
        &[
            ("Neural-ILT", &published::NEURAL_ILT_T2),
            ("A2-ILT", &published::A2_ILT_T2),
            ("Our-fast", &published::OUR_FAST_T2),
            ("Our-exact", &published::OUR_EXACT_T2),
        ],
    );
    Ok(())
}

/// Table III — ICCAD 2013 cases under the Option-2 region, with the
/// level-set baseline standing in for GLS-ILT.
fn table3(args: &Args) -> Result<(), Box<dyn Error>> {
    println!("\n### Table III — ICCAD 2013 M1 cases, Option-2 region\n");
    let methods = [Method::LevelSet, Method::OurFast, Method::OurExact];
    let rows = run_suite(args, 1, &methods, OptimizeRegion::option2_default());
    ilt_bench_harness::harness::print_table(
        "Table III (measured)",
        &methods,
        &rows,
        &[
            ("GLS-ILT", &published::GLS_ILT_T3),
            ("DevelSet", &published::DEVELSET_T3),
            ("Our-fast", &published::OUR_FAST_T3),
            ("Our-exact", &published::OUR_EXACT_T3),
        ],
    );
    Ok(())
}

/// Table IV — the ten denser extended cases.
fn table4(args: &Args) -> Result<(), Box<dyn Error>> {
    println!("\n### Table IV — extended cases 11-20\n");
    let methods = [Method::Conventional, Method::OurFast, Method::OurExact];
    let rows = run_suite(args, 11, &methods, OptimizeRegion::option1_default());
    ilt_bench_harness::harness::print_table(
        "Table IV (measured)",
        &methods,
        &rows,
        &[
            ("Neural-ILT", &published::NEURAL_ILT_T4),
            ("Our-fast", &published::OUR_FAST_T4),
            ("Our-exact", &published::OUR_EXACT_T4),
        ],
    );
    Ok(())
}

/// Fig. 1 — mask outputs: prior-style (conventional, T_R = 0) vs ours.
fn figure1(args: &Args) -> Result<(), Box<dyn Error>> {
    println!("\n### Figure 1 — optimized mask outputs (PGM dumps)\n");
    let case = iccad2013_case(1);
    let target = case.rasterize(args.opts.grid);
    let sim = simulator_for(args, &case);
    let region = OptimizeRegion::option1_default();

    let prior = Method::Conventional.run(&args.opts, &sim, &target, region);
    let ours = Method::OurExact.run(&args.opts, &sim, &target, region);
    println!("  prior-style: {}", prior);
    println!("  ours       : {}", ours);

    // Re-run to get the masks (Method::run returns reports; recompute).
    let prior_mask = ilt_baselines::ConventionalIlt::with_region(sim.clone(), region)
        .run(&target, 40)
        .mask;
    let schedule = args.opts.clamp(&schedules::our_exact(), &sim);
    let ours_mask = MultiLevelIlt::new(sim.clone(), IltConfig { region, ..IltConfig::default() })
        .run(&target, &schedule)
        .mask;
    write_pgm(&target, args.out.join("fig1_target.pgm"), 0.0, 1.0)?;
    write_pgm(&prior_mask, args.out.join("fig1_prior_mask.pgm"), 0.0, 1.0)?;
    write_pgm(&ours_mask, args.out.join("fig1_ours_mask.pgm"), 0.0, 1.0)?;
    println!(
        "  components: prior {} vs ours {} (regularity proxy)",
        component_count(&prior_mask),
        component_count(&ours_mask)
    );
    println!("  wrote fig1_target.pgm / fig1_prior_mask.pgm / fig1_ours_mask.pgm");
    Ok(())
}

/// Fig. 4 — binarized masks with T_R = 0 vs T_R = 0.5 after 40 low-res
/// iterations; the paper reports (50626, 51465) vs (43452, 46361).
fn figure4(args: &Args) -> Result<(), Box<dyn Error>> {
    println!("\n### Figure 4 — binary-function threshold study (40 low-res iters)\n");
    let case = iccad2013_case(1);
    let target = case.rasterize(args.opts.grid);
    let sim = simulator_for(args, &case);
    let nm = sim.config().nm_per_px;
    let schedule = args.opts.clamp(&[Stage::low_res(4, 40)], &sim);

    for (tag, binary, output) in [
        ("tr0", BinaryFunction::legacy_sigmoid(), BinaryFunction::legacy_sigmoid()),
        ("tr05", BinaryFunction::paper_sigmoid(), BinaryFunction::output_sigmoid()),
    ] {
        let cfg = IltConfig { binary, output_binary: output, ..IltConfig::default() };
        let result = MultiLevelIlt::new(sim.clone(), cfg).run(&target, &schedule);
        let corners = sim.print_corners(&result.mask);
        let l2 = squared_l2(&corners.nominal, &target, nm);
        let pvb = pvband(&corners.inner, &corners.outer, nm);
        let srafs = ilt_geom::label_components(&result.mask)
            .into_iter()
            .filter(|c| c.pixels.iter().all(|&(r, cc)| target[(r, cc)] < 0.5))
            .count();
        println!("  {tag:>4}: L2 {l2:>10.0}  PVB {pvb:>10.0}  SRAF components {srafs}");
        write_pgm(&result.mask, args.out.join(format!("fig4_mask_{tag}.pgm")), 0.0, 1.0)?;
    }
    println!("  paper (2048 px): tr0 L2 50626 PVB 51465; tr05 L2 43452 PVB 46361");
    Ok(())
}

/// Fig. 5 — sigmoid transformation and gradient curves.
fn figure5(args: &Args) -> Result<(), Box<dyn Error>> {
    println!("\n### Figure 5 — sigmoid curves (CSV)\n");
    let samples = 401;
    let mut curve = Field2D::zeros(samples, 5);
    let f0 = BinaryFunction::legacy_sigmoid();
    let f5 = BinaryFunction::paper_sigmoid();
    for i in 0..samples {
        let x = -2.0 + 4.0 * i as f64 / (samples - 1) as f64;
        curve[(i, 0)] = x;
        curve[(i, 1)] = f0.value(x);
        curve[(i, 2)] = f5.value(x);
        curve[(i, 3)] = f0.derivative(x);
        curve[(i, 4)] = f5.derivative(x);
    }
    let path = args.out.join("fig5_sigmoid_curves.csv");
    write_csv(&curve, &path)?;
    println!("  wrote {} (x, sig_tr0, sig_tr05, grad_tr0, grad_tr05)", path.display());
    // The Fig. 5(b) observation: at the background's initial value M' = 0,
    // the legacy gradient is maximal while the paper's is not.
    println!(
        "  grad at M'=0: tr0 {:.3} (its maximum = {:.3}), tr05 {:.3}",
        f0.derivative(0.0),
        f0.derivative(0.0),
        f5.derivative(0.0)
    );
    Ok(())
}

/// Fig. 6 — smoothing pool on vs off; the paper reports (70308, 69069)
/// with vs (69043, 70762) without, with higher complexity without.
fn figure6(args: &Args) -> Result<(), Box<dyn Error>> {
    println!("\n### Figure 6 — contour smoothing ablation\n");
    let case = iccad2013_case(1);
    let target = case.rasterize(args.opts.grid);
    let sim = simulator_for(args, &case);
    let nm = sim.config().nm_per_px;
    let schedule = args.opts.clamp(&[Stage::low_res(4, 40)], &sim);

    for (tag, smoothing) in [
        ("with-pool", Some(Smoothing::default())),
        ("without-pool", None),
    ] {
        let cfg = IltConfig { smoothing, ..IltConfig::default() };
        let result = MultiLevelIlt::new(sim.clone(), cfg).run(&target, &schedule);
        let corners = sim.print_corners(&result.mask);
        let l2 = squared_l2(&corners.nominal, &target, nm);
        let pvb = pvband(&corners.inner, &corners.outer, nm);
        println!(
            "  {tag:>12}: L2 {l2:>10.0}  PVB {pvb:>10.0}  #shots {:>4}  components {:>3}",
            shot_count(&result.mask),
            component_count(&result.mask)
        );
        write_pgm(&result.mask, args.out.join(format!("fig6_mask_{tag}.pgm")), 0.0, 1.0)?;
    }
    println!("  paper (2048 px): with (70308, 69069); without (69043, 70762), more complex");
    Ok(())
}

/// Fig. 7 — optimizing-region options.
fn figure7(args: &Args) -> Result<(), Box<dyn Error>> {
    println!("\n### Figure 7 — optimizing-region options\n");
    let case = iccad2013_case(1);
    let target = case.rasterize(args.opts.grid);
    let sim = simulator_for(args, &case);
    let schedule = args.opts.clamp(&schedules::our_exact(), &sim);
    for (tag, region) in [
        ("option1", OptimizeRegion::option1_default()),
        ("option2", OptimizeRegion::option2_default()),
    ] {
        let cfg = IltConfig { region, ..IltConfig::default() };
        let result = MultiLevelIlt::new(sim.clone(), cfg).run(&target, &schedule);
        let report = evaluate(&sim, &target, &result.mask, std::time::Duration::ZERO);
        println!("  {tag}: {report}");
        write_pgm(&result.mask, args.out.join(format!("fig7_mask_{tag}.pgm")), 0.0, 1.0)?;
        let region_img = region.region_mask(&target, sim.config().nm_per_px);
        write_pgm(&region_img, args.out.join(format!("fig7_region_{tag}.pgm")), 0.0, 1.0)?;
    }
    Ok(())
}

/// Fig. 8 — the worst of fifteen via clips: target, binarized mask, final
/// mask and wafer image; every via must print.
fn figure8(args: &Args) -> Result<(), Box<dyn Error>> {
    println!("\n### Figure 8 — via patterns (worst of 15 clips)\n");
    let mut worst: Option<(u64, f64)> = None;
    // Pass 1: scan all fifteen clips with a short low-resolution recipe
    // (the full via recipe only reruns on the worst clip below).
    for seed in 0..15u64 {
        let clip = via_pattern(seed);
        let target = clip.rasterize(args.opts.grid);
        let sim = simulator_for(args, &clip);
        let schedule = args.opts.clamp(&[Stage::low_res(4, 40), Stage::high_res(4, 5)], &sim);
        let cfg = IltConfig { early_exit_window: Some(15), ..IltConfig::default() };
        let result = MultiLevelIlt::new(sim.clone(), cfg).run(&target, &schedule);
        let corners = sim.print_corners(&result.mask);
        let l2 = squared_l2(&corners.nominal, &target, sim.config().nm_per_px);
        let pvb = pvband(&corners.inner, &corners.outer, sim.config().nm_per_px);
        let printed = ilt_geom::label_components(&target)
            .iter()
            .filter(|c| c.pixels.iter().any(|&(r, cc)| corners.nominal[(r, cc)] >= 0.5))
            .count();
        println!(
            "  via{seed:02}: L2 {l2:>9.0}  PVB {pvb:>9.0}  vias printed {printed}/25  iters {}",
            result.total_iterations
        );
        if worst.is_none() || l2 > worst.unwrap().1 {
            worst = Some((seed, l2));
        }
    }
    let (seed, l2) = worst.expect("at least one clip");
    println!("  worst clip: via{seed:02} (L2 {l2:.0}); dumping Fig. 8 panels");

    let clip = via_pattern(seed);
    let target = clip.rasterize(args.opts.grid);
    let sim = simulator_for(args, &clip);
    let schedule = args.opts.clamp(&schedules::via_recipe(), &sim);
    let cfg = IltConfig { early_exit_window: Some(15), ..IltConfig::default() };
    let engine = MultiLevelIlt::new(sim.clone(), cfg);
    let result = engine.run(&target, &schedule);
    let soft = BinaryFunction::output_sigmoid().apply_field(&result.raw_mask);
    let corners = sim.print_corners(&result.mask);
    write_pgm(&target, args.out.join("fig8_target.pgm"), 0.0, 1.0)?;
    write_pgm(&soft, args.out.join("fig8_binarized.pgm"), 0.0, 1.0)?;
    write_pgm(&result.mask, args.out.join("fig8_final_mask.pgm"), 0.0, 1.0)?;
    write_pgm(&corners.nominal, args.out.join("fig8_wafer.pgm"), 0.0, 1.0)?;
    println!("  wrote fig8_target/binarized/final_mask/wafer .pgm");
    Ok(())
}

/// Section III-B timing: repeated forward simulations under Eq. 3, Eq. 7
/// and Eq. 8 (the paper reports 8.173 / 0.767 / 0.466 s for 200 runs).
fn timing(args: &Args) -> Result<(), Box<dyn Error>> {
    let reps = args.reps;
    println!("\n### Forward-simulation timing ({reps} runs per variant)\n");
    let case = iccad2013_case(1);
    let target = case.rasterize(args.opts.grid);
    let sim = simulator_for(args, &case);
    let _nm = sim.config().nm_per_px;
    // The paper's s = 4; clamp for the grid.
    let s = args.opts.clamp(&[Stage::low_res(4, 1)], &sim)[0].scale.max(2);
    let mask_s = ilt_field::avg_pool_down(&target, s);

    let t3 = TurnaroundTimer::start();
    for _ in 0..reps {
        std::hint::black_box(sim.aerial(&target, false));
    }
    let eq3 = t3.elapsed().as_secs_f64();

    let t7 = TurnaroundTimer::start();
    for _ in 0..reps {
        std::hint::black_box(sim.aerial_subsampled(&target, s, false));
    }
    let eq7 = t7.elapsed().as_secs_f64();

    let t8 = TurnaroundTimer::start();
    for _ in 0..reps {
        std::hint::black_box(sim.aerial(&mask_s, false));
    }
    let eq8 = t8.elapsed().as_secs_f64();

    println!("| variant | seconds ({reps} runs) | speedup vs Eq. 3 |");
    println!("|---------|------------------|------------------|");
    println!("| Eq. 3 (full, N = {}) | {eq3:.3} | 1.0x |", args.opts.grid);
    println!("| Eq. 7 (reduced iFFTs, s = {s}) | {eq7:.3} | {:.1}x |", eq3 / eq7);
    println!("| Eq. 8 (all reduced, s = {s}) | {eq8:.3} | {:.1}x |", eq3 / eq8);
    let (p3, p7, p8) = published::FORWARD_SIM_SECONDS;
    println!(
        "\npaper (200 runs, 2048 px, s = 4, GPU): {p3} / {p7} / {p8} s -> {:.1}x and {:.1}x",
        p3 / p7,
        p3 / p8
    );
    Ok(())
}
