//! Shared machinery for regenerating the paper's tables.

use std::sync::Arc;
use std::time::Duration;

use ilt_baselines::{ConventionalIlt, LevelSetConfig, LevelSetIlt};
use ilt_core::{schedules, IltConfig, MultiLevelIlt, OptimizeRegion, Stage};
use ilt_field::Field2D;
use ilt_layouts::Layout;
use ilt_metrics::{EpeChecker, EvalReport, TurnaroundTimer};
use ilt_optics::{LithoSimulator, OpticsConfig};

use crate::published::PublishedRow;

/// Harness-wide options (grid size, kernel count, case subset).
#[derive(Clone, Debug, PartialEq)]
pub struct HarnessOptions {
    /// Simulation grid (paper scale: 2048; laptop default: 512).
    pub grid: usize,
    /// SOCS kernels per focus condition (paper: 24).
    pub num_kernels: usize,
    /// Maximum effective low-resolution pixel pitch in nm. Scale factors
    /// are clamped so `scale * nm_per_px` never exceeds this (the paper's
    /// `s = 4` at 1 nm/px is a 4 nm effective pitch; masks quantized much
    /// coarser than ~8 nm can no longer represent good solutions).
    pub max_eff_nm: f64,
    /// Case subset to run (empty = all ten).
    pub cases: Vec<usize>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions { grid: 512, num_kernels: 10, max_eff_nm: 8.0, cases: Vec::new() }
    }
}

impl HarnessOptions {
    /// Builds the simulator for a layout's pixel pitch.
    ///
    /// # Panics
    ///
    /// Panics if the optics configuration is invalid.
    pub fn simulator(&self, layout: &Layout) -> Arc<LithoSimulator> {
        let cfg = OpticsConfig {
            grid: self.grid,
            nm_per_px: layout.nm_per_px(self.grid),
            num_kernels: self.num_kernels,
            ..OpticsConfig::default()
        };
        Arc::new(LithoSimulator::new(cfg).expect("valid optics configuration"))
    }

    /// Clamps a schedule so the effective low-res pitch stays within
    /// `max_eff_nm` and the reduced grid stays above the kernel support.
    pub fn clamp(&self, schedule: &[Stage], sim: &LithoSimulator) -> Vec<Stage> {
        let nm = sim.config().nm_per_px;
        let p = sim.kernels(false).p();
        let pitch_ok = schedules::clamp_effective_pitch(schedule, nm, self.max_eff_nm);
        schedules::clamp_scales(&pitch_ok, self.grid, p)
    }

    /// The ten case ids to run for a suite starting at `first_id`.
    pub fn case_ids(&self, first_id: usize) -> Vec<usize> {
        if self.cases.is_empty() {
            (first_id..first_id + 10).collect()
        } else {
            self.cases.clone()
        }
    }
}

/// Evaluates a finished mask with the contest metrics.
pub fn evaluate(
    sim: &LithoSimulator,
    target: &Field2D,
    mask: &Field2D,
    tat: Duration,
) -> EvalReport {
    let nm = sim.config().nm_per_px;
    let corners = sim.print_corners(mask);
    let checker = EpeChecker { nm_per_px: nm, ..EpeChecker::default() };
    EvalReport::evaluate(
        target,
        mask,
        &corners.nominal,
        &corners.inner,
        &corners.outer,
        &checker,
        tat,
    )
}

/// Named method runners used by the tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Multi-level ILT, "Our-fast" schedule.
    OurFast,
    /// Multi-level ILT, "Our-exact" schedule.
    OurExact,
    /// Conventional single-level pixel ILT (`T_R = 0`).
    Conventional,
    /// GLS-ILT-style level-set baseline.
    LevelSet,
}

impl Method {
    /// Human-readable column label.
    pub fn label(&self) -> &'static str {
        match self {
            Method::OurFast => "our-fast",
            Method::OurExact => "our-exact",
            Method::Conventional => "conv-ilt",
            Method::LevelSet => "levelset",
        }
    }

    /// Runs the method on a target and returns its evaluated report.
    pub fn run(
        &self,
        opts: &HarnessOptions,
        sim: &Arc<LithoSimulator>,
        target: &Field2D,
        region: OptimizeRegion,
    ) -> EvalReport {
        let timer = TurnaroundTimer::start();
        let mask = match self {
            Method::OurFast => {
                let schedule = opts.clamp(&schedules::our_fast(), sim);
                let cfg = IltConfig { region, ..IltConfig::default() };
                MultiLevelIlt::new(sim.clone(), cfg).run(target, &schedule).mask
            }
            Method::OurExact => {
                let schedule = opts.clamp(&schedules::our_exact(), sim);
                let cfg = IltConfig { region, ..IltConfig::default() };
                MultiLevelIlt::new(sim.clone(), cfg).run(target, &schedule).mask
            }
            Method::Conventional => {
                ConventionalIlt::with_region(sim.clone(), region).run(target, 40).mask
            }
            Method::LevelSet => {
                let cfg = LevelSetConfig { region, ..LevelSetConfig::default() };
                LevelSetIlt::new(sim.clone(), cfg).run(target, 40).mask
            }
        };
        evaluate(sim, target, &mask, timer.elapsed())
    }
}

/// One measured row for the table printers.
#[derive(Clone, Debug)]
pub struct MeasuredRow {
    /// Case id.
    pub case: usize,
    /// The evaluated report.
    pub report: EvalReport,
}

/// Prints a comparison table: per-case measured rows for several methods,
/// then averages, then the paper's published averages for reference.
pub fn print_table(
    title: &str,
    methods: &[Method],
    rows: &[Vec<MeasuredRow>],
    published: &[(&str, &[PublishedRow; 10])],
) {
    println!("\n### {title}\n");
    print!("| case |");
    for m in methods {
        print!(" {} L2 | PVB | EPE | #shots | TAT(s) |", m.label());
    }
    println!();
    print!("|------|");
    for _ in methods {
        print!("---|---|---|---|---|");
    }
    println!();
    let cases = rows.first().map_or(0, Vec::len);
    for i in 0..cases {
        print!("| {} |", rows[0][i].case);
        for per_method in rows {
            let r = &per_method[i].report;
            print!(
                " {:.0} | {:.0} | {} | {} | {:.2} |",
                r.l2_nm2,
                r.pvband_nm2,
                r.epe_violations(),
                r.shots,
                r.tat_seconds
            );
        }
        println!();
    }
    // Averages.
    print!("| avg |");
    for per_method in rows {
        let n = per_method.len().max(1) as f64;
        let l2: f64 = per_method.iter().map(|r| r.report.l2_nm2).sum::<f64>() / n;
        let pvb: f64 = per_method.iter().map(|r| r.report.pvband_nm2).sum::<f64>() / n;
        let epe: f64 =
            per_method.iter().map(|r| r.report.epe_violations() as f64).sum::<f64>() / n;
        let shots: f64 = per_method.iter().map(|r| r.report.shots as f64).sum::<f64>() / n;
        let tat: f64 = per_method.iter().map(|r| r.report.tat_seconds).sum::<f64>() / n;
        print!(" {l2:.0} | {pvb:.0} | {epe:.1} | {shots:.0} | {tat:.2} |");
    }
    println!();

    if !published.is_empty() {
        println!("\npaper-reported averages (2048 px, RTX 3090; absolute values are not comparable to the reduced-scale run above — compare *ratios*):");
        for (label, table) in published {
            let l2 = crate::published::average(table, |r| r.l2);
            let pvb = crate::published::average(table, |r| r.pvb);
            let shots = crate::published::average(table, |r| r.shots);
            let tat = crate::published::average(table, |r| r.tat);
            println!("  {label:<12} L2 {l2:>9.1}  PVB {pvb:>9.1}  #shots {shots:>6.1}  TAT {tat:>7.2}s");
        }
    }
}
