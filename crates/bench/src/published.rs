//! Published per-case numbers from the paper's Tables II, III and IV.
//!
//! These are **reference constants**, printed alongside our measurements so
//! every regenerated table shows paper-reported vs reproduced values. The
//! neural baselines (Neural-ILT, DevelSet) exist only as these numbers —
//! we do not train stand-in networks; see DESIGN.md for the substitution
//! rationale.

/// One method's published row for one benchmark case.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PublishedRow {
    /// Squared L2 loss in nm^2.
    pub l2: f64,
    /// PVBand in nm^2.
    pub pvb: f64,
    /// EPE violations (`None` where the paper prints "-").
    pub epe: Option<f64>,
    /// Mask fracturing shot count.
    pub shots: f64,
    /// Turnaround time in seconds.
    pub tat: f64,
}

macro_rules! rows {
    ($(($l2:expr, $pvb:expr, $epe:expr, $shots:expr, $tat:expr)),+ $(,)?) => {
        [$(PublishedRow { l2: $l2 as f64, pvb: $pvb as f64, epe: $epe, shots: $shots as f64, tat: $tat }),+]
    };
}

/// Neural-ILT [4] on ICCAD 2013 cases 1–10 (Table II).
pub const NEURAL_ILT_T2: [PublishedRow; 10] = rows![
    (49817, 55975, Some(8.0), 428, 11.0),
    (38174, 52010, Some(3.0), 256, 17.0),
    (89411, 91357, Some(52.0), 557, 10.0),
    (16744, 29982, Some(2.0), 136, 9.0),
    (45598, 58900, Some(3.0), 380, 11.0),
    (43836, 54969, Some(5.0), 383, 10.0),
    (20324, 50542, Some(0.0), 244, 16.0),
    (13337, 26353, Some(0.0), 285, 15.0),
    (49401, 68817, Some(2.0), 444, 11.0),
    (8511, 20734, Some(0.0), 208, 14.0),
];

/// A2-ILT [7] on ICCAD 2013 cases 1–10 (Table II).
pub const A2_ILT_T2: [PublishedRow; 10] = rows![
    (45824, 59136, Some(7.0), 242, 4.53),
    (33976, 52054, Some(3.0), 211, 4.5),
    (94634, 82661, Some(62.0), 282, 4.54),
    (20405, 29435, Some(2.0), 103, 4.51),
    (37038, 62068, Some(1.0), 319, 4.53),
    (40701, 54842, Some(2.0), 244, 4.52),
    (21840, 48474, Some(0.0), 206, 4.51),
    (14912, 24598, Some(0.0), 156, 4.48),
    (47489, 68056, Some(2.0), 248, 4.52),
    (9399, 20243, Some(0.0), 126, 4.5),
];

/// The paper's "Our-fast" on ICCAD 2013 cases 1–10 (Table II, Option 1).
pub const OUR_FAST_T2: [PublishedRow; 10] = rows![
    (41919, 47144, Some(3.0), 272, 1.70),
    (28904, 37734, Some(0.0), 235, 1.70),
    (68975, 68447, Some(28.0), 265, 1.70),
    (11387, 22938, Some(0.0), 175, 1.72),
    (31442, 51292, Some(0.0), 326, 1.73),
    (31963, 46177, Some(0.0), 323, 1.72),
    (16772, 41396, Some(0.0), 216, 1.72),
    (12747, 20708, Some(0.0), 193, 1.73),
    (36988, 57528, Some(0.0), 366, 1.72),
    (8248, 17351, Some(0.0), 144, 1.73),
];

/// The paper's "Our-exact" on ICCAD 2013 cases 1–10 (Table II, Option 1).
pub const OUR_EXACT_T2: [PublishedRow; 10] = rows![
    (38495, 47015, Some(3.0), 385, 3.45),
    (28173, 37555, Some(0.0), 284, 3.44),
    (67949, 69361, Some(22.0), 316, 3.44),
    (10307, 21514, Some(0.0), 241, 3.45),
    (28482, 49683, Some(0.0), 411, 3.46),
    (30334, 44127, Some(0.0), 415, 3.42),
    (14635, 36961, Some(0.0), 382, 3.46),
    (11194, 20985, Some(0.0), 271, 3.42),
    (34900, 54948, Some(0.0), 490, 3.47),
    (7266, 16581, Some(0.0), 164, 3.47),
];

/// GLS-ILT [6] on ICCAD 2013 cases 1–10 (Table III).
pub const GLS_ILT_T3: [PublishedRow; 10] = rows![
    (46032, 62693, Some(4.0), 1476, 123.0),
    (36177, 50642, Some(1.0), 861, 81.0),
    (71178, 100945, Some(29.0), 2811, 214.0),
    (16345, 29831, Some(0.0), 432, 184.0),
    (47103, 56328, Some(1.0), 963, 76.0),
    (46205, 51033, Some(1.0), 942, 65.0),
    (28609, 44953, Some(0.0), 548, 64.0),
    (19477, 22541, Some(1.0), 439, 67.0),
    (52613, 62568, Some(0.0), 881, 63.0),
    (22415, 18769, Some(0.0), 333, 64.0),
];

/// DevelSet [5] on ICCAD 2013 cases 1–10 (Table III; EPE unreported).
pub const DEVELSET_T3: [PublishedRow; 10] = rows![
    (49142, 59607, None, 969, 1.5),
    (34489, 52012, None, 743, 1.4),
    (93498, 76558, None, 889, 1.29),
    (18682, 29047, None, 376, 1.65),
    (44256, 58085, None, 902, 0.91),
    (41730, 53410, None, 774, 0.84),
    (25797, 46606, None, 527, 0.76),
    (15460, 24836, None, 493, 1.14),
    (50834, 64950, None, 932, 1.21),
    (10140, 21619, None, 393, 0.42),
];

/// The paper's "Our-fast" under the Option-2 region (Table III).
pub const OUR_FAST_T3: [PublishedRow; 10] = rows![
    (42503, 49784, Some(3.0), 233, 1.75),
    (34693, 43801, Some(2.0), 169, 1.74),
    (69698, 72255, Some(29.0), 246, 1.76),
    (11829, 22716, Some(0.0), 176, 1.75),
    (35226, 53649, Some(0.0), 268, 1.75),
    (33883, 47716, Some(0.0), 302, 1.75),
    (21732, 44725, Some(0.0), 142, 1.73),
    (13236, 21178, Some(0.0), 158, 1.77),
    (38781, 58845, Some(0.0), 327, 1.75),
    (11122, 19106, Some(0.0), 90, 1.75),
];

/// The paper's "Our-exact" under the Option-2 region (Table III).
pub const OUR_EXACT_T3: [PublishedRow; 10] = rows![
    (40779, 50661, Some(3.0), 307, 3.49),
    (34201, 44322, Some(2.0), 186, 3.47),
    (66486, 71527, Some(22.0), 308, 3.47),
    (10942, 21500, Some(0.0), 233, 3.47),
    (30231, 51277, Some(0.0), 374, 3.47),
    (30741, 44982, Some(0.0), 365, 3.47),
    (17101, 40294, Some(0.0), 196, 3.50),
    (11935, 20357, Some(0.0), 243, 3.47),
    (35805, 57930, Some(0.0), 435, 3.50),
    (8825, 18470, Some(0.0), 114, 3.48),
];

/// Neural-ILT [4] on extended cases 11–20 (Table IV).
pub const NEURAL_ILT_T4: [PublishedRow; 10] = rows![
    (79933, 120577, Some(12.0), 669, 20.0),
    (86995, 104266, Some(15.0), 556, 12.0),
    (133281, 152718, Some(70.0), 766, 15.0),
    (43797, 92137, Some(0.0), 455, 14.0),
    (69521, 122115, Some(3.0), 808, 19.0),
    (73790, 117359, Some(2.0), 764, 19.0),
    (49031, 92320, Some(0.0), 531, 19.0),
    (47409, 84971, Some(0.0), 478, 16.0),
    (93922, 115028, Some(5.0), 614, 14.0),
    (28028, 80127, Some(0.0), 452, 19.0),
];

/// The paper's "Our-fast" on extended cases 11–20 (Table IV).
pub const OUR_FAST_T4: [PublishedRow; 10] = rows![
    (64345, 93486, Some(3.0), 534, 1.70),
    (53402, 86606, Some(0.0), 443, 1.72),
    (98597, 118403, Some(29.0), 536, 1.69),
    (36101, 69043, Some(2.0), 415, 1.70),
    (59208, 99443, Some(0.0), 475, 1.70),
    (63194, 96831, Some(0.0), 485, 1.69),
    (36329, 79834, Some(0.0), 424, 1.69),
    (36753, 66672, Some(0.0), 434, 1.70),
    (68550, 110297, Some(0.0), 508, 1.71),
    (31816, 63866, Some(0.0), 382, 1.71),
];

/// The paper's "Our-exact" on extended cases 11–20 (Table IV).
pub const OUR_EXACT_T4: [PublishedRow; 10] = rows![
    (61534, 94116, Some(4.0), 628, 3.48),
    (50037, 84984, Some(0.0), 537, 3.46),
    (94496, 120889, Some(26.0), 610, 3.49),
    (32478, 68470, Some(1.0), 504, 3.47),
    (55936, 101929, Some(0.0), 544, 3.46),
    (57169, 95182, Some(0.0), 557, 3.45),
    (32709, 75742, Some(0.0), 513, 3.45),
    (33981, 67838, Some(0.0), 511, 3.48),
    (61824, 107744, Some(0.0), 567, 3.48),
    (30118, 63327, Some(0.0), 387, 3.46),
];

/// Section III-B forward-simulation timings (200 simulations, seconds):
/// Eq. 3 (full), Eq. 7 (reduced inverse FFTs) and Eq. 8 (all-reduced).
pub const FORWARD_SIM_SECONDS: (f64, f64, f64) = (8.173, 0.767, 0.466);

/// Averages a column over the ten cases.
pub fn average(rows: &[PublishedRow; 10], f: impl Fn(&PublishedRow) -> f64) -> f64 {
    rows.iter().map(f).sum::<f64>() / 10.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_averages_match_paper() {
        // The paper's Table II "Average" row.
        assert!((average(&NEURAL_ILT_T2, |r| r.l2) - 37515.3).abs() < 0.5);
        assert!((average(&A2_ILT_T2, |r| r.l2) - 36621.8).abs() < 0.5);
        // The paper's printed Average row (28916.5) disagrees with its own
        // per-case values (28934.5) by 18 nm^2 — a rounding slip in the
        // original table; we keep the per-case values and a loose bound.
        assert!((average(&OUR_FAST_T2, |r| r.l2) - 28916.5).abs() < 100.0);
        assert!((average(&OUR_EXACT_T2, |r| r.l2) - 27173.5).abs() < 0.5);
        assert!((average(&OUR_EXACT_T2, |r| r.pvb) - 39873.0).abs() < 0.5);
    }

    #[test]
    fn headline_claims_hold_in_the_constants() {
        // "compared to DevelSet, Our-exact reduces L2 and PVB by 33.8% and
        // 15.5%" (Table III).
        let devel_l2 = average(&DEVELSET_T3, |r| r.l2);
        let ours_l2 = average(&OUR_EXACT_T3, |r| r.l2);
        let l2_cut = 1.0 - ours_l2 / devel_l2;
        assert!((l2_cut - 0.252).abs() < 0.02 || l2_cut > 0.2, "L2 cut {l2_cut}");
        let devel_pvb = average(&DEVELSET_T3, |r| r.pvb);
        let ours_pvb = average(&OUR_EXACT_T3, |r| r.pvb);
        assert!(ours_pvb < devel_pvb);
        // Ratio rows: DevelSet L2 ratio 1.338 vs Our-exact 1.
        assert!((devel_l2 / ours_l2 - 1.338).abs() < 0.01);
        // A2-ILT ratio 1.348 in Table II.
        let a2 = average(&A2_ILT_T2, |r| r.l2) / average(&OUR_EXACT_T2, |r| r.l2);
        assert!((a2 - 1.348).abs() < 0.01);
    }

    #[test]
    fn table4_speedup_claim() {
        // ">= 4.8x speedup over Neural-ILT" on extended cases.
        let neural_tat = average(&NEURAL_ILT_T4, |r| r.tat);
        let ours_tat = average(&OUR_EXACT_T4, |r| r.tat);
        assert!(neural_tat / ours_tat > 4.8);
    }
}
