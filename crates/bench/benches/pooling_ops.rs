//! Criterion bench for the pooling/resampling operators of Algorithm 1.

use criterion::{criterion_group, criterion_main, Criterion};
use ilt_field::{avg_pool_down, avg_pool_same, upsample_nearest, Field2D};
use std::hint::black_box;

fn pooling(c: &mut Criterion) {
    let n = 512;
    let f = Field2D::from_fn(n, n, |r, cc| ((r * 31 + cc * 7) % 97) as f64 / 97.0);
    let small = avg_pool_down(&f, 4);

    let mut group = c.benchmark_group("pooling");
    group.sample_size(30);
    group.bench_function("avg_pool_down_s4_512", |b| {
        b.iter(|| black_box(avg_pool_down(&f, 4)))
    });
    group.bench_function("avg_pool_same_3x3_512", |b| {
        b.iter(|| black_box(avg_pool_same(&f, 3)))
    });
    group.bench_function("upsample_nearest_s4_128", |b| {
        b.iter(|| black_box(upsample_nearest(&small, 4)))
    });
    group.bench_function("threshold_512", |b| b.iter(|| black_box(f.threshold(0.5))));
    group.finish();
}

criterion_group!(benches, pooling);
criterion_main!(benches);
