//! Criterion bench for the Section III-B claim: the relative costs of the
//! Eq. 3 (full), Eq. 7 (reduced inverse FFTs) and Eq. 8 (all-reduced)
//! forward lithography simulations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ilt_field::avg_pool_down;
use ilt_layouts::iccad2013_case;
use ilt_optics::{LithoSimulator, OpticsConfig};
use std::hint::black_box;

fn forward_sim(c: &mut Criterion) {
    let grid = 512;
    let case = iccad2013_case(1);
    let cfg = OpticsConfig {
        grid,
        nm_per_px: case.nm_per_px(grid),
        num_kernels: 10,
        ..OpticsConfig::default()
    };
    let sim = LithoSimulator::new(cfg).expect("valid config");
    let mask = case.rasterize(grid);
    let s = 4;
    let mask_s = avg_pool_down(&mask, s);

    let mut group = c.benchmark_group("forward_sim");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("eq3_full", grid), |b| {
        b.iter(|| black_box(sim.aerial(&mask, false)))
    });
    group.bench_function(BenchmarkId::new("eq7_subsampled", s), |b| {
        b.iter(|| black_box(sim.aerial_subsampled(&mask, s, false)))
    });
    group.bench_function(BenchmarkId::new("eq8_reduced", s), |b| {
        b.iter(|| black_box(sim.aerial(&mask_s, false)))
    });
    group.finish();
}

criterion_group!(benches, forward_sim);
criterion_main!(benches);
