//! Criterion bench for the FFT substrate: planned 2-D transforms at the
//! sizes multi-level ILT actually uses (N and N/s), plus the spectrum
//! crop/pad moves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ilt_fft::{crop_centered, pad_centered, Complex64, Fft2d};
use std::hint::black_box;

fn fft2d_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2d");
    group.sample_size(20);
    for n in [128usize, 256, 512] {
        let fft = Fft2d::new(n, n);
        let data: Vec<Complex64> =
            (0..n * n).map(|i| Complex64::new((i as f64 * 0.37).sin(), 0.0)).collect();
        group.bench_function(BenchmarkId::new("forward", n), |b| {
            b.iter(|| {
                let mut buf = data.clone();
                fft.forward(&mut buf);
                black_box(buf)
            })
        });
    }
    group.finish();
}

fn spectrum_moves(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectrum");
    group.sample_size(30);
    let n = 512;
    let p = 57;
    let spec: Vec<Complex64> =
        (0..n * n).map(|i| Complex64::new(i as f64, -(i as f64))).collect();
    let small = crop_centered(&spec, n, p);
    group.bench_function("crop_512_to_57", |b| {
        b.iter(|| black_box(crop_centered(&spec, n, p)))
    });
    group.bench_function("pad_57_to_512", |b| {
        b.iter(|| black_box(pad_centered(&small, p, n)))
    });
    group.finish();
}

criterion_group!(benches, fft2d_sizes, spectrum_moves);
criterion_main!(benches);
