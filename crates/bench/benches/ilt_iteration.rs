//! Criterion bench for one ILT gradient iteration at each resolution level
//! — the per-iteration cost structure behind Table I's TAT column.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ilt_core::{IltConfig, MultiLevelIlt, Stage};
use ilt_layouts::iccad2013_case;
use ilt_optics::{LithoSimulator, OpticsConfig};
use std::hint::black_box;

fn ilt_iteration(c: &mut Criterion) {
    let grid = 256;
    let case = iccad2013_case(1);
    let cfg = OpticsConfig {
        grid,
        nm_per_px: case.nm_per_px(grid),
        num_kernels: 8,
        ..OpticsConfig::default()
    };
    let sim = Arc::new(LithoSimulator::new(cfg).expect("valid config"));
    let target = case.rasterize(grid);

    let mut group = c.benchmark_group("ilt_iteration");
    group.sample_size(10);
    for (label, stage) in [
        ("low_res_s2", Stage::low_res(2, 1)),
        ("low_res_s1", Stage::low_res(1, 1)),
        ("high_res_s2", Stage::high_res(2, 1)),
    ] {
        let engine = MultiLevelIlt::new(sim.clone(), IltConfig::default());
        group.bench_function(BenchmarkId::new("step", label), |b| {
            b.iter(|| black_box(engine.run(&target, &[stage])))
        });
    }
    group.finish();
}

criterion_group!(benches, ilt_iteration);
criterion_main!(benches);
