//! Shared loopback harness for integration tests and benchmarks.
//!
//! Started life as `tests/util`; promoted into the crate proper so the
//! `ilt-perf` server workloads and the integration suites drive the exact
//! same client instead of duplicating it. Everything here panics on
//! protocol violations — it is a dev tool, not production code.
//!
//! Two client shapes, matching the two things callers need to exercise:
//!
//! - [`exchange`] / [`get`] / [`post`] / [`delete`]: one fresh connection
//!   per request. The convenience verbs send `Connection: close` so the
//!   server hangs up after replying and read-to-EOF framing stays valid
//!   even though the server defaults to keep-alive. [`exchange`] sends raw
//!   bytes verbatim — the tool for malformed-request tests.
//! - [`Conn`]: one persistent connection, responses framed by their
//!   `Content-Length` — the tool for keep-alive, pipelining, idle timeout,
//!   and throughput measurement, where reading to EOF would deadlock or
//!   lie.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ilt_field::Field2D;
use ilt_runtime::SeamPolicy;

use crate::{JobParams, JobSource, Server, ServerConfig};

/// One parsed HTTP response.
pub struct Reply {
    /// Status code from the response line.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw response body.
    pub body: Vec<u8>,
}

impl Reply {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Body as lossy UTF-8.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn parse_head(head: &str) -> (u16, Vec<(String, String)>) {
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers)
}

/// One raw exchange on a fresh connection: sends `raw` verbatim, reads the
/// response to EOF. The request must make the server close the connection
/// (send `Connection: close`, or be malformed — errors always close).
pub fn exchange(addr: SocketAddr, raw: &[u8]) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(raw).expect("send request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head terminator");
    let head = String::from_utf8(response[..split].to_vec()).expect("utf8 head");
    let (status, headers) = parse_head(&head);
    Reply { status, headers, body: response[split + 4..].to_vec() }
}

/// `GET path` on a fresh close-delimited connection.
pub fn get(addr: SocketAddr, path: &str) -> Reply {
    exchange(
        addr,
        format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes(),
    )
}

/// `POST path` with `body` on a fresh close-delimited connection.
pub fn post(addr: SocketAddr, path: &str, body: &[u8]) -> Reply {
    post_with_headers(addr, path, &[], body)
}

/// [`post`] with extra request headers — the tool for multi-tenant tests
/// that need to speak as a particular client (`X-Ilt-Client`) or priority
/// class (`X-Ilt-Priority`).
pub fn post_with_headers(
    addr: SocketAddr,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Reply {
    let mut raw = format!("POST {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n").into_bytes();
    for (name, value) in headers {
        raw.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    raw.extend_from_slice(format!("content-length: {}\r\n\r\n", body.len()).as_bytes());
    raw.extend_from_slice(body);
    exchange(addr, &raw)
}

/// `DELETE path` on a fresh close-delimited connection.
pub fn delete(addr: SocketAddr, path: &str) -> Reply {
    exchange(
        addr,
        format!("DELETE {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes(),
    )
}

/// A persistent client connection framing responses by `Content-Length`.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    /// Connects to `addr`; responses time out after 30 s.
    pub fn open(addr: SocketAddr) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        Conn { stream, buf: Vec::new() }
    }

    /// Writes raw bytes without reading anything back (for pipelining).
    pub fn send_raw(&mut self, raw: &[u8]) -> io::Result<()> {
        self.stream.write_all(raw)
    }

    /// Sends one framed request (no `Connection` header: HTTP/1.1 default
    /// keep-alive applies) and reads its reply.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Reply> {
        self.request_with_headers(method, path, &[], body)
    }

    /// [`Conn::request`] with extra request headers (e.g. `X-Ilt-Client`).
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<Reply> {
        let mut raw = format!("{method} {path} HTTP/1.1\r\nhost: t\r\n").into_bytes();
        for (name, value) in headers {
            raw.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        raw.extend_from_slice(format!("content-length: {}\r\n\r\n", body.len()).as_bytes());
        raw.extend_from_slice(body);
        self.send_raw(&raw)?;
        self.read_reply()
    }

    /// Reads one `Content-Length`-framed response from the connection.
    pub fn read_reply(&mut self) -> io::Result<Reply> {
        let split = loop {
            if let Some(p) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break p;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before a full response head",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(self.buf[..split].to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 head"))?;
        let (status, headers) = parse_head(&head);
        let len: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .expect("server responses always carry content-length");
        self.buf.drain(..split + 4);
        while self.buf.len() < len {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body: Vec<u8> = self.buf.drain(..len).collect();
        Ok(Reply { status, headers, body })
    }

    /// Reads one byte, expecting the server to have closed the connection
    /// (EOF) rather than sent anything.
    pub fn expect_closed(&mut self) -> bool {
        assert!(self.buf.is_empty(), "unread pipelined data: {:?}", self.buf);
        let mut one = [0u8; 1];
        matches!(self.stream.read(&mut one), Ok(0))
    }
}

/// Binds a [`Server`] and runs it on a background thread; returns its
/// (ephemeral) address and the join handle [`shutdown`] consumes.
pub fn start(config: ServerConfig) -> (SocketAddr, JoinHandle<io::Result<()>>) {
    let server = Server::bind(config).expect("bind loopback");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// Drains the server via `POST /v1/shutdown` and joins its thread.
pub fn shutdown(addr: SocketAddr, handle: JoinHandle<io::Result<()>>) {
    let reply = post(addr, "/v1/shutdown", b"");
    assert_eq!(reply.status, 202);
    handle.join().expect("server thread").expect("clean drain");
}

/// A 64 px clip with one rectangle — the smallest interesting target.
pub fn tiny_target() -> Field2D {
    Field2D::from_fn(64, 64, |r, c| {
        if (24..40).contains(&r) && (16..48).contains(&c) { 1.0 } else { 0.0 }
    })
}

/// [`tiny_target`] encoded as binary PGM, ready to POST.
pub fn tiny_pgm() -> Vec<u8> {
    ilt_field::pgm_bytes(&tiny_target(), 0.0, 1.0)
}

/// Query params for a job small enough to finish in well under a second.
pub const FAST_JOB: &str = "clip_nm=512&kernels=3&iters=2";

/// The [`JobParams`] equivalent of [`FAST_JOB`] for an inline target.
pub fn fast_params(target: Field2D) -> JobParams {
    JobParams {
        source: JobSource::Inline(target),
        name: "inline".into(),
        grid: 512,
        clip_nm: 512.0,
        kernels: 3,
        tile: 512,
        halo: 64,
        seam: SeamPolicy::Crop,
        schedule: "fast".into(),
        iters: Some(2),
        max_eff_nm: 8.0,
        threads: 1,
        timeout_s: 0.0,
        retries: 1,
        evaluate: true,
        faults: ilt_runtime::FaultPlan::none(),
    }
}

/// Parses the job id out of a submit reply's `Location: /v1/jobs/{id}`
/// header. Shared by the integration suites and the `ilt-perf` server
/// workloads so every client agrees on where the id lives.
pub fn job_id(reply: &Reply) -> Result<usize, String> {
    let loc = reply.header("location").ok_or("submit reply lacks a Location header")?;
    loc.rsplit('/').next().and_then(|s| s.parse().ok()).ok_or(format!("bad Location {loc}"))
}

/// Polls `GET /v1/jobs/{id}` until the job reaches any terminal state;
/// returns `(state, detail_json)`. Panics only on HTTP errors or if the
/// deadline passes — racing tests decide for themselves which terminal
/// states are acceptable.
pub fn wait_for_terminal(addr: SocketAddr, id: usize) -> (String, String) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply = get(addr, &format!("/v1/jobs/{id}"));
        assert_eq!(reply.status, 200, "{}", reply.text());
        let text = reply.text();
        for terminal in ["done", "failed", "cancelled"] {
            if text.contains(&format!("\"state\":\"{terminal}\"")) {
                return (terminal.to_string(), text);
            }
        }
        assert!(Instant::now() < deadline, "job {id} never landed terminal: {text}");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

/// Polls `GET /v1/jobs/{id}` until its state equals `want`; returns the
/// final detail JSON. Panics if the job lands in a different terminal
/// state or the deadline passes.
pub fn wait_for_state(addr: SocketAddr, id: usize, want: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply = get(addr, &format!("/v1/jobs/{id}"));
        assert_eq!(reply.status, 200, "{}", reply.text());
        let text = reply.text();
        if text.contains(&format!("\"state\":\"{want}\"")) {
            return text;
        }
        for terminal in ["done", "failed", "cancelled"] {
            assert!(
                terminal == want || !text.contains(&format!("\"state\":\"{terminal}\"")),
                "job {id} landed `{terminal}` while waiting for `{want}`: {text}"
            );
        }
        assert!(Instant::now() < deadline, "job {id} never reached `{want}`: {text}");
        std::thread::sleep(Duration::from_millis(15));
    }
}

/// A fresh scratch directory under the system temp dir, unique per test.
pub fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ilt_server_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
